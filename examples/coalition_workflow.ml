(* An editorial workflow across the coalition: author -> reviewer ->
   publisher, each stage a different naplet, enforced by

   - team-scoped SRAC ordering constraints (the reviewer may only
     review a drafted document; the publisher may only publish a
     reviewed one — the proofs travel in the naplet team),
   - dynamic separation of duty (nobody reviews and publishes in the
     same session), and
   - a validity duration on the publish permission (press deadline).

   Run with:  dune exec examples/coalition_workflow.exe *)

module Q = Temporal.Q

let show label (o : Scenarios.Workflow.outcome) =
  Format.printf
    "%-34s drafted:%b  reviewed:%b  published:%b  (denials: %d)@." label
    o.Scenarios.Workflow.drafted o.Scenarios.Workflow.reviewed
    o.Scenarios.Workflow.published o.Scenarios.Workflow.denied

let () =
  Format.printf "three-stage coalition workflow, one naplet per stage@.@.";
  show "honest principals:" (Scenarios.Workflow.run ());
  show "reviewer tries to self-publish:" (Scenarios.Workflow.run ~cheat:true ());
  show "press deadline too tight:"
    (Scenarios.Workflow.run ~deadline:(Q.make 1 100) ());
  Format.printf
    "@.the cheating run is stopped by dynamic separation of duty: the@.\
     reviewer's session cannot also activate the publisher role, so the@.\
     publish access fails plain RBAC before any constraint is consulted.@."
