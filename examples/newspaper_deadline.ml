(* The introduction's temporal example: "the editing deadline for an
   issue of a daily newspaper is by 3am" — and the contrast between the
   two base-time schemes of Section 4 when the editor's mobile object
   migrates between press servers mid-session.

   Run with:  dune exec examples/newspaper_deadline.exe *)

module Q = Temporal.Q

let hour q =
  let f = Q.to_float q in
  let h = int_of_float f mod 24 in
  let m = int_of_float ((f -. Float.of_int (int_of_float f)) *. 60.) in
  Printf.sprintf "%02d:%02d" h m

let show label (o : Scenarios.Newspaper.outcome) =
  Format.printf "%-44s %d/%d edits granted" label
    o.Scenarios.Newspaper.edits_granted o.Scenarios.Newspaper.edits_attempted;
  (match o.Scenarios.Newspaper.last_granted_at with
  | Some t -> Format.printf ", last grant %s" (hour t)
  | None -> ());
  (match o.Scenarios.Newspaper.first_denied_at with
  | Some t -> Format.printf ", first denial %s" (hour t)
  | None -> ());
  Format.printf "@."

let () =
  Format.printf "editing session opens 22:00; issue deadline 03:00@.@.";
  show "whole-journey scheme (the paper's deadline):"
    (Scenarios.Newspaper.run ());
  show "per-server scheme (budget resets on migration):"
    (Scenarios.Newspaper.run ~scheme:Temporal.Validity.Per_server ());
  show "whole-journey, no migration:"
    (Scenarios.Newspaper.run ~migrate_midway:false ());
  show "starting at 20:00 instead:"
    (Scenarios.Newspaper.run ~session_start:(Q.of_int 20) ());
  Format.printf
    "@.the whole-journey scheme enforces the 3am deadline regardless of@.\
     migrations; the per-server scheme would hand every press server a@.\
     fresh budget -- usually not what the newsroom wants.@."
