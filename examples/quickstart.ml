(* Quickstart: the whole coordinated model in one page.

   A mobile object roams a two-server coalition.  Its permission to
   read the database at s2 carries (i) a spatial constraint — the
   configuration at s1 must be read first — and (ii) a validity
   duration of 10 time units over the whole journey.

   Run with:  dune exec examples/quickstart.exe *)

module Q = Temporal.Q

let () =
  (* 1. An SRAL program, straight from its concrete syntax. *)
  let program =
    Sral.Parser.program
      "read cfg @ s1; if fresh > 0 then { read db @ s2 } else { read cache @ s1 }"
  in
  Format.printf "--- program ---@.%a@.@." Sral.Pretty.pp program;

  (* 2. Ask the Theorem 3.2 checker about it, before running anything. *)
  let constraint_ =
    Srac.Formula.of_string "seq(read cfg @ s1, read db @ s2)"
  in
  let outcome = Srac.Program_sat.check program constraint_ in
  Format.printf "can satisfy %a?  %b  (witness: %s)@.@." Srac.Formula.pp
    constraint_ outcome.Srac.Program_sat.holds
    (match outcome.Srac.Program_sat.witness with
    | Some t -> Sral.Trace.to_string t
    | None -> "-");

  (* 3. Declare the coalition's policy: RBAC plus the binding. *)
  let control =
    Coordinated.System.of_policy_text
      {|
user nomad
role analyst
assign nomad analyst
grant analyst read:*@*
bind read:db@s2 spatial "seq(read cfg @ s1, read db @ s2)" scope performed dur 10 scheme journey
|}
  in

  (* 4. Emulate the mobile computation in the Naplet world. *)
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s1"; "s2" ];
  (* the condition variable must be bound before the branch *)
  let program = Sral.Ast.Seq (Sral.Ast.Assign ("fresh", Sral.Expr.Int 1), program) in
  Naplet.World.spawn world ~id:"naplet-1" ~owner:"nomad" ~roles:[ "analyst" ]
    ~home:"s1" program;
  let metrics = Naplet.World.run world in
  Format.printf "--- simulation ---@.%a@.@." Naplet.Metrics.pp metrics;

  (* 5. Inspect the audit trail — as a log and as a timeline. *)
  Format.printf "--- audit log ---@.%a@.@." Coordinated.Audit_log.pp
    (Coordinated.System.log control);
  Format.printf "--- timeline ---@.%s@."
    (Coordinated.Timeline.render ~width:40 (Coordinated.System.log control))
