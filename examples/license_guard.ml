(* The introduction's coordination example: overusing a licensed
   software package at site s1 closes site s2 forever.  The decision at
   s2 is driven entirely by the execution proofs the mobile object
   accumulated at s1 — access control coordinated *across* servers.

   Run with:  dune exec examples/license_guard.exe *)

let show label (o : Scenarios.License_guard.outcome) =
  Format.printf "%-34s s1 granted %d, s2 granted %d, denied %d, s2 locked: %b@."
    label o.Scenarios.License_guard.granted_s1
    o.Scenarios.License_guard.granted_s2 o.Scenarios.License_guard.denied
    o.Scenarios.License_guard.s2_locked_out

let () =
  Format.printf "trial limit: 5 uses observed at s1@.@.";
  show "3 uses at s1, then s2:" (Scenarios.License_guard.run ~s1_uses:3 ());
  show "5 uses at s1 (the limit), then s2:"
    (Scenarios.License_guard.run ~s1_uses:5 ());
  show "6 uses at s1 (over), then s2:"
    (Scenarios.License_guard.run ~s1_uses:6 ());
  show "7 uses at s1, then s2:" (Scenarios.License_guard.run ());
  Format.printf
    "@.with Example 3.5's everywhere-bound #(0,5,sigma_RSW) added:@.@.";
  show "4 at s1 + 3 at s2, global limit 5:"
    (Scenarios.License_guard.run ~s1_uses:4 ~s2_uses:3 ~global_limit:5 ())
