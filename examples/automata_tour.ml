(* A tour of the trace-model machinery behind Theorems 3.1 and 3.2:
   programs to automata and back, language algebra, and GraphViz
   output.

   Run with:  dune exec examples/automata_tour.exe *)

let () =
  (* 1. a program with a loop and a parallel section *)
  let program =
    Sral.Parser.program
      "read cfg @ s1; while more do { { read a @ s1 || read b @ s2 } }"
  in
  Format.printf "--- program ---@.%a@.@." Sral.Pretty.pp program;

  (* 2. its trace model, minimized *)
  let lang = Automata.Language.of_program program in
  Format.printf "minimal DFA: %d states@.@." (Automata.Language.state_count lang);

  (* 3. membership queries: loops and interleavings are exact *)
  let cfg = Sral.Access.read "cfg" ~at:"s1" in
  let a = Sral.Access.read "a" ~at:"s1" in
  let b = Sral.Access.read "b" ~at:"s2" in
  List.iter
    (fun (label, trace) ->
      Format.printf "%-28s in traces(P)?  %b@." label
        (Automata.Language.contains lang trace))
    [
      ("cfg alone", [ cfg ]);
      ("cfg, one a-b round", [ cfg; a; b ]);
      ("cfg, interleaved b first", [ cfg; b; a ]);
      ("cfg, two rounds", [ cfg; a; b; b; a ]);
      ("missing cfg", [ a; b ]);
      ("a without its b", [ cfg; a ]);
    ];

  (* 4. Theorem 3.1 both ways: language -> regex -> program *)
  let regex = Automata.Language.to_regex lang in
  Format.printf "@.as a regular expression: %a@."
    (Automata.Regex.pp_with (Automata.Symbol.pp_symbol lang.Automata.Language.table))
    regex;
  let rebuilt = Automata.To_program.program ~table:lang.Automata.Language.table regex in
  Format.printf "@.--- reconstructed SRAL program (Theorem 3.1) ---@.%a@.@."
    Sral.Pretty.pp rebuilt;
  let lang2 =
    Automata.Language.of_regex ~table:lang.Automata.Language.table regex
  in
  Format.printf "same trace model? %b@.@." (Automata.Language.equiv lang lang2);

  (* 5. language algebra: which traces read a but never b? *)
  let table = lang.Automata.Language.table in
  let sym_of acc =
    match Automata.Symbol.find table acc with Some s -> s | None -> assert false
  in
  let sigma = Automata.Symbol.alphabet table in
  let any = Automata.Regex.alt_list (List.map Automata.Regex.sym sigma) in
  let contains_a =
    Automata.Language.of_regex ~table
      Automata.Regex.(cat_list [ star any; sym (sym_of a); star any ])
  in
  let contains_b =
    Automata.Language.of_regex ~table
      Automata.Regex.(cat_list [ star any; sym (sym_of b); star any ])
  in
  let a_no_b =
    Automata.Language.inter lang (Automata.Language.diff contains_a contains_b)
  in
  Format.printf "a-without-b traces exist? %b (the || makes a and b travel together)@.@."
    (not (Automata.Language.is_empty a_no_b));

  (* 6. GraphViz, for the paper-style figure *)
  print_string
    (Automata.Dot.dfa ~name:"trace_model" ~table lang.Automata.Language.dfa)
