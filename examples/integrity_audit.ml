(* The Section 6 example, reproduced end to end: an auditor's mobile
   code SHA-1-verifies the modules of a distributed software suite
   (Figure 1's dependency digraph), under dependency-order spatial
   constraints and a verification deadline.

   Run with:  dune exec examples/integrity_audit.exe *)

module Q = Temporal.Q

let print_report label (r : Scenarios.Integrity_audit.report) =
  Format.printf "=== %s ===@." label;
  Format.printf "  granted %d, denied %d, all verified: %b, deadline hit: %b@."
    r.Scenarios.Integrity_audit.granted r.Scenarios.Integrity_audit.denied
    r.Scenarios.Integrity_audit.all_verified
    r.Scenarios.Integrity_audit.deadline_hit;
  Format.printf "  %a@.@." Naplet.Metrics.pp r.Scenarios.Integrity_audit.metrics

let () =
  (* the Figure 1 digraph, as GraphViz for the curious *)
  let g = Scenarios.Integrity_audit.module_graph () in
  Format.printf "--- Figure 1 module-dependency digraph ---@.%s@."
    (Digraph.to_dot ~name:"fig1"
       ~vertex_attr:(fun m ->
         Option.map
           (fun s -> Printf.sprintf "label=\"%s (%s)\"" m s)
           (List.assoc_opt m Scenarios.Integrity_audit.placement))
       g);

  (* 1. the compliant audit: dependencies hashed first *)
  print_report "ordered audit (dependencies first)"
    (Scenarios.Integrity_audit.run ());

  (* 2. a buggy auditor that violates the dependency order *)
  print_report "out-of-order audit (rejected by SRAC constraints)"
    (Scenarios.Integrity_audit.run ~respect_order:false ());

  (* 3. a deadline too tight to finish the tour *)
  print_report "tight deadline (6 time units)"
    (Scenarios.Integrity_audit.run ~deadline:(Q.of_int 6) ());

  (* 4. tampered module contents are caught by the hashes *)
  let r = Scenarios.Integrity_audit.run ~tamper_contents:[ "g" ] () in
  let expected = Scenarios.Integrity_audit.expected_hashes () in
  Format.printf "=== tamper detection ===@.";
  List.iter
    (fun (m, h) ->
      let ok = String.equal (List.assoc m expected) h in
      if not ok then
        Format.printf "  module %s: digest mismatch!@.    expected %s@.    found    %s@."
          m (List.assoc m expected) h)
    r.Scenarios.Integrity_audit.hashes;
  Format.printf "done.@."
