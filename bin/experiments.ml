(* experiments — regenerate every row of EXPERIMENTS.md.

   Each section E1..E10 corresponds to the per-experiment index of
   DESIGN.md.  Absolute timings will differ across machines; the
   *shapes* (linear growth, exponential naive blowup, who wins,
   crossovers) are what the experiments assert.

   Run with:  dune exec bin/experiments.exe *)

module Q = Temporal.Q

let rng_of seed = Random.State.make [| 0xC0FFEE; seed |]

(* median-of-repeats CPU-time measurement, robust enough for shapes *)
let time_ms ?(repeats = 5) f =
  let samples =
    List.init repeats (fun _ ->
        let t0 = Sys.time () in
        let iterations = ref 0 in
        let elapsed = ref 0.0 in
        while !elapsed < 0.02 do
          ignore (f ());
          incr iterations;
          elapsed := Sys.time () -. t0
        done;
        !elapsed /. float_of_int !iterations *. 1000.0)
  in
  match List.sort compare samples with
  | _ :: _ :: m :: _ -> m
  | m :: _ -> m
  | [] -> Float.nan

let header title =
  Printf.printf "\n==============================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================\n%!"

(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1 (Figure 1) — coalition integrity audit, Section 6";
  let ordered = Scenarios.Integrity_audit.run () in
  let tampered = Scenarios.Integrity_audit.run ~respect_order:false () in
  let tight = Scenarios.Integrity_audit.run ~deadline:(Q.of_int 6) () in
  let loose = Scenarios.Integrity_audit.run ~deadline:(Q.of_int 100) () in
  Printf.printf "%-36s %8s %8s %10s %9s\n" "run" "granted" "denied" "verified"
    "deadline";
  let row name (r : Scenarios.Integrity_audit.report) =
    Printf.printf "%-36s %8d %8d %10b %9b\n" name
      r.Scenarios.Integrity_audit.granted r.Scenarios.Integrity_audit.denied
      r.Scenarios.Integrity_audit.all_verified
      r.Scenarios.Integrity_audit.deadline_hit
  in
  row "dependency order (compliant)" ordered;
  row "out of order (rejected)" tampered;
  row "deadline 6 (too tight)" tight;
  row "deadline 100 (met)" loose;
  let tamper = Scenarios.Integrity_audit.run ~tamper_contents:[ "g" ] () in
  let expected = Scenarios.Integrity_audit.expected_hashes () in
  let detected =
    List.filter
      (fun (m, h) -> not (String.equal (List.assoc m expected) h))
      tamper.Scenarios.Integrity_audit.hashes
  in
  Printf.printf "tamper detection: corrupted {g}, flagged {%s}\n"
    (String.concat "," (List.map fst detected));
  (* regenerate Figure 1 itself as GraphViz *)
  let dot =
    Digraph.to_dot ~name:"fig1"
      ~vertex_attr:(fun m ->
        Option.map
          (fun s -> Printf.sprintf "label=\"%s (%s)\"" m s)
          (List.assoc_opt m Scenarios.Integrity_audit.placement))
      (Scenarios.Integrity_audit.module_graph ())
  in
  let oc = open_out "fig1.dot" in
  output_string oc dot;
  close_out oc;
  Printf.printf "Figure 1 digraph written to fig1.dot (%d bytes)\n"
    (String.length dot)

(* ------------------------------------------------------------------ *)

let resources = [ "r1"; "r2"; "r3"; "r4" ]
let servers = [ "s1"; "s2"; "s3" ]

let random_formula ~n program seed =
  let rng = rng_of (seed + 17) in
  let accesses = Array.of_list (Sral.Program.accesses program) in
  let pick () = accesses.(Random.State.int rng (Array.length accesses)) in
  let atom () =
    match Random.State.int rng 3 with
    | 0 -> Srac.Formula.Atom (pick ())
    | 1 -> Srac.Formula.Ordered (pick (), pick ())
    | _ ->
        Srac.Formula.Card
          {
            lo = 0;
            hi = Some (5 + Random.State.int rng 4);
            sel = Srac.Selector.Server (List.nth servers (Random.State.int rng 3));
          }
  in
  let rec conj k =
    if k <= 1 then atom () else Srac.Formula.And (atom (), conj (k - 1))
  in
  conj (max 1 n)

let e2 () =
  header "E2 (Theorem 3.2) — spatial checking scales in m and n";
  Printf.printf "%-10s" "m \\ n";
  List.iter (fun n -> Printf.printf "%12d" n) [ 2; 4; 8 ];
  Printf.printf "   (ms per check, Forall)\n";
  List.iter
    (fun m ->
      Printf.printf "%-10d" m;
      List.iter
        (fun n ->
          let program =
            Sral.Generate.program ~allow_par:false ~allow_io:false ~resources ~servers ~size:m
              (rng_of (m + n))
          in
          let formula = random_formula ~n program (m * n) in
          let ms =
            time_ms (fun () ->
                Srac.Program_sat.check_bool ~modality:Srac.Program_sat.Forall
                  program formula)
          in
          Printf.printf "%12.3f" ms)
        [ 2; 4; 8 ];
      Printf.printf "\n%!")
    [ 20; 40; 80; 160; 320 ];
  Printf.printf
    "\nautomaton sizes (program states x constraint states), same grid:\n";
  Printf.printf "%-10s" "m \\ n";
  List.iter (fun n -> Printf.printf "%16d" n) [ 2; 4; 8 ];
  Printf.printf "\n";
  List.iter
    (fun m ->
      Printf.printf "%-10d" m;
      List.iter
        (fun n ->
          let program =
            Sral.Generate.program ~allow_par:false ~allow_io:false ~resources
              ~servers ~size:m (rng_of (m + n))
          in
          let formula = random_formula ~n program (m * n) in
          let stats = Srac.Program_sat.instrument program formula in
          Printf.printf "%16s"
            (Printf.sprintf "%dx%d" stats.Srac.Program_sat.program_states
               stats.Srac.Program_sat.constraint_states))
        [ 2; 4; 8 ];
      Printf.printf "\n%!")
    [ 20; 80; 320 ]

let e3 () =
  header "E3 (Theorem 3.1) — regular completeness roundtrip";
  let table =
    Automata.Symbol.of_accesses
      (List.concat_map
         (fun r -> List.map (fun s -> Sral.Access.read r ~at:s) servers)
         resources)
  in
  let trials = 500 in
  let rng = rng_of 3 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let re =
      Automata.Regex.generate ~symbols:(Automata.Symbol.alphabet table)
        ~size:10 rng
    in
    let program = Automata.To_program.program ~table re in
    let l_re = Automata.Language.of_regex ~table re in
    let nfa = Automata.Of_program.nfa ~table program in
    let dfa =
      Automata.Dfa.minimize
        (Automata.Dfa.of_nfa ~alphabet:(Automata.Symbol.alphabet table) nfa)
    in
    if Automata.Dfa.equiv l_re.Automata.Language.dfa dfa then incr ok
  done;
  Printf.printf "random regexes:           %d\n" trials;
  Printf.printf "traces(program) = L(re):  %d  (%.1f%%)\n" !ok
    (100.0 *. float_of_int !ok /. float_of_int trials)

let e4 () =
  header "E4 (Theorem 4.1) — duration-calculus checking";
  Printf.printf "%-14s %14s %14s\n" "breakpoints" "atomic (ms)" "chop (ms)";
  List.iter
    (fun k ->
      let v =
        Temporal.Step_fn.of_intervals
          (List.init k (fun i -> Temporal.Interval.of_ints (4 * i) ((4 * i) + 2)))
      in
      let interp name = if name = "v" then v else invalid_arg name in
      let interval = Temporal.Interval.of_ints 0 4096 in
      let atomic =
        Temporal.Duration_calculus.Dur_cmp
          (Temporal.State_expr.Var "v", Temporal.Duration_calculus.Le, Q.of_int k)
      in
      let chop = Temporal.Duration_calculus.Chop (atomic, atomic) in
      Printf.printf "%-14d %14.3f %14.3f\n%!" (2 * k)
        (time_ms (fun () -> Temporal.Duration_calculus.sat interp interval atomic))
        (time_ms (fun () -> Temporal.Duration_calculus.sat interp interval chop)))
    [ 8; 32; 128; 512 ]

let e5 () =
  header "E5 (Eq. 4.1) — the two base-time schemes disagree";
  Printf.printf
    "journey over 4 servers (arrive every 10), dur=7, permission active \
     throughout\n";
  Printf.printf "%-8s %16s %16s\n" "t" "whole-journey" "per-server";
  let arrivals = List.init 4 (fun i -> Q.of_int (10 * i)) in
  let active = Temporal.Step_fn.of_intervals [ Temporal.Interval.of_ints 0 40 ] in
  List.iter
    (fun t ->
      let check scheme =
        Temporal.Validity.is_valid_at ~scheme ~arrivals ~dur:(Some (Q.of_int 7))
          active (Q.of_int t)
      in
      Printf.printf "%-8d %16b %16b\n" t
        (check Temporal.Validity.Whole_journey)
        (check Temporal.Validity.Per_server))
    [ 0; 5; 8; 12; 15; 18; 25; 35 ]

let e6 () =
  header "E6 (ablation) — decision cost: plain RBAC vs coordinated";
  let policy () =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
    policy
  in
  let access = Sral.Access.read "db" ~at:"s1" in
  let program = Sral.Parser.program "read cfg @ s1; read db @ s1" in
  let spatial = Srac.Formula.Ordered (Sral.Access.read "cfg" ~at:"s1", access) in
  let perm = Rbac.Perm.make ~operation:"read" ~target:"db@s1" in
  let plain =
    let p = policy () in
    let session = Rbac.Session.create p ~user:"u" in
    Rbac.Session.activate session "r";
    fun () -> Rbac.Engine.decide_access session access
  in
  let coordinated bindings name =
    let control = Coordinated.System.create ~bindings (policy ()) in
    let session = Coordinated.System.new_session control ~user:"u" in
    Rbac.Session.activate session "r";
    Coordinated.System.arrive control ~object_id:name ~server:"s1" ~time:Q.zero;
    let t = ref 0 in
    fun () ->
      incr t;
      Coordinated.System.check control ~session ~object_id:name ~program
        ~time:(Q.of_int !t) access
  in
  let base = time_ms ~repeats:7 plain in
  Printf.printf "%-28s %12s %10s\n" "configuration" "ms/decision" "x plain";
  let row name f =
    let ms = time_ms ~repeats:7 f in
    Printf.printf "%-28s %12.5f %10.1f\n%!" name ms (ms /. base)
  in
  Printf.printf "%-28s %12.5f %10.1f\n" "plain RBAC" base 1.0;
  row "coordinated, no binding" (coordinated [] "n");
  row "coordinated + spatial"
    (coordinated [ Coordinated.Perm_binding.make ~spatial perm ] "s");
  row "coordinated + temporal"
    (coordinated
       [ Coordinated.Perm_binding.make ~dur:(Q.of_int 1_000_000_000) perm ]
       "t");
  row "coordinated + both"
    (coordinated
       [
         Coordinated.Perm_binding.make ~spatial ~dur:(Q.of_int 1_000_000_000)
           perm;
       ]
       "b")

let e7 () =
  header "E7 (baseline) — naive enumeration vs the symbolic checker";
  let program k =
    Sral.Ast.par
      (List.init k (fun i ->
           Sral.Ast.Seq
             ( Sral.Ast.Access (Sral.Access.read (Printf.sprintf "a%d" i) ~at:"s1"),
               Sral.Ast.Access (Sral.Access.read (Printf.sprintf "b%d" i) ~at:"s2") )))
  in
  let formula = Srac.Formula.at_most 999 (Srac.Selector.Server "s1") in
  Printf.printf "%-12s %10s %14s %14s\n" "par branches" "traces" "naive (ms)"
    "symbolic (ms)";
  List.iter
    (fun k ->
      let p = program k in
      let count = Srac.Naive.trace_count p in
      let naive_ms =
        time_ms ~repeats:3 (fun () ->
            (Srac.Naive.check ~modality:Srac.Program_sat.Forall p formula)
              .Srac.Program_sat.holds)
      in
      let sym_ms =
        time_ms ~repeats:3 (fun () ->
            Srac.Program_sat.check_bool ~modality:Srac.Program_sat.Forall p
              formula)
      in
      Printf.printf "%-12d %10d %14.3f %14.3f\n%!" k count naive_ms sym_ms)
    [ 2; 3; 4; 5 ]

let e8 () =
  header "E8 (Section 5) — emulation throughput";
  Printf.printf "%-22s %12s %12s %14s\n" "agents x servers" "granted"
    "sim time" "wall (ms)";
  List.iter
    (fun (agents, server_count) ->
      let run () =
        let policy = Rbac.Policy.create () in
        Rbac.Policy.add_user policy "u";
        Rbac.Policy.add_role policy "r";
        Rbac.Policy.assign_user policy "u" "r";
        Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
        let control = Coordinated.System.create policy in
        let world = Naplet.World.create control in
        let names = List.init server_count (fun i -> Printf.sprintf "s%d" i) in
        List.iter
          (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
          names;
        let rng = rng_of (agents * 31 + server_count) in
        for i = 1 to agents do
          let program =
            Sral.Generate.program ~allow_io:false ~resources ~servers:names
              ~size:10 rng
          in
          Naplet.World.spawn world
            ~id:(Printf.sprintf "a%d" i)
            ~owner:"u" ~roles:[ "r" ] ~home:(List.hd names) program
        done;
        Naplet.World.run world
      in
      let metrics = run () in
      let ms = time_ms ~repeats:3 run in
      Printf.printf "%-22s %12d %12s %14.2f\n%!"
        (Printf.sprintf "%d x %d" agents server_count)
        metrics.Naplet.Metrics.granted
        (Q.to_string metrics.Naplet.Metrics.end_time)
        ms)
    [ (1, 4); (4, 4); (16, 8); (64, 16) ];
  Printf.printf
    "\nserver capacity ablation (16 agents on 4 servers, same workload):\n";
  Printf.printf "%-12s %12s %14s\n" "capacity" "granted" "sim time";
  List.iter
    (fun capacity ->
      let policy = Rbac.Policy.create () in
      Rbac.Policy.add_user policy "u";
      Rbac.Policy.add_role policy "r";
      Rbac.Policy.assign_user policy "u" "r";
      Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
      let control = Coordinated.System.create policy in
      let world = Naplet.World.create control in
      let names = List.init 4 (fun i -> Printf.sprintf "s%d" i) in
      List.iter
        (fun s ->
          Naplet.World.add_server world (Naplet.Server.create ~capacity s))
        names;
      let rng = rng_of 404 in
      for i = 1 to 16 do
        let program =
          Sral.Generate.program ~allow_io:false ~resources ~servers:names
            ~size:10 rng
        in
        Naplet.World.spawn world
          ~id:(Printf.sprintf "a%d" i)
          ~owner:"u" ~roles:[ "r" ] ~home:(List.hd names) program
      done;
      let metrics = Naplet.World.run world in
      Printf.printf "%-12d %12d %14s\n%!" capacity
        metrics.Naplet.Metrics.granted
        (Q.to_string metrics.Naplet.Metrics.end_time))
    [ 1; 2; 4; 16 ]

let e9 () =
  header "E9 — interleaving (||) trace-model growth";
  Printf.printf "%-14s %16s %16s\n" "par branches" "minimal states"
    "build (ms)";
  List.iter
    (fun k ->
      let branch i =
        Sral.Ast.Seq
          ( Sral.Ast.Access (Sral.Access.read (Printf.sprintf "x%d" i) ~at:"s1"),
            Sral.Ast.Access (Sral.Access.write (Printf.sprintf "y%d" i) ~at:"s2") )
      in
      let program = Sral.Ast.par (List.init k branch) in
      let lang = ref None in
      let ms =
        time_ms ~repeats:3 (fun () ->
            lang := Some (Automata.Language.of_program program))
      in
      let states =
        match !lang with
        | Some l -> Automata.Language.state_count l
        | None -> 0
      in
      Printf.printf "%-14d %16d %16.3f\n%!" k states ms)
    [ 1; 2; 3; 4; 5; 6 ]

let e10 () =
  header "E10 — license guard across sites (intro example)";
  Printf.printf "%-14s %12s %12s %12s\n" "uses at s1" "s1 granted"
    "s2 granted" "s2 locked";
  List.iter
    (fun s1_uses ->
      let o = Scenarios.License_guard.run ~s1_uses () in
      Printf.printf "%-14d %12d %12d %12b\n" s1_uses
        o.Scenarios.License_guard.granted_s1
        o.Scenarios.License_guard.granted_s2
        o.Scenarios.License_guard.s2_locked_out)
    [ 3; 4; 5; 6; 7; 10 ];
  Printf.printf "\nnewspaper deadline (22:00 session, 03:00 deadline):\n";
  Printf.printf "%-28s %10s %10s\n" "scheme" "granted" "denied";
  let j = Scenarios.Newspaper.run () in
  let p = Scenarios.Newspaper.run ~scheme:Temporal.Validity.Per_server () in
  Printf.printf "%-28s %10d %10d\n" "whole-journey"
    j.Scenarios.Newspaper.edits_granted j.Scenarios.Newspaper.edits_denied;
  Printf.printf "%-28s %10d %10d\n" "per-server"
    p.Scenarios.Newspaper.edits_granted p.Scenarios.Newspaper.edits_denied

let e11 () =
  header
    "E11 (Section 4's argument) — TRBAC-style periodic windows vs validity \
     durations";
  Printf.printf
    "permission: 'editing', needed 4h of work; interval model enables it\n\
     daily 22:00-03:00; duration model grants a 4h budget from arrival.\n\n";
  Printf.printf "%-14s %22s %22s\n" "arrival (h)" "interval model (h)"
    "duration model (h)";
  let window = Temporal.Periodic.daily ~start_hour:(Q.of_int 22) ~length_hours:(Q.of_int 5) in
  List.iter
    (fun arrival_h ->
      let arrival = Q.of_int arrival_h in
      (* hourly work attempts for 8 hours after arrival *)
      let attempts = List.init 8 (fun i -> Q.add arrival (Q.of_int i)) in
      let interval_grants =
        List.length (List.filter (Temporal.Periodic.contains window) attempts)
      in
      let active = Temporal.Step_fn.of_changes ~init:false [ (arrival, true) ] in
      let duration_grants =
        List.length
          (List.filter
             (fun t ->
               Temporal.Validity.is_valid_at
                 ~scheme:Temporal.Validity.Whole_journey ~arrivals:[ arrival ]
                 ~dur:(Some (Q.of_int 4)) active t)
             attempts)
      in
      Printf.printf "%-14d %22d %22d\n" arrival_h interval_grants
        duration_grants)
    [ 20; 22; 24; 25; 26; 28 ];
  Printf.printf
    "\nthe interval model's effective budget depends on when the mobile\n\
     object happens to arrive (0-5h); the duration model always grants\n\
     exactly the 4h the permission promises — the paper's argument for\n\
     durations over interval timing, quantified.\n";
  (* GTRBAC trigger route: the same window, administered by events *)
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "e";
  Rbac.Policy.add_role policy "editor";
  Rbac.Policy.assign_user policy "e" "editor";
  Rbac.Policy.grant policy "editor" (Rbac.Perm.make ~operation:"write" ~target:"*@*");
  let g = Rbac.Gtrbac.create policy in
  (* nightly enable at 22 with a trigger closing it 5h later *)
  Rbac.Gtrbac.add_trigger g
    { Rbac.Gtrbac.on = Rbac.Gtrbac.Enable "editor"; after = Q.of_int 5;
      fire = Rbac.Gtrbac.Disable "editor" };
  Rbac.Gtrbac.post g ~at:(Q.of_int 22) (Rbac.Gtrbac.Enable "editor");
  Rbac.Gtrbac.process g;
  let session = Rbac.Session.create policy ~user:"e" in
  Rbac.Session.activate session "editor";
  Printf.printf
    "\nGTRBAC trigger route (enable at 22, disable trigger after 5h):\n";
  List.iter
    (fun h ->
      Printf.printf "  %02d:00 -> %s\n" h
        (match
           Rbac.Gtrbac.decide g session ~at:(Q.of_int h) ~operation:"write"
             ~target:"issue@press"
         with
        | Rbac.Engine.Granted -> "granted"
        | Rbac.Engine.Denied _ -> "denied"))
    [ 21; 23; 26; 28 ]

let e12 () =
  header "E12 — teamwork proofs and ApplAgentProg cloning (Section 5.2)";
  let with_team = Scenarios.Teamwork.run () in
  let without = Scenarios.Teamwork.run ~share_proofs:false () in
  Printf.printf "%-26s %14s %14s %10s\n" "survey team" "scout reads"
    "vault commits" "denied";
  Printf.printf "%-26s %14d %14d %10d\n" "team proofs (companions)"
    with_team.Scenarios.Teamwork.scout_reads
    with_team.Scenarios.Teamwork.courier_commits
    with_team.Scenarios.Teamwork.courier_denied;
  Printf.printf "%-26s %14d %14d %10d\n" "own proofs only"
    without.Scenarios.Teamwork.scout_reads
    without.Scenarios.Teamwork.courier_commits
    without.Scenarios.Teamwork.courier_denied;
  Printf.printf "\naudit under deadline 15, single agent vs cloned naplets:\n";
  Printf.printf "%-26s %12s %12s %12s\n" "configuration" "granted" "verified"
    "reports";
  let single = Scenarios.Integrity_audit.run ~deadline:(Q.of_int 15) () in
  Printf.printf "%-26s %12d %12b %12s\n" "single agent"
    single.Scenarios.Integrity_audit.granted
    single.Scenarios.Integrity_audit.all_verified "-";
  List.iter
    (fun clones ->
      let p =
        Scenarios.Integrity_audit.run_parallel ~clones
          ~deadline:(Q.of_int 15) ()
      in
      Printf.printf "%-26s %12d %12b %12d\n"
        (Printf.sprintf "%d clones" clones)
        p.Scenarios.Integrity_audit.base.Scenarios.Integrity_audit.granted
        p.Scenarios.Integrity_audit.base.Scenarios.Integrity_audit.all_verified
        p.Scenarios.Integrity_audit.reports_collected)
    [ 2; 3; 4 ];
  (* aggregation (the paper's future work) *)
  let perm = Rbac.Perm.make ~operation:"read" ~target:"db@s1" in
  let bindings =
    List.init 8 (fun i ->
        Coordinated.Perm_binding.make ~dur:(Q.of_int (5 + i)) perm)
  in
  let groups, merged = Coordinated.Aggregate.stats bindings in
  Printf.printf
    "\nbinding aggregation: 8 duration bindings on one permission -> %d \
     group(s), %d binding(s) after aggregation\n"
    groups merged

let e19 () =
  header "E19 — big-coalition scaling on the SoA engine";
  let max_objects =
    match Sys.getenv_opt "E19_MAX_OBJECTS" with
    | Some s -> ( try int_of_string s with _ -> 10_000)
    | None -> 10_000 (* the full 10^6 sweep lives in bench/main.exe E19 *)
  in
  let diverged = Scenarios.Scale_family.divergences ~runs:10 0 in
  Printf.printf "conformance (SoA vs legacy world): %d/10 byte-identical\n"
    (10 - List.length diverged);
  Printf.printf "%-10s %8s %12s %12s %10s %12s\n" "objects" "servers"
    "build (s)" "run (s)" "events" "events/s";
  List.iter
    (fun objects ->
      if objects <= max_objects then begin
        let servers = max 4 (objects / 2_500) in
        let config =
          {
            Naplet.World.default_config with
            Naplet.World.max_events = (objects * 64) + 4096;
          }
        in
        let t0 = Sys.time () in
        let world =
          Scenarios.Scale_family.Soa.build_big ~config ~objects ~servers ()
        in
        let t1 = Sys.time () in
        ignore (Naplet.World.run world);
        let t2 = Sys.time () in
        let events = Naplet.World.processed_events world in
        Printf.printf "%-10d %8d %12.3f %12.3f %10d %12.0f\n%!" objects servers
          (t1 -. t0) (t2 -. t1) events
          (float_of_int events /. (t2 -. t1))
      end)
    [ 1_000; 10_000; 100_000; 1_000_000 ]

let all =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
    ("E6", e6); ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10);
    ("E11", e11); ("E12", e12); ("E19", e19);
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map fst all
  in
  List.iter
    (fun id ->
      match List.assoc_opt id all with
      | Some f -> f ()
      | None ->
          Printf.printf "unknown experiment %S (known: %s)\n" id
            (String.concat ", " (List.map fst all)))
    selected
