(* stacc — the command-line face of the coordinated spatio-temporal
   access-control library.

     stacc parse   <file|->            parse & pretty-print an SRAL program
     stacc traces  <file|-> [-b N]     enumerate (bounded) traces
     stacc check   <file|-> -c CONSTR  decide P |= C (Theorem 3.2)
     stacc audit                       run the Figure 1 integrity audit
     stacc trace [-o FILE] [--stats]   audit + export the JSONL trace
     stacc chaos [--plan P] [--seed N] audit under a deterministic fault plan
     stacc lint    <file|-> [--strict] syntactic & per-binding policy checks
     stacc analyze <file|-> [--strict] semantic whole-policy analysis
     stacc simulate -p POLICY -a PROG  run one agent under a policy file
     stacc serve --socket S | --port P always-on decision service
     stacc load [--rate R]...          drive the service, report latency

   Exit codes, uniformly across subcommands: 0 success; 1 the requested
   analysis or run failed (parse errors in input content, a constraint
   that does not hold, violated invariants, divergence, findings under
   --strict); 2 usage errors (unknown subcommands or flags, malformed
   option values, unreadable input files). *)

open Cmdliner
module World = Analysis.World

let read_input = function
  | "-" ->
      let buf = Buffer.create 1024 in
      (try
         while true do
           Buffer.add_channel buf stdin 1
         done
       with End_of_file -> ());
      Buffer.contents buf
  | path ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

(* Usage errors exit 2 (cmdliner's own convention for flag errors);
   analysis failures exit 1.  An unreadable input file is a usage
   error — the argument was wrong — while unparsable content is an
   analysis failure. *)
let exit_usage = 2

let program_of_input input =
  match Sral.Parser.program (read_input input) with
  | p -> Ok p
  | exception Sral.Parser.Parse_error msg -> Error (1, msg)
  | exception Sys_error msg -> Error (exit_usage, msg)

let input_arg =
  let doc = "SRAL program file ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let q_conv =
  let parse s =
    match Temporal.Q.of_string s with
    | q -> Ok q
    | exception _ ->
        Error
          (`Msg (Printf.sprintf "invalid rational %S (expected e.g. 15 or 15/2)" s))
  in
  Arg.conv (parse, Temporal.Q.pp)

let mode_conv =
  Arg.enum
    [
      ("indexed", Coordinated.System.Indexed);
      ("naive", Coordinated.System.Naive);
      ("lazy", Coordinated.System.Lazy);
    ]

let mode_arg =
  let doc = "Decision mode: $(b,indexed), $(b,naive) or $(b,lazy)." in
  Arg.(value & opt mode_conv Coordinated.System.Indexed & info [ "mode" ] ~docv:"MODE" ~doc)

let exit_status_man lines = `S Manpage.s_exit_status :: List.map (fun p -> `P p) lines

(* --- parse --- *)

let parse_cmd =
  let run input =
    match program_of_input input with
    | Error (rc, msg) ->
        Format.eprintf "error: %s@." msg;
        rc
    | Ok p ->
        Format.printf "%a@." Sral.Pretty.pp p;
        Format.printf "# size: %d nodes, %d access occurrences@."
          (Sral.Program.size p) (Sral.Program.access_count p);
        Format.printf "# servers: %s@."
          (String.concat ", " (Sral.Program.servers p));
        Format.printf "# resources: %s@."
          (String.concat ", " (Sral.Program.resources p));
        0
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and pretty-print an SRAL program.")
    Term.(const run $ input_arg)

(* --- traces --- *)

let traces_cmd =
  let bound_arg =
    let doc = "Loop unrolling bound." in
    Arg.(value & opt int 2 & info [ "b"; "bound" ] ~docv:"N" ~doc)
  in
  let limit_arg =
    let doc = "Print at most this many traces." in
    Arg.(value & opt int 50 & info [ "l"; "limit" ] ~docv:"N" ~doc)
  in
  let run input bound limit =
    match program_of_input input with
    | Error (rc, msg) ->
        Format.eprintf "error: %s@." msg;
        rc
    | Ok p ->
        let traces =
          Sral.Trace_ops.to_list (Sral.Trace_ops.traces_bounded ~loop_bound:bound p)
        in
        Format.printf "# %d trace(s) with loops unrolled %d time(s)@."
          (List.length traces) bound;
        List.iteri
          (fun i t -> if i < limit then Format.printf "%a@." Sral.Trace.pp t)
          traces;
        if List.length traces > limit then
          Format.printf "... (%d more)@." (List.length traces - limit);
        0
  in
  Cmd.v
    (Cmd.info "traces" ~doc:"Enumerate the (bounded) trace model.")
    Term.(const run $ input_arg $ bound_arg $ limit_arg)

(* --- check --- *)

let check_cmd =
  let constraint_arg =
    let doc = "SRAC constraint, e.g. 'seq(read a @ s1, write b @ s2)'." in
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "constraint" ] ~docv:"CONSTRAINT" ~doc)
  in
  let forall_arg =
    let doc = "Require every trace to satisfy the constraint (default: some)." in
    Arg.(value & flag & info [ "forall" ] ~doc)
  in
  let run input constraint_src forall =
    match program_of_input input with
    | Error (rc, msg) ->
        Format.eprintf "error: %s@." msg;
        rc
    | Ok p -> (
        match Srac.Formula.of_string constraint_src with
        | exception Invalid_argument msg ->
            Format.eprintf "constraint error: %s@." msg;
            1
        | c ->
            let modality =
              if forall then Srac.Program_sat.Forall else Srac.Program_sat.Exists
            in
            let outcome = Srac.Program_sat.check ~modality p c in
            Format.printf "%s: %b@."
              (if forall then "every trace satisfies" else "some trace satisfies")
              outcome.Srac.Program_sat.holds;
            (match outcome.Srac.Program_sat.witness with
            | Some t ->
                Format.printf "%s: %a@."
                  (if outcome.Srac.Program_sat.holds then "witness"
                   else "counterexample")
                  Sral.Trace.pp t
            | None -> ());
            if outcome.Srac.Program_sat.holds then 0 else 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Decide whether the program satisfies an SRAC constraint."
       ~man:
         (exit_status_man
            [
              "0 when the constraint holds; 1 when it does not, or the \
               program or constraint fails to parse; 2 on usage errors.";
            ]))
    Term.(const run $ input_arg $ constraint_arg $ forall_arg)

(* --- audit --- *)

let audit_cmd =
  let deadline_arg =
    let doc = "Verification deadline in time units (rational, e.g. 15 or 15/2)." in
    Arg.(value & opt (some q_conv) None & info [ "deadline" ] ~docv:"D" ~doc)
  in
  let tampered_arg =
    let doc = "Hash the modules out of dependency order (must be denied)." in
    Arg.(value & flag & info [ "out-of-order" ] ~doc)
  in
  let run deadline out_of_order =
    let report =
      Scenarios.Integrity_audit.run ?deadline ~respect_order:(not out_of_order)
        ()
    in
    Format.printf "granted: %d, denied: %d@."
      report.Scenarios.Integrity_audit.granted
      report.Scenarios.Integrity_audit.denied;
    Format.printf "all modules verified: %b@."
      report.Scenarios.Integrity_audit.all_verified;
    Format.printf "deadline expired during audit: %b@."
      report.Scenarios.Integrity_audit.deadline_hit;
    List.iter
      (fun (m, h) -> Format.printf "  %s  %s@." m h)
      report.Scenarios.Integrity_audit.hashes;
    if report.Scenarios.Integrity_audit.all_verified then 0 else 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Run the Section 6 / Figure 1 integrity audit scenario."
       ~man:
         (exit_status_man
            [
              "0 when every module verifies; 1 when any module is left \
               unverified; 2 on usage errors.";
            ]))
    Term.(const run $ deadline_arg $ tampered_arg)

(* --- trace --- *)

let trace_cmd =
  let deadline_arg =
    let doc = "Verification deadline in time units (rational, e.g. 15 or 15/2)." in
    Arg.(value & opt (some q_conv) None & info [ "deadline" ] ~docv:"D" ~doc)
  in
  let tampered_arg =
    let doc = "Hash the modules out of dependency order (must be denied)." in
    Arg.(value & flag & info [ "out-of-order" ] ~doc)
  in
  let out_arg =
    let doc = "Write the JSONL trace to this file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    let doc = "Replay the trace through Obs.Stats and print per-stage counters to stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let run deadline out_of_order out stats =
    let report =
      Scenarios.Integrity_audit.run ?deadline ~respect_order:(not out_of_order)
        ()
    in
    let trace = report.Scenarios.Integrity_audit.trace in
    (match out with
    | "-" ->
        List.iter
          (fun ev ->
            print_string (Obs.Export.to_line ev);
            print_newline ())
          trace
    | path ->
        let oc = open_out path in
        Obs.Export.to_channel oc trace;
        close_out oc);
    Format.eprintf "%d event(s) traced@." (List.length trace);
    if stats then begin
      let s = Obs.Stats.create () in
      List.iter (Obs.Sink.handle (Obs.Stats.sink s)) trace;
      Format.eprintf "%a@." Obs.Stats.pp s
    end;
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the Figure 1 integrity audit and export its end-to-end \
          observability trace as JSONL (lifecycle events, per-stage decision \
          spans, cache probes, verdicts).")
    Term.(const run $ deadline_arg $ tampered_arg $ out_arg $ stats_arg)

(* --- chaos --- *)

let chaos_cmd =
  let plan_arg =
    let doc =
      "Fault plan intensity: one of none, light, moderate or heavy."
    in
    let plan_conv =
      let parse s =
        if List.mem s Fault.Plan.intensity_names then Ok s
        else
          Error
            (`Msg
               (Printf.sprintf "unknown plan %S (%s)" s
                  (String.concat "|" Fault.Plan.intensity_names)))
      in
      Arg.conv (parse, Format.pp_print_string)
    in
    Arg.(value & opt plan_conv "moderate" & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let seed_arg =
    let doc = "Fault-plan seed (same plan + seed replays bit-identically)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let couriers_arg =
    let doc = "Number of courier agents with reroutable itineraries." in
    Arg.(value & opt int 4 & info [ "couriers" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Write the JSONL trace to this file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    let doc = "Print the fault plan and world metrics to stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let run plan_name seed mode couriers out stats =
    let report = Scenarios.Chaos.run ~mode ~plan_name ~seed ~couriers () in
    (match out with
    | "-" -> print_string (Scenarios.Chaos.export report)
    | path ->
        let oc = open_out path in
        output_string oc (Scenarios.Chaos.export report);
        close_out oc);
    Format.eprintf "%d event(s) traced@."
      (List.length report.Scenarios.Chaos.trace);
    if stats then begin
      Format.eprintf "%a@." Fault.Plan.pp report.Scenarios.Chaos.plan;
      Format.eprintf "%a@." Naplet.Metrics.pp
        report.Scenarios.Chaos.metrics;
      List.iter
        (fun (id, route) ->
          Format.eprintf "%s: %s@." id (String.concat " -> " route))
        report.Scenarios.Chaos.routes
    end;
    match report.Scenarios.Chaos.violations with
    | [] -> 0
    | vs ->
        List.iter
          (fun v ->
            Format.eprintf "violation: %a@." Fault.Invariant.pp_violation v)
          vs;
        1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the Figure 1 coalition under a deterministic fault plan \
          (server crashes, channel faults, signal loss) and export the \
          trace; exits non-zero if a fail-closed or retry invariant is \
          violated."
       ~man:
         (exit_status_man
            [
              "0 when every fail-closed and retry invariant holds; 1 on \
               any violation; 2 on usage errors.";
            ]))
    Term.(
      const run $ plan_arg $ seed_arg $ mode_arg $ couriers_arg $ out_arg
      $ stats_arg)

(* --- workflow --- *)

let workflow_cmd =
  let module W = Scenarios.Workflow_family in
  let module Sat = Scenarios.Workflow_sat in
  let count_arg =
    let doc = "Number of generated workflows per selected family." in
    Arg.(value & opt int 50 & info [ "count" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Generator seed (same seed replays bit-identically)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let family_arg =
    let doc =
      "Workflow family: satisfiable, unsatisfiable, adversarial or all."
    in
    Arg.(value & opt string "all" & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let out_arg =
    let doc = "Write the JSONL report to this file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    let doc = "Print sat/unsat/agreement counts to stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let run count seed family out stats =
    let families =
      match family with
      | "all" -> Ok [ W.Satisfiable; W.Unsatisfiable; W.Adversarial ]
      | f -> (
          match W.family_of_name f with
          | Some fam -> Ok [ fam ]
          | None ->
              Error
                (Printf.sprintf
                   "unknown family %S (satisfiable|unsatisfiable|adversarial|all)"
                   f))
    in
    match families with
    | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit_usage
    | Ok families ->
        let buf = Buffer.create 4096 in
        let sat = ref 0 and unsat = ref 0 and divergent = ref 0 in
        let failed_replay = ref 0 and index = ref 0 in
        List.iter
          (fun fam ->
            let salt =
              match fam with
              | W.Satisfiable -> 9001
              | W.Unsatisfiable -> 9002
              | W.Adversarial -> 9003
            in
            Array.iter
              (fun wf ->
                Buffer.add_string buf
                  (Sat.report_line ~index:!index ~family:fam wf);
                Buffer.add_char buf '\n';
                incr index;
                (match Sat.against_brute_force wf with
                | Sat.Agree_sat w ->
                    incr sat;
                    if not (W.run wf w).W.completed then incr failed_replay
                | Sat.Agree_unsat _ -> incr unsat
                | Sat.Divergent d ->
                    incr divergent;
                    Format.eprintf "divergence at workflow %d: %s@."
                      (!index - 1) d))
              (W.workflows fam ~salt ~count seed))
          families;
        (match out with
        | "-" -> print_string (Buffer.contents buf)
        | path ->
            let oc = open_out path in
            output_string oc (Buffer.contents buf);
            close_out oc);
        if stats then
          Format.eprintf
            "%d workflow(s): %d sat, %d unsat, %d divergent, %d witness \
             replay failure(s)@."
            !index !sat !unsat !divergent !failed_replay;
        if !divergent > 0 || !failed_replay > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "workflow"
       ~doc:
         "Generate seeded temporal-workflow scenarios (task DAGs with \
          per-task permissions, validity windows and separation/binding \
          duties over mobile objects), decide each with the satisfiability \
          checker, differentially validate against the brute-force \
          assignment enumerator and emit one deterministic JSONL line per \
          workflow; exits non-zero on any divergence or witness replay \
          failure."
       ~man:
         (exit_status_man
            [
              "0 when checker and brute force agree everywhere; 1 on any \
               divergence or witness replay failure; 2 on usage errors \
               (including an unknown $(b,--family)).";
            ]))
    Term.(const run $ count_arg $ seed_arg $ family_arg $ out_arg $ stats_arg)

(* --- bench-parallel --- *)

let bench_parallel_cmd =
  let coalitions_arg =
    let doc = "Number of generated coalitions in the workload." in
    Arg.(value & opt int 64 & info [ "coalitions" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Shard count to measure (repeatable; default 1 2 4 8)." in
    Arg.(value & opt_all int [] & info [ "shards" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Workload seed (same seed, same coalitions)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let events_arg =
    let doc = "Events per coalition (before the initial arrivals)." in
    Arg.(value & opt int 40 & info [ "events" ] ~docv:"N" ~doc)
  in
  let faults_arg =
    let doc = "Attach random fault plans to the coalitions." in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Run the differential conformance harness (coalition- and \
       object-sharded vs sequential) at each shard count; exit 1 on any \
       divergence."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let big_arg =
    let doc =
      "Instead of many small coalitions, benchmark object-level sharding \
       on ONE big coalition of $(docv) mobile objects in team-closed \
       blocks (Workload.big_coalition); the shard sweep then measures \
       object_sharded against the sequential interpreter."
    in
    Arg.(value & opt int 0 & info [ "big" ] ~docv:"OBJECTS" ~doc)
  in
  let run coalitions big shards seed events faults verify mode =
    match mode with
    | mode when big > 0 ->
        let shards = if shards = [] then [ 1; 2; 4; 8 ] else shards in
        let rng = Random.State.make [| 1717; seed |] in
        let sc = Parallel.Workload.big_coalition ~objects:big rng in
        let checks = Parallel.Scenario.checks sc in
        Printf.printf "backend: %s, recommended shards: %d\n"
          (if Parallel.Backend.domains then "ocaml5-domains" else "single-4.14")
          (Parallel.Backend.recommended ());
        Printf.printf
          "workload: 1 big coalition, %d objects in team-closed blocks, %d \
           checks, seed %d\n%!"
          big checks seed;
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let expected, seq_s = time (fun () -> Parallel.Scenario.run ~mode sc) in
        let row name shards s =
          Printf.printf "%-12s %7s %9.2f ms %12.0f req/s %7.2fx\n%!" name
            shards (s *. 1e3)
            (float_of_int checks /. s)
            (seq_s /. s)
        in
        row "sequential" "-" seq_s;
        List.fold_left
          (fun rc n ->
            let actual, s =
              time (fun () -> Parallel.Engine.object_sharded ~mode ~shards:n sc)
            in
            row "obj-sharded" (string_of_int n) s;
            if not verify then rc
            else
              match Parallel.Engine.diff ~expected ~actual with
              | None ->
                  Printf.printf
                    "  conformance @ %d shard(s): observationally identical\n%!"
                    n;
                  rc
              | Some d ->
                  Printf.printf "  divergence @ %d shard(s): %s\n%!" n d;
                  1)
          0 shards
    | mode ->
        let shards = if shards = [] then [ 1; 2; 4; 8 ] else shards in
        let scenarios =
          Parallel.Workload.coalitions ~events ~faults ~salt:1717
            ~count:coalitions seed
        in
        let checks =
          Array.fold_left
            (fun acc sc -> acc + Parallel.Scenario.checks sc)
            0 scenarios
        in
        Printf.printf "backend: %s, recommended shards: %d\n"
          (if Parallel.Backend.domains then "ocaml5-domains" else "single-4.14")
          (Parallel.Backend.recommended ());
        Printf.printf "workload: %d coalitions, %d checks, seed %d\n%!"
          coalitions checks seed;
        ignore
          (Parallel.Engine.sequential ~mode
             (Array.sub scenarios 0 (min 8 coalitions)));
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let _, seq_s = time (fun () -> Parallel.Engine.sequential ~mode scenarios) in
        let row name shards s =
          Printf.printf "%-12s %7s %9.2f ms %12.0f req/s %7.2fx\n%!" name
            shards (s *. 1e3)
            (float_of_int checks /. s)
            (seq_s /. s)
        in
        row "sequential" "-" seq_s;
        List.iter
          (fun n ->
            let _, s =
              time (fun () -> Parallel.Engine.sharded ~mode ~shards:n scenarios)
            in
            row "sharded" (string_of_int n) s)
          shards;
        if not verify then 0
        else
          List.fold_left
            (fun rc n ->
              let report = Parallel.Engine.verify ~mode ~shards:n scenarios in
              Format.printf "%a@." Parallel.Engine.pp_report report;
              if report.Parallel.Engine.divergences = [] then rc else 1)
            0 shards
  in
  Cmd.v
    (Cmd.info "bench-parallel"
       ~doc:
         "Measure the sharded decision engine on a generated coalition \
          workload: requests per second at each shard count vs the \
          sequential interpreter, with an optional differential conformance \
          gate ($(b,--verify)) that exits non-zero if any sharded run is not \
          observationally identical to the sequential one."
       ~man:
         (exit_status_man
            [
              "0 on success; 1 when, under $(b,--verify), a sharded run \
               diverges from the sequential oracle; 2 on usage errors.";
            ]))
    Term.(
      const run $ coalitions_arg $ big_arg $ shards_arg $ seed_arg
      $ events_arg $ faults_arg $ verify_arg $ mode_arg)

(* --- dot --- *)

let dot_cmd =
  let minimize_arg =
    let doc = "Minimize the DFA before rendering." in
    Arg.(value & flag & info [ "minimize" ] ~doc)
  in
  let run input minimize =
    match program_of_input input with
    | Error (rc, msg) ->
        Format.eprintf "error: %s@." msg;
        rc
    | Ok p ->
        let table = Automata.Symbol.of_accesses (Sral.Program.accesses p) in
        let nfa = Automata.Of_program.nfa ~table p in
        let dfa =
          Automata.Dfa.of_nfa ~alphabet:(Automata.Symbol.alphabet table) nfa
        in
        let dfa = if minimize then Automata.Dfa.minimize dfa else dfa in
        print_string (Automata.Dot.dfa ~name:"trace_model" ~table dfa);
        0
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Render the program's trace-model DFA as GraphViz.")
    Term.(const run $ input_arg $ minimize_arg)

(* --- policy --- *)

let policy_cmd =
  let aggregate_arg =
    let doc = "Also print the aggregated (merged) bindings." in
    Cmdliner.Arg.(value & flag & info [ "aggregate" ] ~doc)
  in
  let run input aggregate =
    match Coordinated.Policy_lang.parse (read_input input) with
    | exception Coordinated.Policy_lang.Error (line, msg) ->
        Format.eprintf "%s:%d: %s@." input line msg;
        1
    | exception Sys_error msg ->
        Format.eprintf "error: %s@." msg;
        exit_usage
    | parsed ->
        Format.printf "# parsed OK: %d user(s), %d role(s), %d binding(s)@."
          (List.length (Rbac.Policy.users parsed.Coordinated.Policy_lang.policy))
          (List.length (Rbac.Policy.roles parsed.Coordinated.Policy_lang.policy))
          (List.length parsed.Coordinated.Policy_lang.bindings);
        print_string (Coordinated.Policy_lang.render parsed);
        if aggregate then begin
          let merged =
            Coordinated.Aggregate.aggregate
              parsed.Coordinated.Policy_lang.bindings
          in
          Format.printf "@.# after aggregation: %d binding(s)@."
            (List.length merged);
          List.iter
            (fun b -> Format.printf "# %a@." Coordinated.Perm_binding.pp b)
            merged
        end;
        0
  in
  Cmd.v
    (Cmd.info "policy"
       ~doc:"Parse, validate and re-render a policy file; optionally show              the aggregated bindings.")
    Term.(const run $ input_arg $ aggregate_arg)

(* --- lint --- *)

let strict_arg =
  let doc =
    "Exit with status 1 when any finding is reported (default: findings are \
     informational and the exit status is 0)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let lint_cmd =
  let run input strict =
    match Coordinated.Policy_lang.parse (read_input input) with
    | exception Coordinated.Policy_lang.Error (line, msg) ->
        Format.eprintf "%s:%d: %s@." input line msg;
        1
    | exception Sys_error msg ->
        Format.eprintf "error: %s@." msg;
        exit_usage
    | parsed -> (
        match Coordinated.Lint.check parsed with
        | [] ->
            Format.printf "no findings.@.";
            0
        | findings ->
            List.iter
              (fun f -> Format.printf "%a@." Coordinated.Lint.pp_finding f)
              findings;
            if strict then 1 else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse a policy file for dead or unsatisfiable rules. \
          Reports findings on stdout; exits 0 unless $(b,--strict) is given, \
          in which case any finding exits 1 (parse errors always exit 1)."
       ~man:
         (exit_status_man
            [
              "0 on success (including reported findings without \
               $(b,--strict)); 1 on parse errors, or on findings under \
               $(b,--strict); 2 on usage errors.";
            ]))
    Term.(const run $ input_arg $ strict_arg)

(* --- analyze --- *)

let analyze_cmd =
  let link_arg =
    let doc =
      "Allowed migration link SRC:DST (repeatable). Default: complete \
       topology over the policy's servers."
    in
    Arg.(value & opt_all string [] & info [ "link" ] ~docv:"SRC:DST" ~doc)
  in
  let entry_arg =
    let doc = "Entry server (repeatable). Default: every server." in
    Arg.(value & opt_all string [] & info [ "entry" ] ~docv:"SERVER" ~doc)
  in
  let step_arg =
    let doc = "Time units per action (rational, e.g. 1 or 3/2)." in
    Arg.(value & opt q_conv Temporal.Q.one & info [ "step" ] ~docv:"Q" ~doc)
  in
  let json_arg =
    let doc = "Write the report as JSONL to this file ('-' for stdout)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let witness_arg =
    let doc =
      "Print, for each exercisable binding, a shortest performable walk \
       that exercises it (a replayable certificate)."
    in
    Arg.(value & flag & info [ "witness" ] ~doc)
  in
  let query_arg =
    let doc =
      "Safety query 'USER OPERATION:RESOURCE@SERVER' (repeatable): can the \
       user ever be granted the permission at the server?  Answered with a \
       replayed witness walk or a proof of impossibility."
    in
    Arg.(value & opt_all string [] & info [ "query" ] ~docv:"QUERY" ~doc)
  in
  let admin_query_arg =
    let doc =
      "Administrative safety query 'USER OPERATION:RESOURCE@SERVER' \
       (repeatable): can the user ever acquire the permission at the server \
       under some sequence of administrative ops drawn from the \
       $(b,--admin-ops) pool?  A leak is reported with the admin-op \
       sequence and a replayed witness walk; safety with the explored \
       frontier."
    in
    Arg.(value & opt_all string [] & info [ "admin-query" ] ~docv:"QUERY" ~doc)
  in
  let admin_ops_arg =
    let doc =
      "Admin-op schedule file for $(b,--admin-query): directives \
       $(b,budget N), $(b,team NAME), $(b,joined BOOL), then one op per \
       line (assign/deassign USER ROLE, grant/revoke ROLE PERM, ssd/dsd \
       NAME ROLES... max K, bind PERM CLAUSES..., join, leave)."
    in
    Arg.(
      value & opt (some string) None & info [ "admin-ops" ] ~docv:"FILE" ~doc)
  in
  let admin_budget_arg =
    let doc = "Override the schedule's admin-op budget." in
    Arg.(
      value & opt (some int) None & info [ "admin-budget" ] ~docv:"N" ~doc)
  in
  let admin_states_arg =
    let doc = "State bound for the admin reachability engine." in
    Arg.(value & opt int 200_000 & info [ "admin-states" ] ~docv:"N" ~doc)
  in
  let parse_link s =
    match String.index_opt s ':' with
    | Some i ->
        Ok
          ( String.sub s 0 i,
            String.sub s (i + 1) (String.length s - i - 1) )
    | None -> Error (Printf.sprintf "link %S: expected SRC:DST" s)
  in
  let parse_query s =
    match String.index_opt s ' ' with
    | None -> Error (Printf.sprintf "query %S: expected 'USER OP:RES@SRV'" s)
    | Some i -> (
        let user = String.sub s 0 i in
        let rest =
          String.trim (String.sub s (i + 1) (String.length s - i - 1))
        in
        match Rbac.Perm.of_string rest with
        | exception Invalid_argument msg -> Error msg
        | perm -> (
            match Rbac.Perm.split_target perm.Rbac.Perm.target with
            | _, Some server when server <> "*" -> Ok (user, perm, server)
            | _ ->
                Error
                  (Printf.sprintf "query %S: target needs a concrete @server"
                     s)))
  in
  let run input links entries step json witness strict queries admin_queries
      admin_ops admin_budget admin_states =
    match Coordinated.Policy_lang.parse (read_input input) with
    | exception Coordinated.Policy_lang.Error (line, msg) ->
        Format.eprintf "%s:%d: %s@." input line msg;
        1
    | exception Sys_error msg ->
        Format.eprintf "error: %s@." msg;
        exit_usage
    | parsed -> (
        let links_parsed =
          List.fold_left
            (fun acc s ->
              match (acc, parse_link s) with
              | Error _, _ -> acc
              | _, Error msg -> Error msg
              | Ok ls, Ok l -> Ok (l :: ls))
            (Ok []) links
        in
        match links_parsed with
        | Error msg ->
            Format.eprintf "error: %s@." msg;
            exit_usage
        | Ok links -> (
            let links = if links = [] then None else Some (List.rev links) in
            let entries = if entries = [] then None else Some entries in
            match
              World.of_policy ?links ?entries ~step parsed
            with
            | exception Invalid_argument msg ->
                Format.eprintf "error: %s@." msg;
                exit_usage
            | world -> (
                let report = Analysis.Analyzer.analyze ~world parsed in
                let quiet = json = Some "-" in
                if not quiet then (
                  Format.printf "%a@." World.pp world;
                  Format.printf "%a@." Analysis.Report.pp report);
                let admin_failures = ref 0 in
                let admin_results =
                  match admin_queries with
                  | [] -> []
                  | _ -> (
                      match admin_ops with
                      | None ->
                          incr admin_failures;
                          Format.eprintf
                            "error: --admin-query requires --admin-ops@.";
                          []
                      | Some path -> (
                          match
                            Analysis.Admin.parse_schedule (read_input path)
                          with
                          | exception
                              (Invalid_argument msg | Sys_error msg) ->
                              incr admin_failures;
                              Format.eprintf "error: %s@." msg;
                              []
                          | schedule ->
                              let schedule =
                                match admin_budget with
                                | None -> schedule
                                | Some budget ->
                                    { schedule with Analysis.Admin.budget }
                              in
                              List.filter_map
                                (fun q ->
                                  match parse_query q with
                                  | Error msg ->
                                      incr admin_failures;
                                      Format.eprintf "error: %s@." msg;
                                      None
                                  | Ok (user, perm, server) -> (
                                      match
                                        Analysis.Admin.make ~base:parsed
                                          ~world ~schedule ~user ~perm
                                          ~server
                                      with
                                      | exception Invalid_argument msg ->
                                          incr admin_failures;
                                          Format.eprintf "error: %s@." msg;
                                          None
                                      | inst ->
                                          Some
                                            ( user,
                                              perm,
                                              server,
                                              Analysis.Admin.check
                                                ~max_states:admin_states
                                                inst )))
                                admin_queries))
                in
                let jsonl () =
                  Analysis.Report.to_jsonl report
                  ^ String.concat ""
                      (List.map
                         (fun (user, perm, server, outcome) ->
                           Analysis.Report.admin_to_json ~user ~perm ~server
                             outcome
                           ^ "\n")
                         admin_results)
                in
                (match json with
                | None -> ()
                | Some "-" -> print_string (jsonl ())
                | Some path ->
                    let oc = open_out path in
                    output_string oc (jsonl ());
                    close_out oc);
                if witness && not quiet then
                  List.iter
                    (fun (i, key, walk) ->
                      Format.printf "witness: binding #%d (%s): %a@." i key
                        Sral.Trace.pp walk)
                    (Analysis.Analyzer.witnesses ~world parsed);
                let query_failures = ref 0 in
                List.iter
                  (fun q ->
                    match parse_query q with
                    | Error msg ->
                        incr query_failures;
                        Format.eprintf "error: %s@." msg
                    | Ok (user, perm, server) ->
                        let verdict =
                          Analysis.Safety.can_acquire ~world ~policy:parsed
                            ~user ~perm ~server
                        in
                        if not quiet then
                          Format.printf "query %s %a -> %a@." user
                            Rbac.Perm.pp perm Analysis.Safety.pp_verdict
                            verdict)
                  queries;
                if not quiet then
                  List.iter
                    (fun (user, perm, server, outcome) ->
                      Format.printf "admin-query %s %a @@ %s -> %a@." user
                        Rbac.Perm.pp perm server Analysis.Admin.pp_outcome
                        outcome)
                    admin_results;
                let leak =
                  List.exists
                    (fun (_, _, _, o) ->
                      match o.Analysis.Admin.verdict with
                      | Analysis.Admin.Leak _ -> true
                      | _ -> false)
                    admin_results
                in
                if !query_failures > 0 || !admin_failures > 0 then exit_usage
                else if
                  strict
                  && (report.Analysis.Analyzer.findings <> [] || leak)
                then 1
                else 0)))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Semantically analyse a policy file against its deployment world: \
          DFA-backed satisfiability, vacuity, shadowing, unexercisable \
          bindings, empty temporal overlap, and safety queries with \
          replayable witnesses. All findings are sound for the world's \
          execution model (agents enter at t=0, one action per step, roles \
          held throughout); exits 0 unless $(b,--strict) is given."
       ~man:
         (exit_status_man
            [
              "0 on success (including reported findings without \
               $(b,--strict)); 1 on parse errors, or on findings or \
               $(b,--admin-query) leaks under $(b,--strict); 2 on usage \
               errors (including malformed $(b,--link), $(b,--step), \
               $(b,--query) or $(b,--admin-query) values, and a malformed \
               or missing $(b,--admin-ops) schedule).";
            ]))
    Term.(
      const run $ input_arg $ link_arg $ entry_arg $ step_arg $ json_arg
      $ witness_arg $ strict_arg $ query_arg $ admin_query_arg
      $ admin_ops_arg $ admin_budget_arg $ admin_states_arg)

(* --- simulate --- *)

let simulate_cmd =
  let policy_arg =
    let doc = "Policy file (see Policy_lang for the syntax)." in
    Arg.(required & opt (some string) None & info [ "p"; "policy" ] ~docv:"FILE" ~doc)
  in
  let agent_arg =
    let doc = "SRAL program file for the agent ('-' for stdin)." in
    Arg.(required & opt (some string) None & info [ "a"; "agent" ] ~docv:"FILE" ~doc)
  in
  let owner_arg =
    let doc = "Owner (user) of the agent." in
    Arg.(required & opt (some string) None & info [ "owner" ] ~docv:"USER" ~doc)
  in
  let roles_arg =
    let doc = "Roles to activate (repeatable)." in
    Arg.(value & opt_all string [] & info [ "r"; "role" ] ~docv:"ROLE" ~doc)
  in
  let run policy_file agent_file owner roles =
    match
      ( (try Ok (Coordinated.System.of_policy_text (read_input policy_file))
         with
        | Coordinated.Policy_lang.Error (line, msg) ->
            Error (1, Printf.sprintf "%s:%d: %s" policy_file line msg)
        | Sys_error msg -> Error (exit_usage, msg)),
        program_of_input agent_file )
    with
    | Error (rc, msg), _ | _, Error (rc, msg) ->
        Format.eprintf "error: %s@." msg;
        rc
    | Ok control, Ok program ->
        let world = Naplet.World.create control in
        List.iter
          (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
          (Sral.Program.servers program);
        let home =
          match Sral.Program.servers program with
          | s :: _ -> s
          | [] ->
              Naplet.World.add_server world (Naplet.Server.create "home");
              "home"
        in
        Naplet.World.spawn world ~id:"agent-1" ~owner ~roles ~home program;
        let metrics = Naplet.World.run world in
        Format.printf "%a@.@." Naplet.Metrics.pp metrics;
        Format.printf "--- audit log ---@.%a@.@." Coordinated.Audit_log.pp
          (Coordinated.System.log control);
        Format.printf "--- timeline ---@.%s@."
          (Coordinated.Timeline.render ~width:48
             (Coordinated.System.log control));
        0
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run one mobile agent under a policy in the Naplet emulation.")
    Term.(const run $ policy_arg $ agent_arg $ owner_arg $ roles_arg)

(* --- serve --- *)

let serve_cmd =
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Listen on TCP 127.0.0.1:$(docv) instead of a Unix socket." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let policy_arg =
    let doc =
      "Serve decisions over this policy file instead of the built-in \
       workload population."
    in
    Arg.(value & opt (some string) None & info [ "p"; "policy" ] ~docv:"FILE" ~doc)
  in
  let queue_arg =
    let doc =
      "Per-connection execution capacity for one read burst; frames beyond \
       it are shed with an auditable reply rather than queued unboundedly."
    in
    let default =
      Service.Server.default_config.Service.Server.queue_capacity
    in
    Arg.(value & opt int default & info [ "queue" ] ~docv:"N" ~doc)
  in
  let max_requests_arg =
    let doc =
      "Stop after $(docv) requests have been executed or shed (default: \
       serve forever)."
    in
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N" ~doc)
  in
  let run socket port policy_file mode queue max_requests =
    let addr =
      match (socket, port) with
      | Some path, None -> Ok (Service.Net_unix.Unix_path path)
      | None, Some port -> Ok (Service.Net_unix.Tcp port)
      | None, None ->
          Error "one of --socket PATH or --port PORT is required"
      | Some _, Some _ -> Error "--socket and --port are mutually exclusive"
    in
    let base =
      match policy_file with
      | None -> Ok (Service.Script.base_system ~mode ())
      | Some f -> (
          try Ok (Coordinated.System.of_policy_text ~mode (read_input f)) with
          | Coordinated.Policy_lang.Error (line, msg) ->
              Error (1, Printf.sprintf "%s:%d: %s" f line msg)
          | Sys_error msg -> Error (exit_usage, msg))
    in
    match (addr, base) with
    | Error msg, _ ->
        Format.eprintf "error: %s@." msg;
        exit_usage
    | _, Error (rc, msg) ->
        Format.eprintf "error: %s@." msg;
        rc
    | Ok addr, Ok base ->
        let config =
          { Service.Server.default_config with mode; queue_capacity = queue }
        in
        let server = Service.Server.create ~config ~base () in
        let listener = Service.Net_unix.listen addr in
        Format.eprintf "stacc serve: listening on %s@."
          (match addr with
          | Service.Net_unix.Unix_path p -> p
          | Service.Net_unix.Tcp p -> Printf.sprintf "127.0.0.1:%d" p);
        Service.Net_unix.serve listener ~server ?max_requests ();
        Service.Net_unix.shutdown listener;
        0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the always-on decision service: a Unix-socket or TCP listener \
          multiplexing framed client sessions onto per-connection clones of \
          the coalition system.  Malformed frames kill their connection \
          fail-closed; overload is shed with auditable replies; subscribers \
          receive the observability event stream."
       ~man:
         (exit_status_man
            [
              "0 on a clean shutdown (only reachable with \
               $(b,--max-requests)); 1 when the policy file does not parse; \
               2 on usage errors.";
            ]))
    Term.(
      const run $ socket_arg $ port_arg $ policy_arg $ mode_arg $ queue_arg
      $ max_requests_arg)

(* --- load --- *)

let load_cmd =
  let requests_arg =
    let doc =
      "Number of measured requests (script length under $(b,--replay))."
    in
    Arg.(value & opt int 20000 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc =
      "Offered rate in requests/s for an open-loop run (repeatable: one run \
       per rate — a saturation sweep).  Latency is measured from each \
       request's scheduled arrival time, so queueing under saturation is \
       charged to the server.  Without $(b,--rate) the loop is closed: one \
       request in flight, per-request service latency."
    in
    Arg.(value & opt_all float [] & info [ "rate" ] ~docv:"R" ~doc)
  in
  let conns_arg =
    let doc = "Number of client connections." in
    Arg.(value & opt int 4 & info [ "conns" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Request-mix seed (same seed, same requests)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Server per-feed execution capacity (default: the server's)." in
    Arg.(value & opt (some int) None & info [ "queue" ] ~docv:"N" ~doc)
  in
  let replay_arg =
    let doc =
      "Differential-gate mode: replay the seeded request script through \
       $(b,sim) (framing, the deterministic fault-capable transport, the \
       server core) or $(b,direct) (an independent re-implementation of the \
       per-request semantics straight on the coalition system) and write the \
       rendered reply stream.  The two drives must be byte-identical."
    in
    Arg.(
      value
      & opt (some (enum [ ("sim", `Sim); ("direct", `Direct) ])) None
      & info [ "replay" ] ~docv:"DRIVE" ~doc)
  in
  let out_arg =
    let doc = "Write the replay reply stream to this file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run requests rates conns seed queue mode replay out =
    let base = Service.Script.base_system ~mode () in
    match replay with
    | Some drive ->
        let script = Service.Script.generate ~conns ~requests ~seed () in
        let results =
          match drive with
          | `Sim -> Service.Script.run_sim ~base script
          | `Direct -> Service.Script.drive_direct ~base script
        in
        let rendered = Service.Script.render results in
        (match out with
        | "-" -> print_string rendered
        | path ->
            let oc = open_out path in
            output_string oc rendered;
            close_out oc);
        0
    | None ->
        let rows =
          if rates = [] then
            [ Service.Load.closed ~conns ~seed ~base ~requests () ]
          else Service.Load.sweep ~conns ~seed ?queue ~base ~requests ~rates ()
        in
        Format.printf "%a@." Service.Load.pp_header ();
        List.iter (fun r -> Format.printf "%a@." Service.Load.pp_row r) rows;
        0
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive the in-process decision service at a controlled rate and \
          report completed/shed counts with p50/p95/p99 latency, or \
          ($(b,--replay)) re-run the differential-gate script through one of \
          its two drives and dump the reply stream for comparison."
       ~man:
         (exit_status_man
            [ "0 on success; 2 on usage errors." ]))
    Term.(
      const run $ requests_arg $ rate_arg $ conns_arg $ seed_arg $ queue_arg
      $ mode_arg $ replay_arg $ out_arg)

let () =
  let info =
    Cmd.info "stacc" ~version:"1.0.0"
      ~doc:
        "Coordinated spatio-temporal access control for mobile coalitions \
         (Fu & Xu, IPPS 2005)."
      ~man:
        (exit_status_man
           [
             "Every subcommand follows one convention:";
             "0 — success.";
             "1 — the requested analysis or run failed: input content does \
              not parse, a constraint does not hold, an invariant was \
              violated, a differential gate diverged, or findings were \
              reported under $(b,--strict).";
             "2 — usage errors: unknown subcommands or flags, malformed \
              option values, unreadable input files.";
           ])
  in
  let group =
    Cmd.group info
      [
        parse_cmd;
        traces_cmd;
        check_cmd;
        dot_cmd;
        audit_cmd;
        trace_cmd;
        chaos_cmd;
        workflow_cmd;
        bench_parallel_cmd;
        policy_cmd;
        lint_cmd;
        analyze_cmd;
        simulate_cmd;
        serve_cmd;
        load_cmd;
      ]
  in
  (* Cmd.eval' maps cmdliner's own CLI errors to 124; fold everything onto
     the documented 0/1/2 convention instead. *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok rc) -> rc
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> exit_usage
    | Error `Exn -> 1)
