(* Benchmark harness: one Bechamel group per experiment of
   EXPERIMENTS.md (the paper has no quantitative tables; these are the
   measurements validating its complexity/decidability claims plus the
   reproduction scenarios — see DESIGN.md's per-experiment index).

   Run with:  dune exec bench/main.exe            (all experiments)
              dune exec bench/main.exe -- E2 E7   (a selection) *)

open Bechamel

module Q = Temporal.Q

let rng_of seed = Random.State.make [| 0xC0FFEE; seed |]

(* ------------------------------------------------------------------ *)
(* Workload generators                                                  *)

let resources = [ "r1"; "r2"; "r3"; "r4" ]
let servers = [ "s1"; "s2"; "s3" ]

let random_program ~size seed =
  Sral.Generate.program ~allow_par:false ~allow_io:false ~resources ~servers
    ~size (rng_of seed)

(* A conjunctive SRAC formula with [n] atomic constraints over the
   program's own accesses — the shape access policies actually take. *)
let random_formula ~n program seed =
  let rng = rng_of (seed + 17) in
  let accesses = Array.of_list (Sral.Program.accesses program) in
  let pick () = accesses.(Random.State.int rng (Array.length accesses)) in
  let atom () =
    match Random.State.int rng 3 with
    | 0 -> Srac.Formula.Atom (pick ())
    | 1 -> Srac.Formula.Ordered (pick (), pick ())
    | _ ->
        Srac.Formula.Card
          {
            lo = 0;
            hi = Some (5 + Random.State.int rng 4);
            sel = Srac.Selector.Server (List.nth servers (Random.State.int rng 3));
          }
  in
  let rec conj k = if k <= 1 then atom () else Srac.Formula.And (atom (), conj (k - 1)) in
  conj (max 1 n)

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 3.2: spatial checking across the m × n grid            *)

let e2_tests =
  let cases =
    List.concat_map
      (fun m -> List.map (fun n -> (m, n)) [ 4; 8 ])
      [ 20; 80; 320 ]
  in
  Test.make_grouped ~name:"E2-spatial-check"
    (List.map
       (fun (m, n) ->
         let program = random_program ~size:m (m + n) in
         let formula = random_formula ~n program (m * n) in
         Test.make
           ~name:(Printf.sprintf "m=%03d,n=%02d" m n)
           (Staged.stage (fun () ->
                Srac.Program_sat.check_bool ~modality:Srac.Program_sat.Forall
                  program formula)))
       cases)

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 3.1: regex -> SRAL -> language-equivalence roundtrip   *)

let e3_tests =
  let table =
    Automata.Symbol.of_accesses
      (List.concat_map
         (fun r -> List.map (fun s -> Sral.Access.read r ~at:s) servers)
         resources)
  in
  Test.make_grouped ~name:"E3-completeness"
    (List.map
       (fun size ->
         let re =
           Automata.Regex.generate ~symbols:(Automata.Symbol.alphabet table)
             ~size (rng_of size)
         in
         Test.make
           ~name:(Printf.sprintf "regex-size=%02d" size)
           (Staged.stage (fun () ->
                let program = Automata.To_program.program ~table re in
                let nfa = Automata.Of_program.nfa ~table program in
                let dfa =
                  Automata.Dfa.of_nfa
                    ~alphabet:(Automata.Symbol.alphabet table)
                    nfa
                in
                Automata.Dfa.is_empty dfa)))
       [ 8; 16; 32 ])

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 4.1: duration-calculus checking vs interpretation size *)

let e4_tests =
  let interval = Temporal.Interval.of_ints 0 4096 in
  let step_fn k =
    Temporal.Step_fn.of_intervals
      (List.init k (fun i -> Temporal.Interval.of_ints (4 * i) ((4 * i) + 2)))
  in
  Test.make_grouped ~name:"E4-temporal-dc"
    (List.map
       (fun k ->
         let v = step_fn k in
         let interp name = if name = "v" then v else invalid_arg name in
         let formula =
           Temporal.Duration_calculus.Chop
             ( Temporal.Duration_calculus.Dur_cmp
                 (Temporal.State_expr.Var "v", Temporal.Duration_calculus.Le, Q.of_int k),
               Temporal.Duration_calculus.Dur_cmp
                 (Temporal.State_expr.Var "v", Temporal.Duration_calculus.Ge, Q.zero) )
         in
         Test.make
           ~name:(Printf.sprintf "breakpoints=%04d" (2 * k))
           (Staged.stage (fun () ->
                Temporal.Duration_calculus.sat interp interval formula)))
       [ 8; 32; 128; 512 ])

(* ------------------------------------------------------------------ *)
(* E5 — Eq. 4.1: validity functions for long journeys, both schemes    *)

let e5_tests =
  let journey k scheme =
    let arrivals = List.init k (fun i -> Q.of_int (10 * i)) in
    let active = Temporal.Step_fn.of_intervals [ Temporal.Interval.of_ints 0 (10 * k) ] in
    fun () ->
      Temporal.Validity.is_valid_at ~scheme ~arrivals ~dur:(Some (Q.of_int 7))
        active
        (Q.of_int ((10 * k) - 1))
  in
  Test.make_grouped ~name:"E5-validity"
    (List.concat_map
       (fun k ->
         [
           Test.make
             ~name:(Printf.sprintf "journey,servers=%02d" k)
             (Staged.stage (journey k Temporal.Validity.Whole_journey));
           Test.make
             ~name:(Printf.sprintf "per-server,servers=%02d" k)
             (Staged.stage (journey k Temporal.Validity.Per_server));
         ])
       [ 2; 8; 32 ])

(* ------------------------------------------------------------------ *)
(* E6 — ablation: plain RBAC vs coordinated decision                   *)

let e6_tests =
  let policy () =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
    policy
  in
  let access = Sral.Access.read "db" ~at:"s1" in
  let program = Sral.Parser.program "read cfg @ s1; read db @ s1" in
  let spatial =
    Srac.Formula.Ordered (Sral.Access.read "cfg" ~at:"s1", access)
  in
  let plain =
    let p = policy () in
    let session = Rbac.Session.create p ~user:"u" in
    Rbac.Session.activate session "r";
    fun () -> Rbac.Engine.decide_access session access
  in
  let coordinated bindings name =
    let control = Coordinated.System.create ~bindings (policy ()) in
    let session = Coordinated.System.new_session control ~user:"u" in
    Rbac.Session.activate session "r";
    Coordinated.System.arrive control ~object_id:name ~server:"s1" ~time:Q.zero;
    let t = ref 0 in
    fun () ->
      incr t;
      Coordinated.System.check control ~session ~object_id:name ~program
        ~time:(Q.of_int !t) access
  in
  let perm = Rbac.Perm.make ~operation:"read" ~target:"db@s1" in
  Test.make_grouped ~name:"E6-rbac-overhead"
    [
      Test.make ~name:"plain-rbac" (Staged.stage plain);
      Test.make ~name:"coordinated-nobinding"
        (Staged.stage (coordinated [] "o-none"));
      Test.make ~name:"coordinated-spatial"
        (Staged.stage
           (coordinated
              [ Coordinated.Perm_binding.make ~spatial perm ]
              "o-spatial"));
      Test.make ~name:"coordinated-temporal"
        (Staged.stage
           (coordinated
              [ Coordinated.Perm_binding.make ~dur:(Q.of_int 1_000_000_000) perm ]
              "o-temporal"));
      Test.make ~name:"coordinated-both"
        (Staged.stage
           (coordinated
              [
                Coordinated.Perm_binding.make ~spatial
                  ~dur:(Q.of_int 1_000_000_000) perm;
              ]
              "o-both"));
    ]

(* ------------------------------------------------------------------ *)
(* E7 — baseline crossover: naive enumeration vs the symbolic checker  *)

let e7_tests =
  (* programs whose bounded trace model explodes: k parallel branches *)
  let program k =
    Sral.Ast.par
      (List.init k (fun i ->
           Sral.Ast.Seq
             ( Sral.Ast.Access (Sral.Access.read (Printf.sprintf "a%d" i) ~at:"s1"),
               Sral.Ast.Access (Sral.Access.read (Printf.sprintf "b%d" i) ~at:"s2") )))
  in
  let formula =
    Srac.Formula.at_most 999 (Srac.Selector.Server "s1")
  in
  Test.make_grouped ~name:"E7-naive-vs-dfa"
    (List.concat_map
       (fun k ->
         let p = program k in
         [
           Test.make
             ~name:(Printf.sprintf "naive,par=%d" k)
             (Staged.stage (fun () ->
                  (Srac.Naive.check ~modality:Srac.Program_sat.Forall p formula)
                    .Srac.Program_sat.holds));
           Test.make
             ~name:(Printf.sprintf "symbolic,par=%d" k)
             (Staged.stage (fun () ->
                  Srac.Program_sat.check_bool
                    ~modality:Srac.Program_sat.Forall p formula));
         ])
       [ 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* E8 — Section 5 prototype: end-to-end emulation throughput           *)

let e8_tests =
  let run_world ~agents ~server_count () =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
    let control = Coordinated.System.create policy in
    let world = Naplet.World.create control in
    let names = List.init server_count (fun i -> Printf.sprintf "s%d" i) in
    List.iter
      (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
      names;
    let rng = rng_of (agents + server_count) in
    for i = 1 to agents do
      let program =
        Sral.Generate.program ~allow_io:false ~resources
          ~servers:names ~size:10 rng
      in
      Naplet.World.spawn world
        ~id:(Printf.sprintf "a%d" i)
        ~owner:"u" ~roles:[ "r" ] ~home:(List.hd names) program
    done;
    Naplet.World.run world
  in
  Test.make_grouped ~name:"E8-naplet-throughput"
    (List.map
       (fun (agents, server_count) ->
         Test.make
           ~name:(Printf.sprintf "agents=%02d,servers=%02d" agents server_count)
           (Staged.stage (fun () -> run_world ~agents ~server_count ())))
       [ (1, 4); (8, 4); (16, 8) ])

(* ------------------------------------------------------------------ *)
(* E9 — interleaving: shuffle-product growth                           *)

let e9_tests =
  let branch i =
    Sral.Ast.Seq
      ( Sral.Ast.Access (Sral.Access.read (Printf.sprintf "x%d" i) ~at:"s1"),
        Sral.Ast.Access (Sral.Access.write (Printf.sprintf "y%d" i) ~at:"s2") )
  in
  Test.make_grouped ~name:"E9-shuffle"
    (List.map
       (fun k ->
         let program = Sral.Ast.par (List.init k branch) in
         Test.make
           ~name:(Printf.sprintf "par-branches=%d" k)
           (Staged.stage (fun () ->
                let lang = Automata.Language.of_program program in
                Automata.Language.state_count lang)))
       [ 2; 4; 6 ])

(* ------------------------------------------------------------------ *)
(* E11/E12 — periodic-vs-duration and aggregation ablations            *)

let e11_tests =
  let window =
    Temporal.Periodic.daily ~start_hour:(Q.of_int 22) ~length_hours:(Q.of_int 5)
  in
  let arrival = Q.of_int 25 in
  let active = Temporal.Step_fn.of_changes ~init:false [ (arrival, true) ] in
  let probe = Q.of_int 26 in
  let policy () =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
    policy
  in
  let perm = Rbac.Perm.make ~operation:"read" ~target:"db@s1" in
  let access = Sral.Access.read "db" ~at:"s1" in
  let program = Sral.Parser.program "read db @ s1" in
  let with_bindings bindings name =
    let control = Coordinated.System.create ~bindings (policy ()) in
    let session = Coordinated.System.new_session control ~user:"u" in
    Rbac.Session.activate session "r";
    Coordinated.System.arrive control ~object_id:name ~server:"s1" ~time:Q.zero;
    let t = ref 0 in
    fun () ->
      incr t;
      Coordinated.System.check control ~session ~object_id:name ~program
        ~time:(Q.of_int !t) access
  in
  let raw =
    List.init 8 (fun i ->
        Coordinated.Perm_binding.make ~dur:(Q.of_int (1_000_000 + i)) perm)
  in
  Test.make_grouped ~name:"E11-E12-ablations"
    [
      Test.make ~name:"periodic-window-check"
        (Staged.stage (fun () -> Temporal.Periodic.contains window probe));
      Test.make ~name:"duration-validity-check"
        (Staged.stage (fun () ->
             Temporal.Validity.is_valid_at
               ~scheme:Temporal.Validity.Whole_journey ~arrivals:[ arrival ]
               ~dur:(Some (Q.of_int 4)) active probe));
      Test.make ~name:"decision-8-raw-bindings"
        (Staged.stage (with_bindings raw "raw"));
      Test.make ~name:"decision-aggregated-binding"
        (Staged.stage
           (with_bindings (Coordinated.Aggregate.aggregate raw) "agg"));
      (* runtime monitoring routes for a 40-access history *)
      (let c =
         Srac.Formula.And
           ( Srac.Formula.at_most 50 (Srac.Selector.Resource "db"),
             Srac.Formula.Ordered
               (Sral.Access.read "cfg" ~at:"s1", Sral.Access.read "db" ~at:"s1")
           )
       in
       let history =
         Sral.Access.read "cfg" ~at:"s1"
         :: List.init 40 (fun _ -> Sral.Access.read "db" ~at:"s1")
       in
       Test.make ~name:"monitor-trace-recheck"
         (Staged.stage (fun () ->
              Srac.Trace_sat.sat ~proofs:Srac.Proof.always history c)));
      (let c =
         Srac.Formula.And
           ( Srac.Formula.at_most 50 (Srac.Selector.Resource "db"),
             Srac.Formula.Ordered
               (Sral.Access.read "cfg" ~at:"s1", Sral.Access.read "db" ~at:"s1")
           )
       in
       let history =
         Sral.Access.read "cfg" ~at:"s1"
         :: List.init 40 (fun _ -> Sral.Access.read "db" ~at:"s1")
       in
       let residual = Srac.Derivative.after_trace c history in
       Test.make ~name:"monitor-derivative-step"
         (Staged.stage (fun () ->
              Srac.Derivative.satisfied_by_empty
                (Srac.Derivative.after residual
                   (Sral.Access.read "db" ~at:"s1")))));
    ]

(* ------------------------------------------------------------------ *)
(* E13 — decision fast path: check latency vs coalition size.  The
   [Naive] mode is the seed's linear path (binding scan + companion
   fold over every object in the coalition); [Indexed] resolves
   bindings through Binding_index, companions through team rosters and
   repeat decisions through the per-monitor verdict cache.  The naive
   curve should grow linearly with the object count, the indexed one
   should stay flat.                                                   *)

let e13_tests =
  let policy () =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
    policy
  in
  let access = Sral.Access.read "db" ~at:"s1" in
  let program = Sral.Parser.program "read cfg @ s1; read db @ s1" in
  let spatial =
    Srac.Formula.Ordered (Sral.Access.read "cfg" ~at:"s1", access)
  in
  (* one binding that matters plus 15 that never match the probed
     access — the naive path pays applies_to on all 16 every check *)
  let bindings =
    Coordinated.Perm_binding.make ~spatial
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
    :: List.init 15 (fun i ->
           Coordinated.Perm_binding.make
             ~dur:(Q.of_int 1_000_000_000)
             (Rbac.Perm.make ~operation:"read"
                ~target:(Printf.sprintf "aux%d@s9" i)))
  in
  let make ~mode ~objects =
    let control =
      Coordinated.System.create ~mode ~bindings ~log_capacity:1024 (policy ())
    in
    let session = Coordinated.System.new_session control ~user:"u" in
    Rbac.Session.activate session "r";
    (* the whole coalition is organized in teams of 8; the probed
       object's companions are its 7 teammates either way, but the
       naive path rediscovers them by folding over all [objects] *)
    for i = 0 to objects - 1 do
      Coordinated.System.join_team control
        ~object_id:(Printf.sprintf "o%d" i)
        ~team:(Printf.sprintf "t%d" (i / 8))
    done;
    Coordinated.System.arrive control ~object_id:"o0" ~server:"s1"
      ~time:Q.zero;
    let t = ref 0 in
    fun () ->
      incr t;
      Coordinated.System.check control ~session ~object_id:"o0" ~program
        ~time:(Q.of_int !t) access
  in
  let mode_name = function
    | Coordinated.System.Naive -> "naive"
    | Coordinated.System.Indexed -> "indexed"
    | Coordinated.System.Lazy -> "lazy"
  in
  Test.make_grouped ~name:"E13-decision-fastpath"
    (List.concat_map
       (fun objects ->
         List.map
           (fun mode ->
             Test.make
               ~name:
                 (Printf.sprintf "%s,objects=%04d" (mode_name mode) objects)
               (Staged.stage (make ~mode ~objects)))
           [
             Coordinated.System.Naive;
             Coordinated.System.Indexed;
             Coordinated.System.Lazy;
           ])
       [ 16; 64; 256; 1024 ])

(* ------------------------------------------------------------------ *)
(* E16 — static analyzer cost, phase by phase.  One synthetic policy
   per size [k]: k bindings whose constraints chain k distinct
   resources over two servers, so the closure alphabet grows linearly
   with k.  The phases are measured separately — formula-to-DFA
   compilation, per-binding emptiness, the O(k²) pairwise inclusion
   stage — plus the whole [Analyzer.analyze] pass, and the paper's
   Fig. 1 audit policy as a fixed reference point.                     *)

let e16_tests =
  let synth k =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
    let res i = Printf.sprintf "r%d" i in
    let bindings =
      List.init k (fun i ->
          let dep = Sral.Access.read (res ((i + 1) mod k)) ~at:"s2" in
          let own = Sral.Access.read (res i) ~at:"s1" in
          Coordinated.Perm_binding.make
            ~spatial:
              (Srac.Formula.And
                 ( Srac.Formula.Ordered (dep, own),
                   Srac.Formula.at_most 3 (Srac.Selector.Resource (res i)) ))
            ~spatial_scope:Coordinated.Perm_binding.Performed
            (Rbac.Perm.make ~operation:"read" ~target:(res i ^ "@s1")))
    in
    { Coordinated.Policy_lang.policy; bindings }
  in
  let phase_tests k =
    let parsed = synth k in
    let world = Analysis.World.of_policy parsed in
    let formulas =
      List.filter_map
        (fun b -> b.Coordinated.Perm_binding.spatial)
        parsed.Coordinated.Policy_lang.bindings
    in
    let accs =
      List.sort_uniq Sral.Access.compare
        (Srac.Decide.closure_alphabet formulas @ world.Analysis.World.universe)
    in
    let table = Automata.Symbol.of_accesses accs in
    let compile () =
      List.map (Srac.Compile.dfa ~table ~proofs:Srac.Proof.always) formulas
    in
    let dfas = compile () in
    [
      Test.make
        ~name:(Printf.sprintf "k=%02d 1-compile" k)
        (Staged.stage (fun () -> compile ()));
      Test.make
        ~name:(Printf.sprintf "k=%02d 2-emptiness" k)
        (Staged.stage (fun () -> List.map Automata.Dfa.is_empty dfas));
      Test.make
        ~name:(Printf.sprintf "k=%02d 3-inclusion" k)
        (Staged.stage (fun () ->
             List.fold_left
               (fun n d1 ->
                 List.fold_left
                   (fun n d2 ->
                     if d1 != d2 && Automata.Dfa.subset d1 d2 then n + 1
                     else n)
                   n dfas)
               0 dfas));
      Test.make
        ~name:(Printf.sprintf "k=%02d 4-analyze" k)
        (Staged.stage (fun () -> Analysis.Analyzer.analyze ~world parsed));
    ]
  in
  let fig1 = Scenarios.Policy_review.fig1 () in
  let fig1_world = Scenarios.Policy_review.fig1_world () in
  Test.make_grouped ~name:"E16-analyzer"
    (List.concat_map phase_tests [ 4; 8; 16 ]
    @ [
        Test.make ~name:"fig1 4-analyze"
          (Staged.stage (fun () ->
               Analysis.Analyzer.analyze ~world:fig1_world fig1));
      ])

(* ------------------------------------------------------------------ *)
(* E14 — per-stage decision latency through the observability spine.
   The E13 workload (16 bindings, one relevant; coalition in teams of
   8) re-run with a real-clock trace bus and an [Obs.Stats] sink
   subscribed: every check emits rbac/spatial/temporal stage spans and
   cache probes, and the histograms answer {e where} a decision spends
   its time — not just how long it takes end to end.  Not a Bechamel
   group: the spans themselves are the measurement.                    *)

let e14_report () =
  let policy () =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
    policy
  in
  let access = Sral.Access.read "db" ~at:"s1" in
  let program = Sral.Parser.program "read cfg @ s1; read db @ s1" in
  let spatial =
    Srac.Formula.Ordered (Sral.Access.read "cfg" ~at:"s1", access)
  in
  let bindings =
    Coordinated.Perm_binding.make ~spatial
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
    :: List.init 15 (fun i ->
           Coordinated.Perm_binding.make
             ~dur:(Q.of_int 1_000_000_000)
             (Rbac.Perm.make ~operation:"read"
                ~target:(Printf.sprintf "aux%d@s9" i)))
  in
  let measure ~mode ~objects ~checks =
    let bus = Obs.Bus.create ~clock:Monotonic_clock.now () in
    let stats = Obs.Stats.create () in
    Obs.Bus.subscribe bus (Obs.Stats.sink stats);
    let control =
      Coordinated.System.create ~mode ~bindings ~log_capacity:1024 ~bus
        (policy ())
    in
    let session = Coordinated.System.new_session control ~user:"u" in
    Rbac.Session.activate session "r";
    for i = 0 to objects - 1 do
      Coordinated.System.join_team control
        ~object_id:(Printf.sprintf "o%d" i)
        ~team:(Printf.sprintf "t%d" (i / 8))
    done;
    Coordinated.System.arrive control ~object_id:"o0" ~server:"s1" ~time:Q.zero;
    for t = 1 to checks do
      ignore
        (Coordinated.System.check control ~session ~object_id:"o0" ~program
           ~time:(Q.of_int t) access)
    done;
    stats
  in
  let mode_name = function
    | Coordinated.System.Naive -> "naive"
    | Coordinated.System.Indexed -> "indexed"
    | Coordinated.System.Lazy -> "lazy"
  in
  List.iter
    (fun mode ->
      List.iter
        (fun objects ->
          let stats = measure ~mode ~objects ~checks:10_000 in
          Printf.printf "  -- %s, objects=%04d, checks=10000 --\n%!"
            (mode_name mode) objects;
          Format.printf "%a@." Obs.Stats.pp stats)
        [ 16; 1024 ])
    [ Coordinated.System.Naive; Coordinated.System.Indexed ]

(* ------------------------------------------------------------------ *)
(* E15 — resilience under deterministic chaos.  The Figure-1 coalition
   (audit agent + couriers + channel traffic) re-run under each named
   fault intensity in both decision modes; we report wall-clock
   throughput, fault/retry counts and the retry amplification factor
   (retries per completed migration) so degradation can be read off as
   a function of fault rate.  Not a Bechamel group: each cell is one
   deterministic end-to-end run, and the counters are the measurement. *)

let e15_report () =
  let mode_name = function
    | Coordinated.System.Naive -> "naive"
    | Coordinated.System.Indexed -> "indexed"
    | Coordinated.System.Lazy -> "lazy"
  in
  Printf.printf
    "  %-8s %-10s %7s %8s %7s %7s %7s %7s %7s %9s %10s\n%!" "mode" "plan"
    "events" "granted" "unavail" "faults" "retries" "gaveup" "ampl"
    "simtime" "wall";
  List.iter
    (fun mode ->
      List.iter
        (fun plan_name ->
          let t0 = Monotonic_clock.now () in
          let report =
            Scenarios.Chaos.run ~mode ~plan_name ~seed:42 ~couriers:12 ()
          in
          let t1 = Monotonic_clock.now () in
          let wall_ns = Int64.to_float (Int64.sub t1 t0) in
          let m = report.Scenarios.Chaos.metrics in
          let amplification =
            if m.Naplet.Metrics.migrations = 0 then 0.
            else
              float_of_int m.Naplet.Metrics.retries
              /. float_of_int m.Naplet.Metrics.migrations
          in
          (match report.Scenarios.Chaos.violations with
          | [] -> ()
          | vs ->
              Printf.printf "  !! %d invariant violation(s) under %s/%s\n%!"
                (List.length vs) (mode_name mode) plan_name);
          Printf.printf
            "  %-8s %-10s %7d %8d %7d %7d %7d %7d %7.2f %9s %7.2f ms\n%!"
            (mode_name mode) plan_name
            (List.length report.Scenarios.Chaos.trace)
            m.Naplet.Metrics.granted m.Naplet.Metrics.denied_unavailable
            m.Naplet.Metrics.faults_injected m.Naplet.Metrics.retries
            m.Naplet.Metrics.gave_up amplification
            (Q.to_string m.Naplet.Metrics.end_time)
            (wall_ns /. 1e6))
        Fault.Plan.intensity_names)
    [ Coordinated.System.Naive; Coordinated.System.Indexed ]

(* ------------------------------------------------------------------ *)
(* E17 — sharded parallel decision engine.  A workload of generated
   coalitions interpreted by the sequential engine and by the sharded
   engine at 1/2/4/8 shards; each cell reports wall-clock, requests per
   second over the workload's Check events, and speedup relative to the
   sequential run.  The table closes with the differential conformance
   harness (parallel = sequential on verdicts, audit statistics and
   merged trace bytes) — throughput numbers only count if that gate
   passes.  Real scaling needs real cores: on a single-CPU host (or the
   4.14 single-shard fallback) expect speedup ≈ 1.0 minus domain
   overhead; the backend line states what the run actually had. *)

let e17_report () =
  let coalitions = 96 in
  let scenarios =
    Parallel.Workload.coalitions ~objects:4 ~events:60 ~salt:1717
      ~count:coalitions 0
  in
  let checks =
    Array.fold_left (fun acc sc -> acc + Parallel.Scenario.checks sc) 0 scenarios
  in
  let time f =
    let t0 = Monotonic_clock.now () in
    let r = f () in
    (r, Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0))
  in
  (* warm the minor heap and code paths before timing *)
  ignore (Parallel.Engine.sequential (Array.sub scenarios 0 8));
  let _, seq_ns = time (fun () -> Parallel.Engine.sequential scenarios) in
  Printf.printf "  backend: %s, recommended shards: %d\n"
    (if Parallel.Backend.domains then "ocaml5-domains" else "single-4.14")
    (Parallel.Backend.recommended ());
  Printf.printf "  workload: %d coalitions, %d checks\n" coalitions checks;
  Printf.printf "  %-12s %7s %10s %12s %8s\n%!" "engine" "shards" "wall"
    "req/s" "speedup";
  let row name shards ns =
    Printf.printf "  %-12s %7s %8.2f ms %12.0f %7.2fx\n%!" name shards
      (ns /. 1e6)
      (float_of_int checks /. (ns /. 1e9))
      (seq_ns /. ns)
  in
  row "sequential" "-" seq_ns;
  List.iter
    (fun shards ->
      let _, ns = time (fun () -> Parallel.Engine.sharded ~shards scenarios) in
      row "sharded" (string_of_int shards) ns)
    [ 1; 2; 4; 8 ];
  let gate = Parallel.Engine.verify ~shards:4 (Array.sub scenarios 0 24) in
  Format.printf "  %a@." Parallel.Engine.pp_report gate;
  if gate.Parallel.Engine.divergences <> [] then exit 1

(* E18 — workflow satisfiability: checker cost vs task count against
   the brute-force assignment enumerator, plus the agreement gate the
   differential suite enforces (zero divergences, every witness
   replays). *)
let e18_report () =
  let module W = Scenarios.Workflow_family in
  let module Sat = Scenarios.Workflow_sat in
  let time f =
    let t0 = Monotonic_clock.now () in
    let r = f () in
    (r, Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0))
  in
  (* half satisfiable (the checker must build a witness), half
     adversarial (mostly unsat at larger sizes — the pruning side) *)
  let batch tasks =
    Array.append
      (W.workflows W.Satisfiable ~tasks ~performers:3 ~salt:1818 ~count:12 0)
      (W.workflows W.Adversarial ~tasks ~performers:3 ~salt:1818 ~count:12 0)
  in
  ignore (Array.map Sat.check (batch 2));
  Printf.printf
    "  24 workflows per row (12 satisfiable + 12 adversarial), 3 performers\n";
  Printf.printf "  %-6s %14s %14s %9s %7s\n%!" "tasks" "checker" "brute-force"
    "ratio" "sat";
  List.iter
    (fun tasks ->
      let wfs = batch tasks in
      let verdicts, checker_ns = time (fun () -> Array.map Sat.check wfs) in
      let _, brute_ns = time (fun () -> Array.map Sat.brute_force wfs) in
      let sat =
        Array.fold_left
          (fun n -> function Sat.Complete _ -> n + 1 | Sat.Impossible _ -> n)
          0 verdicts
      in
      Printf.printf "  %-6d %11.2f ms %11.2f ms %8.1fx %5d/24\n%!" tasks
        (checker_ns /. 1e6) (brute_ns /. 1e6)
        (brute_ns /. checker_ns)
        sat)
    [ 2; 3; 4; 5; 6 ];
  (* agreement gate, as in the differential suite *)
  let divergences = ref 0 and total = ref 0 in
  List.iter
    (fun fam ->
      Array.iter
        (fun wf ->
          incr total;
          match Sat.against_brute_force wf with
          | Sat.Agree_sat _ | Sat.Agree_unsat _ -> ()
          | Sat.Divergent d ->
              incr divergences;
              Printf.printf "  divergence: %s\n%!" d)
        (W.workflows fam ~salt:1819 ~count:40 0))
    [ W.Satisfiable; W.Unsatisfiable; W.Adversarial ];
  Printf.printf "  agreement: %d/%d (%d divergence(s))\n%!"
    (!total - !divergences) !total !divergences;
  if !divergences > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* E19 — million-object coalitions on the struct-of-arrays engine.
   Two parts.  First the conformance gate: a span of randomized
   coalitions (teams, channel traffic, fault plans, a mid-run admin
   action) is driven through both the SoA world and the retained
   legacy world by the same functorized harness, and their exported
   traces are compared byte for byte — the scaling numbers only count
   if that gate passes.  Then the scaling table: uniform coalitions of
   10^3..10^6 agents, reporting build time (spawn + arrival), run
   time, processed events, steady-state events per second, and memory
   (live words after a major GC, plus the process peak heap).

   Env knobs for CI: [E19_MAX_OBJECTS] caps the largest scale (default
   1_000_000); [E19_CONFORMANCE_RUNS] sizes the gate (default 25);
   [E19_TRACE_OUT] additionally writes the fixed-seed (salt 1919,
   seed 7) SoA trace to a file so two runs can be [cmp]'d for byte
   determinism. *)

let e19_report () =
  let env_int name default =
    match Sys.getenv_opt name with
    | Some s -> ( try int_of_string s with _ -> default)
    | None -> default
  in
  let max_objects = env_int "E19_MAX_OBJECTS" 1_000_000 in
  let runs = env_int "E19_CONFORMANCE_RUNS" 25 in
  let diverged = Scenarios.Scale_family.divergences ~runs 0 in
  Printf.printf
    "  conformance (SoA vs legacy): %d randomized coalitions, %d \
     divergence(s)%s\n%!"
    runs (List.length diverged)
    (match diverged with
    | [] -> ""
    | seeds ->
        " at seed(s) " ^ String.concat "," (List.map string_of_int seeds));
  if diverged <> [] then exit 1;
  (match Sys.getenv_opt "E19_TRACE_OUT" with
  | None -> ()
  | Some path ->
      let trace = Scenarios.Scale_family.Soa.random_trace ~salt:1919 ~seed:7 () in
      let oc = open_out path in
      output_string oc trace;
      close_out oc;
      Printf.printf "  fixed-seed trace: %d bytes written to %s\n%!"
        (String.length trace) path);
  Printf.printf "  %-9s %7s %10s %10s %10s %11s %9s %9s\n%!" "objects"
    "servers" "build" "run" "events" "events/s" "live" "peak";
  List.iter
    (fun objects ->
      if objects <= max_objects then begin
        let servers = max 4 (objects / 2_500) in
        let config =
          {
            Naplet.World.default_config with
            Naplet.World.max_events = (objects * 64) + 4096;
          }
        in
        let t0 = Monotonic_clock.now () in
        let world =
          Scenarios.Scale_family.Soa.build_big ~config ~objects ~servers ()
        in
        let t1 = Monotonic_clock.now () in
        ignore (Naplet.World.run world);
        let t2 = Monotonic_clock.now () in
        (* stat while the world is still reachable, so live words count
           its state tables, not just the residue after collection *)
        Gc.full_major ();
        let stat = Gc.stat () in
        let events = Naplet.World.processed_events world in
        let run_s = Int64.to_float (Int64.sub t2 t1) /. 1e9 in
        Printf.printf
          "  %-9d %7d %8.2f s %8.2f s %10d %11.0f %7.1fMw %7.1fMw\n%!" objects
          servers
          (Int64.to_float (Int64.sub t1 t0) /. 1e9)
          run_s events
          (float_of_int events /. run_s)
          (float_of_int stat.Gc.live_words /. 1e6)
          (float_of_int stat.Gc.top_heap_words /. 1e6)
      end)
    [ 1_000; 10_000; 100_000; 1_000_000 ]

(* ------------------------------------------------------------------ *)
(* E20 — decision service: differential gate + saturation sweep        *)

(* The service story in two acts.  First the gate: the same seeded
   request scripts through the full stack (framing, the deterministic
   transport, the server core) and through an independent per-request
   drive straight on [Coordinated.System] must render byte-identical
   reply streams, and the simulated drive must be bit-reproducible.
   Then the numbers: a closed-loop run fixes this host's per-request
   service rate, and an open-loop sweep at fractions and multiples of
   it shows the saturation knee — achieved rate tracks offered until
   the server sheds, with latency measured from each request's due
   time so queueing under overload is charged to the server, not
   hidden by a stalling client.

   Env knobs for CI: [E20_REQUESTS] sizes each measured run (default
   20_000); [E20_GATE_SEEDS] sizes the differential gate (default 5);
   [E20_RATES] overrides the offered-rate list (comma-separated,
   requests/s; default 1/4x, 1/2x, 1x, 3/2x the closed-loop rate). *)

let e20_report () =
  let env_int name default =
    match Sys.getenv_opt name with
    | Some s -> ( try int_of_string s with _ -> default)
    | None -> default
  in
  let requests = env_int "E20_REQUESTS" 20_000 in
  let gate_seeds = env_int "E20_GATE_SEEDS" 5 in
  let base = Service.Script.base_system () in
  let diverged = ref 0 in
  for seed = 1 to gate_seeds do
    let script = Service.Script.generate ~conns:4 ~requests:200 ~seed () in
    let sim = Service.Script.render (Service.Script.run_sim ~base script) in
    let sim' = Service.Script.render (Service.Script.run_sim ~base script) in
    let direct =
      Service.Script.render (Service.Script.drive_direct ~base script)
    in
    if sim <> direct || sim <> sim' then incr diverged
  done;
  Printf.printf
    "  differential gate (sim vs direct, %d seed(s) x 200 requests): %d \
     divergence(s)\n%!"
    gate_seeds !diverged;
  if !diverged > 0 then exit 1;
  let closed = Service.Load.closed ~base ~requests () in
  let rates =
    match Sys.getenv_opt "E20_RATES" with
    | Some s ->
        List.filter_map
          (fun tok -> float_of_string_opt (String.trim tok))
          (String.split_on_char ',' s)
    | None ->
        let c = closed.Service.Load.achieved in
        List.map (fun f -> Float.round (c *. f)) [ 0.25; 0.5; 1.0; 1.5 ]
  in
  let fmt = Format.std_formatter in
  Format.fprintf fmt "  %a@." Service.Load.pp_header ();
  Format.fprintf fmt "  %a@." Service.Load.pp_row closed;
  List.iter
    (fun r -> Format.fprintf fmt "  %a@." Service.Load.pp_row r)
    (Service.Load.sweep ~base ~requests ~rates ());
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* E1 / E10 — whole-scenario reproductions                             *)

let scenario_tests =
  Test.make_grouped ~name:"E1-E10-scenarios"
    [
      Test.make ~name:"E1-fig1-integrity-audit"
        (Staged.stage (fun () -> Scenarios.Integrity_audit.run ()));
      Test.make ~name:"E1-fig1-audit-with-deadline"
        (Staged.stage (fun () ->
             Scenarios.Integrity_audit.run ~deadline:(Q.of_int 6) ()));
      Test.make ~name:"E10-license-guard"
        (Staged.stage (fun () -> Scenarios.License_guard.run ()));
      Test.make ~name:"E10-newspaper-deadline"
        (Staged.stage (fun () -> Scenarios.Newspaper.run ()));
      Test.make ~name:"E12-teamwork"
        (Staged.stage (fun () -> Scenarios.Teamwork.run ()));
      Test.make ~name:"E12-parallel-audit-3-clones"
        (Staged.stage (fun () ->
             Scenarios.Integrity_audit.run_parallel ~clones:3 ()));
    ]

(* ------------------------------------------------------------------ *)
(* E21 — administrative safety: the symbolic reachability engine vs
   explicit op-sequence enumeration.  Three parts.  First the
   agreement gate the differential suite enforces: on the small-model
   families, verdict constructors must agree exactly and every Leak
   witness must replay to a grant — the numbers only count if the gate
   passes (divergence exits 1).  Then a timing table on the
   adversarial small models.  Then the scale table: SoD-free
   Safe instances (the hard case — a Safe answer requires exhausting
   the reachable deployments) where the symbolic engine's state dedup
   collapses the n!-sequence space to 2^n deployments while the
   enumeration baseline hits its node cap.

   Env knobs for CI: [E21_GATE_COUNT] sizes the gate per family
   (default 40); [E21_BRUTE_CAP] is the enumeration node cap on the
   scale rows (default 500_000). *)
let e21_report () =
  let module Ad = Analysis.Admin in
  let module AF = Scenarios.Admin_family in
  let time f =
    let t0 = Monotonic_clock.now () in
    let r = f () in
    (r, Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0))
  in
  let env_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n -> n
    | None -> default
  in
  let gate_count = env_int "E21_GATE_COUNT" 40 in
  let brute_cap = env_int "E21_BRUTE_CAP" 500_000 in
  let tag = function
    | Ad.Leak _ -> "leak"
    | Ad.Safe _ -> "safe"
    | Ad.Undetermined _ -> "undetermined"
  in
  (* 1. agreement gate *)
  let divergences = ref 0 and total = ref 0 and leaks = ref 0 in
  List.iter
    (fun fam ->
      for seed = 0 to gate_count - 1 do
        let rng = Random.State.make [| 2121; seed |] in
        let inst = AF.generate fam rng in
        incr total;
        let sym = Ad.check inst in
        let brute = Ad.brute_force inst in
        if not (String.equal (tag sym.Ad.verdict) (tag brute.Ad.verdict))
        then begin
          incr divergences;
          Printf.printf "  divergence (%s seed %d): symbolic %s, brute %s\n%!"
            (AF.family_name fam) seed (tag sym.Ad.verdict)
            (tag brute.Ad.verdict)
        end;
        match sym.Ad.verdict with
        | Ad.Leak { ops; witness } ->
            incr leaks;
            let trace = List.map fst witness.Analysis.Safety.steps in
            if
              not
                (Coordinated.Decision.is_granted
                   (Ad.replay_witness inst ops ~trace))
            then begin
              incr divergences;
              Printf.printf "  witness replay failed (%s seed %d)\n%!"
                (AF.family_name fam) seed
            end
        | _ -> ()
      done)
    [ AF.Reachable; AF.Sabotaged; AF.Adversarial ];
  Printf.printf
    "  agreement: %d/%d (%d divergence(s)), %d leak witnesses replayed\n%!"
    (!total - !divergences) !total !divergences !leaks;
  if !divergences > 0 then exit 1;
  (* 2. small-model timing *)
  let batch salt count =
    List.init count (fun seed ->
        AF.adversarial (Random.State.make [| salt; seed |]))
  in
  ignore (List.map Ad.check (batch 2122 5));
  Printf.printf "  %-28s %12s %12s %8s\n%!" "small models (60 adversarial)"
    "symbolic" "brute" "ratio";
  let insts = batch 2123 60 in
  let _, sym_ns = time (fun () -> List.map Ad.check insts) in
  let _, brute_ns = time (fun () -> List.map Ad.brute_force insts) in
  Printf.printf "  %-28s %9.2f ms %9.2f ms %7.1fx\n%!" ""
    (sym_ns /. 1e6) (brute_ns /. 1e6) (brute_ns /. sym_ns);
  (* 3. the scale rows: Safe must exhaust the reachable deployments *)
  let safe_instance n =
    let p = Rbac.Policy.create () in
    List.iter (Rbac.Policy.add_user p) [ "u1"; "u2" ];
    let roles = List.init n (fun i -> Printf.sprintf "r%d" i) in
    List.iter (Rbac.Policy.add_role p) ("anchor" :: roles);
    (* the goal permission exists in the universe but is granted only
       to the never-assigned anchor role: provably Safe, and proving
       it requires visiting every reachable deployment *)
    Rbac.Policy.grant p "anchor"
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1");
    let base = { Coordinated.Policy_lang.policy = p; bindings = [] } in
    let world = Analysis.World.of_policy base in
    let pool =
      List.mapi
        (fun i r ->
          if i mod 2 = 0 then Ad.Assign ("u2", r)
          else
            Ad.Grant (r, Rbac.Perm.make ~operation:"read" ~target:"log@s1"))
        roles
    in
    Ad.make ~base ~world
      ~schedule:{ Ad.pool; budget = n; team = "coalition"; joined = true }
      ~user:"u1"
      ~perm:(Rbac.Perm.make ~operation:"read" ~target:"db@s1")
      ~server:"s1"
  in
  Printf.printf "  %-10s %12s %9s %10s %12s %14s\n%!" "pool ops" "symbolic"
    "explored" "leaf miss" "enumeration" "enum nodes";
  List.iter
    (fun n ->
      let inst = safe_instance n in
      let sym, sym_ns = time (fun () -> Ad.check inst) in
      let verdict_str o =
        match o.Ad.verdict with
        | Ad.Safe { explored } -> Printf.sprintf "safe:%d" explored
        | Ad.Leak _ -> "LEAK?!"
        | Ad.Undetermined _ -> "undet(cap)"
      in
      let brute, brute_ns =
        time (fun () -> Ad.brute_force ~max_nodes:brute_cap inst)
      in
      Printf.printf "  %-10d %9.2f ms %9s %10d %9.2f ms %11s\n%!" n
        (sym_ns /. 1e6) (verdict_str sym) sym.Ad.stats.Ad.leaf_calls
        (brute_ns /. 1e6)
        (Printf.sprintf "%s/%d" (verdict_str brute) brute_cap);
      match sym.Ad.verdict with
      | Ad.Safe _ -> ()
      | v ->
          Format.printf "  scale row %d not safe: %a@." n Ad.pp_verdict v;
          exit 1)
    [ 8; 10; 12 ]

(* ------------------------------------------------------------------ *)
(* E22 — the lazy-derivative decision path, in four acts.

   First the differential gate, in the E18/E21 mould: a span of seeded
   randomized coalitions is interpreted under [Lazy] and [Naive]
   decision modes, and everything observable — the rendered verdicts
   (denial reasons included), the audit log, and the entire bus trace
   with its per-stage spans — must match byte for byte.  Any
   divergence exits 1; the latency rows below only count if the gate
   passes.

   Then three latency rows, all three modes side by side:
   - warm hit: the E13 steady state — a Program-scope spatial
     constraint whose verdict the indexed path caches; the lazy path
     must keep up without carrying a verdict cache at all;
   - warm miss: a Performed-scope constraint granted on every check,
     so every grant moves the history epoch and invalidates the
     indexed verdict cache — the eager paths re-run trace
     satisfaction over the whole growing history, the lazy machine
     folds exactly one derivative step per recorded proof;
   - cold: the first decision on a fresh coalition — the eager paths
     pay subset construction for activation feasibility, the lazy
     machine interns a couple of residuals and answers from
     nullability.

   Last the allocation gate: a burst of direct, uninstrumented
   steady-state [Decision.decide_lazy] calls must allocate ~0 minor
   words per decision (exits 1 above 1.0 words/decision).

   Env knobs for CI: [E22_GATE_COUNT] sizes the differential gate
   (default 300); [E22_CHECKS] sizes each latency row (default 4000);
   [E22_TRACE_OUT] writes the fixed-seed (salt 2222, seed 7)
   Lazy-mode rendered trace + log to a file so two runs can be
   [cmp]'d for byte determinism. *)

let e22_report () =
  let env_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n -> n
    | None -> default
  in
  let gate_count = env_int "E22_GATE_COUNT" 300 in
  let checks = env_int "E22_CHECKS" 4000 in
  let time f =
    let t0 = Monotonic_clock.now () in
    let r = f () in
    (r, Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0))
  in
  let render outcome =
    String.concat "\n"
      (List.map
         (Format.asprintf "%a" Obs.Trace.pp)
         outcome.Parallel.Scenario.trace)
    ^ "\n--log--\n" ^ outcome.Parallel.Scenario.log
  in
  let run_seed ~mode seed =
    let rng = Random.State.make [| 2222; seed |] in
    Parallel.Scenario.run ~mode (Parallel.Workload.scenario rng)
  in
  (* 1. differential gate: verdicts + log + spans, byte for byte *)
  let divergences = ref 0 in
  for seed = 0 to gate_count - 1 do
    let l = run_seed ~mode:Coordinated.System.Lazy seed in
    let n = run_seed ~mode:Coordinated.System.Naive seed in
    if
      not
        (l.Parallel.Scenario.verdicts = n.Parallel.Scenario.verdicts
        && String.equal (render l) (render n))
    then begin
      incr divergences;
      Printf.printf "  divergence (verdicts/log/spans) at seed %d\n%!" seed
    end
  done;
  Printf.printf
    "  differential (lazy vs naive, verdicts+log+spans): %d/%d (%d \
     divergence(s))\n%!"
    (gate_count - !divergences) gate_count !divergences;
  if !divergences > 0 then exit 1;
  (match Sys.getenv_opt "E22_TRACE_OUT" with
  | None -> ()
  | Some path ->
      let body = render (run_seed ~mode:Coordinated.System.Lazy 7) in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Printf.printf "  fixed-seed trace: %d bytes written to %s\n%!"
        (String.length body) path);
  (* 2. latency rows *)
  let policy () =
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r"
      (Rbac.Perm.make ~operation:"read" ~target:"*@*");
    policy
  in
  let access = Sral.Access.read "db" ~at:"s1" in
  let program = Sral.Parser.program "read cfg @ s1; read db @ s1" in
  let hit_bindings =
    (* Program-scope constraint: verdict cacheable, history-independent *)
    [
      Coordinated.Perm_binding.make
        ~spatial:
          (Srac.Formula.Ordered (Sral.Access.read "cfg" ~at:"s1", access))
        (Rbac.Perm.make ~operation:"read" ~target:"db@s1");
    ]
  in
  let miss_bindings =
    (* Performed-scope and granted on every check: each grant moves the
       history epoch, so the indexed verdict cache never survives *)
    [
      Coordinated.Perm_binding.make
        ~spatial:(Srac.Formula.at_least 1 (Srac.Selector.Resource "db"))
        ~spatial_scope:Coordinated.Perm_binding.Performed
        (Rbac.Perm.make ~operation:"read" ~target:"db@s1");
    ]
  in
  let fresh ~mode ~bindings =
    let control =
      Coordinated.System.create ~mode ~bindings ~log_capacity:64 (policy ())
    in
    let session = Coordinated.System.new_session control ~user:"u" in
    Rbac.Session.activate session "r";
    Coordinated.System.join_team control ~object_id:"o0" ~team:"t0";
    Coordinated.System.arrive control ~object_id:"o0" ~server:"s1"
      ~time:Q.zero;
    let t = ref 0 in
    fun () ->
      incr t;
      Coordinated.System.check control ~session ~object_id:"o0" ~program
        ~time:(Q.of_int !t) access
  in
  let modes =
    [
      ("naive", Coordinated.System.Naive);
      ("indexed", Coordinated.System.Indexed);
      ("lazy", Coordinated.System.Lazy);
    ]
  in
  let per_check ns = ns /. float_of_int checks in
  let row name per_mode =
    let cells = List.map (fun (_, m) -> per_mode m) modes in
    (match cells with
    | [ naive; indexed; lzy ] ->
        Printf.printf "  %-22s %9.0f ns %9.0f ns %9.0f ns %10.2fx\n%!" name
          naive indexed lzy (indexed /. lzy)
    | _ -> assert false);
    cells
  in
  Printf.printf "  %-22s %12s %12s %12s %10s   (%d checks/row)\n%!" ""
    "naive" "indexed" "lazy" "idx/lazy" checks;
  let hit =
    row "warm hit" (fun mode ->
        let check = fresh ~mode ~bindings:hit_bindings in
        for _ = 1 to 64 do
          ignore (check ())
        done;
        let _, ns =
          time (fun () ->
              for _ = 1 to checks do
                ignore (check ())
              done)
        in
        per_check ns)
  in
  let _miss =
    row "warm miss (history)" (fun mode ->
        let check = fresh ~mode ~bindings:miss_bindings in
        ignore (check ());
        let _, ns =
          time (fun () ->
              for _ = 1 to checks do
                ignore (check ())
              done)
        in
        per_check ns)
  in
  let cold_rounds = min checks 400 in
  let cold =
    row "cold (first decision)" (fun mode ->
        (* warm the allocator/caches shared across rounds *)
        ignore (fresh ~mode ~bindings:hit_bindings ());
        let _, ns =
          time (fun () ->
              for _ = 1 to cold_rounds do
                ignore (fresh ~mode ~bindings:hit_bindings ())
              done)
        in
        ns /. float_of_int cold_rounds)
  in
  (match (hit, cold) with
  | [ _; idx_hit; lazy_hit ], [ _; idx_cold; lazy_cold ] ->
      Printf.printf
        "  hit: lazy/indexed = %.2f   cold: lazy/indexed = %.2f\n%!"
        (lazy_hit /. idx_hit) (lazy_cold /. idx_cold)
  | _ -> ());
  (* 3. allocation gate: the direct steady-state path, no bus, no
     recording — two warm calls settle the residual arena, then the
     burst must stay out of the minor heap *)
  let session = Rbac.Session.create (policy ()) ~user:"u" in
  Rbac.Session.activate session "r";
  let monitor = Coordinated.Monitor.create ~object_id:"o0" in
  Coordinated.Monitor.record_arrival monitor ~server:"s1" ~time:Q.zero;
  let applicable = hit_bindings in
  let t = Q.one in
  let decide () =
    Coordinated.Decision.decide_lazy ~session ~monitor ~applicable
      ~team_version:0 ~team_history:0 ~program ~time:t access
  in
  ignore (decide ());
  ignore (decide ());
  let burst = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to burst do
    ignore (decide ())
  done;
  let per_decision = (Gc.minor_words () -. w0) /. float_of_int burst in
  Printf.printf "  allocation: %.4f minor words/decision over %d calls\n%!"
    per_decision burst;
  if per_decision > 1.0 then begin
    Printf.printf "  allocation gate FAILED (budget: 1.0 words/decision)\n%!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Runner                                                               *)

let all_groups =
  [
    ("E2", e2_tests);
    ("E3", e3_tests);
    ("E4", e4_tests);
    ("E5", e5_tests);
    ("E6", e6_tests);
    ("E7", e7_tests);
    ("E8", e8_tests);
    ("E9", e9_tests);
    ("E11", e11_tests);
    ("E13", e13_tests);
    ("E16", e16_tests);
    ("E1", scenario_tests);
  ]

let run_group test =
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (n1, _) (n2, _) -> String.compare n1 n2) rows in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      let pretty =
        if Float.is_nan estimate then "n/a"
        else if estimate > 1e9 then Printf.sprintf "%8.3f  s" (estimate /. 1e9)
        else if estimate > 1e6 then Printf.sprintf "%8.3f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%8.3f us" (estimate /. 1e3)
        else Printf.sprintf "%8.1f ns" estimate
      in
      Printf.printf "  %-50s %s/run\n%!" name pretty)
    rows

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ ->
        List.map fst all_groups
        @ [ "E14"; "E15"; "E17"; "E18"; "E19"; "E20"; "E21"; "E22" ]
  in
  List.iter
    (fun id ->
      if id = "E14" then begin
        Printf.printf "== E14 ==\n%!";
        e14_report ()
      end
      else if id = "E15" then begin
        Printf.printf "== E15 ==\n%!";
        e15_report ()
      end
      else if id = "E17" then begin
        Printf.printf "== E17 ==\n%!";
        e17_report ()
      end
      else if id = "E18" then begin
        Printf.printf "== E18 ==\n%!";
        e18_report ()
      end
      else if id = "E19" then begin
        Printf.printf "== E19 ==\n%!";
        e19_report ()
      end
      else if id = "E20" then begin
        Printf.printf "== E20 ==\n%!";
        e20_report ()
      end
      else if id = "E21" then begin
        Printf.printf "== E21 ==\n%!";
        e21_report ()
      end
      else if id = "E22" then begin
        Printf.printf "== E22 ==\n%!";
        e22_report ()
      end
      else
        match List.assoc_opt id all_groups with
        | Some test ->
            Printf.printf "== %s ==\n%!" id;
            run_group test
        | None ->
            Printf.printf
              "unknown experiment id %S (known: %s, E14, E15, E17, E18, E19, \
               E20, E21, E22)\n"
              id
              (String.concat ", " (List.map fst all_groups)))
    selected
