let rng_of seed = Random.State.make [| 0xC0FFEE; seed |]
let resources = [ "r1"; "r2"; "r3"; "r4" ]
let servers = [ "s1"; "s2"; "s3" ]
let random_formula ~n program seed =
  let rng = rng_of (seed + 17) in
  let accesses = Array.of_list (Sral.Program.accesses program) in
  let pick () = accesses.(Random.State.int rng (Array.length accesses)) in
  let atom () =
    match Random.State.int rng 3 with
    | 0 -> Srac.Formula.Atom (pick ())
    | 1 -> Srac.Formula.Ordered (pick (), pick ())
    | _ -> Srac.Formula.Card { lo = 0; hi = Some (5 + Random.State.int rng 4);
            sel = Srac.Selector.Server (List.nth servers (Random.State.int rng 3)) }
  in
  let rec conj k = if k <= 1 then atom () else Srac.Formula.And (atom (), conj (k - 1)) in
  conj (max 1 n)
let () =
  List.iter (fun (m, n) ->
    let program = Sral.Generate.program ~allow_par:false ~allow_io:false ~resources ~servers ~size:m (rng_of (m+n)) in
    let formula = random_formula ~n program (m*n) in
    let t0 = Sys.time () in
    let stats = Srac.Program_sat.instrument program formula in
    let t1 = Sys.time () in
    ignore (Srac.Program_sat.check_bool ~modality:Srac.Program_sat.Forall program formula);
    let t2 = Sys.time () in
    Printf.printf "(m=%d n=%d): compile %.2fs check %.2fs prog=%d constr=%d\n%!"
      m n (t1 -. t0) (t2 -. t1) stats.Srac.Program_sat.program_states stats.Srac.Program_sat.constraint_states)
    [ (20,64); (40,64) ]
