(** RBAC permissions.

    A permission is an approved operation on a protected object
    (Section 3.4).  Objects are named by strings; in the coalition
    setting the convention is ["resource@server"], and either field
    may be the wildcard ["*"]. *)

type t = { operation : string; target : string }

val make : operation:string -> target:string -> t

val on_resource : operation:string -> resource:string -> server:string -> t
(** Target spelled ["resource@server"]. *)

val split_target : string -> string * string option
(** Split a target at its first ['@']: ["db@s1"] is [("db", Some "s1")],
    ["*"] is [("*", None)].  This is the exact decomposition {!matches}
    uses — exposed so index structures can bucket patterns the same
    way the matcher reads them. *)

val matches : t -> operation:string -> target:string -> bool
(** Wildcard-aware: a ["*"] operation or target in the permission
    matches anything; a ["res@*"] target matches any server for that
    resource (and symmetrically ["*@srv"]). *)

val overlaps : t -> t -> bool
(** Do the two (possibly wildcarded) patterns cover a common concrete
    permission?  Used by policy linting: a binding whose pattern
    overlaps no granted permission is dead. *)

val subsumes : t -> t -> bool
(** [subsumes p1 p2]: does pattern [p1] cover every concrete permission
    [p2] covers?  Field-wise: a ["*"] field of [p1] covers anything, a
    concrete field only its equal.  Whenever [subsumes p1 p2], any
    access {!matches}-covered by [p2] is covered by [p1], and a held
    permission matching the query [p1] also matches the query [p2] —
    the two facts the policy analyzer's shadowing check relies on. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** ["operation:target"], e.g. ["read:db@s1"].
    @raise Invalid_argument on missing colon. *)
