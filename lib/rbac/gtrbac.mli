(** GTRBAC-style event- and trigger-driven role administration — the
    generalization of TRBAC by Joshi et al. (the paper's [12]),
    implemented as the second related-work baseline.

    Administrators post enable/disable events for roles; *triggers*
    cascade them ("when doctor-on-duty is enabled, enable
    nurse-on-duty 10 minutes later").  Processing the event cascade up
    to a horizon yields, per role, an enabling step function over time
    — which plugs into the same machinery the paper's duration model
    uses, so the two administrations can be compared head-on.

    Cascades are bounded (a trigger loop stops at the cascade limit
    rather than hanging the administrator). *)

type event = Enable of string | Disable of string

type trigger = {
  on : event;  (** the cascade source *)
  after : Temporal.Q.t;  (** delay, >= 0 *)
  fire : event;  (** the consequence *)
}

type t

val create : ?cascade_limit:int -> Policy.t -> t
(** [cascade_limit] (default 10_000) bounds total processed events. *)

val policy : t -> Policy.t

val add_trigger : t -> trigger -> unit
(** @raise Invalid_argument on a negative delay. *)

val post : t -> at:Temporal.Q.t -> event -> unit
(** Record an administrative event (before {!process}). *)

exception Cascade_limit

val process : t -> unit
(** Run all posted events and their trigger cascades, in time order
    (ties: posting order).  Idempotent until new events are posted.
    @raise Cascade_limit when the cascade bound is hit (a trigger
    loop). *)

val enabling_fn : t -> role:string -> Temporal.Step_fn.t
(** The role's enabled-timeline after {!process}.  Roles never named by
    an event are enabled throughout (plain RBAC). *)

val is_enabled : t -> role:string -> at:Temporal.Q.t -> bool

val decide :
  t -> Session.t -> at:Temporal.Q.t -> operation:string -> target:string ->
  Engine.verdict
(** As {!Trbac.decide}, against the event-driven timelines. *)
