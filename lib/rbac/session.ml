type t = {
  policy : Policy.t;
  user : string;
  mutable active : string list;  (* sorted *)
  mutable bumps : int;
}

exception Not_authorized of string * string
exception Dsd_violation of Sod.t * string * string

let create policy ~user =
  if not (List.mem user (Policy.users policy)) then
    raise (Policy.Unknown ("user", user));
  { policy; user; active = []; bumps = 0 }

let user s = s.user
let active_roles s = s.active

(* The stamp is the sum of two monotone counters, so equal stamps mean
   neither the active-role set nor the backing policy changed. *)
let version s = s.bumps + Policy.version s.policy

let activate s r =
  if not (List.mem r s.active) then begin
    if not (List.mem r (Policy.authorized_roles s.policy s.user)) then
      raise (Not_authorized (s.user, r));
    List.iter
      (fun c ->
        if Sod.would_violate c ~current:s.active ~adding:r then
          raise (Dsd_violation (c, s.user, r)))
      (Policy.dsd_constraints s.policy);
    s.bumps <- s.bumps + 1;
    s.active <- List.sort String.compare (r :: s.active)
  end

let deactivate s r =
  if List.mem r s.active then begin
    s.bumps <- s.bumps + 1;
    s.active <- List.filter (fun r' -> not (String.equal r r')) s.active
  end

let drop s =
  if s.active <> [] then s.bumps <- s.bumps + 1;
  s.active <- []

let active_permissions s =
  List.sort_uniq Perm.compare
    (List.concat_map (Policy.role_permissions s.policy) s.active)

let may s ~operation ~target =
  List.exists
    (fun perm -> Perm.matches perm ~operation ~target)
    (active_permissions s)

let pp ppf s =
  Format.fprintf ppf "session(%s, active=[%s])" s.user
    (String.concat ", " s.active)
