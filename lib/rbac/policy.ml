module String_set = Set.Make (String)
module String_map = Map.Make (String)
module Perm_set = Set.Make (Perm)

type user = string
type role = string

type t = {
  hierarchy : Hierarchy.t;
  mutable users : String_set.t;
  mutable user_assignments : String_set.t String_map.t;  (** user -> roles *)
  mutable role_grants : Perm_set.t String_map.t;  (** role -> perms *)
  mutable ssd : Sod.t list;
  mutable dsd : Sod.t list;
  mutable version : int;
}

let create () =
  {
    hierarchy = Hierarchy.create ();
    users = String_set.empty;
    user_assignments = String_map.empty;
    role_grants = String_map.empty;
    ssd = [];
    dsd = [];
    version = 0;
  }

let hierarchy p = p.hierarchy
let version p = p.version
let touch p = p.version <- p.version + 1

exception Unknown of string * string
exception Ssd_violation of Sod.t * user * role

let add_user p u =
  touch p;
  p.users <- String_set.add u p.users
let add_role p r =
  touch p;
  Hierarchy.add_role p.hierarchy r

let add_inheritance p ~senior ~junior =
  touch p;
  Hierarchy.add_inheritance p.hierarchy ~senior ~junior

let require_user p u =
  if not (String_set.mem u p.users) then raise (Unknown ("user", u))

let require_role p r =
  if not (Hierarchy.mem p.hierarchy r) then raise (Unknown ("role", r))

let assigned_roles p u =
  match String_map.find_opt u p.user_assignments with
  | Some roles -> String_set.elements roles
  | None -> []

let assign_user p u r =
  require_user p u;
  require_role p r;
  let current = assigned_roles p u in
  List.iter
    (fun c ->
      if Sod.would_violate c ~current ~adding:r then
        raise (Ssd_violation (c, u, r)))
    p.ssd;
  touch p;
  p.user_assignments <-
    String_map.update u
      (function
        | Some roles -> Some (String_set.add r roles)
        | None -> Some (String_set.singleton r))
      p.user_assignments

let deassign_user p u r =
  touch p;
  p.user_assignments <-
    String_map.update u
      (function
        | Some roles -> Some (String_set.remove r roles)
        | None -> None)
      p.user_assignments

let grant p r perm =
  require_role p r;
  touch p;
  p.role_grants <-
    String_map.update r
      (function
        | Some perms -> Some (Perm_set.add perm perms)
        | None -> Some (Perm_set.singleton perm))
      p.role_grants

let revoke p r perm =
  touch p;
  p.role_grants <-
    String_map.update r
      (function
        | Some perms -> Some (Perm_set.remove perm perms)
        | None -> None)
      p.role_grants

let add_ssd p c =
  String_map.iter
    (fun u roles ->
      if Sod.violates c (String_set.elements roles) then
        invalid_arg
          (Format.asprintf
             "Policy.add_ssd: user %s already violates %a" u Sod.pp c))
    p.user_assignments;
  touch p;
  p.ssd <- c :: p.ssd

let add_dsd p c =
  touch p;
  p.dsd <- c :: p.dsd
let users p = String_set.elements p.users
let roles p = Hierarchy.roles p.hierarchy

(* Constraints are prepended internally; review reports them in
   insertion order so render → parse → render is a fixed point. *)
let ssd_constraints p = List.rev p.ssd
let dsd_constraints p = List.rev p.dsd

let authorized_roles p u =
  let assigned = assigned_roles p u in
  List.sort_uniq String.compare
    (List.concat_map (Hierarchy.juniors p.hierarchy) assigned)

let direct_permissions p r =
  match String_map.find_opt r p.role_grants with
  | Some perms -> Perm_set.elements perms
  | None -> []

let role_permissions p r =
  let juniors = Hierarchy.juniors p.hierarchy r in
  let juniors = if juniors = [] then [ r ] else juniors in
  List.sort_uniq Perm.compare (List.concat_map (direct_permissions p) juniors)

let user_permissions p u =
  List.sort_uniq Perm.compare
    (List.concat_map (role_permissions p) (assigned_roles p u))

let users_of_role p r =
  List.filter (fun u -> List.mem r (assigned_roles p u)) (users p)

let pp ppf p =
  Format.fprintf ppf "@[<v>policy: %d users, %d roles@," (List.length (users p))
    (List.length (roles p));
  List.iter
    (fun u ->
      Format.fprintf ppf "  user %s: roles [%s]@," u
        (String.concat ", " (assigned_roles p u)))
    (users p);
  List.iter
    (fun r ->
      Format.fprintf ppf "  role %s: perms [%s]@," r
        (String.concat ", " (List.map Perm.to_string (direct_permissions p r))))
    (roles p);
  Format.fprintf ppf "@]"
