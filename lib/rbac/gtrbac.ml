module Q = Temporal.Q

type event = Enable of string | Disable of string

type trigger = { on : event; after : Q.t; fire : event }

type t = {
  policy : Policy.t;
  cascade_limit : int;
  mutable triggers : trigger list;  (* reverse registration order *)
  mutable pending : (Q.t * int * event) list;  (* (time, seq, event) *)
  mutable next_seq : int;
  mutable history : (string, (Q.t * bool) list) Hashtbl.t;
      (* role -> reverse change list *)
  mutable processed : bool;
}

let create ?(cascade_limit = 10_000) policy =
  {
    policy;
    cascade_limit;
    triggers = [];
    pending = [];
    next_seq = 0;
    history = Hashtbl.create 8;
    processed = true;
  }

let policy t = t.policy

let add_trigger t trigger =
  if Q.sign trigger.after < 0 then
    invalid_arg "Gtrbac.add_trigger: negative delay";
  t.triggers <- trigger :: t.triggers

let post t ~at event =
  t.pending <- (at, t.next_seq, event) :: t.pending;
  t.next_seq <- t.next_seq + 1;
  t.processed <- false

exception Cascade_limit

let event_role = function Enable r | Disable r -> r
let event_value = function Enable _ -> true | Disable _ -> false

let record t ~at event =
  let role = event_role event in
  let changes =
    match Hashtbl.find_opt t.history role with Some l -> l | None -> []
  in
  Hashtbl.replace t.history role ((at, event_value event) :: changes)

let pop_earliest t =
  match
    List.sort
      (fun (t1, s1, _) (t2, s2, _) ->
        let c = Q.compare t1 t2 in
        if c <> 0 then c else Int.compare s1 s2)
      t.pending
  with
  | [] -> None
  | earliest :: _ ->
      t.pending <- List.filter (fun e -> e != earliest) t.pending;
      Some earliest

let process t =
  if not t.processed then begin
    let budget = ref t.cascade_limit in
    let rec loop () =
      match pop_earliest t with
      | None -> ()
      | Some (at, _, event) ->
          if !budget <= 0 then raise Cascade_limit;
          decr budget;
          record t ~at event;
          (* fire matching triggers *)
          List.iter
            (fun trigger ->
              if trigger.on = event then
                post t ~at:(Q.add at trigger.after) trigger.fire)
            (List.rev t.triggers);
          loop ()
    in
    loop ();
    t.processed <- true
  end

let enabling_fn t ~role =
  if not t.processed then process t;
  match Hashtbl.find_opt t.history role with
  | None -> Temporal.Step_fn.const true
  | Some changes -> Temporal.Step_fn.of_changes ~init:false (List.rev changes)

let is_enabled t ~role ~at = Temporal.Step_fn.value_at (enabling_fn t ~role) at

let decide t session ~at ~operation ~target =
  let usable =
    List.filter
      (fun role -> is_enabled t ~role ~at)
      (Session.active_roles session)
  in
  let perms =
    List.sort_uniq Perm.compare
      (List.concat_map (Policy.role_permissions t.policy) usable)
  in
  if List.exists (fun perm -> Perm.matches perm ~operation ~target) perms then
    Engine.Granted
  else
    Engine.Denied
      (Printf.sprintf "no enabled role of %s grants %s on %s at this time"
         (Session.user session) operation target)
