type t = { name : string; roles : string list; max_roles : int }

let make ~name ~roles ~max_roles =
  if max_roles < 1 then invalid_arg "Sod.make: max_roles must be >= 1";
  if List.length roles < 2 then
    invalid_arg "Sod.make: need at least two conflicting roles";
  { name; roles = List.sort_uniq String.compare roles; max_roles }

let held constraint_ role_set =
  List.length (List.filter (fun r -> List.mem r constraint_.roles) role_set)

let violates constraint_ role_set =
  held constraint_ (List.sort_uniq String.compare role_set)
  > constraint_.max_roles

let would_violate constraint_ ~current ~adding =
  violates constraint_ (adding :: current)

let pp ppf c =
  Format.fprintf ppf "sod %s: at most %d of {%s}" c.name c.max_roles
    (String.concat ", " c.roles)
