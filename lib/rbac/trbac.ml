type t = {
  policy : Policy.t;
  windows : (string, Temporal.Periodic.t) Hashtbl.t;
}

let create policy = { policy; windows = Hashtbl.create 8 }
let policy t = t.policy
let set_enabling t ~role window = Hashtbl.replace t.windows role window
let clear_enabling t ~role = Hashtbl.remove t.windows role

let is_enabled t ~role ~at =
  match Hashtbl.find_opt t.windows role with
  | None -> true
  | Some window -> Temporal.Periodic.contains window at

let enabled_roles t session ~at =
  List.filter (fun role -> is_enabled t ~role ~at) (Session.active_roles session)

let decide t session ~at ~operation ~target =
  let usable = enabled_roles t session ~at in
  let perms =
    List.sort_uniq Perm.compare
      (List.concat_map (Policy.role_permissions t.policy) usable)
  in
  if List.exists (fun perm -> Perm.matches perm ~operation ~target) perms then
    Engine.Granted
  else
    Engine.Denied
      (Printf.sprintf
         "no enabled role of %s grants %s on %s at this time"
         (Session.user session) operation target)

let decide_access t session ~at (a : Sral.Access.t) =
  decide t session ~at
    ~operation:(Sral.Access.operation_name a.Sral.Access.op)
    ~target:(a.Sral.Access.resource ^ "@" ^ a.Sral.Access.server)
