(** The RBAC policy store: users, roles, permissions and their
    assignment relations (UA and PA), plus the role hierarchy and
    static separation-of-duty constraints.

    This is the plain-RBAC half of the model — the baseline the
    coordinated (spatio-temporal) extension is measured against. *)

type user = string
type role = string
type t

val create : unit -> t
val hierarchy : t -> Hierarchy.t

val version : t -> int
(** Monotone mutation counter: bumped by every administrative change
    ([add_user], [grant], [add_dsd], …).  Two reads returning the same
    number mean the policy was not administratively modified in
    between, which lets callers use the version as a cache stamp. *)

(** {2 Administration} *)

val add_user : t -> user -> unit
val add_role : t -> role -> unit
val add_inheritance : t -> senior:role -> junior:role -> unit
(** @raise Hierarchy.Cycle *)

exception Unknown of string * string
(** [(kind, name)], e.g. [("role", "auditor")]. *)

exception Ssd_violation of Sod.t * user * role

val assign_user : t -> user -> role -> unit
(** @raise Unknown on undeclared user/role.
    @raise Ssd_violation when an SSD constraint forbids it. *)

val deassign_user : t -> user -> role -> unit
val grant : t -> role -> Perm.t -> unit
(** @raise Unknown on undeclared role. *)

val revoke : t -> role -> Perm.t -> unit

val add_ssd : t -> Sod.t -> unit
(** @raise Invalid_argument if an existing assignment already violates
    the new constraint. *)

val add_dsd : t -> Sod.t -> unit

(** {2 Review} *)

val users : t -> user list
val roles : t -> role list
val ssd_constraints : t -> Sod.t list
(** In insertion order. *)

val dsd_constraints : t -> Sod.t list
(** In insertion order. *)

val assigned_roles : t -> user -> role list
(** Directly assigned, sorted. *)

val authorized_roles : t -> user -> role list
(** Assigned roles plus everything they dominate (the roles the user
    may activate), sorted. *)

val direct_permissions : t -> role -> Perm.t list

val role_permissions : t -> role -> Perm.t list
(** With inheritance: the role's own permissions plus its juniors'. *)

val user_permissions : t -> user -> Perm.t list
(** Union over the user's authorized roles. *)

val users_of_role : t -> role -> user list
(** Users directly assigned the role. *)

val pp : Format.formatter -> t -> unit
