type role = string

type t = { graph : Digraph.t }
(* edges run senior -> junior *)

exception Cycle of role * role

let create () = { graph = Digraph.create () }
let add_role h r = Digraph.add_vertex h.graph r

let add_inheritance h ~senior ~junior =
  if String.equal senior junior then raise (Cycle (senior, junior));
  (* inserting senior->junior creates a cycle iff junior already
     reaches senior *)
  if
    Digraph.mem_vertex h.graph junior
    && List.mem senior (Digraph.reachable_from h.graph junior)
  then raise (Cycle (senior, junior));
  Digraph.add_edge h.graph senior junior

let mem h r = Digraph.mem_vertex h.graph r
let roles h = Digraph.vertices h.graph

let juniors h r =
  if mem h r then Digraph.reachable_from h.graph r else []

let seniors h r =
  if mem h r then
    List.sort String.compare
      (List.filter
         (fun r' -> List.mem r (Digraph.reachable_from h.graph r'))
         (roles h))
  else []

let dominates h ~senior ~junior =
  String.equal senior junior
  || (mem h senior && List.mem junior (Digraph.reachable_from h.graph senior))

let direct_juniors h r = Digraph.successors h.graph r
let pp ppf h = Digraph.pp ppf h.graph
