type verdict = Granted | Denied of string

let decide session ~operation ~target =
  if Session.may session ~operation ~target then Granted
  else
    Denied
      (Printf.sprintf "no active role of %s grants %s on %s"
         (Session.user session) operation target)

let decide_access session (a : Sral.Access.t) =
  decide session
    ~operation:(Sral.Access.operation_name a.op)
    ~target:(a.resource ^ "@" ^ a.server)

let is_granted = function Granted -> true | Denied _ -> false

let pp_verdict ppf = function
  | Granted -> Format.pp_print_string ppf "granted"
  | Denied why -> Format.fprintf ppf "denied (%s)" why
