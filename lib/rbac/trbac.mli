(** TRBAC-style temporal role enabling — the related-work baseline
    (Bertino et al., the paper's [3]).

    TRBAC attaches periodic enabling intervals to *roles*: a role's
    permissions are exercisable only while the role is enabled, and a
    disabling event revokes all of its granted privileges at once —
    which is exactly the granularity problem Section 4 criticizes
    ("different permissions authorized to a role often have different
    temporal constraints, [so] more roles need to be defined in
    TRBAC").  This engine exists so the paper's duration model can be
    compared against the interval model it replaces (experiment E11).

    Roles with no registered window are always enabled (plain RBAC). *)

type t

val create : Policy.t -> t
val policy : t -> Policy.t

val set_enabling : t -> role:string -> Temporal.Periodic.t -> unit
(** Replace the role's enabling windows. *)

val clear_enabling : t -> role:string -> unit

val is_enabled : t -> role:string -> at:Temporal.Q.t -> bool

val enabled_roles : t -> Session.t -> at:Temporal.Q.t -> string list
(** The session's active roles that are enabled at the instant. *)

val decide :
  t -> Session.t -> at:Temporal.Q.t -> operation:string -> target:string ->
  Engine.verdict
(** Grant iff some active *and currently enabled* role carries (with
    hierarchy inheritance) a matching permission. *)

val decide_access : t -> Session.t -> at:Temporal.Q.t -> Sral.Access.t -> Engine.verdict
