type t = { operation : string; target : string }

let make ~operation ~target = { operation; target }

let on_resource ~operation ~resource ~server =
  { operation; target = resource ^ "@" ^ server }

let split_target target =
  match String.index_opt target '@' with
  | None -> (target, None)
  | Some i ->
      ( String.sub target 0 i,
        Some (String.sub target (i + 1) (String.length target - i - 1)) )

let field_matches pattern value = pattern = "*" || String.equal pattern value

let matches perm ~operation ~target =
  field_matches perm.operation operation
  &&
  match (split_target perm.target, split_target target) with
  | (pr, Some ps), (r, Some s) -> field_matches pr r && field_matches ps s
  | (pr, None), (r, None) -> field_matches pr r
  | (pr, Some ps), (r, None) -> field_matches pr r && ps = "*"
  | (pr, None), (_, Some _) -> pr = "*"

let fields_overlap f1 f2 = f1 = "*" || f2 = "*" || String.equal f1 f2

let overlaps p1 p2 =
  fields_overlap p1.operation p2.operation
  &&
  match (split_target p1.target, split_target p2.target) with
  | (r1, Some s1), (r2, Some s2) ->
      fields_overlap r1 r2 && fields_overlap s1 s2
  | (r1, None), (r2, None) -> fields_overlap r1 r2
  | (r1, Some s1), (r2, None) | (r2, None), (r1, Some s1) ->
      (* an unstructured target only covers structured ones via "*" *)
      r2 = "*" || (fields_overlap r1 r2 && s1 = "*")

let field_subsumes f1 f2 = f1 = "*" || String.equal f1 f2

let subsumes p1 p2 =
  field_subsumes p1.operation p2.operation
  &&
  match (split_target p1.target, split_target p2.target) with
  | (r1, Some s1), (r2, Some s2) ->
      field_subsumes r1 r2 && field_subsumes s1 s2
  | (r1, None), (r2, None) -> field_subsumes r1 r2
  | (r1, Some s1), (r2, None) ->
      (* a structured pattern only covers an unstructured one wholesale *)
      r1 = "*" && s1 = "*" && (r2 = "*" || field_subsumes r1 r2)
  | (r1, None), (_, Some _) -> r1 = "*"

let compare p1 p2 =
  let c = String.compare p1.operation p2.operation in
  if c <> 0 then c else String.compare p1.target p2.target

let equal p1 p2 = compare p1 p2 = 0
let pp ppf p = Format.fprintf ppf "%s:%s" p.operation p.target
let to_string p = Format.asprintf "%a" pp p

let of_string s =
  match String.index_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Perm.of_string: missing ':' in %S" s)
  | Some i ->
      {
        operation = String.sub s 0 i;
        target = String.sub s (i + 1) (String.length s - i - 1);
      }
