(** Role hierarchies.

    A partial order on roles: senior roles inherit the permissions of
    their juniors, and a user assigned a senior role is authorized for
    all its juniors.  Maintained acyclic. *)

type role = string
type t

val create : unit -> t
val add_role : t -> role -> unit
(** Idempotent. *)

exception Cycle of role * role
(** [(senior, junior)] pair whose insertion would create a cycle. *)

val add_inheritance : t -> senior:role -> junior:role -> unit
(** Declare that [senior] inherits from (dominates) [junior].
    @raise Cycle if this would make the hierarchy cyclic. *)

val mem : t -> role -> bool
val roles : t -> role list
(** Sorted. *)

val juniors : t -> role -> role list
(** All roles dominated by the given role, including itself (when
    present), sorted. *)

val seniors : t -> role -> role list
(** All roles dominating the given role, including itself, sorted. *)

val dominates : t -> senior:role -> junior:role -> bool
(** Reflexive-transitive. *)

val direct_juniors : t -> role -> role list
val pp : Format.formatter -> t -> unit
