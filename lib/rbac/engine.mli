(** Plain-RBAC access decisions (the baseline engine).

    Decision pipeline: the request names a session, an operation and a
    target; grant iff some role active in the session carries (possibly
    by inheritance) a permission matching the request.  No spatial or
    temporal reasoning — that is the [coordinated] library's
    extension, benchmarked against this engine in experiment E6. *)

type verdict = Granted | Denied of string

val decide : Session.t -> operation:string -> target:string -> verdict

val decide_access : Session.t -> Sral.Access.t -> verdict
(** Convenience: target spelled ["resource@server"]. *)

val is_granted : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit
