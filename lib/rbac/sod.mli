(** Separation-of-duty constraints.

    Static SoD (SSD) limits how many roles from a conflicting set may
    be *assigned* to one user; dynamic SoD (DSD) limits how many may be
    *active* in one session.  The standard RBAC constraint family the
    paper's extended model layers its spatio-temporal constraints on
    top of. *)

type t = {
  name : string;
  roles : string list;  (** the conflicting role set *)
  max_roles : int;
      (** a user/session may hold strictly fewer than... no: at most
          [max_roles] roles from [roles].  [max_roles >= 1]. *)
}

val make : name:string -> roles:string list -> max_roles:int -> t
(** @raise Invalid_argument if [max_roles < 1] or [roles] has fewer
    than 2 elements. *)

val violates : t -> string list -> bool
(** Does holding the given role set violate the constraint? *)

val would_violate : t -> current:string list -> adding:string -> bool
val pp : Format.formatter -> t -> unit
