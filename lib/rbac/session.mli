(** Sessions (the paper's "subjects").

    A subject relates a user to possibly many roles: after
    authentication the user establishes a session and requests
    activation of roles they are authorized for; only permissions of
    *active* roles are exercisable (Section 3.4). *)

type t

exception Not_authorized of string * string
(** [(user, role)] *)

exception Dsd_violation of Sod.t * string * string

val create : Policy.t -> user:string -> t
(** @raise Policy.Unknown on an undeclared user. *)

val user : t -> string
val active_roles : t -> string list
(** Sorted. *)

val version : t -> int
(** Monotone stamp covering everything an RBAC decision for this
    session reads: it grows whenever the active-role set actually
    changes ({!activate}/{!deactivate}/{!drop} that are no-ops leave it
    alone) and whenever the backing {!Policy} is administratively
    modified.  Equal stamps ⟹ [may] answers are unchanged. *)

val activate : t -> string -> unit
(** @raise Not_authorized when the user may not activate the role;
    @raise Dsd_violation when dynamic separation of duty forbids it.
    Idempotent on an already-active role. *)

val deactivate : t -> string -> unit

val drop : t -> unit
(** Deactivate everything (session end). *)

val active_permissions : t -> Perm.t list
(** Permissions of the active roles, with inheritance, sorted. *)

val may : t -> operation:string -> target:string -> bool
(** Plain-RBAC decision: some active role carries a matching
    permission.  This is the baseline [Engine] builds on. *)

val pp : Format.formatter -> t -> unit
