(** Boolean state expressions over named state variables.

    Duration-calculus state expressions: each variable denotes a
    boolean step function (e.g. [valid_perm], [active_perm]); an
    expression denotes their pointwise boolean combination. *)

type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t

type interp = string -> Step_fn.t
(** @raise Not_found is allowed for unknown variables; {!eval} lets it
    propagate. *)

val eval : interp -> t -> Step_fn.t
val vars : t -> string list
(** Sorted, distinct. *)

val pp : Format.formatter -> t -> unit
