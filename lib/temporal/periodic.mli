(** TRBAC/GTRBAC-style periodic enabling intervals — the *baseline*
    temporal model the paper argues against (Sections 4 and 7).

    TRBAC attaches periodic intervals with explicit begin/end points to
    roles ("enabled daily 22:00–03:00").  This module compiles such
    periodic expressions into {!Step_fn}s over a bounded horizon, so
    the interval model and the paper's duration model can be run
    side by side (ablation E11): with unpredictable arrival times, a
    periodic window gives a mobile object anywhere between nothing and
    the full window, whereas a validity duration always gives the same
    budget — the paper's argument for durations, made measurable. *)

type t = {
  start : Q.t;  (** offset within the period, [0 <= start < period] *)
  length : Q.t;  (** window length, [0 < length <= period] *)
  period : Q.t;  (** e.g. 24 for daily with hour units *)
}

val make : start:Q.t -> length:Q.t -> period:Q.t -> t
(** @raise Invalid_argument on out-of-range fields. *)

val daily : start_hour:Q.t -> length_hours:Q.t -> t
(** Period 24. Windows may wrap midnight ([start + length > 24] is
    fine — the window continues into the next day). *)

val contains : t -> Q.t -> bool
(** Is the instant inside some repetition of the window? *)

val to_step_fn : horizon:Q.t -> t -> Step_fn.t
(** True exactly on the window's repetitions within [[0, horizon]]. *)

val next_window_start : t -> after:Q.t -> Q.t
(** First window opening at or after the given instant. *)

val enabled_measure : t -> Interval.t -> Q.t
(** Total enabled time within an interval (window ∩ interval measure). *)

val pp : Format.formatter -> t -> unit
