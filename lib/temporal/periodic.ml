type t = { start : Q.t; length : Q.t; period : Q.t }

let make ~start ~length ~period =
  if Q.sign period <= 0 then invalid_arg "Periodic.make: period <= 0";
  if Q.sign length <= 0 || Q.gt length period then
    invalid_arg "Periodic.make: length out of (0, period]";
  if Q.sign start < 0 || Q.ge start period then
    invalid_arg "Periodic.make: start out of [0, period)";
  { start; length; period }

let daily ~start_hour ~length_hours =
  make ~start:start_hour ~length:length_hours ~period:(Q.of_int 24)

(* largest k with k*period <= t, for t >= 0; for t < 0 rounds toward
   negative infinity so windows extend to the whole line *)
let cycle_index t ~period =
  let open Q in
  (* floor(t / period) on rationals *)
  let ratio = div t period in
  let n = ratio.num and d = ratio.den in
  if n >= 0 then n / d else -(((-n) + d - 1) / d)

let window_at p k =
  let base = Q.mul (Q.of_int k) p.period in
  let lo = Q.add base p.start in
  (lo, Q.add lo p.length)

let contains p t =
  let k = cycle_index (Q.sub t p.start) ~period:p.period in
  (* t could fall in cycle k's window (possibly wrapped from k) *)
  List.exists
    (fun k ->
      let lo, hi = window_at p k in
      Q.le lo t && Q.lt t hi)
    [ k - 1; k; k + 1 ]

let to_step_fn ~horizon p =
  if Q.sign horizon <= 0 then Step_fn.const false
  else begin
    let intervals = ref [] in
    let k = ref (cycle_index (Q.neg p.length) ~period:p.period - 1) in
    let continue_ = ref true in
    while !continue_ do
      let lo, hi = window_at p !k in
      if Q.gt lo horizon then continue_ := false
      else begin
        let lo' = Q.max lo Q.zero in
        let hi' = Q.min hi horizon in
        if Q.lt lo' hi' then
          intervals := Interval.make lo' hi' :: !intervals;
        incr k
      end
    done;
    Step_fn.of_intervals !intervals
  end

let next_window_start p ~after =
  let k = cycle_index (Q.sub after p.start) ~period:p.period in
  let rec search k =
    let lo, _ = window_at p k in
    if Q.ge lo after then lo else search (k + 1)
  in
  search (k - 1)

let enabled_measure p interval =
  let horizon = (interval : Interval.t).hi in
  Step_fn.integrate (to_step_fn ~horizon:(Q.add horizon p.period) p) interval

let pp ppf p =
  Format.fprintf ppf "every %a: [%a, %a)" Q.pp p.period Q.pp p.start Q.pp
    (Q.add p.start p.length)
