type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero
  else
    let sign = if den < 0 then -1 else 1 in
    let num = sign * num and den = sign * den in
    let g = gcd (abs num) den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let add q1 q2 = make ((q1.num * q2.den) + (q2.num * q1.den)) (q1.den * q2.den)
let sub q1 q2 = make ((q1.num * q2.den) - (q2.num * q1.den)) (q1.den * q2.den)
let mul q1 q2 = make (q1.num * q2.num) (q1.den * q2.den)

let div q1 q2 =
  if q2.num = 0 then raise Division_by_zero
  else make (q1.num * q2.den) (q1.den * q2.num)

let neg q = { q with num = -q.num }
let abs q = { q with num = Stdlib.abs q.num }
let inv q = if q.num = 0 then raise Division_by_zero else make q.den q.num
let compare q1 q2 = Int.compare (q1.num * q2.den) (q2.num * q1.den)
let equal q1 q2 = q1.num = q2.num && q1.den = q2.den
let lt q1 q2 = compare q1 q2 < 0
let le q1 q2 = compare q1 q2 <= 0
let gt q1 q2 = compare q1 q2 > 0
let ge q1 q2 = compare q1 q2 >= 0
let min q1 q2 = if le q1 q2 then q1 else q2
let max q1 q2 = if ge q1 q2 then q1 else q2
let sign q = Int.compare q.num 0
let mid q1 q2 = div (add q1 q2) (of_int 2)
let to_float q = float_of_int q.num /. float_of_int q.den

let of_string s =
  let s = String.trim s in
  let fail () = invalid_arg (Printf.sprintf "Q.of_string: %S" s) in
  let parse_int x = match int_of_string_opt x with Some i -> i | None -> fail () in
  match String.index_opt s '/' with
  | Some i ->
      let num = parse_int (String.sub s 0 i) in
      let den = parse_int (String.sub s (i + 1) (String.length s - i - 1)) in
      if den = 0 then fail () else make num den
  | None -> (
      match String.index_opt s '.' with
      | None -> of_int (parse_int s)
      | Some i ->
          let whole = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          if frac = "" then fail ()
          else
            let negative = String.length whole > 0 && whole.[0] = '-' in
            let w = if whole = "" || whole = "-" then 0 else parse_int whole in
            let f = parse_int frac in
            if f < 0 then fail ()
            else
              let scale =
                int_of_float (10. ** float_of_int (String.length frac))
              in
              let magnitude = add (of_int (Stdlib.abs w)) (make f scale) in
              if negative || w < 0 then neg magnitude else magnitude)

let pp ppf q =
  if q.den = 1 then Format.pp_print_int ppf q.num
  else Format.fprintf ppf "%d/%d" q.num q.den

let to_string q = Format.asprintf "%a" pp q

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( < ) = lt
  let ( <= ) = le
  let ( > ) = gt
  let ( >= ) = ge
  let ( = ) = equal
end
