type cmp = Lt | Le | Eq | Ge | Gt

type t =
  | True
  | Everywhere of State_expr.t
  | Dur_cmp of State_expr.t * cmp * Q.t
  | Len_cmp of cmp * Q.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Chop of t * t

let false_ = Not True
let implies f g = Or (Not f, g)
let begins f = Chop (f, True)
let ends f = Chop (True, f)
let eventually f = Chop (True, Chop (f, True))
let always f = Not (eventually (Not f))

let compare_q cmp x c =
  match cmp with
  | Lt -> Q.lt x c
  | Le -> Q.le x c
  | Eq -> Q.equal x c
  | Ge -> Q.ge x c
  | Gt -> Q.gt x c

(* All m in [iv.lo, iv.hi] where the accumulated true-time of [h] from
   iv.lo up to m equals [c]: walk the segments; a crossing inside a
   true segment is a single point, a plateau at exactly [c] over a
   false segment contributes its endpoints. *)
let prefix_crossings h (iv : Interval.t) c =
  if Q.sign c < 0 then []
  else begin
    let points = ref [] in
    let add t = points := t :: !points in
    let acc = ref Q.zero in
    if Q.equal !acc c then add iv.lo;
    let cuts =
      iv.lo :: Step_fn.change_times_in h iv @ [ iv.hi ]
    in
    let rec walk = function
      | a :: (b :: _ as rest) ->
          let v = Step_fn.value_at h a in
          let len = Q.sub b a in
          if v then begin
            let acc_end = Q.add !acc len in
            if Q.le !acc c && Q.le c acc_end then add (Q.add a (Q.sub c !acc));
            acc := acc_end
          end
          else if Q.equal !acc c then begin
            (* plateau: every m in [a,b] works; endpoints suffice *)
            add a;
            add b
          end;
          walk rest
      | [ _ ] | [] -> ()
    in
    walk cuts;
    !points
  end

(* Symmetric: all m where accumulated true-time from m to iv.hi equals c. *)
let suffix_crossings h (iv : Interval.t) c =
  if Q.sign c < 0 then []
  else begin
    let total = Step_fn.integrate h iv in
    (* ∫_m^hi = total - ∫_lo^m, so we need ∫_lo^m = total - c *)
    prefix_crossings h iv (Q.sub total c)
  end

type side = Prefix | Suffix

(* Candidate chop points contributed by a formula playing the given
   role in a chop on [iv]. *)
let rec candidates interp (iv : Interval.t) side formula acc =
  match formula with
  | True -> acc
  | Everywhere s ->
      let h = State_expr.eval interp s in
      Step_fn.change_times_in h iv @ acc
  | Dur_cmp (s, _, c) ->
      let h = State_expr.eval interp s in
      let crossings =
        match side with
        | Prefix -> prefix_crossings h iv c
        | Suffix -> suffix_crossings h iv c
      in
      crossings @ Step_fn.change_times_in h iv @ acc
  | Len_cmp (_, c) ->
      let point =
        match side with
        | Prefix -> Q.add iv.lo c
        | Suffix -> Q.sub iv.hi c
      in
      if Interval.contains iv point then point :: acc else acc
  | Not f -> candidates interp iv side f acc
  | And (f, g) | Or (f, g) ->
      candidates interp iv side f (candidates interp iv side g acc)
  | Chop (f, g) ->
      (* nested chop: take both operands' candidates for both roles —
         a sound over-approximation of the critical set *)
      let acc = candidates interp iv Prefix f acc in
      let acc = candidates interp iv Suffix f acc in
      let acc = candidates interp iv Prefix g acc in
      candidates interp iv Suffix g acc

let chop_points interp iv f g =
  let raw =
    candidates interp iv Prefix f (candidates interp iv Suffix g [])
  in
  let inside =
    List.filter (fun t -> Interval.contains iv t) raw
  in
  let base =
    List.sort_uniq Q.compare ((iv : Interval.t).lo :: (iv : Interval.t).hi :: inside)
  in
  (* add interior samples between consecutive candidates *)
  let rec with_mids = function
    | t1 :: (t2 :: _ as rest) -> t1 :: Q.mid t1 t2 :: with_mids rest
    | l -> l
  in
  with_mids base

let rec sat interp (iv : Interval.t) formula =
  match formula with
  | True -> true
  | Everywhere s ->
      let h = State_expr.eval interp s in
      (not (Interval.is_point iv))
      && Q.equal (Step_fn.integrate h iv) (Interval.length iv)
  | Dur_cmp (s, cmp, c) ->
      let h = State_expr.eval interp s in
      compare_q cmp (Step_fn.integrate h iv) c
  | Len_cmp (cmp, c) -> compare_q cmp (Interval.length iv) c
  | Not f -> not (sat interp iv f)
  | And (f, g) -> sat interp iv f && sat interp iv g
  | Or (f, g) -> sat interp iv f || sat interp iv g
  | Chop (f, g) ->
      List.exists
        (fun m ->
          match Interval.split iv m with
          | Some (left, right) -> sat interp left f && sat interp right g
          | None -> false)
        (chop_points interp iv f g)

let chop_witness interp iv f g =
  List.find_opt
    (fun m ->
      match Interval.split iv m with
      | Some (left, right) -> sat interp left f && sat interp right g
      | None -> false)
    (chop_points interp iv f g)

let rec size = function
  | True | Everywhere _ | Dur_cmp _ | Len_cmp _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Chop (f, g) -> 1 + size f + size g

let cmp_name = function
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "="
  | Ge -> ">="
  | Gt -> ">"

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Everywhere s -> Format.fprintf ppf "[[%a]]" State_expr.pp s
  | Dur_cmp (s, cmp, c) ->
      Format.fprintf ppf "int(%a) %s %a" State_expr.pp s (cmp_name cmp) Q.pp c
  | Len_cmp (cmp, c) -> Format.fprintf ppf "len %s %a" (cmp_name cmp) Q.pp c
  | Not f -> Format.fprintf ppf "!(%a)" pp f
  | And (f, g) -> Format.fprintf ppf "(%a && %a)" pp f pp g
  | Or (f, g) -> Format.fprintf ppf "(%a or %a)" pp f pp g
  | Chop (f, g) -> Format.fprintf ppf "(%a ; %a)" pp f pp g
