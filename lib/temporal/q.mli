(** Exact rational arithmetic on native integers.

    Section 4 assumes a continuous time model isomorphic to ℝ.  The
    decision procedures only ever need the field operations and exact
    comparison on times that are themselves finite combinations of the
    input constants, so ℚ suffices — and exactness is what makes
    Theorem 4.1's "decidable" honest in code (no float epsilons).

    Values are kept normalized ([den > 0], [gcd |num| den = 1]).
    Native-int overflow is the usual caveat of this representation; the
    library targets constraint constants, not astronomy. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den].  @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int

val mid : t -> t -> t
(** Midpoint — used to sample the interior of candidate intervals in
    the duration-calculus chop search. *)

val to_float : t -> float

val of_string : string -> t
(** Accepts ["3"], ["3/4"], ["-1/2"], and decimals like ["2.5"].
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Infix aliases, intended for local [open Q.O]. *)
module O : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( = ) : t -> t -> bool
end
