type scheme = Per_server | Whole_journey

let pp_scheme ppf = function
  | Per_server -> Format.pp_print_string ppf "per-server"
  | Whole_journey -> Format.pp_print_string ppf "whole-journey"

let check_arrivals arrivals =
  match arrivals with
  | [] -> invalid_arg "Validity: empty arrival list"
  | first :: rest ->
      let rec sorted prev = function
        | [] -> ()
        | t :: rest ->
            if Q.lt t prev then invalid_arg "Validity: arrivals not sorted"
            else sorted t rest
      in
      sorted first rest;
      first

(* Valid function within one base window [base, stop): active, cut once
   the accumulated active time since [base] reaches [dur].  Eq. 4.1 is
   self-referential (valid accumulates *valid* time), but within one
   window valid = active up to the cutoff and 0 after, so the
   accumulated valid time equals the accumulated active time until the
   budget is spent — the unique solution is active truncated at the
   moment its own accumulation reaches dur. *)
let window_valid ~active ~base ~stop ~dur =
  let clip f =
    (* f restricted to [base, stop): false outside *)
    let window =
      match stop with
      | None -> Step_fn.of_changes ~init:false [ (base, true) ]
      | Some s -> Step_fn.of_intervals [ Interval.make base s ]
    in
    Step_fn.and_ f window
  in
  match dur with
  | None -> clip active
  | Some dur -> (
      if Q.sign dur < 0 then invalid_arg "Validity: negative duration";
      let windowed = clip active in
      match Step_fn.accum_reaches windowed ~from:base ~budget:dur with
      | None -> windowed
      | Some cutoff ->
          let mask = Step_fn.of_changes ~init:true [ (cutoff, false) ] in
          Step_fn.and_ windowed mask)

let valid_fn ~scheme ~arrivals ~dur active =
  let first = check_arrivals arrivals in
  match scheme with
  | Whole_journey -> window_valid ~active ~base:first ~stop:None ~dur
  | Per_server ->
      let rec windows = function
        | [] -> []
        | [ last ] -> [ window_valid ~active ~base:last ~stop:None ~dur ]
        | t :: (t' :: _ as rest) ->
            window_valid ~active ~base:t ~stop:(Some t') ~dur :: windows rest
      in
      List.fold_left Step_fn.or_ (Step_fn.const false) (windows arrivals)

let is_valid_at ~scheme ~arrivals ~dur active t =
  Step_fn.value_at (valid_fn ~scheme ~arrivals ~dur active) t

let spent ~scheme ~arrivals ~dur active ~at =
  let first = check_arrivals arrivals in
  let base =
    match scheme with
    | Whole_journey -> first
    | Per_server ->
        List.fold_left
          (fun acc t -> if Q.le t at then Q.max acc t else acc)
          first arrivals
  in
  let valid = valid_fn ~scheme ~arrivals ~dur active in
  if Q.lt at base then Q.zero
  else Step_fn.integrate valid (Interval.make base at)

let as_dc_formula ~dur ~valid_var =
  Duration_calculus.Dur_cmp (State_expr.Var valid_var, Duration_calculus.Le, dur)
