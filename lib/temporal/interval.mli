(** Closed, bounded time intervals [[lo, hi]] with [lo <= hi]. *)

type t = private { lo : Q.t; hi : Q.t }

val make : Q.t -> Q.t -> t
(** @raise Invalid_argument when [lo > hi]. *)

val of_ints : int -> int -> t
val length : t -> Q.t
val is_point : t -> bool
val contains : t -> Q.t -> bool
val subsumes : t -> t -> bool
(** [subsumes outer inner]. *)

val inter : t -> t -> t option
val split : t -> Q.t -> (t * t) option
(** [split iv m] is [Some ([lo,m], [m,hi])] when [m ∈ iv]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
