type t = { lo : Q.t; hi : Q.t }

let make lo hi =
  if Q.gt lo hi then
    invalid_arg
      (Format.asprintf "Interval.make: %a > %a" Q.pp lo Q.pp hi)
  else { lo; hi }

let of_ints lo hi = make (Q.of_int lo) (Q.of_int hi)
let length iv = Q.sub iv.hi iv.lo
let is_point iv = Q.equal iv.lo iv.hi
let contains iv t = Q.le iv.lo t && Q.le t iv.hi
let subsumes outer inner = Q.le outer.lo inner.lo && Q.ge outer.hi inner.hi

let inter iv1 iv2 =
  let lo = Q.max iv1.lo iv2.lo in
  let hi = Q.min iv1.hi iv2.hi in
  if Q.le lo hi then Some { lo; hi } else None

let split iv m =
  if contains iv m then Some ({ lo = iv.lo; hi = m }, { lo = m; hi = iv.hi })
  else None

let equal iv1 iv2 = Q.equal iv1.lo iv2.lo && Q.equal iv1.hi iv2.hi
let pp ppf iv = Format.fprintf ppf "[%a, %a]" Q.pp iv.lo Q.pp iv.hi
