type t = { init : bool; changes : (Q.t * bool) array }

(* Normalization: sort by time (stable, so a later entry in the input
   list wins at equal times), then drop changes that do not change the
   value. *)
let normalize ~init entries =
  let entries = List.stable_sort (fun (t1, _) (t2, _) -> Q.compare t1 t2) entries in
  (* keep last entry per time *)
  let rec dedup = function
    | (t1, _) :: ((t2, _) :: _ as rest) when Q.equal t1 t2 -> dedup rest
    | e :: rest -> e :: dedup rest
    | [] -> []
  in
  let entries = dedup entries in
  let rec compact current = function
    | [] -> []
    | (t, v) :: rest ->
        if Bool.equal v current then compact current rest
        else (t, v) :: compact v rest
  in
  { init; changes = Array.of_list (compact init entries) }

let const b = { init = b; changes = [||] }
let of_changes ~init entries = normalize ~init entries

let of_intervals intervals =
  (* Overlapping intervals need counting, not last-wins: sweep with a
     depth counter. *)
  let events =
    List.concat_map
      (fun (iv : Interval.t) ->
        if Interval.is_point iv then [] else [ (iv.lo, 1); (iv.hi, -1) ])
      intervals
  in
  if events = [] then const false
  else begin
    let events =
      List.stable_sort (fun (t1, _) (t2, _) -> Q.compare t1 t2) events
    in
    (* merge events at equal times *)
    let rec merge = function
      | (t1, d1) :: (t2, d2) :: rest when Q.equal t1 t2 ->
          merge ((t1, d1 + d2) :: rest)
      | e :: rest -> e :: merge rest
      | [] -> []
    in
    let events = merge events in
    let depth = ref 0 in
    let changes =
      List.filter_map
        (fun (t, d) ->
          let before = !depth > 0 in
          depth := !depth + d;
          let after = !depth > 0 in
          if Bool.equal before after then None else Some (t, after))
        events
    in
    normalize ~init:false changes
  end

let value_at f t =
  (* last change with time <= t *)
  let n = Array.length f.changes in
  let rec search lo hi acc =
    if lo > hi then acc
    else
      let mid = (lo + hi) / 2 in
      let time, v = f.changes.(mid) in
      if Q.le time t then search (mid + 1) hi (Some v) else search lo (mid - 1) acc
  in
  match search 0 (n - 1) None with Some v -> v | None -> f.init

let not_ f =
  { init = not f.init; changes = Array.map (fun (t, v) -> (t, not v)) f.changes }

let combine op f g =
  let entries = Array.to_list f.changes @ Array.to_list g.changes in
  let times = List.sort_uniq Q.compare (List.map fst entries) in
  let changes = List.map (fun t -> (t, op (value_at f t) (value_at g t))) times in
  normalize ~init:(op f.init g.init) changes

let and_ f g = combine ( && ) f g
let or_ f g = combine ( || ) f g
let xor_ f g = combine ( <> ) f g

let changes f = Array.to_list f.changes

let segments f (iv : Interval.t) =
  (* list of (subinterval, value) partitioning iv *)
  let inner =
    List.filter (fun (t, _) -> Q.lt iv.lo t && Q.lt t iv.hi) (changes f)
  in
  let cuts = iv.lo :: List.map fst inner @ [ iv.hi ] in
  let rec pair = function
    | t1 :: (t2 :: _ as rest) ->
        (Interval.make t1 t2, value_at f t1) :: pair rest
    | [ _ ] | [] -> []
  in
  pair cuts

let integrate f iv =
  List.fold_left
    (fun acc (seg, v) -> if v then Q.add acc (Interval.length seg) else acc)
    Q.zero (segments f iv)

let accum_reaches f ~from ~budget =
  if Q.sign budget < 0 then invalid_arg "Step_fn.accum_reaches: negative budget";
  if Q.sign budget = 0 then Some from
  else
    (* Walk the true-segments after [from]; the function is eventually
       constant past its last change. *)
    let last_change =
      if Array.length f.changes = 0 then from
      else Q.max from (fst f.changes.(Array.length f.changes - 1))
    in
    let tail_value = value_at f last_change in
    let horizon = Q.add last_change Q.one in
    let seg_list = segments f (Interval.make from (Q.max from horizon)) in
    let rec walk acc = function
      | [] ->
          if tail_value then
            (* accumulate indefinitely past the horizon *)
            Some (Q.add horizon (Q.sub budget acc))
          else None
      | ((seg : Interval.t), v) :: rest ->
          if not v then walk acc rest
          else
            let len = Interval.length seg in
            let acc' = Q.add acc len in
            if Q.ge acc' budget then Some (Q.add seg.lo (Q.sub budget acc))
            else walk acc' rest
    in
    if Q.equal from (Q.max from horizon) then
      if tail_value then Some (Q.add from budget) else None
    else walk Q.zero seg_list

let change_times_in f iv =
  List.filter_map
    (fun (t, _) ->
      if Q.lt (iv : Interval.t).lo t && Q.lt t iv.hi then Some t else None)
    (changes f)

let initial f = f.init

let equal f g =
  Bool.equal f.init g.init
  && Array.length f.changes = Array.length g.changes
  && Array.for_all2
       (fun (t1, v1) (t2, v2) -> Q.equal t1 t2 && Bool.equal v1 v2)
       f.changes g.changes

let pp ppf f =
  Format.fprintf ppf "%b" f.init;
  Array.iter (fun (t, v) -> Format.fprintf ppf " |%a-> %b" Q.pp t v) f.changes
