(** Right-continuous boolean step functions over continuous time.

    Section 4 models permission states as boolean-valued functions
    [Time → {0,1}].  A step function is an initial value plus a finite,
    strictly increasing sequence of change points; its value at [t] is
    the value set by the last change at or before [t].  All operations
    keep the representation normalized (consecutive changes alternate),
    so structural equality is extensional equality. *)

type t

val const : bool -> t

val of_changes : init:bool -> (Q.t * bool) list -> t
(** Changes need not be normalized (they are sorted and de-duplicated,
    later entries at the same time winning, redundant entries dropped).
    @raise Invalid_argument on two different values at the same time
    appearing in an ambiguous order?  No — last one wins, by design. *)

val of_intervals : Interval.t list -> t
(** True exactly on the union of the (right-open versions of the)
    intervals: each [[lo,hi]] contributes truth on [[lo,hi)). Point
    intervals therefore contribute nothing (they have measure zero). *)

val value_at : t -> Q.t -> bool
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor_ : t -> t -> t

val integrate : t -> Interval.t -> Q.t
(** Measure of [{t ∈ iv | f t}] — the paper's [∫ valid(perm, t) dt]. *)

val accum_reaches : t -> from:Q.t -> budget:Q.t -> Q.t option
(** Earliest [u >= from] such that the measure of
    [{t ∈ [from,u] | f t}] equals [budget], i.e. the moment a validity
    budget is exhausted.  [None] if the total accumulation after [from]
    never reaches [budget] (requires the function to be eventually
    constant, which a finite representation always is).
    @raise Invalid_argument on negative budget. *)

val changes : t -> (Q.t * bool) list
(** Normalized change list. *)

val change_times_in : t -> Interval.t -> Q.t list
(** Change points strictly inside the interval, ascending. *)

val initial : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
