type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t

type interp = string -> Step_fn.t

let rec eval interp = function
  | Const b -> Step_fn.const b
  | Var x -> interp x
  | Not e -> Step_fn.not_ (eval interp e)
  | And (e1, e2) -> Step_fn.and_ (eval interp e1) (eval interp e2)
  | Or (e1, e2) -> Step_fn.or_ (eval interp e1) (eval interp e2)

let vars e =
  let rec collect acc = function
    | Const _ -> acc
    | Var x -> x :: acc
    | Not e -> collect acc e
    | And (e1, e2) | Or (e1, e2) -> collect (collect acc e1) e2
  in
  List.sort_uniq String.compare (collect [] e)

let rec pp ppf = function
  | Const b -> Format.pp_print_bool ppf b
  | Var x -> Format.pp_print_string ppf x
  | Not e -> Format.fprintf ppf "!%a" pp_atom e
  | And (e1, e2) -> Format.fprintf ppf "%a && %a" pp_atom e1 pp_atom e2
  | Or (e1, e2) -> Format.fprintf ppf "%a or %a" pp_atom e1 pp_atom e2

and pp_atom ppf e =
  match e with
  | Const _ | Var _ | Not _ -> pp ppf e
  | And _ | Or _ -> Format.fprintf ppf "(%a)" pp e
