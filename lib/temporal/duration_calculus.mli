(** Model checking for a duration-calculus fragment.

    Section 4 expresses temporal constraints with boolean-valued state
    functions and integrals of states over intervals (following Zhou &
    Hansen's Duration Calculus, the paper's [11]).  This module decides
    [interp, [b,e] ⊨ φ] for the fragment

    {v
      φ ::= true | ⌈S⌉ | ∫S ⋈ c | ℓ ⋈ c | ¬φ | φ∧φ | φ∨φ | φ;φ
    v}

    over piecewise-constant interpretations — which is exactly the
    shape Theorem 4.1 needs (the permission-validity formula is
    [active ∧ ∫valid ≤ dur]).

    Decision procedure: atomic formulas reduce to exact rational
    comparisons; for chop [φ₁;φ₂] the truth of each operand as a
    function of the chop point [m] changes only at finitely many
    critical times (state-change points, integral-threshold crossings
    and length-threshold points), so it suffices to test those times
    and one interior sample between each consecutive pair.  This is
    sound and complete when chop operands are chop-free; nested chops
    reuse the same candidate set and remain sound (tested) but
    completeness is only guaranteed for the nesting produced by this
    library's own encodings. *)

type cmp = Lt | Le | Eq | Ge | Gt

type t =
  | True
  | Everywhere of State_expr.t
      (** [⌈S⌉]: the interval is non-degenerate and S holds (almost)
          everywhere on it, i.e. [∫S = ℓ ∧ ℓ > 0]. *)
  | Dur_cmp of State_expr.t * cmp * Q.t  (** [∫S ⋈ c] *)
  | Len_cmp of cmp * Q.t  (** [ℓ ⋈ c] *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Chop of t * t  (** [φ₁ ; φ₂] *)

val false_ : t
val implies : t -> t -> t

(** {2 Derived modalities} (standard DC abbreviations)

    These expand to nested chops; the decision procedure is sound for
    them and complete on the piecewise-constant interpretations this
    library produces (each nested chop's critical points are collected
    recursively). *)

val eventually : t -> t
(** [◇φ = true ; φ ; true]: some subinterval satisfies φ. *)

val always : t -> t
(** [□φ = ¬◇¬φ]: every subinterval satisfies φ. *)

val begins : t -> t
(** [φ ; true]: some prefix satisfies φ. *)

val ends : t -> t
(** [true ; φ]: some suffix satisfies φ. *)

val sat : State_expr.interp -> Interval.t -> t -> bool
(** [sat interp iv φ] decides [interp, iv ⊨ φ]. *)

val chop_witness : State_expr.interp -> Interval.t -> t -> t -> Q.t option
(** A chop point witnessing [sat interp iv (Chop (f, g))], if any. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
