(** Permission validity durations — Equation 4.1 of the paper.

    Each permission carries a validity duration [dur(perm)] (a positive
    rational, or [None] for ∞, meaning the resource is
    time-insensitive).  Its [valid] state function satisfies

    {v  valid(t) = 1  ⟺  active(t) = 1  ∧  ∫_tb^t valid(u) du ≤ dur  v}

    i.e. the permission stays valid while active, until it has
    accumulated [dur] units of validity since the base time [tb]; past
    that it is invalid forever (with respect to that base time).

    Two base-time schemes (Section 4): [Per_server] takes [tb] to be
    the arrival time at the current server, so the budget resets at
    each migration; [Whole_journey] takes [tb] to be the arrival time
    at the first server, so the budget spans the object's entire
    execution. *)

type scheme = Per_server | Whole_journey

val pp_scheme : Format.formatter -> scheme -> unit

val valid_fn :
  scheme:scheme -> arrivals:Q.t list -> dur:Q.t option -> Step_fn.t -> Step_fn.t
(** [valid_fn ~scheme ~arrivals ~dur active] is the unique solution of
    Eq. 4.1.  [arrivals] are the object's server-arrival times,
    ascending; with [Per_server] the accumulation restarts at each.
    Activity before the first arrival never counts.
    @raise Invalid_argument if [arrivals] is empty or not sorted, or if
    [dur] is negative. *)

val is_valid_at :
  scheme:scheme -> arrivals:Q.t list -> dur:Q.t option -> Step_fn.t -> Q.t -> bool
(** [is_valid_at ... active t] = value of {!valid_fn} at [t]. *)

val spent :
  scheme:scheme -> arrivals:Q.t list -> dur:Q.t option -> Step_fn.t -> at:Q.t -> Q.t
(** Validity budget consumed in the current base-time window at [at]. *)

val as_dc_formula : dur:Q.t -> valid_var:string -> Duration_calculus.t
(** The Theorem 4.1 constraint [∫valid ≤ dur] as a duration-calculus
    formula over the given state-variable name, for checking with
    {!Duration_calculus.sat} on [[tb, t]]. *)
