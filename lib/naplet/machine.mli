(** Small-step execution machine for one mobile object's SRAL program.

    The program is defunctionalized into a set of threads (one per
    active [||] branch) holding explicit continuation stacks, so the
    world can interleave agents, block threads on channels/signals and
    resume them later — deterministic concurrency without OS threads.

    Silent steps (assignment, branching, loop unrolling, [skip]) are
    executed internally; the machine surfaces only the actions the
    world must arbitrate. *)

type request =
  | Access of Sral.Access.t
  | Send of string * Sral.Value.t  (** channel, evaluated payload *)
  | Recv of string * string  (** channel, target variable *)
  | Signal of string
  | Wait of string

type status =
  | Ready of { thread : int; request : request; silent_steps : int }
      (** A thread reached an action; [silent_steps] were taken first
          (for time accounting). *)
  | All_blocked
      (** Every live thread is parked — the world must wake one. *)
  | Finished
  | Fault of string
      (** Dynamic error (unbound variable, type error, fuel
          exhaustion). *)

type t

val create : ?fuel:int -> Sral.Ast.t -> t
(** [fuel] (default 100_000) bounds consecutive silent steps before the
    machine declares divergence — [while true do skip] cannot hang the
    simulator. *)

val step : t -> status
(** Run until the next action request, rotating over runnable threads
    fairly.  Calling [step] again without completing a surfaced request
    re-surfaces it. *)

val complete : t -> thread:int -> unit
(** The surfaced request was fulfilled; the thread moves on. *)

val complete_recv : t -> thread:int -> var:string -> Sral.Value.t -> unit
(** Fulfil a [Recv]: bind the variable, then move on. *)

val block : t -> thread:int -> unit
(** Park the thread (its request stays pending). *)

val unblock : t -> thread:int -> unit

val skip_request : t -> thread:int -> unit
(** Abandon the surfaced request and move on without performing it —
    the deny-and-continue policy for refused accesses. *)

val env_value : t -> string -> Sral.Value.t option
val live_threads : t -> int
val is_finished : t -> bool
