type status =
  | Running
  | Waiting
  | Completed of Temporal.Q.t
  | Aborted of string

type t = {
  id : string;
  owner : string;
  roles : string list;
  home : string;
  program : Sral.Ast.t;
  machine : Machine.t;
  mutable location : string option;
  mutable status : status;
}

let make ~id ~owner ~roles ~home ?fuel program =
  {
    id;
    owner;
    roles;
    home;
    program;
    machine = Machine.create ?fuel program;
    location = None;
    status = Running;
  }

let is_live a = match a.status with Running | Waiting -> true | _ -> false

let pp_status ppf = function
  | Running -> Format.pp_print_string ppf "running"
  | Waiting -> Format.pp_print_string ppf "waiting"
  | Completed t -> Format.fprintf ppf "completed at %a" Temporal.Q.pp t
  | Aborted why -> Format.fprintf ppf "aborted: %s" why

let pp ppf a =
  Format.fprintf ppf "naplet %s (owner %s, at %s): %a" a.id a.owner
    (match a.location with Some s -> s | None -> "<dispatch>")
    pp_status a.status
