module Q = Temporal.Q

type deny_policy = Skip_access | Abort_agent

type config = {
  migration_latency : Q.t;
  step_cost : Q.t;
  deny_policy : deny_policy;
  fuel : int;
  max_events : int;
}

let default_config =
  {
    migration_latency = Q.of_int 5;
    step_cost = Q.make 1 100;
    deny_policy = Skip_access;
    fuel = 100_000;
    max_events = 1_000_000;
  }

(* Flat event payloads: everything the steady-state loop schedules is
   plain data keyed by interned ids — no closures, so a parked event
   costs a few words and captures nothing.  [Admin] remains only for
   the public [at] API (security-officer interventions are rare and
   inherently arbitrary code). *)
type event =
  | Step of int  (** agent id *)
  | Crash_boundary of { server : string; up : bool }
  | Deliver of { chan : string; value : Sral.Value.t }
  | Recv_deadline of { chan : string; agent : int; thread : int }
  | Admin of (unit -> unit)

type fault_state = {
  injector : Fault.Injector.t;
  resilience : Fault.Resilience.t;
}

(* agent status codes for the SoA status column *)
let st_running = 0
let st_waiting = 1
let st_completed = 2
let st_aborted = 3

(* The world's state is struct-of-arrays: agents and servers are dense
   int ids (see {!Intern}), and each per-agent attribute is a column
   indexed by id, grown geometrically.  Identity data (owner, roles,
   program, machine) sits beside the hot mutable columns (status,
   location, retries); the string names exist only in the arenas and
   round-trip exactly into every emitted trace event. *)
type t = {
  config : config;
  manager : Security_manager.t;
  bus : Obs.Bus.t;
  (* agent columns, indexed by [anames] id; [n_agents] rows live *)
  anames : Intern.t;
  mutable a_owner : string array;
  mutable a_roles : string list array;
  mutable a_home : int array;  (* server id *)
  mutable a_program : Sral.Ast.t array;
  mutable a_machine : Machine.t array;
  mutable a_session : Rbac.Session.t option array;
  mutable a_status : int array;
  mutable a_end : Q.t array;  (* completion time when [st_completed] *)
  mutable a_reason : string array;  (* abort reason when [st_aborted] *)
  mutable a_location : int array;  (* server id, -1 before dispatch *)
  mutable a_retries : int array;
  mutable n_agents : int;
  (* server column, indexed by [snames] id; migration targets that were
     never registered intern an id but keep a [None] slot *)
  snames : Intern.t;
  mutable srv : Server.t option array;
  channels : Channel.t;
  signals : Signal_table.t;
  events : event Sim.t;
  mutable clock : Q.t;
  mutable appraisal : Appraisal.t option;
  mutable faults : fault_state option;
  event_log : Event_log.t;
  metrics : Metrics.t;
  mutable processed : int;
}

let create ?(config = default_config) control =
  let t =
    {
      config;
      manager = Security_manager.create control;
      bus = Coordinated.System.bus control;
      anames = Intern.create ();
      a_owner = [||];
      a_roles = [||];
      a_home = [||];
      a_program = [||];
      a_machine = [||];
      a_session = [||];
      a_status = [||];
      a_end = [||];
      a_reason = [||];
      a_location = [||];
      a_retries = [||];
      n_agents = 0;
      snames = Intern.create ();
      srv = [||];
      channels = Channel.create ();
      signals = Signal_table.create ();
      events = Sim.create ();
      clock = Q.zero;
      appraisal = None;
      faults = None;
      event_log = Event_log.create ();
      metrics = Metrics.create ();
      processed = 0;
    }
  in
  (* the world's stores consume the bus rather than being hand-wired
     into the simulation loop; the membership filter keeps a shared
     control's foreign traffic out of this world's books *)
  let mine id = Intern.mem t.anames id in
  Obs.Bus.subscribe t.bus (Event_log.sink ~relevant:mine t.event_log);
  Obs.Bus.subscribe t.bus (Metrics.sink ~relevant:mine t.metrics);
  t

let manager t = t.manager
let set_appraisal t appraisal = t.appraisal <- Some appraisal

(* Farmer-style state appraisal at arrival: a corrupted agent is
   quarantined before it can request anything. *)
let appraise t i =
  match t.appraisal with
  | None -> Appraisal.Sound
  | Some appraisal -> Appraisal.appraise appraisal (Machine.env_value t.a_machine.(i))

let grow_servers t needed =
  if needed > Array.length t.srv then begin
    let bigger = Array.make (max 16 (2 * needed)) None in
    Array.blit t.srv 0 bigger 0 (Array.length t.srv);
    t.srv <- bigger
  end

let add_server t s =
  let sid = Intern.intern t.snames (Server.name s) in
  grow_servers t (sid + 1);
  t.srv.(sid) <- Some s

let server_slot t sid = if sid < Array.length t.srv then t.srv.(sid) else None

let server t name =
  match Intern.find t.snames name with
  | None -> None
  | Some sid -> server_slot t sid

(* registered servers in id (registration) order — a straight indexed
   walk; nothing is rebuilt or re-sorted per call *)
let servers t =
  let acc = ref [] in
  for sid = Intern.count t.snames - 1 downto 0 do
    match server_slot t sid with Some s -> acc := s :: !acc | None -> ()
  done;
  !acc

let clock t = t.clock

let status_of t i =
  match t.a_status.(i) with
  | 0 -> Agent.Running
  | 1 -> Agent.Waiting
  | 2 -> Agent.Completed t.a_end.(i)
  | _ -> Agent.Aborted t.a_reason.(i)

(* The compatibility view: an [Agent.t] record synthesized from row
   [i]'s columns.  The machine (and everything reachable from it) is
   shared with the row; the record itself is fresh per call, so
   callers see a read-only snapshot of status/location. *)
let view t i =
  {
    Agent.id = Intern.name t.anames i;
    owner = t.a_owner.(i);
    roles = t.a_roles.(i);
    home = Intern.name t.snames t.a_home.(i);
    program = t.a_program.(i);
    machine = t.a_machine.(i);
    location =
      (let l = t.a_location.(i) in
       if l < 0 then None else Some (Intern.name t.snames l));
    status = status_of t i;
  }

let agent t id =
  match Intern.find t.anames id with
  | Some i when i < t.n_agents -> Some (view t i)
  | _ -> None

(* agents in id (spawn) order — an indexed walk, no sort *)
let agents t = List.init t.n_agents (view t)

let metrics t = t.metrics
let channels t = t.channels
let events t = t.event_log
let processed_events t = t.processed

let emit t ev = Obs.Bus.emit t.bus ev

let schedule_step t i ~time = Sim.schedule t.events ~time (Step i)

let at t ~time action = Sim.schedule t.events ~time (Admin action)

let pending_events t = Sim.size t.events

(* Kill switch: forget every pending event; [run]'s next pop sees an
   empty queue and winds the world down. *)
let halt t = Sim.clear t.events

let set_faults ?(resilience = Fault.Resilience.default) t injector =
  t.faults <- Some { injector; resilience };
  (* the security manager fails closed against the crash schedule *)
  Security_manager.set_availability t.manager (fun ~server ~time ->
      Fault.Injector.server_down injector ~server ~time);
  (* crash-window boundaries become observable bus events *)
  let plan = Fault.Injector.plan injector in
  List.iter
    (fun (server, windows) ->
      List.iter
        (fun (w : Fault.Plan.window) ->
          Sim.schedule t.events ~time:w.Fault.Plan.from_
            (Crash_boundary { server; up = false });
          Sim.schedule t.events ~time:w.Fault.Plan.until
            (Crash_boundary { server; up = true }))
        windows)
    plan.Fault.Plan.crashes

let arrive t i ~server_id ~time =
  t.a_location.(i) <- server_id;
  let session, _rejected =
    Security_manager.on_arrival t.manager
      ~object_id:(Intern.name t.anames i)
      ~owner:t.a_owner.(i) ~roles:t.a_roles.(i)
      ~server:(Intern.name t.snames server_id)
      ~time ~program:t.a_program.(i)
  in
  t.a_session.(i) <- Some session

let finish_agent t i status =
  match status with
  | Agent.Completed time ->
      t.a_status.(i) <- st_completed;
      t.a_end.(i) <- time;
      emit t (Obs.Trace.Completed { time; agent = Intern.name t.anames i })
  | Agent.Aborted why ->
      t.a_status.(i) <- st_aborted;
      t.a_reason.(i) <- why;
      (* a killed agent releases whatever it still held: parked channel
         receivers, signal waiters, and its retry bookkeeping *)
      let name = Intern.name t.anames i in
      ignore (Channel.cancel_agent t.channels ~agent:name);
      ignore (Signal_table.cancel_agent t.signals ~agent:name);
      t.a_retries.(i) <- 0;
      emit t (Obs.Trace.Aborted { time = t.clock; agent = name; reason = why })
  | Agent.Running | Agent.Waiting -> ()

let grow_agents t ~program ~machine needed =
  if needed > Array.length t.a_status then begin
    let cap = max 16 (2 * needed) in
    let col a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.n_agents;
      b
    in
    t.a_owner <- col t.a_owner "";
    t.a_roles <- col t.a_roles [];
    t.a_home <- col t.a_home (-1);
    t.a_program <- col t.a_program program;
    t.a_machine <- col t.a_machine machine;
    t.a_session <- col t.a_session None;
    t.a_status <- col t.a_status st_running;
    t.a_end <- col t.a_end Q.zero;
    t.a_reason <- col t.a_reason "";
    t.a_location <- col t.a_location (-1);
    t.a_retries <- col t.a_retries 0
  end

let spawn ?team t ~id ~owner ~roles ~home program =
  if Intern.mem t.anames id then
    invalid_arg ("World.spawn: duplicate agent id " ^ id);
  let home_id =
    match Intern.find t.snames home with
    | Some sid when server_slot t sid <> None -> sid
    | _ -> invalid_arg ("World.spawn: unknown home server " ^ home)
  in
  let machine = Machine.create ~fuel:t.config.fuel program in
  let i = Intern.intern t.anames id in
  grow_agents t ~program ~machine (i + 1);
  t.a_owner.(i) <- owner;
  t.a_roles.(i) <- roles;
  t.a_home.(i) <- home_id;
  t.a_program.(i) <- program;
  t.a_machine.(i) <- machine;
  t.a_session.(i) <- None;
  t.a_status.(i) <- st_running;
  t.a_end.(i) <- Q.zero;
  t.a_reason.(i) <- "";
  t.a_location.(i) <- -1;
  t.a_retries.(i) <- 0;
  t.n_agents <- i + 1;
  (match team with
  | Some team ->
      Coordinated.System.join_team
        (Security_manager.control t.manager)
        ~object_id:id ~team
  | None -> ());
  arrive t i ~server_id:home_id ~time:t.clock;
  emit t (Obs.Trace.Spawned { time = t.clock; agent = id; home });
  match appraise t i with
  | Appraisal.Corrupted invariant ->
      finish_agent t i
        (Agent.Aborted (Printf.sprintf "state appraisal failed: %s" invariant))
  | Appraisal.Sound -> schedule_step t i ~time:t.clock

let is_live t i = t.a_status.(i) <= st_waiting

(* Wake a parked (agent, thread): unblock the machine thread and, if
   the whole agent was waiting, get it back on the event queue. *)
let wake_id t i ~thread ~time =
  if is_live t i then begin
    Machine.unblock t.a_machine.(i) ~thread;
    if t.a_status.(i) = st_waiting then begin
      t.a_status.(i) <- st_running;
      schedule_step t i ~time
    end
  end

let wake t ~agent ~thread ~time =
  match Intern.find t.anames agent with
  | None -> ()
  | Some i -> wake_id t i ~thread ~time

let decide_verdict t i ~time a =
  let object_id = Intern.name t.anames i in
  match t.a_session.(i) with
  | Some session ->
      Security_manager.check_session t.manager ~session ~object_id
        ~program:t.a_program.(i) ~time a
  | None ->
      Security_manager.check t.manager ~object_id ~program:t.a_program.(i)
        ~time a

let rec handle_access t i ~thread ~time (a : Sral.Access.t) =
  (* migrate first when the access targets another server *)
  let dest_id = Intern.intern t.snames a.Sral.Access.server in
  let migrated = t.a_location.(i) <> dest_id in
  match t.faults with
  | Some f when migrated -> (
      (* the transport can fail: the destination may be crashed at
         departure, or the hop itself may fault.  Either way the
         migration did not happen; the pending Access stays queued in
         the machine and a later step retries it. *)
      let dest = a.Sral.Access.server in
      let id = Intern.name t.anames i in
      let attempt = 1 + t.a_retries.(i) in
      let unreachable = Fault.Injector.server_down f.injector ~server:dest ~time in
      let flaky =
        (not unreachable)
        && Fault.Injector.migration_fails f.injector ~agent:id ~dest ~attempt
             ~time
      in
      if unreachable || flaky then begin
        emit t
          (Obs.Trace.Fault_injected
             {
               time;
               agent = id;
               fault =
                 (if unreachable then Obs.Trace.Server_unreachable
                  else Obs.Trace.Migration_failure);
               target = dest;
             });
        if attempt > f.resilience.Fault.Resilience.max_retries then begin
          (* budget exhausted: give up, and fail *closed* — the refusal
             is minted through the security manager so it lands on the
             audit record like any other denial *)
          t.a_retries.(i) <- 0;
          emit t (Obs.Trace.Gave_up { time; agent = id; attempts = attempt });
          (match Security_manager.refuse t.manager ~object_id:id ~time a with
          | Coordinated.Decision.Granted -> assert false
          | Coordinated.Decision.Denied reason -> (
              match t.config.deny_policy with
              | Skip_access ->
                  Machine.skip_request t.a_machine.(i) ~thread;
                  `Continue_at time
              | Abort_agent ->
                  `Abort
                    (Format.asprintf "%a" Coordinated.Decision.pp_reason reason)))
        end
        else begin
          t.a_retries.(i) <- attempt;
          let backoff =
            Fault.Injector.backoff f.injector f.resilience ~agent:id ~attempt
          in
          let retry_at = Q.add time backoff in
          emit t
            (Obs.Trace.Retry_scheduled { time; agent = id; attempt; at = retry_at });
          `Continue_at retry_at
        end
      end
      else begin
        t.a_retries.(i) <- 0;
        perform_migration t i ~thread ~time ~dest_id a
      end)
  | _ ->
      if migrated then perform_migration t i ~thread ~time ~dest_id a
      else decide_access t i ~thread ~time ~dest_id a

and perform_migration t i ~thread ~time ~dest_id (a : Sral.Access.t) =
  let origin =
    let l = t.a_location.(i) in
    Intern.name t.snames (if l < 0 then t.a_home.(i) else l)
  in
  let arrival = Q.add time t.config.migration_latency in
  arrive t i ~server_id:dest_id ~time:arrival;
  emit t
    (Obs.Trace.Migrated
       {
         time = arrival;
         agent = Intern.name t.anames i;
         from_ = origin;
         to_ = a.Sral.Access.server;
       });
  match appraise t i with
  | Appraisal.Corrupted invariant ->
      `Abort (Printf.sprintf "state appraisal failed: %s" invariant)
  | Appraisal.Sound -> decide_access t i ~thread ~time:arrival ~dest_id a

and decide_access t i ~thread ~time ~dest_id (a : Sral.Access.t) =
  (* the verdict reaches the event log and the metrics through the
     bus: [System.check] publishes a [Decision] event, the sinks
     subscribed in [create] fold it in *)
  match decide_verdict t i ~time a with
  | Coordinated.Decision.Granted ->
      let finish =
        match server_slot t dest_id with
        | Some srv ->
            let _start, finish = Server.reserve srv ~now:time in
            finish
        | None -> Q.add time Q.one
      in
      Machine.complete t.a_machine.(i) ~thread;
      `Continue_at finish
  | Coordinated.Decision.Denied reason -> (
      match t.config.deny_policy with
      | Skip_access ->
          Machine.skip_request t.a_machine.(i) ~thread;
          `Continue_at time
      | Abort_agent ->
          `Abort (Format.asprintf "%a" Coordinated.Decision.pp_reason reason))

(* Abandon a parked request (receive timeout): the thread resumes but
   the request is skipped rather than fulfilled. *)
let abandon t i ~thread ~time =
  if is_live t i then begin
    Machine.unblock t.a_machine.(i) ~thread;
    Machine.skip_request t.a_machine.(i) ~thread;
    if t.a_status.(i) = st_waiting then begin
      t.a_status.(i) <- st_running;
      schedule_step t i ~time
    end
  end

let deliver t ~chan v ~time =
  let waiters = Channel.send t.channels ~chan v in
  List.iter
    (fun (w : Channel.waiter) ->
      wake t ~agent:w.Channel.agent ~thread:w.Channel.thread ~time)
    waiters

let handle_request t i ~thread ~time request =
  match request with
  | Machine.Access a -> handle_access t i ~thread ~time a
  | Machine.Send (chan, v) ->
      (* the send itself always happens; the network decides what the
         coalition sees of it *)
      let id = Intern.name t.anames i in
      emit t (Obs.Trace.Message_sent { time; agent = id; channel = chan });
      (let fate =
         match t.faults with
         | None -> Fault.Injector.Deliver
         | Some f -> Fault.Injector.channel_fate f.injector ~agent:id ~chan ~time
       in
       let fault kind =
         emit t
           (Obs.Trace.Fault_injected { time; agent = id; fault = kind; target = chan })
       in
       match fate with
       | Fault.Injector.Deliver -> deliver t ~chan v ~time
       | Fault.Injector.Drop -> fault Obs.Trace.Channel_drop
       | Fault.Injector.Delay d ->
           fault Obs.Trace.Channel_delay;
           Sim.schedule t.events ~time:(Q.add time d)
             (Deliver { chan; value = v })
       | Fault.Injector.Duplicate ->
           fault Obs.Trace.Channel_duplicate;
           deliver t ~chan v ~time;
           deliver t ~chan v ~time);
      Machine.complete t.a_machine.(i) ~thread;
      `Continue_at time
  | Machine.Recv (chan, var) -> (
      match Channel.try_recv t.channels ~chan with
      | Some v ->
          emit t
            (Obs.Trace.Message_received
               { time; agent = Intern.name t.anames i; channel = chan });
          Machine.complete_recv t.a_machine.(i) ~thread ~var v;
          `Continue_at time
      | None ->
          Machine.block t.a_machine.(i) ~thread;
          let waiter = { Channel.agent = Intern.name t.anames i; thread } in
          Channel.park t.channels ~chan waiter;
          (match t.faults with
          | Some { resilience = { Fault.Resilience.recv_timeout = Some d; _ };
                   _ } ->
              (* if still parked at the deadline, give up on the message *)
              Sim.schedule t.events ~time:(Q.add time d)
                (Recv_deadline { chan; agent = i; thread })
          | _ -> ());
          `Continue_at time)
  | Machine.Signal x ->
      let id = Intern.name t.anames i in
      let lost =
        match t.faults with
        | None -> false
        | Some f -> Fault.Injector.signal_lost f.injector ~agent:id ~signal:x ~time
      in
      if lost then
        emit t
          (Obs.Trace.Fault_injected
             { time; agent = id; fault = Obs.Trace.Signal_loss; target = x })
      else begin
        emit t (Obs.Trace.Signal_raised { time; agent = id; signal = x });
        let waiters = Signal_table.raise_signal t.signals x in
        List.iter
          (fun (w : Signal_table.waiter) ->
            wake t ~agent:w.Signal_table.agent ~thread:w.Signal_table.thread
              ~time)
          waiters
      end;
      Machine.complete t.a_machine.(i) ~thread;
      `Continue_at time
  | Machine.Wait x ->
      if Signal_table.is_raised t.signals x then begin
        Machine.complete t.a_machine.(i) ~thread;
        `Continue_at time
      end
      else begin
        Machine.block t.a_machine.(i) ~thread;
        Signal_table.park t.signals x
          { Signal_table.agent = Intern.name t.anames i; thread };
        `Continue_at time
      end

(* While an agent sits on a crashed server its execution is suspended:
   the step is deferred to the end of the crash window.  (The security
   manager would deny anything it tried anyway — this models the host
   being down, not just unreachable.) *)
let frozen_until t i ~time =
  match t.faults with
  | Some f when t.a_location.(i) >= 0 ->
      Fault.Injector.recovery f.injector
        ~server:(Intern.name t.snames t.a_location.(i))
        ~time
  | _ -> None

let process_step t i ~time =
  if t.a_status.(i) = st_running then
    match frozen_until t i ~time with
    | Some recovery -> schedule_step t i ~time:recovery
    | None -> (
        match Machine.step t.a_machine.(i) with
        | Machine.Finished -> finish_agent t i (Agent.Completed time)
        | Machine.Fault msg -> finish_agent t i (Agent.Aborted msg)
        | Machine.All_blocked -> t.a_status.(i) <- st_waiting
        | Machine.Ready { thread; request; silent_steps } -> (
            let time =
              Q.add time (Q.mul (Q.of_int silent_steps) t.config.step_cost)
            in
            match handle_request t i ~thread ~time request with
            | `Continue_at next -> schedule_step t i ~time:next
            | `Abort why -> finish_agent t i (Agent.Aborted why)))

let run t =
  let budget = ref t.config.max_events in
  let rec loop () =
    if !budget <= 0 then ()
    else
      match Sim.pop t.events with
      | None -> ()
      | Some (time, payload) ->
          decr budget;
          t.processed <- t.processed + 1;
          t.clock <- Q.max t.clock time;
          (match payload with
          | Step i -> process_step t i ~time:t.clock
          | Crash_boundary { server; up = false } ->
              emit t (Obs.Trace.Server_down { time = t.clock; server })
          | Crash_boundary { server; up = true } ->
              emit t (Obs.Trace.Server_up { time = t.clock; server })
          | Deliver { chan; value } -> deliver t ~chan value ~time:t.clock
          | Recv_deadline { chan; agent = i; thread } ->
              let waiter =
                { Channel.agent = Intern.name t.anames i; thread }
              in
              if Channel.cancel t.channels ~chan waiter then begin
                emit t
                  (Obs.Trace.Fault_injected
                     {
                       time = t.clock;
                       agent = waiter.Channel.agent;
                       fault = Obs.Trace.Recv_timeout;
                       target = chan;
                     });
                abandon t i ~thread ~time:t.clock
              end
          | Admin action -> action ());
          loop ()
  in
  loop ();
  (* deadlock sweep in id order — deterministic by construction *)
  for i = 0 to t.n_agents - 1 do
    if t.a_status.(i) = st_waiting then
      emit t
        (Obs.Trace.Deadlocked { time = t.clock; agent = Intern.name t.anames i })
  done;
  emit t (Obs.Trace.Run_finished { time = t.clock });
  t.metrics
