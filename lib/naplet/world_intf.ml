(** The world signature, as a first-class module type.

    {!World} and {!World_legacy} expose the same surface; the E19
    differential harness ([Scenarios.Scale_family]) is a functor over
    this signature so the identical coalition-building code drives
    both engines and their exported traces can be compared byte for
    byte.

    Written out structurally (not [module type of World]) so both
    engines' nominal types match it — [module type of] through the
    library alias would pin every type to {!World}'s. *)

module type S = sig
  type deny_policy = Skip_access | Abort_agent

  type config = {
    migration_latency : Temporal.Q.t;
    step_cost : Temporal.Q.t;
    deny_policy : deny_policy;
    fuel : int;
    max_events : int;
  }

  val default_config : config

  type t

  val create : ?config:config -> Coordinated.System.t -> t
  val manager : t -> Security_manager.t

  val set_faults :
    ?resilience:Fault.Resilience.t -> t -> Fault.Injector.t -> unit

  val set_appraisal : t -> Appraisal.t -> unit
  val add_server : t -> Server.t -> unit
  val server : t -> string -> Server.t option
  val servers : t -> Server.t list

  val spawn :
    ?team:string ->
    t ->
    id:string ->
    owner:string ->
    roles:string list ->
    home:string ->
    Sral.Ast.t ->
    unit

  val at : t -> time:Temporal.Q.t -> (unit -> unit) -> unit
  val run : t -> Metrics.t
  val halt : t -> unit
  val pending_events : t -> int
  val processed_events : t -> int
  val clock : t -> Temporal.Q.t
  val agent : t -> string -> Agent.t option
  val agents : t -> Agent.t list
  val metrics : t -> Metrics.t
  val channels : t -> Channel.t
  val events : t -> Event_log.t
end
