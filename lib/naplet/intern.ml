type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create ?(capacity = 16) () =
  {
    ids = Hashtbl.create (max 1 capacity);
    names = Array.make (max 1 capacity) "";
    count = 0;
  }

let find t s = Hashtbl.find_opt t.ids s
let mem t s = Hashtbl.mem t.ids s

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.count in
      if id >= Array.length t.names then begin
        let bigger = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- s;
      Hashtbl.add t.ids s id;
      t.count <- id + 1;
      id

let name t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Intern.name: unknown id %d" id)
  else t.names.(id)

let count t = t.count

let iter t f =
  for id = 0 to t.count - 1 do
    f id t.names.(id)
  done
