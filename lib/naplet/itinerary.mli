(** Structured navigation — Naplet's itinerary facility.

    An itinerary is the roaming agenda of a mobile device: which
    servers to visit and in what structure.  [Seq] visits in order,
    [Alt] picks one alternative, [Par] corresponds to cloned agents
    covering branches concurrently (Section 5's [ApplAgentProg]
    pattern). *)

type t =
  | Visit of string
  | Seq of t list
  | Alt of t list
  | Par of t list

val servers : t -> string list
(** All servers mentioned, sorted distinct. *)

val linearize : ?choose:(int -> int) -> t -> string list
(** One concrete visiting order: [Alt]s resolved by [choose n] (an
    index below [n], default 0); [Par] branches concatenated (a single
    agent walks them in order). *)

val linearize_avoiding : down:(string -> bool) -> t -> string list
(** Route around unavailable servers: each [Alt] resolves to its first
    branch whose servers are all up (falling back to the first branch
    when none qualifies — the visit will then be denied fail-closed
    rather than silently dropped); a down [Visit] outside any [Alt] is
    skipped.  With [down = fun _ -> false] this coincides with
    {!linearize}'s default choice. *)

val to_program : task:(string -> Sral.Ast.t) -> t -> Sral.Ast.t
(** Compile the itinerary into an SRAL program, performing [task s] at
    each visited server — [Seq]→[;], [Alt]→[if], [Par]→[||].  This is
    the recursive access-pattern construction of Section 5.2
    (Singleton/SeqPattern/ParPattern). *)

val shard : t -> clones:int -> t list
(** Split a [Seq] itinerary into [clones] near-equal sub-itineraries —
    the [ApplAgentProg] pattern of [k] cloned naplets each taking an
    equal share of the servers.
    @raise Invalid_argument if [clones < 1]. *)

val pp : Format.formatter -> t -> unit
