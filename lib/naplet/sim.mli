(** Discrete-event simulation core: a priority queue of timed events
    over continuous (rational) time.

    Ties are broken by insertion order, so runs are deterministic.
    Internally the heap is struct-of-arrays with unboxed
    [(num, den, seq)] keys — see [sim.ml] — but the interface is
    unchanged from the boxed-entry version.

    {b Sequence monotonicity.}  Every {!schedule} consumes the next
    value of an internal sequence counter that only ever increases for
    the lifetime of the queue — it is {e not} reset by {!pop},
    {!drain} or {!clear}.  Consequences callers may rely on: two
    events scheduled at equal times pop in schedule order (FIFO), and
    that remains true even when the two schedules straddle a [clear]
    or any number of pops — nothing stale can ever win a tie against
    a later schedule. *)

type 'a t

val create : unit -> 'a t
val schedule : 'a t -> time:Temporal.Q.t -> 'a -> unit

val pop : 'a t -> (Temporal.Q.t * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> Temporal.Q.t option
val is_empty : 'a t -> bool
val size : 'a t -> int

val drain : 'a t -> (Temporal.Q.t * 'a) list
(** Pop everything, in order; [size] is [0] afterwards.  Used to tear a
    world down early (e.g. a chaos kill-switch) while still observing
    what was pending. *)

val clear : 'a t -> unit
(** Discard all pending events; [size] returns to [0].  The backing
    arrays are released (shrunk whenever occupancy falls below 1/4 of
    capacity, here to empty), so a queue that peaked at millions of
    entries does not pin that storage — or the payloads parked in it —
    after the run.  Sequence numbers keep increasing (see the header
    note), so later schedules still tie-break FIFO against nothing
    stale. *)
