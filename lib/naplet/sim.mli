(** Discrete-event simulation core: a priority queue of timed events
    over continuous (rational) time.

    Ties are broken by insertion order, so runs are deterministic. *)

type 'a t

val create : unit -> 'a t
val schedule : 'a t -> time:Temporal.Q.t -> 'a -> unit
val pop : 'a t -> (Temporal.Q.t * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> Temporal.Q.t option
val is_empty : 'a t -> bool
val size : 'a t -> int

val drain : 'a t -> (Temporal.Q.t * 'a) list
(** Pop everything, in order; [size] is [0] afterwards.  Used to tear a
    world down early (e.g. a chaos kill-switch) while still observing
    what was pending. *)

val clear : 'a t -> unit
(** Discard all pending events; [size] returns to [0].  Sequence
    numbers keep increasing, so later schedules still tie-break FIFO
    against nothing stale. *)
