(** Discrete-event simulation core: a priority queue of timed events
    over continuous (rational) time.

    Ties are broken by insertion order, so runs are deterministic. *)

type 'a t

val create : unit -> 'a t
val schedule : 'a t -> time:Temporal.Q.t -> 'a -> unit
val pop : 'a t -> (Temporal.Q.t * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> Temporal.Q.t option
val is_empty : 'a t -> bool
val size : 'a t -> int
