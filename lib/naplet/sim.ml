module Q = Temporal.Q

(* Binary min-heap on (time, seq); seq gives FIFO order at equal times. *)
type 'a entry = { time : Q.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let entry_before e1 e2 =
  let c = Q.compare e1.time e2.time in
  if c <> 0 then c < 0 else e1.seq < e2.seq

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < q.size && entry_before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && entry_before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let schedule q ~time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size >= Array.length q.heap then begin
    let capacity = max 16 (2 * Array.length q.heap) in
    let bigger = Array.make capacity entry in
    Array.blit q.heap 0 bigger 0 q.size;
    q.heap <- bigger
  end;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
let is_empty q = q.size = 0
let size q = q.size

let drain q =
  let rec go acc =
    match pop q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

(* Keeps the backing array (it will be reused) but forgets every
   pending entry; next_seq is preserved so FIFO tie-breaking stays
   monotone across a clear. *)
let clear q = q.size <- 0
