module Q = Temporal.Q

(* Binary min-heap on (time, seq); seq gives FIFO order at equal times.

   The heap is struct-of-arrays: the key of entry [i] is the unboxed
   triple (num.(i), den.(i), seq.(i)) — the rational time's normalized
   numerator/denominator and the insertion sequence number — and the
   payload lives in a parallel array.  Sifting therefore moves three
   ints and one pointer instead of allocating/chasing boxed entry
   records, which is what lets a 10^6-object world's queue step at
   memory bandwidth. *)
type 'a t = {
  mutable num : int array;
  mutable den : int array;
  mutable seq : int array;
  mutable payload : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { num = [||]; den = [||]; seq = [||]; payload = [||]; size = 0; next_seq = 0 }

(* Q keeps [den > 0], so cross-multiplication is an exact comparison
   (same overflow caveat as [Q.compare] itself). *)
let before q i j =
  let l = q.num.(i) * q.den.(j) and r = q.num.(j) * q.den.(i) in
  if l <> r then l < r else q.seq.(i) < q.seq.(j)

let swap q i j =
  let n = q.num.(i) in
  q.num.(i) <- q.num.(j);
  q.num.(j) <- n;
  let d = q.den.(i) in
  q.den.(i) <- q.den.(j);
  q.den.(j) <- d;
  let s = q.seq.(i) in
  q.seq.(i) <- q.seq.(j);
  q.seq.(j) <- s;
  let p = q.payload.(i) in
  q.payload.(i) <- q.payload.(j);
  q.payload.(j) <- p

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < q.size && before q left !smallest then smallest := left;
  if right < q.size && before q right !smallest then smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let resize q capacity filler =
  let ints a =
    let b = Array.make capacity 0 in
    Array.blit a 0 b 0 q.size;
    b
  in
  q.num <- ints q.num;
  q.den <- ints q.den;
  q.seq <- ints q.seq;
  let p = Array.make capacity filler in
  Array.blit q.payload 0 p 0 q.size;
  q.payload <- p

let schedule q ~time payload =
  if q.size >= Array.length q.num then
    resize q (max 16 (2 * Array.length q.num)) payload;
  let i = q.size in
  q.num.(i) <- (time : Q.t).Q.num;
  q.den.(i) <- time.Q.den;
  q.seq.(i) <- q.next_seq;
  q.payload.(i) <- payload;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q i

(* Release the backing store's slack once the queue has emptied out:
   after a large run's peak, a mostly-idle queue should not pin the
   peak-sized arrays (or the payloads parked in their dead slots).
   Halving at 1/4 occupancy keeps the resize cost amortized O(1). *)
let maybe_shrink q =
  let capacity = Array.length q.num in
  if capacity > 16 && q.size < capacity / 4 then
    if q.size = 0 then begin
      q.num <- [||];
      q.den <- [||];
      q.seq <- [||];
      q.payload <- [||]
    end
    else resize q (max 16 (capacity / 2)) q.payload.(0)

let pop q =
  if q.size = 0 then None
  else begin
    let time = Q.make q.num.(0) q.den.(0) in
    let payload = q.payload.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.num.(0) <- q.num.(q.size);
      q.den.(0) <- q.den.(q.size);
      q.seq.(0) <- q.seq.(q.size);
      q.payload.(0) <- q.payload.(q.size);
      sift_down q 0
    end;
    maybe_shrink q;
    Some (time, payload)
  end

let peek_time q = if q.size = 0 then None else Some (Q.make q.num.(0) q.den.(0))
let is_empty q = q.size = 0
let size q = q.size

let drain q =
  let rec go acc =
    match pop q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

(* Forgets every pending entry and releases the backing store;
   next_seq is preserved so FIFO tie-breaking stays monotone across a
   clear. *)
let clear q =
  q.size <- 0;
  maybe_shrink q
