(** The coalition world: servers, agents and the simulation loop.

    Deterministic discrete-event emulation of mobile computing: agents
    execute their SRAL programs; an access targeting another server
    first migrates the agent (costing [migration_latency]); every
    access passes through the {!Security_manager}; channels and signals
    synchronize agents.  Time is continuous (ℚ); runs with the same
    inputs are bit-identical. *)

type deny_policy =
  | Skip_access  (** denied access is skipped; the agent continues *)
  | Abort_agent  (** denial kills the agent (a SecurityException) *)

type config = {
  migration_latency : Temporal.Q.t;
  step_cost : Temporal.Q.t;  (** cost of one silent machine step *)
  deny_policy : deny_policy;
  fuel : int;  (** silent-step divergence bound per scheduling slot *)
  max_events : int;  (** simulation-loop safety valve *)
}

val default_config : config
(** migration 5, step 1/100, [Skip_access], fuel 100_000, 1_000_000
    events. *)

type t

val create : ?config:config -> Coordinated.System.t -> t
(** The world publishes its lifecycle events (spawns, migrations,
    messages, signals, terminations) on the control's
    {!Coordinated.System.bus} and subscribes its own {!Event_log} and
    {!Metrics} sinks to it, filtered to this world's agents. *)

val manager : t -> Security_manager.t

val set_faults : ?resilience:Fault.Resilience.t -> t -> Fault.Injector.t -> unit
(** Install deterministic chaos (call before {!run}):

    - the {!Security_manager} fails {e closed} against the injector's
      crash schedule — an access targeting a down server is denied with
      [Server_unavailable], on the audit record, never skipped;
    - crash-window boundaries are published as
      [Server_down]/[Server_up] bus events;
    - a migration to a crashed server, or one the injector faults, is
      retried under [resilience] (capped exponential backoff with
      deterministic jitter), emitting [Fault_injected] and
      [Retry_scheduled]; an exhausted budget emits [Gave_up] and the
      fail-closed denial;
    - agents located on a crashed server are suspended until recovery;
    - channel sends can be dropped, delayed or duplicated and signals
      lost, per the plan's probabilities; a blocked receive is
      abandoned after [resilience.recv_timeout] (if set).

    Identical [(plan, seed, world)] inputs replay bit-identically. *)

val set_appraisal : t -> Appraisal.t -> unit
(** Install a state appraisal (related work's Farmer et al. mechanism):
    every agent is appraised at dispatch and at each migration arrival;
    a corrupted agent is aborted before requesting any access. *)

val add_server : t -> Server.t -> unit
val server : t -> string -> Server.t option

val servers : t -> Server.t list
(** Registered servers in id (registration) order — a cached indexed
    walk over the struct-of-arrays server table; nothing is rebuilt or
    re-sorted per call, and the order is stable across later
    {!add_server} calls (existing prefix unchanged). *)

val spawn :
  ?team:string ->
  t ->
  id:string ->
  owner:string ->
  roles:string list ->
  home:string ->
  Sral.Ast.t ->
  unit
(** Dispatch an agent: authenticate at its home server (arrival at the
    current clock) and schedule its first step.  [team] makes the
    agent a member of a naplet team, whose execution proofs are shared
    by bindings with [Team] proof scope.
    @raise Invalid_argument on duplicate id or unknown home server. *)

val at : t -> time:Temporal.Q.t -> (unit -> unit) -> unit
(** Schedule an administrative action at a simulated time — e.g.
    deactivating a role in some agent's session, revoking a grant, or
    installing a new binding.  Runs between agent steps; use it to
    model the security officer intervening mid-journey. *)

val run : t -> Metrics.t
(** Drive the event loop to quiescence.  Agents still [Waiting] at the
    end are counted as deadlocked. *)

val halt : t -> unit
(** Tear the world down early: every pending event is discarded, so
    {!run} winds down at the current clock.  Usable from an {!at}
    action as a kill switch (e.g. when a chaos run decides the
    coalition is lost). *)

val pending_events : t -> int
(** Events still queued in the simulator ([0] after {!halt} or a
    completed {!run}). *)

val processed_events : t -> int
(** Simulation events the {!run} loop has executed so far — the E19
    throughput benchmarks report events per second from this. *)

val clock : t -> Temporal.Q.t

val agent : t -> string -> Agent.t option
(** O(1): an interned-id lookup into the state columns.  The returned
    record is a read-only view synthesized from the agent's row — its
    [machine] is shared with the live agent, its [status]/[location]
    are a snapshot at call time. *)

val agents : t -> Agent.t list
(** All agents as {!agent}-style views, in id (spawn) order — an
    indexed walk, no sort; the order is stable across later {!spawn}s
    (existing prefix unchanged). *)

val metrics : t -> Metrics.t
val channels : t -> Channel.t

val events : t -> Event_log.t
(** The run's full event log (spawns, migrations, decisions, messages,
    signals, terminations). *)
