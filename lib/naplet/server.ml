module Q = Temporal.Q

(* Occupancy is a sorted deque of unboxed rational end times: the
   busy slots' (num, den) pairs live ascending in
   [ends_num/ends_den].(head .. tail-1).  The old representation was a
   [Q.t list] re-filtered and re-sorted on every [reserve]; here a
   reservation is an O(expired) prune of the head plus an O(capacity)
   sorted insert near the tail, so a server fielding thousands of
   queued accesses in a big coalition does no per-call sorting. *)
type t = {
  name : string;
  access_duration : Q.t;
  capacity : int;
  mutable ends_num : int array;
  mutable ends_den : int array;
  mutable head : int;
  mutable tail : int;
  store : (string, string) Hashtbl.t;
  mutable serviced : int;
}

let create ?(access_duration = Q.one) ?(capacity = 1) name =
  if capacity < 1 then invalid_arg "Server.create: capacity < 1";
  {
    name;
    access_duration;
    capacity;
    ends_num = [||];
    ends_den = [||];
    head = 0;
    tail = 0;
    store = Hashtbl.create 8;
    serviced = 0;
  }

let name s = s.name
let access_duration s = s.access_duration
let put_resource s ~name ~contents = Hashtbl.replace s.store name contents
let get_resource s ~name = Hashtbl.find_opt s.store name
let has_resource s ~name = Hashtbl.mem s.store name

let resources s =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) s.store [])

let capacity s = s.capacity

(* exact rational comparisons on the unboxed pairs (den > 0 invariant) *)
let le_at s i (now : Q.t) = s.ends_num.(i) * now.Q.den <= now.Q.num * s.ends_den.(i)
let gt_at s i (q : Q.t) = s.ends_num.(i) * q.Q.den > q.Q.num * s.ends_den.(i)
let q_at s i = Q.make s.ends_num.(i) s.ends_den.(i)

(* slots with end <= now are gone for good — exactly the filter the
   list version applied (and then dropped) on each reserve *)
let prune s ~now =
  while s.head < s.tail && le_at s s.head now do
    s.head <- s.head + 1
  done

let ensure_room s =
  let cap = Array.length s.ends_num in
  if s.tail >= cap then begin
    let len = s.tail - s.head in
    if 2 * len <= cap && s.head > 0 then begin
      Array.blit s.ends_num s.head s.ends_num 0 len;
      Array.blit s.ends_den s.head s.ends_den 0 len
    end
    else begin
      let bigger = max 8 (2 * cap) in
      let num = Array.make bigger 0 and den = Array.make bigger 1 in
      Array.blit s.ends_num s.head num 0 len;
      Array.blit s.ends_den s.head den 0 len;
      s.ends_num <- num;
      s.ends_den <- den
    end;
    s.head <- 0;
    s.tail <- len
  end

(* start of the next admissible slot among entries still > now; the
   deque is ascending, so expired entries form a prefix *)
let busy_from s ~now ~first =
  if s.tail - first < s.capacity then now else q_at s (s.tail - s.capacity)

let busy_until s ~now =
  let first = ref s.head in
  while !first < s.tail && le_at s !first now do incr first done;
  busy_from s ~now ~first:!first

let reserve s ~now =
  prune s ~now;
  let start = busy_from s ~now ~first:s.head in
  let finish = Q.add start s.access_duration in
  ensure_room s;
  (* sorted insert; at most [capacity] live entries can exceed
     [finish], so the backward scan-and-shift is O(capacity) *)
  let p = ref s.tail in
  while !p > s.head && gt_at s (!p - 1) finish do decr p done;
  Array.blit s.ends_num !p s.ends_num (!p + 1) (s.tail - !p);
  Array.blit s.ends_den !p s.ends_den (!p + 1) (s.tail - !p);
  s.ends_num.(!p) <- finish.Q.num;
  s.ends_den.(!p) <- finish.Q.den;
  s.tail <- s.tail + 1;
  s.serviced <- s.serviced + 1;
  (start, finish)

let touch s = s.serviced <- s.serviced + 1
let serviced s = s.serviced

let pp ppf s =
  Format.fprintf ppf "server %s (%d resources, %d serviced)" s.name
    (List.length (resources s))
    s.serviced
