type t = {
  name : string;
  access_duration : Temporal.Q.t;
  capacity : int;
  mutable slots : Temporal.Q.t list;  (* end times of busy slots *)
  store : (string, string) Hashtbl.t;
  mutable serviced : int;
}

let create ?(access_duration = Temporal.Q.one) ?(capacity = 1) name =
  if capacity < 1 then invalid_arg "Server.create: capacity < 1";
  {
    name;
    access_duration;
    capacity;
    slots = [];
    store = Hashtbl.create 8;
    serviced = 0;
  }

let name s = s.name
let access_duration s = s.access_duration
let put_resource s ~name ~contents = Hashtbl.replace s.store name contents
let get_resource s ~name = Hashtbl.find_opt s.store name
let has_resource s ~name = Hashtbl.mem s.store name

let resources s =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) s.store [])

let capacity s = s.capacity

(* keep only still-busy slots, sorted by end time *)
let live_slots s ~now =
  List.sort Temporal.Q.compare
    (List.filter (fun t -> Temporal.Q.gt t now) s.slots)

let busy_until s ~now =
  let live = live_slots s ~now in
  if List.length live < s.capacity then now
  else
    (* all slots busy: the earliest to free admits the next request *)
    List.nth live (List.length live - s.capacity)

let reserve s ~now =
  let start = busy_until s ~now in
  let finish = Temporal.Q.add start s.access_duration in
  s.slots <- finish :: live_slots s ~now;
  s.serviced <- s.serviced + 1;
  (start, finish)

let touch s = s.serviced <- s.serviced + 1
let serviced s = s.serviced

let pp ppf s =
  Format.fprintf ppf "server %s (%d resources, %d serviced)" s.name
    (List.length (resources s))
    s.serviced
