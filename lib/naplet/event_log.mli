(** Full event log of a world run — every agent lifecycle step, not
    just access decisions (those live in the coordinated audit log).
    The log is what Naplet's "mechanisms for agent monitoring" boil
    down to: a deterministic, timestamped record a run can be replayed
    and debugged from.

    The log is a {e sink} over the observability bus ({!sink}): the
    world emits {!Obs.Trace} events and the sink translates the
    agent-facing subset into {!kind}s; only {!record} appends.  [size]
    is O(1) (a maintained counter) and {!for_agent}/{!count} fold over
    the raw store without building intermediate lists. *)

type kind =
  | Spawned of { home : string }
  | Migrated of { from_ : string; to_ : string }
  | Access_granted of Sral.Access.t
  | Access_denied of Sral.Access.t * string  (** reason *)
  | Message_sent of string  (** channel *)
  | Message_received of string
  | Signal_raised of string
  | Completed
  | Aborted of string
  | Deadlocked
  | Fault of { fault : string; target : string }
      (** an injected fault ({!Obs.Trace.fault_name}) and what it hit *)
  | Retry of { attempt : int; at : Temporal.Q.t }
  | Gave_up of { attempts : int }

type event = { time : Temporal.Q.t; agent : string; kind : kind }

type t

val create : unit -> t
val record : t -> time:Temporal.Q.t -> agent:string -> kind -> unit
val events : t -> event list
(** In record order. *)

val for_agent : t -> string -> event list
(** The agent's events in record order — one fold over the store, no
    intermediate lists. *)

val size : t -> int
(** Number of recorded events, O(1). *)

val count : t -> (kind -> bool) -> int
(** Events whose kind satisfies the predicate — a counting fold, no
    intermediate lists. *)

val sink : ?relevant:(string -> bool) -> t -> Obs.Sink.t
(** The log as a trace-bus subscriber.  Translates agent-lifecycle
    events ([Spawned], [Migrated], [Decision] → granted/denied,
    channel/signal traffic, terminations) into entries; decision-stage
    spans, cache probes, arrivals, role rejections and run bookkeeping
    are ignored (they are not agent lifecycle).  [relevant] filters by
    agent/object id (default: keep all) — {!World} passes a membership
    test over its own agent table so a shared control's foreign
    decisions don't leak into this world's log. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
