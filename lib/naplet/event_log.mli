(** Full event log of a world run — every agent lifecycle step, not
    just access decisions (those live in the coordinated audit log).
    The log is what Naplet's "mechanisms for agent monitoring" boil
    down to: a deterministic, timestamped record a run can be replayed
    and debugged from. *)

type kind =
  | Spawned of { home : string }
  | Migrated of { from_ : string; to_ : string }
  | Access_granted of Sral.Access.t
  | Access_denied of Sral.Access.t * string  (** reason *)
  | Message_sent of string  (** channel *)
  | Message_received of string
  | Signal_raised of string
  | Completed
  | Aborted of string
  | Deadlocked

type event = { time : Temporal.Q.t; agent : string; kind : kind }

type t

val create : unit -> t
val record : t -> time:Temporal.Q.t -> agent:string -> kind -> unit
val events : t -> event list
(** In record order. *)

val for_agent : t -> string -> event list
val size : t -> int

val count : t -> (kind -> bool) -> int
(** Events whose kind satisfies the predicate. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
