(** The coalition's reliable agent-communication channels.

    SRAL's [ch ? x] receives (blocking on an empty channel) and
    [ch ! e] appends a value and wakes waiting receivers (Definition
    3.1's semantics).  Channels are named and global to the coalition,
    mirroring Naplet's reliable communication mechanism. *)

type waiter = { agent : string; thread : int }
type t

val create : unit -> t

val send : t -> chan:string -> Sral.Value.t -> waiter list
(** Append the value; returns (and clears) the receivers to wake. *)

val try_recv : t -> chan:string -> Sral.Value.t option
(** Pop the oldest value if any. *)

val park : t -> chan:string -> waiter -> unit
(** Register a blocked receiver. *)

val cancel : t -> chan:string -> waiter -> bool
(** Remove one parked waiter; [false] if it was no longer parked (it
    was already woken by a send).  Used by receive timeouts. *)

val cancel_agent : t -> agent:string -> int
(** Remove every parked waiter of the agent across all channels,
    returning how many were removed — the cleanup an aborted agent owes
    the coalition. *)

val depth : t -> chan:string -> int
(** Queued values. *)

val waiting : t -> chan:string -> int
val channels : t -> string list
(** Channels ever used, sorted. *)
