(* The pre-SoA emulation engine, kept verbatim as the differential
   oracle for the rebuilt [World]: hashtable-of-records state, closure
   payloads in the event queue.  The E19 harness and the test suite
   run randomized coalitions through both engines and require the
   exported traces to be byte-identical; once that gate has survived
   long enough, this module is scheduled for deletion.

   One deliberate canonicalization vs. the historical code: the
   end-of-run deadlock sweep walks agents in spawn order (the rebuilt
   engine's id order) rather than [Hashtbl.iter] order, which was
   unspecified and could never have been compared across engines. *)

module Q = Temporal.Q

type deny_policy = Skip_access | Abort_agent

type config = {
  migration_latency : Q.t;
  step_cost : Q.t;
  deny_policy : deny_policy;
  fuel : int;
  max_events : int;
}

let default_config =
  {
    migration_latency = Q.of_int 5;
    step_cost = Q.make 1 100;
    deny_policy = Skip_access;
    fuel = 100_000;
    max_events = 1_000_000;
  }

type event = Step of string | Admin of (unit -> unit)

(* Installed fault machinery: the injector answers "does this fault
   fire?", the resilience policy says how to react, and [retries]
   tracks each agent's consecutive failed migration attempts. *)
type fault_state = {
  injector : Fault.Injector.t;
  resilience : Fault.Resilience.t;
  retries : (string, int) Hashtbl.t;
}

type t = {
  config : config;
  manager : Security_manager.t;
  bus : Obs.Bus.t;
  servers : (string, Server.t) Hashtbl.t;
  agents : (string, Agent.t) Hashtbl.t;
  mutable spawn_order : string list;  (* newest first *)
  channels : Channel.t;
  signals : Signal_table.t;
  events : event Sim.t;
  mutable clock : Q.t;
  mutable appraisal : Appraisal.t option;
  mutable faults : fault_state option;
  event_log : Event_log.t;
  metrics : Metrics.t;
  mutable processed : int;
}

let create ?(config = default_config) control =
  let t =
    {
      config;
      manager = Security_manager.create control;
      bus = Coordinated.System.bus control;
      servers = Hashtbl.create 8;
      agents = Hashtbl.create 8;
      spawn_order = [];
      channels = Channel.create ();
      signals = Signal_table.create ();
      events = Sim.create ();
      clock = Q.zero;
      appraisal = None;
      faults = None;
      event_log = Event_log.create ();
      metrics = Metrics.create ();
      processed = 0;
    }
  in
  (* the world's stores consume the bus rather than being hand-wired
     into the simulation loop; the membership filter keeps a shared
     control's foreign traffic out of this world's books *)
  let mine id = Hashtbl.mem t.agents id in
  Obs.Bus.subscribe t.bus (Event_log.sink ~relevant:mine t.event_log);
  Obs.Bus.subscribe t.bus (Metrics.sink ~relevant:mine t.metrics);
  t

let manager t = t.manager
let set_appraisal t appraisal = t.appraisal <- Some appraisal

(* Farmer-style state appraisal at arrival: a corrupted agent is
   quarantined before it can request anything. *)
let appraise t (agent : Agent.t) =
  match t.appraisal with
  | None -> Appraisal.Sound
  | Some appraisal ->
      Appraisal.appraise appraisal (Machine.env_value agent.Agent.machine)
let add_server t s = Hashtbl.replace t.servers (Server.name s) s
let server t name = Hashtbl.find_opt t.servers name

let servers t =
  List.sort
    (fun s1 s2 -> String.compare (Server.name s1) (Server.name s2))
    (Hashtbl.fold (fun _ s acc -> s :: acc) t.servers [])

let clock t = t.clock
let agent t id = Hashtbl.find_opt t.agents id

let agents t =
  List.sort
    (fun (a1 : Agent.t) a2 -> String.compare a1.Agent.id a2.Agent.id)
    (Hashtbl.fold (fun _ a acc -> a :: acc) t.agents [])

let metrics t = t.metrics
let channels t = t.channels
let events t = t.event_log
let processed_events t = t.processed

let emit t ev = Obs.Bus.emit t.bus ev

let schedule_step t id ~time = Sim.schedule t.events ~time (Step id)

let at t ~time action = Sim.schedule t.events ~time (Admin action)

let pending_events t = Sim.size t.events

(* Kill switch: forget every pending event; [run]'s next pop sees an
   empty queue and winds the world down. *)
let halt t = Sim.clear t.events

let set_faults ?(resilience = Fault.Resilience.default) t injector =
  t.faults <- Some { injector; resilience; retries = Hashtbl.create 8 };
  (* the security manager fails closed against the crash schedule *)
  Security_manager.set_availability t.manager (fun ~server ~time ->
      Fault.Injector.server_down injector ~server ~time);
  (* crash-window boundaries become observable bus events *)
  let plan = Fault.Injector.plan injector in
  List.iter
    (fun (server, windows) ->
      List.iter
        (fun (w : Fault.Plan.window) ->
          at t ~time:w.Fault.Plan.from_ (fun () ->
              emit t (Obs.Trace.Server_down { time = t.clock; server }));
          at t ~time:w.Fault.Plan.until (fun () ->
              emit t (Obs.Trace.Server_up { time = t.clock; server })))
        windows)
    plan.Fault.Plan.crashes

let arrive t (agent : Agent.t) ~server ~time =
  agent.Agent.location <- Some server;
  ignore
    (Security_manager.on_arrival t.manager ~object_id:agent.Agent.id
       ~owner:agent.Agent.owner ~roles:agent.Agent.roles ~server ~time
       ~program:agent.Agent.program)

let finish_agent t (agent : Agent.t) status =
  agent.Agent.status <- status;
  match status with
  | Agent.Completed time ->
      emit t (Obs.Trace.Completed { time; agent = agent.Agent.id })
  | Agent.Aborted why ->
      (* a killed agent releases whatever it still held: parked channel
         receivers, signal waiters, and its retry bookkeeping *)
      ignore (Channel.cancel_agent t.channels ~agent:agent.Agent.id);
      ignore (Signal_table.cancel_agent t.signals ~agent:agent.Agent.id);
      (match t.faults with
      | Some f -> Hashtbl.remove f.retries agent.Agent.id
      | None -> ());
      emit t
        (Obs.Trace.Aborted { time = t.clock; agent = agent.Agent.id; reason = why })
  | Agent.Running | Agent.Waiting -> ()

let spawn ?team t ~id ~owner ~roles ~home program =
  if Hashtbl.mem t.agents id then
    invalid_arg ("World.spawn: duplicate agent id " ^ id);
  if not (Hashtbl.mem t.servers home) then
    invalid_arg ("World.spawn: unknown home server " ^ home);
  let agent =
    Agent.make ~id ~owner ~roles ~home ~fuel:t.config.fuel program
  in
  Hashtbl.add t.agents id agent;
  t.spawn_order <- id :: t.spawn_order;
  (match team with
  | Some team ->
      Coordinated.System.join_team
        (Security_manager.control t.manager)
        ~object_id:id ~team
  | None -> ());
  arrive t agent ~server:home ~time:t.clock;
  emit t (Obs.Trace.Spawned { time = t.clock; agent = id; home });
  match appraise t agent with
  | Appraisal.Corrupted invariant ->
      finish_agent t agent
        (Agent.Aborted (Printf.sprintf "state appraisal failed: %s" invariant))
  | Appraisal.Sound -> schedule_step t id ~time:t.clock

(* Wake a parked (agent, thread): unblock the machine thread and, if
   the whole agent was waiting, get it back on the event queue. *)
let wake t ~agent:agent_id ~thread ~time =
  match Hashtbl.find_opt t.agents agent_id with
  | None -> ()
  | Some agent ->
      if Agent.is_live agent then begin
        Machine.unblock agent.Agent.machine ~thread;
        match agent.Agent.status with
        | Agent.Waiting ->
            agent.Agent.status <- Agent.Running;
            schedule_step t agent_id ~time
        | Agent.Running | Agent.Completed _ | Agent.Aborted _ -> ()
      end

let rec handle_access t (agent : Agent.t) ~thread ~time (a : Sral.Access.t) =
  (* migrate first when the access targets another server *)
  let migrated = agent.Agent.location <> Some a.Sral.Access.server in
  match t.faults with
  | Some f when migrated -> (
      (* the transport can fail: the destination may be crashed at
         departure, or the hop itself may fault.  Either way the
         migration did not happen; the pending Access stays queued in
         the machine and a later step retries it. *)
      let dest = a.Sral.Access.server in
      let id = agent.Agent.id in
      let attempt =
        1 + Option.value ~default:0 (Hashtbl.find_opt f.retries id)
      in
      let unreachable = Fault.Injector.server_down f.injector ~server:dest ~time in
      let flaky =
        (not unreachable)
        && Fault.Injector.migration_fails f.injector ~agent:id ~dest ~attempt
             ~time
      in
      if unreachable || flaky then begin
        emit t
          (Obs.Trace.Fault_injected
             {
               time;
               agent = id;
               fault =
                 (if unreachable then Obs.Trace.Server_unreachable
                  else Obs.Trace.Migration_failure);
               target = dest;
             });
        if attempt > f.resilience.Fault.Resilience.max_retries then begin
          (* budget exhausted: give up, and fail *closed* — the refusal
             is minted through the security manager so it lands on the
             audit record like any other denial *)
          Hashtbl.remove f.retries id;
          emit t (Obs.Trace.Gave_up { time; agent = id; attempts = attempt });
          (match
             Security_manager.refuse t.manager ~object_id:id ~time a
           with
          | Coordinated.Decision.Granted -> assert false
          | Coordinated.Decision.Denied reason -> (
              match t.config.deny_policy with
              | Skip_access ->
                  Machine.skip_request agent.Agent.machine ~thread;
                  `Continue_at time
              | Abort_agent ->
                  `Abort
                    (Format.asprintf "%a" Coordinated.Decision.pp_reason reason)))
        end
        else begin
          Hashtbl.replace f.retries id attempt;
          let backoff =
            Fault.Injector.backoff f.injector f.resilience ~agent:id ~attempt
          in
          let retry_at = Q.add time backoff in
          emit t
            (Obs.Trace.Retry_scheduled { time; agent = id; attempt; at = retry_at });
          `Continue_at retry_at
        end
      end
      else begin
        Hashtbl.remove f.retries id;
        perform_migration t agent ~thread ~time a
      end)
  | _ ->
      if migrated then perform_migration t agent ~thread ~time a
      else decide_access t agent ~thread ~time a

and perform_migration t (agent : Agent.t) ~thread ~time (a : Sral.Access.t) =
  let origin =
    match agent.Agent.location with Some s -> s | None -> agent.Agent.home
  in
  let arrival = Q.add time t.config.migration_latency in
  arrive t agent ~server:a.Sral.Access.server ~time:arrival;
  emit t
    (Obs.Trace.Migrated
       {
         time = arrival;
         agent = agent.Agent.id;
         from_ = origin;
         to_ = a.Sral.Access.server;
       });
  match appraise t agent with
  | Appraisal.Corrupted invariant ->
      `Abort (Printf.sprintf "state appraisal failed: %s" invariant)
  | Appraisal.Sound -> decide_access t agent ~thread ~time:arrival a

and decide_access t (agent : Agent.t) ~thread ~time (a : Sral.Access.t) =
  (* the verdict reaches the event log and the metrics through the
     bus: [System.check] publishes a [Decision] event, the sinks
     subscribed in [create] fold it in *)
  let verdict =
    Security_manager.check t.manager ~object_id:agent.Agent.id
      ~program:agent.Agent.program ~time a
  in
  match verdict with
  | Coordinated.Decision.Granted ->
      let finish =
        match server t a.Sral.Access.server with
        | Some srv ->
            let _start, finish = Server.reserve srv ~now:time in
            finish
        | None -> Q.add time Q.one
      in
      Machine.complete agent.Agent.machine ~thread;
      `Continue_at finish
  | Coordinated.Decision.Denied reason -> (
      match t.config.deny_policy with
      | Skip_access ->
          Machine.skip_request agent.Agent.machine ~thread;
          `Continue_at time
      | Abort_agent ->
          `Abort (Format.asprintf "%a" Coordinated.Decision.pp_reason reason))

(* Abandon a parked request (receive timeout): the thread resumes but
   the request is skipped rather than fulfilled. *)
let abandon t ~agent:agent_id ~thread ~time =
  match Hashtbl.find_opt t.agents agent_id with
  | None -> ()
  | Some agent ->
      if Agent.is_live agent then begin
        Machine.unblock agent.Agent.machine ~thread;
        Machine.skip_request agent.Agent.machine ~thread;
        match agent.Agent.status with
        | Agent.Waiting ->
            agent.Agent.status <- Agent.Running;
            schedule_step t agent_id ~time
        | Agent.Running | Agent.Completed _ | Agent.Aborted _ -> ()
      end

let deliver t ~chan v ~time =
  let waiters = Channel.send t.channels ~chan v in
  List.iter
    (fun (w : Channel.waiter) ->
      wake t ~agent:w.Channel.agent ~thread:w.Channel.thread ~time)
    waiters

let handle_request t (agent : Agent.t) ~thread ~time request =
  match request with
  | Machine.Access a -> handle_access t agent ~thread ~time a
  | Machine.Send (chan, v) ->
      (* the send itself always happens; the network decides what the
         coalition sees of it *)
      emit t
        (Obs.Trace.Message_sent { time; agent = agent.Agent.id; channel = chan });
      (let fate =
         match t.faults with
         | None -> Fault.Injector.Deliver
         | Some f ->
             Fault.Injector.channel_fate f.injector ~agent:agent.Agent.id
               ~chan ~time
       in
       let fault kind =
         emit t
           (Obs.Trace.Fault_injected
              { time; agent = agent.Agent.id; fault = kind; target = chan })
       in
       match fate with
       | Fault.Injector.Deliver -> deliver t ~chan v ~time
       | Fault.Injector.Drop -> fault Obs.Trace.Channel_drop
       | Fault.Injector.Delay d ->
           fault Obs.Trace.Channel_delay;
           at t ~time:(Q.add time d) (fun () ->
               deliver t ~chan v ~time:t.clock)
       | Fault.Injector.Duplicate ->
           fault Obs.Trace.Channel_duplicate;
           deliver t ~chan v ~time;
           deliver t ~chan v ~time);
      Machine.complete agent.Agent.machine ~thread;
      `Continue_at time
  | Machine.Recv (chan, var) -> (
      match Channel.try_recv t.channels ~chan with
      | Some v ->
          emit t
            (Obs.Trace.Message_received
               { time; agent = agent.Agent.id; channel = chan });
          Machine.complete_recv agent.Agent.machine ~thread ~var v;
          `Continue_at time
      | None ->
          Machine.block agent.Agent.machine ~thread;
          let waiter = { Channel.agent = agent.Agent.id; thread } in
          Channel.park t.channels ~chan waiter;
          (match t.faults with
          | Some { resilience = { Fault.Resilience.recv_timeout = Some d; _ };
                   _ } ->
              (* if still parked at the deadline, give up on the message *)
              at t ~time:(Q.add time d) (fun () ->
                  if Channel.cancel t.channels ~chan waiter then begin
                    emit t
                      (Obs.Trace.Fault_injected
                         {
                           time = t.clock;
                           agent = agent.Agent.id;
                           fault = Obs.Trace.Recv_timeout;
                           target = chan;
                         });
                    abandon t ~agent:agent.Agent.id ~thread ~time:t.clock
                  end)
          | _ -> ());
          `Continue_at time)
  | Machine.Signal x ->
      let lost =
        match t.faults with
        | None -> false
        | Some f ->
            Fault.Injector.signal_lost f.injector ~agent:agent.Agent.id
              ~signal:x ~time
      in
      if lost then
        emit t
          (Obs.Trace.Fault_injected
             { time; agent = agent.Agent.id; fault = Obs.Trace.Signal_loss;
               target = x })
      else begin
        emit t
          (Obs.Trace.Signal_raised { time; agent = agent.Agent.id; signal = x });
        let waiters = Signal_table.raise_signal t.signals x in
        List.iter
          (fun (w : Signal_table.waiter) ->
            wake t ~agent:w.Signal_table.agent ~thread:w.Signal_table.thread
              ~time)
          waiters
      end;
      Machine.complete agent.Agent.machine ~thread;
      `Continue_at time
  | Machine.Wait x ->
      if Signal_table.is_raised t.signals x then begin
        Machine.complete agent.Agent.machine ~thread;
        `Continue_at time
      end
      else begin
        Machine.block agent.Agent.machine ~thread;
        Signal_table.park t.signals x
          { Signal_table.agent = agent.Agent.id; thread };
        `Continue_at time
      end

(* While an agent sits on a crashed server its execution is suspended:
   the step is deferred to the end of the crash window.  (The security
   manager would deny anything it tried anyway — this models the host
   being down, not just unreachable.) *)
let frozen_until t (agent : Agent.t) ~time =
  match (t.faults, agent.Agent.location) with
  | Some f, Some server -> Fault.Injector.recovery f.injector ~server ~time
  | _ -> None

let process_step t id ~time =
  match Hashtbl.find_opt t.agents id with
  | None -> ()
  | Some agent -> (
      if agent.Agent.status = Agent.Running then
        match frozen_until t agent ~time with
        | Some recovery -> schedule_step t id ~time:recovery
        | None -> (
        match Machine.step agent.Agent.machine with
        | Machine.Finished -> finish_agent t agent (Agent.Completed time)
        | Machine.Fault msg -> finish_agent t agent (Agent.Aborted msg)
        | Machine.All_blocked -> agent.Agent.status <- Agent.Waiting
        | Machine.Ready { thread; request; silent_steps } -> (
            let time =
              Q.add time (Q.mul (Q.of_int silent_steps) t.config.step_cost)
            in
            match handle_request t agent ~thread ~time request with
            | `Continue_at next -> schedule_step t id ~time:next
            | `Abort why -> finish_agent t agent (Agent.Aborted why))))

let run t =
  let budget = ref t.config.max_events in
  let rec loop () =
    if !budget <= 0 then ()
    else
      match Sim.pop t.events with
      | None -> ()
      | Some (time, Step id) ->
          decr budget;
          t.processed <- t.processed + 1;
          t.clock <- Q.max t.clock time;
          process_step t id ~time:t.clock;
          loop ()
      | Some (time, Admin action) ->
          decr budget;
          t.processed <- t.processed + 1;
          t.clock <- Q.max t.clock time;
          action ();
          loop ()
  in
  loop ();
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.agents id with
      | Some ({ Agent.status = Agent.Waiting; _ } as agent) ->
          emit t (Obs.Trace.Deadlocked { time = t.clock; agent = agent.Agent.id })
      | _ -> ())
    (List.rev t.spawn_order);
  emit t (Obs.Trace.Run_finished { time = t.clock });
  t.metrics
