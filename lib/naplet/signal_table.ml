type waiter = { agent : string; thread : int }

type t = {
  mutable raised : string list;
  waiters : (string, waiter list ref) Hashtbl.t;
}

let create () = { raised = []; waiters = Hashtbl.create 8 }

let raise_signal t x =
  if not (List.mem x t.raised) then t.raised <- x :: t.raised;
  match Hashtbl.find_opt t.waiters x with
  | None -> []
  | Some r ->
      let to_wake = List.rev !r in
      r := [];
      to_wake

let is_raised t x = List.mem x t.raised

let park t x waiter =
  match Hashtbl.find_opt t.waiters x with
  | Some r -> r := waiter :: !r
  | None -> Hashtbl.add t.waiters x (ref [ waiter ])

let cancel_agent t ~agent =
  Hashtbl.fold
    (fun _ r removed ->
      let before = List.length !r in
      r := List.filter (fun w -> not (String.equal w.agent agent)) !r;
      removed + before - List.length !r)
    t.waiters 0

let raised t = List.sort String.compare t.raised

let waiting t x =
  match Hashtbl.find_opt t.waiters x with
  | Some r -> List.length !r
  | None -> 0
