type t = {
  mutable granted : int;
  mutable denied : int;
  mutable denied_rbac : int;
  mutable denied_spatial : int;
  mutable denied_temporal : int;
  mutable denied_unavailable : int;
  mutable migrations : int;
  mutable messages : int;
  mutable signals : int;
  mutable completed_agents : int;
  mutable aborted_agents : int;
  mutable deadlocked_agents : int;
  mutable faults_injected : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable end_time : Temporal.Q.t;
  per_server : (string, int) Hashtbl.t;
}

let create () =
  {
    granted = 0;
    denied = 0;
    denied_rbac = 0;
    denied_spatial = 0;
    denied_temporal = 0;
    denied_unavailable = 0;
    migrations = 0;
    messages = 0;
    signals = 0;
    completed_agents = 0;
    aborted_agents = 0;
    deadlocked_agents = 0;
    faults_injected = 0;
    retries = 0;
    gave_up = 0;
    end_time = Temporal.Q.zero;
    per_server = Hashtbl.create 8;
  }

let record_server m server =
  let current =
    match Hashtbl.find_opt m.per_server server with Some n -> n | None -> 0
  in
  Hashtbl.replace m.per_server server (current + 1)

let server_counts m =
  List.sort
    (fun (s1, _) (s2, _) -> String.compare s1 s2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.per_server [])

let total_accesses m = m.granted + m.denied

let grant_rate m =
  let n = total_accesses m in
  if n = 0 then None else Some (float_of_int m.granted /. float_of_int n)

let sink ?(relevant = fun _ -> true) m =
  Obs.Sink.make ~name:"metrics" (fun ev ->
      match ev with
      | Obs.Trace.Decision { object_id; access; verdict; _ }
        when relevant object_id -> (
          match verdict with
          | Obs.Verdict.Granted ->
              m.granted <- m.granted + 1;
              record_server m access.Sral.Access.server
          | Obs.Verdict.Denied reason -> (
              m.denied <- m.denied + 1;
              match reason with
              | Obs.Verdict.Rbac_denied _ -> m.denied_rbac <- m.denied_rbac + 1
              | Obs.Verdict.Spatial_violation _ ->
                  m.denied_spatial <- m.denied_spatial + 1
              | Obs.Verdict.Temporal_expired _ | Obs.Verdict.Not_active _
              | Obs.Verdict.Not_arrived ->
                  m.denied_temporal <- m.denied_temporal + 1
              | Obs.Verdict.Server_unavailable _ ->
                  m.denied_unavailable <- m.denied_unavailable + 1))
      | Obs.Trace.Migrated { agent; _ } when relevant agent ->
          m.migrations <- m.migrations + 1
      | Obs.Trace.Message_sent { agent; _ } when relevant agent ->
          m.messages <- m.messages + 1
      | Obs.Trace.Signal_raised { agent; _ } when relevant agent ->
          m.signals <- m.signals + 1
      | Obs.Trace.Completed { agent; _ } when relevant agent ->
          m.completed_agents <- m.completed_agents + 1
      | Obs.Trace.Aborted { agent; _ } when relevant agent ->
          m.aborted_agents <- m.aborted_agents + 1
      | Obs.Trace.Deadlocked { agent; _ } when relevant agent ->
          m.deadlocked_agents <- m.deadlocked_agents + 1
      | Obs.Trace.Fault_injected { agent; _ } when relevant agent ->
          m.faults_injected <- m.faults_injected + 1
      | Obs.Trace.Retry_scheduled { agent; _ } when relevant agent ->
          m.retries <- m.retries + 1
      | Obs.Trace.Gave_up { agent; _ } when relevant agent ->
          m.gave_up <- m.gave_up + 1
      | Obs.Trace.Run_finished { time } -> m.end_time <- time
      | _ -> ())

let pp_rate ppf m =
  match grant_rate m with
  | None -> Format.pp_print_string ppf "n/a"
  | Some rate -> Format.fprintf ppf "%.2f" rate

let pp ppf m =
  Format.fprintf ppf
    "@[<v>accesses: %d granted, %d denied (rate %a; rbac %d, spatial %d, \
     temporal %d, unavailable %d)@,\
     migrations: %d, messages: %d, signals: %d@,\
     agents: %d completed, %d aborted, %d deadlocked@,\
     faults: %d injected, %d retries, %d gave up@,\
     simulated time: %a@]"
    m.granted m.denied pp_rate m m.denied_rbac m.denied_spatial
    m.denied_temporal m.denied_unavailable m.migrations m.messages m.signals
    m.completed_agents m.aborted_agents m.deadlocked_agents m.faults_injected
    m.retries m.gave_up Temporal.Q.pp m.end_time
