(** Coalition servers and their shared-resource stores.

    A server hosts named shared resources (with contents, so the
    integrity-audit scenario can hash them) and charges a per-access
    service time.  Access-control decisions are made centrally by the
    {!Security_manager}; the server is the resource substrate. *)

type t

val create : ?access_duration:Temporal.Q.t -> ?capacity:int -> string -> t
(** [access_duration] defaults to 1; [capacity] (default 1) is the
    number of accesses the server can service concurrently — requests
    beyond it queue, modelling Naplet's share-based resource
    management.  @raise Invalid_argument if [capacity < 1]. *)

val name : t -> string
val access_duration : t -> Temporal.Q.t

val put_resource : t -> name:string -> contents:string -> unit
val get_resource : t -> name:string -> string option
val has_resource : t -> name:string -> bool
val resources : t -> string list
(** Sorted. *)

val capacity : t -> int

val reserve : t -> now:Temporal.Q.t -> Temporal.Q.t * Temporal.Q.t
(** Admit one access arriving at [now]: returns [(start, finish)] where
    [start >= now] is when a service slot frees up and
    [finish = start + access_duration].  Updates the server's slot
    state and counts the access. *)

val busy_until : t -> now:Temporal.Q.t -> Temporal.Q.t
(** When the earliest slot frees (= [now] when idle capacity exists). *)

val touch : t -> unit
(** Count one serviced access (without reserving a slot). *)

val serviced : t -> int
val pp : Format.formatter -> t -> unit
