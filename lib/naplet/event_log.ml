type kind =
  | Spawned of { home : string }
  | Migrated of { from_ : string; to_ : string }
  | Access_granted of Sral.Access.t
  | Access_denied of Sral.Access.t * string
  | Message_sent of string
  | Message_received of string
  | Signal_raised of string
  | Completed
  | Aborted of string
  | Deadlocked
  | Fault of { fault : string; target : string }
  | Retry of { attempt : int; at : Temporal.Q.t }
  | Gave_up of { attempts : int }

type event = { time : Temporal.Q.t; agent : string; kind : kind }

type t = {
  mutable events : event list;  (* reverse order *)
  mutable size : int;  (* = List.length events, maintained at record *)
}

let create () = { events = []; size = 0 }

let record t ~time ~agent kind =
  t.events <- { time; agent; kind } :: t.events;
  t.size <- t.size + 1

let events t = List.rev t.events

(* The store is newest-first; a fold_left that prepends matches yields
   them oldest-first without materializing the reversed list. *)
let for_agent t agent =
  List.fold_left
    (fun acc e -> if String.equal e.agent agent then e :: acc else acc)
    [] t.events

let size t = t.size

let count t pred =
  List.fold_left (fun n e -> if pred e.kind then n + 1 else n) 0 t.events

let sink ?(relevant = fun _ -> true) t =
  Obs.Sink.make ~name:"event-log" (fun ev ->
      match ev with
      | Obs.Trace.Spawned { time; agent; home } when relevant agent ->
          record t ~time ~agent (Spawned { home })
      | Obs.Trace.Migrated { time; agent; from_; to_ } when relevant agent ->
          record t ~time ~agent (Migrated { from_; to_ })
      | Obs.Trace.Decision { time; object_id; access; verdict }
        when relevant object_id -> (
          match verdict with
          | Obs.Verdict.Granted ->
              record t ~time ~agent:object_id (Access_granted access)
          | Obs.Verdict.Denied reason ->
              record t ~time ~agent:object_id
                (Access_denied
                   (access, Format.asprintf "%a" Obs.Verdict.pp_reason reason)))
      | Obs.Trace.Message_sent { time; agent; channel } when relevant agent ->
          record t ~time ~agent (Message_sent channel)
      | Obs.Trace.Message_received { time; agent; channel }
        when relevant agent ->
          record t ~time ~agent (Message_received channel)
      | Obs.Trace.Signal_raised { time; agent; signal } when relevant agent ->
          record t ~time ~agent (Signal_raised signal)
      | Obs.Trace.Completed { time; agent } when relevant agent ->
          record t ~time ~agent Completed
      | Obs.Trace.Aborted { time; agent; reason } when relevant agent ->
          record t ~time ~agent (Aborted reason)
      | Obs.Trace.Deadlocked { time; agent } when relevant agent ->
          record t ~time ~agent Deadlocked
      | Obs.Trace.Fault_injected { time; agent; fault; target }
        when relevant agent ->
          record t ~time ~agent
            (Fault { fault = Obs.Trace.fault_name fault; target })
      | Obs.Trace.Retry_scheduled { time; agent; attempt; at }
        when relevant agent ->
          record t ~time ~agent (Retry { attempt; at })
      | Obs.Trace.Gave_up { time; agent; attempts } when relevant agent ->
          record t ~time ~agent (Gave_up { attempts })
      | _ -> ())

let pp_kind ppf = function
  | Spawned { home } -> Format.fprintf ppf "spawned at %s" home
  | Migrated { from_; to_ } -> Format.fprintf ppf "migrated %s -> %s" from_ to_
  | Access_granted a -> Format.fprintf ppf "granted %a" Sral.Access.pp a
  | Access_denied (a, why) ->
      Format.fprintf ppf "denied %a (%s)" Sral.Access.pp a why
  | Message_sent ch -> Format.fprintf ppf "sent on %s" ch
  | Message_received ch -> Format.fprintf ppf "received on %s" ch
  | Signal_raised x -> Format.fprintf ppf "raised %s" x
  | Completed -> Format.pp_print_string ppf "completed"
  | Aborted why -> Format.fprintf ppf "aborted (%s)" why
  | Deadlocked -> Format.pp_print_string ppf "deadlocked"
  | Fault { fault; target } -> Format.fprintf ppf "fault %s on %s" fault target
  | Retry { attempt; at } ->
      Format.fprintf ppf "retry %d scheduled for %a" attempt Temporal.Q.pp at
  | Gave_up { attempts } ->
      Format.fprintf ppf "gave up after %d attempts" attempts

let pp_event ppf e =
  Format.fprintf ppf "[%a] %s: %a" Temporal.Q.pp e.time e.agent pp_kind e.kind

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
    (events t)
