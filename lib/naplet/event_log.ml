type kind =
  | Spawned of { home : string }
  | Migrated of { from_ : string; to_ : string }
  | Access_granted of Sral.Access.t
  | Access_denied of Sral.Access.t * string
  | Message_sent of string
  | Message_received of string
  | Signal_raised of string
  | Completed
  | Aborted of string
  | Deadlocked

type event = { time : Temporal.Q.t; agent : string; kind : kind }

type t = { mutable events : event list (* reverse order *) }

let create () = { events = [] }

let record t ~time ~agent kind =
  t.events <- { time; agent; kind } :: t.events

let events t = List.rev t.events
let for_agent t agent = List.filter (fun e -> String.equal e.agent agent) (events t)
let size t = List.length t.events
let count t pred = List.length (List.filter (fun e -> pred e.kind) (events t))

let pp_kind ppf = function
  | Spawned { home } -> Format.fprintf ppf "spawned at %s" home
  | Migrated { from_; to_ } -> Format.fprintf ppf "migrated %s -> %s" from_ to_
  | Access_granted a -> Format.fprintf ppf "granted %a" Sral.Access.pp a
  | Access_denied (a, why) ->
      Format.fprintf ppf "denied %a (%s)" Sral.Access.pp a why
  | Message_sent ch -> Format.fprintf ppf "sent on %s" ch
  | Message_received ch -> Format.fprintf ppf "received on %s" ch
  | Signal_raised x -> Format.fprintf ppf "raised %s" x
  | Completed -> Format.pp_print_string ppf "completed"
  | Aborted why -> Format.fprintf ppf "aborted (%s)" why
  | Deadlocked -> Format.pp_print_string ppf "deadlocked"

let pp_event ppf e =
  Format.fprintf ppf "[%a] %s: %a" Temporal.Q.pp e.time e.agent pp_kind e.kind

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
    (events t)
