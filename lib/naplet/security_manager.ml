type t = {
  control : Coordinated.System.t;
  sessions : (string, Rbac.Session.t) Hashtbl.t;
  mutable availability : (server:string -> time:Temporal.Q.t -> bool) option;
}

type rejected_role = { role : string; reason : string }

let create control =
  { control; sessions = Hashtbl.create 8; availability = None }

let control t = t.control
let set_availability t down = t.availability <- Some down

let unavailable t ~server ~time =
  match t.availability with
  | None -> false
  | Some down -> down ~server ~time

(* Fail-closed denial: the refusal is published as a Decision event so
   it reaches the audit log, the event log and the metrics exactly like
   any other verdict — a crashed server leaves a record, never a gap. *)
let refuse t ~object_id ~time access =
  let verdict =
    Obs.Verdict.Denied
      (Obs.Verdict.Server_unavailable access.Sral.Access.server)
  in
  Obs.Bus.emit
    (Coordinated.System.bus t.control)
    (Obs.Trace.Decision { time; object_id; access; verdict });
  verdict

let on_arrival t ~object_id ~owner ~roles ~server ~time ~program =
  let session =
    match Hashtbl.find_opt t.sessions object_id with
    | Some s -> s
    | None ->
        let s = Coordinated.System.new_session t.control ~user:owner in
        Hashtbl.add t.sessions object_id s;
        s
  in
  let rejected =
    List.filter_map
      (fun role ->
        try
          Rbac.Session.activate session role;
          None
        with
        | Rbac.Session.Not_authorized (user, _) ->
            Some { role; reason = Printf.sprintf "%s is not authorized" user }
        | Rbac.Session.Dsd_violation (c, _, _) ->
            Some
              { role; reason = Format.asprintf "dynamic SoD %a" Rbac.Sod.pp c })
      roles
  in
  let bus = Coordinated.System.bus t.control in
  List.iter
    (fun { role; reason } ->
      Obs.Bus.emit bus
        (Obs.Trace.Role_rejected { time; object_id; role; reason }))
    rejected;
  Coordinated.System.arrive t.control ~object_id ~server ~time;
  Coordinated.System.refresh t.control ~session ~object_id ~program ~time;
  (session, rejected)

let check_session t ~session ~object_id ~program ~time access =
  if unavailable t ~server:access.Sral.Access.server ~time then
    refuse t ~object_id ~time access
  else
    Coordinated.System.check t.control ~session ~object_id ~program ~time access

let check t ~object_id ~program ~time access =
  match Hashtbl.find_opt t.sessions object_id with
  | None -> invalid_arg ("Security_manager.check: unknown object " ^ object_id)
  | Some session -> check_session t ~session ~object_id ~program ~time access

let session t ~object_id = Hashtbl.find_opt t.sessions object_id
