(** Simulation metrics.

    The accumulator is a {e sink} over the observability bus
    ({!sink}): the world and the coordinated system publish events and
    the sink folds them into counters — there is no direct mutation
    left in the simulation loop. *)

type t = {
  mutable granted : int;
  mutable denied : int;
  mutable denied_rbac : int;
  mutable denied_spatial : int;
  mutable denied_temporal : int;
  mutable denied_unavailable : int;
      (** fail-closed denials against crashed/stale servers *)
  mutable migrations : int;
  mutable messages : int;  (** channel sends *)
  mutable signals : int;
  mutable completed_agents : int;
  mutable aborted_agents : int;
  mutable deadlocked_agents : int;
  mutable faults_injected : int;
  mutable retries : int;  (** migration retries scheduled *)
  mutable gave_up : int;  (** retry budgets exhausted *)
  mutable end_time : Temporal.Q.t;
  per_server : (string, int) Hashtbl.t;  (** granted accesses by server *)
}

val create : unit -> t
val record_server : t -> string -> unit
val server_counts : t -> (string * int) list
(** Sorted by server name. *)

val total_accesses : t -> int

val grant_rate : t -> float option
(** [granted / (granted + denied)], or [None] when the run performed no
    accesses — there is no rate to report, and the seed's [1.0] read as
    "everything granted".  {!pp} prints it as ["n/a"]. *)

val sink : ?relevant:(string -> bool) -> t -> Obs.Sink.t
(** The accumulator as a trace-bus subscriber: decisions (with
    per-reason denial breakdown), migrations, messages, signals, agent
    terminations and [Run_finished] (which sets [end_time]).
    [relevant] filters by agent/object id, as in {!Event_log.sink}. *)

val pp : Format.formatter -> t -> unit
