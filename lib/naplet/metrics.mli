(** Simulation metrics. *)

type t = {
  mutable granted : int;
  mutable denied : int;
  mutable denied_rbac : int;
  mutable denied_spatial : int;
  mutable denied_temporal : int;
  mutable migrations : int;
  mutable messages : int;  (** channel sends *)
  mutable signals : int;
  mutable completed_agents : int;
  mutable aborted_agents : int;
  mutable deadlocked_agents : int;
  mutable end_time : Temporal.Q.t;
  per_server : (string, int) Hashtbl.t;  (** granted accesses by server *)
}

val create : unit -> t
val record_server : t -> string -> unit
val server_counts : t -> (string * int) list
(** Sorted by server name. *)

val total_accesses : t -> int
val grant_rate : t -> float
val pp : Format.formatter -> t -> unit
