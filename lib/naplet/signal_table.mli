(** Order synchronization: [signal(ξ)] / [wait(ξ)].

    [signal(ξ)] must happen before [wait(ξ)] can proceed (Definition
    3.1).  Signals are sticky: once raised, any number of later waits
    pass immediately. *)

type waiter = { agent : string; thread : int }
type t

val create : unit -> t

val raise_signal : t -> string -> waiter list
(** Mark raised; returns (and clears) the blocked waiters to wake. *)

val is_raised : t -> string -> bool
val park : t -> string -> waiter -> unit

val cancel_agent : t -> agent:string -> int
(** Remove every parked waiter of the agent across all signals,
    returning how many were removed. *)

val raised : t -> string list
(** Sorted. *)

val waiting : t -> string -> int
