type clone = {
  id : string;
  team : string;
  share : Sral.Access.t list;
  program : Sral.Ast.t;
}

let default_channel team = team ^ ".report"

(* count completed accesses in a variable, then send it home; a
   guarded-out access is neither performed nor counted *)
let clone_program ~guard ~channel share =
  let counter = "completed" in
  let increment =
    Sral.Ast.Assign
      ( counter,
        Sral.Expr.Binop (Sral.Expr.Add, Sral.Expr.Var counter, Sral.Expr.Int 1)
      )
  in
  let step access =
    let perform = Sral.Ast.Seq (Sral.Ast.Access access, increment) in
    match guard with
    | None -> perform
    | Some g -> Sral.Ast.If (g, perform, Sral.Ast.Skip)
  in
  Sral.Ast.seq
    ((Sral.Ast.Assign (counter, Sral.Expr.Int 0) :: List.map step share)
    @ [ Sral.Ast.Send (channel, Sral.Expr.Var counter) ])

let plan ?guard ?report_channel ~team ~clones accesses =
  if clones < 1 then invalid_arg "Clone.plan: clones < 1";
  let channel =
    match report_channel with Some c -> c | None -> default_channel team
  in
  let n = List.length accesses in
  let per = max 1 ((n + clones - 1) / clones) in
  let rec take k = function
    | x :: rest when k > 0 ->
        let taken, rest = take (k - 1) rest in
        (x :: taken, rest)
    | rest -> ([], rest)
  in
  let rec shares l = match l with [] -> [] | _ ->
    let share, rest = take per l in
    share :: shares rest
  in
  List.mapi
    (fun i share ->
      {
        id = Printf.sprintf "%s-clone-%d" team (i + 1);
        team;
        share;
        program = clone_program ~guard ~channel share;
      })
    (shares accesses)

let collector_program ?report_channel ~team k =
  let channel =
    match report_channel with Some c -> c | None -> default_channel team
  in
  Sral.Ast.seq
    (Sral.Ast.Assign ("total", Sral.Expr.Int 0)
    :: List.concat_map
         (fun i ->
           let v = Printf.sprintf "part%d" i in
           [
             Sral.Ast.Recv (channel, v);
             Sral.Ast.Assign
               ( "total",
                 Sral.Expr.Binop
                   (Sral.Expr.Add, Sral.Expr.Var "total", Sral.Expr.Var v) );
           ])
         (List.init k (fun i -> i + 1)))

let spawn_all world ~owner ~roles ~home clones =
  List.iter
    (fun clone ->
      World.spawn world ~team:clone.team ~id:clone.id ~owner ~roles ~home
        clone.program)
    clones
