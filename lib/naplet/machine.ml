type request =
  | Access of Sral.Access.t
  | Send of string * Sral.Value.t
  | Recv of string * string
  | Signal of string
  | Wait of string

type status =
  | Ready of { thread : int; request : request; silent_steps : int }
  | All_blocked
  | Finished
  | Fault of string

type item = Exec of Sral.Ast.t | Join of int

type thread = {
  id : int;
  mutable stack : item list;
  mutable blocked : bool;
  mutable pending : request option;
}

type join = { mutable remaining : int; continuation : item list }

type t = {
  mutable threads : thread list;  (** live threads, in creation order *)
  env : (string, Sral.Value.t) Hashtbl.t;
  joins : (int, join) Hashtbl.t;
  mutable next_thread : int;
  mutable next_join : int;
  mutable rotation : int;  (** fair scheduling offset *)
  fuel : int;
}

let create ?(fuel = 100_000) program =
  {
    threads = [ { id = 0; stack = [ Exec program ]; blocked = false; pending = None } ];
    env = Hashtbl.create 8;
    joins = Hashtbl.create 4;
    next_thread = 1;
    next_join = 0;
    rotation = 0;
    fuel;
  }

let find_thread t id = List.find_opt (fun th -> th.id = id) t.threads

let request_of_action env (p : Sral.Ast.t) =
  match p with
  | Sral.Ast.Access a -> Access a
  | Sral.Ast.Send (chan, e) ->
      Send (chan, Sral.Expr.eval env e)
  | Sral.Ast.Recv (chan, x) -> Recv (chan, x)
  | Sral.Ast.Signal x -> Signal x
  | Sral.Ast.Wait x -> Wait x
  | Sral.Ast.Skip | Sral.Ast.Assign _ | Sral.Ast.Seq _ | Sral.Ast.If _
  | Sral.Ast.While _ | Sral.Ast.Par _ ->
      assert false

let env_of_tbl tbl =
  Hashtbl.fold (fun x v env -> Sral.Env.bind env x v) tbl Sral.Env.empty

(* Execute one silent step of a thread, or surface its action.
   Returns [`Silent] (made progress), [`Action request], [`Dead]
   (thread ended). *)
let exec_one t th =
  match th.stack with
  | [] -> `Dead
  | Join j :: rest -> (
      assert (rest = []);
      match Hashtbl.find_opt t.joins j with
      | None -> assert false
      | Some join ->
          join.remaining <- join.remaining - 1;
          if join.remaining = 0 then begin
            (* last branch continues with the continuation *)
            th.stack <- join.continuation;
            Hashtbl.remove t.joins j;
            `Silent
          end
          else begin
            th.stack <- [];
            `Dead
          end)
  | Exec p :: rest -> (
      match p with
      | Sral.Ast.Skip ->
          th.stack <- rest;
          `Silent
      | Sral.Ast.Assign (x, e) ->
          let v = Sral.Expr.eval (env_of_tbl t.env) e in
          Hashtbl.replace t.env x v;
          th.stack <- rest;
          `Silent
      | Sral.Ast.Seq (p1, p2) ->
          th.stack <- Exec p1 :: Exec p2 :: rest;
          `Silent
      | Sral.Ast.If (c, p1, p2) ->
          let branch =
            if Sral.Expr.eval_bool (env_of_tbl t.env) c then p1 else p2
          in
          th.stack <- Exec branch :: rest;
          `Silent
      | Sral.Ast.While (c, body) ->
          if Sral.Expr.eval_bool (env_of_tbl t.env) c then
            th.stack <- Exec body :: Exec p :: rest
          else th.stack <- rest;
          `Silent
      | Sral.Ast.Par (p1, p2) ->
          let j = t.next_join in
          t.next_join <- j + 1;
          Hashtbl.add t.joins j { remaining = 2; continuation = rest };
          th.stack <- [ Exec p1; Join j ];
          let sibling =
            {
              id = t.next_thread;
              stack = [ Exec p2; Join j ];
              blocked = false;
              pending = None;
            }
          in
          t.next_thread <- t.next_thread + 1;
          t.threads <- t.threads @ [ sibling ];
          `Silent
      | Sral.Ast.Access _ | Sral.Ast.Send _ | Sral.Ast.Recv _
      | Sral.Ast.Signal _ | Sral.Ast.Wait _ ->
          `Action (request_of_action (env_of_tbl t.env) p))

let prune t = t.threads <- List.filter (fun th -> th.stack <> []) t.threads

let step t =
  prune t;
  if t.threads = [] then Finished
  else begin
    (* already-surfaced pending request? re-surface the first *)
    match
      List.find_opt (fun th -> (not th.blocked) && th.pending <> None) t.threads
    with
    | Some th -> (
        match th.pending with
        | Some request -> Ready { thread = th.id; request; silent_steps = 0 }
        | None -> assert false)
    | None -> (
        let runnable () = List.filter (fun th -> not th.blocked) t.threads in
        match runnable () with
        | [] -> All_blocked
        | _ -> (
            let silent = ref 0 in
            let result = ref None in
            (try
               while !result = None do
                 prune t;
                 if t.threads = [] then result := Some Finished
                 else begin
                   let candidates = runnable () in
                   if candidates = [] then result := Some All_blocked
                   else begin
                     if !silent > t.fuel then
                       result :=
                         Some (Fault "divergence: silent-step fuel exhausted");
                     let n = List.length candidates in
                     let th = List.nth candidates (t.rotation mod n) in
                     t.rotation <- t.rotation + 1;
                     match !result with
                     | Some _ -> ()
                     | None -> (
                         match exec_one t th with
                         | `Silent -> incr silent
                         | `Dead -> ()
                         | `Action request ->
                             th.pending <- Some request;
                             result :=
                               Some
                                 (Ready
                                    {
                                      thread = th.id;
                                      request;
                                      silent_steps = !silent;
                                    }))
                   end
                 end
               done
             with Sral.Expr.Eval_error msg -> result := Some (Fault msg));
            match !result with Some s -> s | None -> assert false))
  end

let pop_action th =
  th.pending <- None;
  match th.stack with
  | Exec _ :: rest -> th.stack <- rest
  | _ -> assert false

let with_thread t ~thread f =
  match find_thread t thread with
  | Some th -> f th
  | None -> invalid_arg "Machine: unknown thread"

let complete t ~thread = with_thread t ~thread (fun th -> pop_action th)

let complete_recv t ~thread ~var v =
  with_thread t ~thread (fun th ->
      Hashtbl.replace t.env var v;
      pop_action th)

let block t ~thread = with_thread t ~thread (fun th -> th.blocked <- true)
let unblock t ~thread = with_thread t ~thread (fun th -> th.blocked <- false)
let skip_request t ~thread = with_thread t ~thread (fun th -> pop_action th)
let env_value t x = Hashtbl.find_opt t.env x
let live_threads t = List.length (List.filter (fun th -> th.stack <> []) t.threads)

let is_finished t =
  List.for_all (fun th -> th.stack = []) t.threads
