type lookup = string -> Sral.Value.t option

type verdict = Sound | Corrupted of string

type invariant = { name : string; holds : lookup -> bool }

type t = { mutable invariants : invariant list (* reverse order *) }

let create () = { invariants = [] }

let add_invariant t ~name holds = t.invariants <- { name; holds } :: t.invariants

let appraise t lookup =
  let rec check = function
    | [] -> Sound
    | inv :: rest ->
        let ok = try inv.holds lookup with _ -> false in
        if ok then check rest else Corrupted inv.name
  in
  check (List.rev t.invariants)

let invariant_count t = List.length t.invariants

let var_bounds ~name ~var ~min ~max t =
  add_invariant t ~name (fun lookup ->
      match lookup var with
      | None -> true
      | Some (Sral.Value.Int i) -> min <= i && i <= max
      | Some (Sral.Value.Bool _) -> false)

let var_is_bool ~name ~var t =
  add_invariant t ~name (fun lookup ->
      match lookup var with
      | None | Some (Sral.Value.Bool _) -> true
      | Some (Sral.Value.Int _) -> false)
