type t =
  | Visit of string
  | Seq of t list
  | Alt of t list
  | Par of t list

let servers it =
  let rec collect acc = function
    | Visit s -> s :: acc
    | Seq parts | Alt parts | Par parts -> List.fold_left collect acc parts
  in
  List.sort_uniq String.compare (collect [] it)

let linearize ?(choose = fun _ -> 0) it =
  let rec walk = function
    | Visit s -> [ s ]
    | Seq parts | Par parts -> List.concat_map walk parts
    | Alt [] -> []
    | Alt parts ->
        let n = List.length parts in
        let i = choose n in
        if i < 0 || i >= n then invalid_arg "Itinerary.linearize: bad choice"
        else walk (List.nth parts i)
  in
  walk it

let linearize_avoiding ~down it =
  let all_up part = List.for_all (fun s -> not (down s)) (servers part) in
  let rec walk = function
    | Visit s -> if down s then [] else [ s ]
    | Seq parts | Par parts -> List.concat_map walk parts
    | Alt [] -> []
    | Alt parts -> (
        match List.find_opt all_up parts with
        | Some part -> walk part
        | None ->
            (* no live branch: keep the first as-is so the visit is
               denied fail-closed rather than silently dropped *)
            linearize (List.hd parts))
  in
  walk it

let to_program ~task it =
  let rec build = function
    | Visit s -> task s
    | Seq parts -> Sral.Ast.seq (List.map build parts)
    | Par parts -> Sral.Ast.par (List.map build parts)
    | Alt [] -> Sral.Ast.Skip
    | Alt [ only ] -> build only
    | Alt (first :: rest) ->
        (* condition is opaque at the trace-model level *)
        Sral.Ast.If (Sral.Expr.Var "route", build first, build (Alt rest))
  in
  build it

let shard it ~clones =
  if clones < 1 then invalid_arg "Itinerary.shard: clones < 1";
  let stops = linearize it in
  let n = List.length stops in
  let per = max 1 ((n + clones - 1) / clones) in
  let rec chunks l =
    match l with
    | [] -> []
    | _ ->
        let rec take k = function
          | x :: rest when k > 0 ->
              let taken, rest = take (k - 1) rest in
              (x :: taken, rest)
          | rest -> ([], rest)
        in
        let chunk, rest = take per l in
        Seq (List.map (fun s -> Visit s) chunk) :: chunks rest
  in
  chunks stops

let rec pp ppf = function
  | Visit s -> Format.pp_print_string ppf s
  | Seq parts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           pp)
        parts
  | Alt parts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
           pp)
        parts
  | Par parts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " # ")
           pp)
        parts
