(** A Naplet: one mobile software agent emulating a mobile device.

    Carries its owner's identity (the authenticated subject), the
    roles it travels with, its SRAL program (compiled to a running
    {!Machine}) and its current location. *)

type status =
  | Running
  | Waiting  (** all threads blocked on channels/signals *)
  | Completed of Temporal.Q.t  (** completion time *)
  | Aborted of string

type t = {
  id : string;
  owner : string;
  roles : string list;
  home : string;  (** dispatch server *)
  program : Sral.Ast.t;
  machine : Machine.t;
  mutable location : string option;
  mutable status : status;
}

val make :
  id:string ->
  owner:string ->
  roles:string list ->
  home:string ->
  ?fuel:int ->
  Sral.Ast.t ->
  t

val is_live : t -> bool
val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> t -> unit
