(** The NapletSecurityManager analog.

    Every access request of every agent passes through [check], which
    mirrors Section 5.2's [checkPermission]: identify the subject,
    run the spatial-constraint check and the temporal-constraint check
    through the coordinated model, and grant or raise.  Arrival hooks
    perform authentication + role activation ("the naplet server
    delegates the naplet execution to the subject of the naplet
    itself"). *)

type t

type rejected_role = { role : string; reason : string }
(** A requested role the manager refused to activate, with a
    human-readable reason (unauthorized, or a dynamic-SoD conflict). *)

val create : Coordinated.System.t -> t
val control : t -> Coordinated.System.t

val set_availability :
  t -> (server:string -> time:Temporal.Q.t -> bool) -> unit
(** Install a server-availability oracle (normally the fault injector's
    crash schedule; tests can model policy-stale replicas the same
    way).  Once installed, {!check} fails {b closed}: an access
    targeting a server the oracle reports down is denied with
    [Server_unavailable] — published as a normal [Decision] event, so
    the denial is on the audit record — instead of reaching the
    decision procedure. *)

val refuse :
  t ->
  object_id:string ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  Coordinated.Decision.verdict
(** Mint and publish a fail-closed [Server_unavailable] denial for the
    access (used by the world when a migration retry budget is
    exhausted).  Always returns [Denied (Server_unavailable _)]. *)

val on_arrival :
  t ->
  object_id:string ->
  owner:string ->
  roles:string list ->
  server:string ->
  time:Temporal.Q.t ->
  program:Sral.Ast.t ->
  Rbac.Session.t * rejected_role list
(** Authenticate the agent's owner, create/reuse its session, activate
    the requested roles and record the arrival.  Roles the owner may
    not activate ([Not_authorized]) or that a dynamic
    separation-of-duty constraint forbids ([Dsd_violation]) are
    reported in the second component, in request order, instead of
    being silently dropped — callers can surface them; the session is
    still established with the roles that did activate.  Each rejection
    is also published as an {!Obs.Trace.Role_rejected} event on the
    control's bus, before the arrival is recorded. *)

val check :
  t ->
  object_id:string ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  Coordinated.Decision.verdict
(** @raise Invalid_argument if the object never arrived (no session). *)

val check_session :
  t ->
  session:Rbac.Session.t ->
  object_id:string ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  Coordinated.Decision.verdict
(** {!check} with the session supplied by the caller, skipping the
    per-object session lookup — the id-indexed world caches each
    agent's session and decides accesses through this entry point.
    Identical verdicts (and published events) to {!check} given the
    session {!on_arrival} established for [object_id]. *)

val session : t -> object_id:string -> Rbac.Session.t option
