(** The NapletSecurityManager analog.

    Every access request of every agent passes through [check], which
    mirrors Section 5.2's [checkPermission]: identify the subject,
    run the spatial-constraint check and the temporal-constraint check
    through the coordinated model, and grant or raise.  Arrival hooks
    perform authentication + role activation ("the naplet server
    delegates the naplet execution to the subject of the naplet
    itself"). *)

type t

val create : Coordinated.System.t -> t
val control : t -> Coordinated.System.t

val on_arrival :
  t ->
  object_id:string ->
  owner:string ->
  roles:string list ->
  server:string ->
  time:Temporal.Q.t ->
  program:Sral.Ast.t ->
  Rbac.Session.t
(** Authenticate the agent's owner, create/reuse its session, activate
    the requested roles (silently skipping ones the owner is not
    authorized for — they simply yield later denials) and record the
    arrival.  Returns the session. *)

val check :
  t ->
  object_id:string ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  Coordinated.Decision.verdict
(** @raise Invalid_argument if the object never arrived (no session). *)

val session : t -> object_id:string -> Rbac.Session.t option
