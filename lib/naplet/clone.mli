(** The [ApplAgentProg] pattern of Section 5.2.

    The paper's example class dispatches [k] cloned naplets, each
    taking an equal share of an access list, each running a guard
    before each access and reporting its results home at the end.
    This module builds those clone programs from an access list:

    - each clone receives a [Seq] program over its share;
    - the guard is a pre-condition expression evaluated before each
      access ([if guard then {access} else {skip}] — the [Checkable]
      object of the paper's listing);
    - reporting home is a channel send of the clone's completed-access
      count on a per-team channel ([Observable] / [ResultReport]);
    - all clones join one naplet team, so team-scoped bindings see the
      union of their proofs. *)

type clone = {
  id : string;
  team : string;
  share : Sral.Access.t list;  (** this clone's slice, in order *)
  program : Sral.Ast.t;
}

val plan :
  ?guard:Sral.Expr.t ->
  ?report_channel:string ->
  team:string ->
  clones:int ->
  Sral.Access.t list ->
  clone list
(** Split the access list into [clones] near-equal contiguous shares
    (the paper's "equal share of the servers").  Clone ids are
    ["<team>-clone-<i>"].  Empty shares produce no clone.
    @raise Invalid_argument if [clones < 1]. *)

val collector_program : ?report_channel:string -> team:string -> int -> Sral.Ast.t
(** A home agent that receives one report per clone ([k] receives on
    the team's report channel) — dispatch it alongside the clones to
    model the "report their results to home" step. *)

val spawn_all :
  World.t ->
  owner:string ->
  roles:string list ->
  home:string ->
  clone list ->
  unit
(** Spawn every clone into the world, as members of their team. *)
