(** Append-only symbol arena: dense int ids for coalition names.

    The scale rework keys every agent and server by a small int into
    struct-of-arrays state tables instead of hashing strings on the hot
    path.  An arena assigns ids densely in first-intern order (0, 1,
    2, …) and never forgets or renumbers, so an id is a stable array
    index for the lifetime of the arena and {!name} round-trips the
    exact string that was interned — exported traces and logs keep
    byte-identical names. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] sizes the initial tables (default 16); the arena grows
    geometrically past it. *)

val intern : t -> string -> int
(** Get-or-add: the id already assigned to this string, or the next
    dense id.  O(1) amortized. *)

val find : t -> string -> int option
(** Lookup without adding. *)

val mem : t -> string -> bool

val name : t -> int -> string
(** The exact string interned for [id] — [name t (intern t s) == s]
    for the first interning of [s].
    @raise Invalid_argument if [id] was never assigned. *)

val count : t -> int
(** Ids assigned so far; valid ids are [0 .. count - 1]. *)

val iter : t -> (int -> string -> unit) -> unit
(** All symbols in id order. *)
