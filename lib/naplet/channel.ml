type waiter = { agent : string; thread : int }

type state = { values : Sral.Value.t Queue.t; mutable waiters : waiter list }

type t = (string, state) Hashtbl.t

let create () : t = Hashtbl.create 8

let state t chan =
  match Hashtbl.find_opt t chan with
  | Some st -> st
  | None ->
      let st = { values = Queue.create (); waiters = [] } in
      Hashtbl.add t chan st;
      st

let send t ~chan v =
  let st = state t chan in
  Queue.add v st.values;
  let to_wake = List.rev st.waiters in
  st.waiters <- [];
  to_wake

let try_recv t ~chan =
  let st = state t chan in
  Queue.take_opt st.values

let park t ~chan waiter =
  let st = state t chan in
  st.waiters <- waiter :: st.waiters

let cancel t ~chan waiter =
  let st = state t chan in
  let present = List.mem waiter st.waiters in
  if present then
    st.waiters <- List.filter (fun w -> w <> waiter) st.waiters;
  present

let cancel_agent t ~agent =
  Hashtbl.fold
    (fun _ st removed ->
      let before = List.length st.waiters in
      st.waiters <-
        List.filter (fun w -> not (String.equal w.agent agent)) st.waiters;
      removed + before - List.length st.waiters)
    t 0

let depth t ~chan = Queue.length (state t chan).values
let waiting t ~chan = List.length (state t chan).waiters

let channels t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
