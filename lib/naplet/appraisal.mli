(** State appraisal — the Farmer et al. mechanism of the related work
    (Section 7): "an agent with corrupted states won't be granted any
    privilege".

    An appraisal is a set of named invariants over the agent's variable
    state.  Servers appraise an agent when it arrives (and when it is
    first dispatched); an agent failing any invariant is quarantined —
    aborted before it can request a single access.  Complements the
    spatio-temporal checks: those constrain *what* an agent does, the
    appraisal constrains *what it has become*. *)

type lookup = string -> Sral.Value.t option
(** Read access to the agent's variables. *)

type verdict = Sound | Corrupted of string
(** [Corrupted name] carries the violated invariant's name. *)

type t

val create : unit -> t

val add_invariant : t -> name:string -> (lookup -> bool) -> unit
(** Invariants are checked in registration order; the first failure
    wins.  An invariant that raises is treated as failed (a malformed
    state must not crash the server). *)

val appraise : t -> lookup -> verdict
val invariant_count : t -> int

(** {2 Common invariants} *)

val var_bounds : name:string -> var:string -> min:int -> max:int -> t -> unit
(** The variable, when bound, must be an integer within [[min, max]].
    An unbound variable passes (the agent may not have reached that
    part of its program yet). *)

val var_is_bool : name:string -> var:string -> t -> unit
