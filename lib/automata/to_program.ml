exception Empty_model

let program ~table r =
  if Regex.is_empty_lang r then raise Empty_model;
  let counter = ref 0 in
  let fresh_cond () =
    incr counter;
    Sral.Expr.Var (Printf.sprintf "c%d" !counter)
  in
  let rec build r =
    match r with
    | Regex.Empty -> raise Empty_model
    | Regex.Eps -> Sral.Ast.Skip
    | Regex.Sym s -> Sral.Ast.Access (Symbol.access table s)
    | Regex.Alt (r1, r2) ->
        (* A sub-expression may still denote the empty language even if
           the whole does not; an empty alternative contributes nothing,
           so drop it rather than fail. *)
        if Regex.is_empty_lang r1 then build r2
        else if Regex.is_empty_lang r2 then build r1
        else Sral.Ast.If (fresh_cond (), build r1, build r2)
    | Regex.Cat (r1, r2) -> Sral.Ast.Seq (build r1, build r2)
    | Regex.Star r1 ->
        if Regex.is_empty_lang r1 then Sral.Ast.Skip
        else Sral.Ast.While (fresh_cond (), build r1)
  in
  Sral.Program.normalize (build r)
