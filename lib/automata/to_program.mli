(** Constructive content of Theorem 3.1 (regular completeness): every
    regular trace model is [traces(P)] for some SRAL program [P].

    The induction of the proof is followed literally:
    - [Sym a]     → the access [a];
    - [Alt r1 r2] → [if c then P1 else P2];
    - [Cat r1 r2] → [P1 ; P2];
    - [Star r]    → [while c do P];
    - [Eps]       → [skip].

    Conditions are fresh opaque variables: the trace model of [if]/
    [while] does not depend on the condition, so any expression works.
    [Empty] is the one regular language with no SRAL counterpart (every
    SRAL program has at least one trace); it is rejected. *)

exception Empty_model
(** Raised on [Regex.Empty] (and on expressions denoting the empty
    language). *)

val program : table:Symbol.table -> Regex.t -> Sral.Ast.t
(** @raise Empty_model if the regex denotes the empty language. *)
