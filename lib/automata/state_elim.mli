(** NFA → regular expression by state elimination (GNFA method).

    Together with {!To_program} this closes the loop of Section 3.2:
    program → NFA → regex → program, with language preserved at every
    step (property-tested in the suite). *)

val regex : Nfa.t -> Regex.t
