(** Trace model of an SRAL program as an NFA (Definition 3.2, made
    symbolic).

    Conditions are not evaluated — [if] contributes the union of both
    branches and [while] the Kleene closure of its body — exactly as in
    the paper's trace semantics.  Non-access primitives (channel I/O,
    signals, assignment) are trace-invisible and become epsilon. *)

val nfa : table:Symbol.table -> Sral.Ast.t -> Nfa.t
(** The program's accesses are interned into [table] (extending it). *)

val dfa : table:Symbol.table -> alphabet:Symbol.t list -> Sral.Ast.t -> Dfa.t
(** Determinized (not minimized) trace model over the given alphabet.
    The alphabet must cover at least the program's own accesses if the
    result is to be exact; a larger alphabet (e.g. including accesses
    mentioned only by constraints) is typical. *)
