(** GraphViz rendering of automata, with transition labels resolved
    through a symbol table when provided (accesses print in SRAL
    syntax; otherwise symbols print as [s0], [s1], ...). *)

val nfa : ?name:string -> ?table:Symbol.table -> Nfa.t -> string
val dfa : ?name:string -> ?table:Symbol.table -> Dfa.t -> string
(** The DFA's sink state (a non-final state with only self-loops) is
    omitted along with its edges, to keep renderings readable. *)
