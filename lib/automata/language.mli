(** High-level trace-model (language) operations on SRAL programs.

    This is the facade the [srac] checker and the test-suites use; it
    packages a symbol table together with a minimized DFA. *)

type t = { table : Symbol.table; dfa : Dfa.t }

val of_program : ?extra_accesses:Sral.Access.t list -> Sral.Ast.t -> t
(** Minimized trace model of a program, over the alphabet of the
    program's accesses plus [extra_accesses] (the accesses a constraint
    mentions must be part of the alphabet for complementation to be
    meaningful). *)

val of_regex : table:Symbol.table -> Regex.t -> t
(** Over the table's full alphabet. *)

val contains : t -> Sral.Trace.t -> bool
(** Is the trace in the model?  Traces using unknown accesses are not. *)

val is_empty : t -> bool
val equiv : t -> t -> bool
(** Language equality.  The models must share their symbol table
    (physical equality); build both from the same table.
    @raise Invalid_argument otherwise. *)

val subset : t -> t -> bool
(** Same sharing requirement as {!equiv}. *)

val inter : t -> t -> t
(** Intersection (same table required, result shares it). *)

val union : t -> t -> t
val diff : t -> t -> t

val witness : t -> Sral.Trace.t option
(** A shortest trace of the model, if any. *)

val to_regex : t -> Regex.t
(** Back to a regular expression (via state elimination on the DFA
    viewed as an NFA). *)

val state_count : t -> int
