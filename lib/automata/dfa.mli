(** Complete deterministic finite automata over an explicit alphabet.

    A DFA is always complete with respect to its [alphabet] array — a
    sink state absorbs missing transitions — so complementation is just
    flipping finals, and the boolean {!product} covers intersection,
    union, difference and symmetric difference.  These are the
    workhorses of the Section 3.3 decision procedure. *)

type t = private {
  num_states : int;
  alphabet : Symbol.t array;
  start : int;
  finals : bool array;
  next : int array array;
      (** [next.(q).(i)] is the successor of [q] on [alphabet.(i)]. *)
}

val of_tables :
  alphabet:Symbol.t list ->
  start:int ->
  finals:bool array ->
  next:int array array ->
  t
(** Build a complete DFA from explicit tables.  [next.(q).(i)] is the
    successor of [q] on the [i]-th symbol of the (sorted, de-duplicated)
    alphabet.  @raise Invalid_argument on inconsistent sizes or
    out-of-range targets. *)

val of_nfa : alphabet:Symbol.t list -> Nfa.t -> t
(** Subset construction.  Symbols of the NFA outside [alphabet] are
    ignored (they can never appear in a word over [alphabet]). *)

val minimize : t -> t
(** Moore partition refinement; result is reachable and minimal. *)

val product : (bool -> bool -> bool) -> t -> t -> t
(** [product f d1 d2] accepts [w] iff [f (d1 accepts w) (d2 accepts w)].
    The operands must have equal alphabets.
    @raise Invalid_argument otherwise. *)

val complement : t -> t
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val accepts : t -> Symbol.t list -> bool
(** Symbols outside the alphabet make the word rejected. *)

val is_empty : t -> bool
(** No reachable final state. *)

val run : t -> Symbol.t list -> int option
(** State reached from the start on the word; [None] if a symbol is
    outside the alphabet. *)

val final_reachable_from : t -> int -> bool
(** Can some final state be reached from the given state?  Together
    with {!run} this decides residual-language non-emptiness: whether a
    performed prefix can still be extended to an accepted word. *)

val shortest_witness : t -> Symbol.t list option
(** A shortest accepted word, if any (BFS). *)

val equiv : t -> t -> bool
(** Language equality (same alphabet required). *)

val subset : t -> t -> bool
(** Language inclusion (same alphabet required). *)

val universal_lang : alphabet:Symbol.t list -> t
(** Accepts every word over the alphabet. *)

val empty_lang : alphabet:Symbol.t list -> t

val num_states : t -> int
val pp : Format.formatter -> t -> unit
