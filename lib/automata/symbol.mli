(** Interning of accesses as dense integer symbols.

    Trace models are regular languages over the (finite) set of
    accesses occurring in a program and its constraints; the automata
    modules work over [int] symbols and this table maps them back to
    {!Sral.Access.t}. *)

type t = int
(** A symbol: index into a table. *)

type table

val create : unit -> table

val of_accesses : Sral.Access.t list -> table
(** Table pre-populated with the given accesses (duplicates merged). *)

val intern : table -> Sral.Access.t -> t
(** Existing id if the access is known, otherwise a fresh one. *)

val find : table -> Sral.Access.t -> t option
val access : table -> t -> Sral.Access.t

val size : table -> int
(** Number of interned symbols; valid symbols are [0 .. size-1]. *)

val alphabet : table -> t list
(** [0 .. size-1]. *)

val accesses : table -> Sral.Access.t list
(** All interned accesses in symbol order. *)

val pp_symbol : table -> Format.formatter -> t -> unit
