type t = {
  num_states : int;
  alphabet : Symbol.t array;
  start : int;
  finals : bool array;
  next : int array array;
}

let alphabet_index alphabet =
  let tbl = Hashtbl.create (Array.length alphabet) in
  Array.iteri (fun i s -> Hashtbl.replace tbl s i) alphabet;
  tbl

let of_tables ~alphabet ~start ~finals ~next =
  let alphabet = Array.of_list (List.sort_uniq Int.compare alphabet) in
  let num_states = Array.length finals in
  let k = Array.length alphabet in
  if
    Array.length next <> num_states
    || start < 0
    || start >= num_states
    || Array.exists
         (fun row ->
           Array.length row <> k
           || Array.exists (fun q -> q < 0 || q >= num_states) row)
         next
  then invalid_arg "Dfa.of_tables: inconsistent tables";
  { num_states; alphabet; start; finals; next }

let of_nfa ~alphabet nfa =
  let alphabet = Array.of_list (List.sort_uniq Int.compare alphabet) in
  let k = Array.length alphabet in
  (* state = sorted list of NFA states (eps-closed); keyed by string *)
  let key states = String.concat "," (List.map string_of_int states) in
  let ids = Hashtbl.create 64 in
  let states_of = ref [] in
  let count = ref 0 in
  let id_of states =
    let k' = key states in
    match Hashtbl.find_opt ids k' with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        Hashtbl.add ids k' id;
        states_of := states :: !states_of;
        id
  in
  let start_set = Nfa.eps_closure nfa [ (nfa : Nfa.t).start ] in
  let start = id_of start_set in
  let transitions = ref [] in
  let rec explore frontier =
    match frontier with
    | [] -> ()
    | states :: rest ->
        let id = id_of states in
        let row = Array.make k 0 in
        let newly =
          List.filter_map
            (fun i ->
              let s = alphabet.(i) in
              let targets =
                List.concat_map
                  (fun q ->
                    List.filter_map
                      (fun (s', q') -> if s = s' then Some q' else None)
                      (nfa : Nfa.t).moves.(q))
                  states
              in
              let dst_set = Nfa.eps_closure nfa targets in
              let known = Hashtbl.mem ids (key dst_set) in
              let dst = id_of dst_set in
              row.(i) <- dst;
              if known then None else Some dst_set)
            (List.init k Fun.id)
        in
        transitions := (id, row) :: !transitions;
        explore (newly @ rest)
  in
  explore [ start_set ];
  let num_states = !count in
  let next = Array.make num_states [||] in
  List.iter (fun (id, row) -> next.(id) <- row) !transitions;
  let all_states = Array.make num_states [] in
  List.iteri
    (fun i states -> all_states.(num_states - 1 - i) <- states)
    !states_of;
  let finals =
    Array.map (List.exists (fun q -> Nfa.is_final nfa q)) all_states
  in
  { num_states; alphabet; start; finals; next }

let reachable d =
  let seen = Array.make d.num_states false in
  let rec visit q =
    if not seen.(q) then begin
      seen.(q) <- true;
      Array.iter visit d.next.(q)
    end
  in
  visit d.start;
  seen

let restrict d keep =
  let remap = Array.make d.num_states (-1) in
  let count = ref 0 in
  for q = 0 to d.num_states - 1 do
    if keep.(q) then begin
      remap.(q) <- !count;
      incr count
    end
  done;
  let num_states = !count in
  let finals = Array.make num_states false in
  let next = Array.make num_states [||] in
  for q = 0 to d.num_states - 1 do
    if keep.(q) then begin
      finals.(remap.(q)) <- d.finals.(q);
      next.(remap.(q)) <- Array.map (fun dst -> remap.(dst)) d.next.(q)
    end
  done;
  { d with num_states; start = remap.(d.start); finals; next }

let minimize d =
  let d = restrict d (reachable d) in
  if d.num_states = 0 then d
  else begin
    (* Moore refinement: class.(q) starts as final/non-final, refined by
       successor-class signatures until stable. *)
    let cls = Array.map (fun b -> if b then 1 else 0) d.finals in
    let changed = ref true in
    while !changed do
      changed := false;
      let sig_tbl = Hashtbl.create d.num_states in
      let next_cls = Array.make d.num_states 0 in
      let fresh = ref 0 in
      for q = 0 to d.num_states - 1 do
        let signature =
          (cls.(q), Array.to_list (Array.map (fun dst -> cls.(dst)) d.next.(q)))
        in
        let c =
          match Hashtbl.find_opt sig_tbl signature with
          | Some c -> c
          | None ->
              let c = !fresh in
              incr fresh;
              Hashtbl.add sig_tbl signature c;
              c
        in
        next_cls.(q) <- c
      done;
      let distinct_before =
        let s = Hashtbl.create 16 in
        Array.iter (fun c -> Hashtbl.replace s c ()) cls;
        Hashtbl.length s
      in
      if !fresh <> distinct_before then changed := true;
      Array.blit next_cls 0 cls 0 d.num_states
    done;
    let num_classes = 1 + Array.fold_left max 0 cls in
    let finals = Array.make num_classes false in
    let next = Array.make num_classes [||] in
    for q = 0 to d.num_states - 1 do
      finals.(cls.(q)) <- d.finals.(q);
      next.(cls.(q)) <- Array.map (fun dst -> cls.(dst)) d.next.(q)
    done;
    { d with num_states = num_classes; start = cls.(d.start); finals; next }
  end

let same_alphabet d1 d2 =
  Array.length d1.alphabet = Array.length d2.alphabet
  && Array.for_all2 ( = ) d1.alphabet d2.alphabet

let product f d1 d2 =
  if not (same_alphabet d1 d2) then
    invalid_arg "Dfa.product: different alphabets";
  let m = d2.num_states in
  let pair q1 q2 = (q1 * m) + q2 in
  let num_states = d1.num_states * m in
  let k = Array.length d1.alphabet in
  let finals = Array.make num_states false in
  let next = Array.make num_states [||] in
  for q1 = 0 to d1.num_states - 1 do
    for q2 = 0 to m - 1 do
      let q = pair q1 q2 in
      finals.(q) <- f d1.finals.(q1) d2.finals.(q2);
      next.(q) <-
        Array.init k (fun i -> pair d1.next.(q1).(i) d2.next.(q2).(i))
    done
  done;
  restrict
    { d1 with num_states; start = pair d1.start d2.start; finals; next }
    (reachable
       { d1 with num_states; start = pair d1.start d2.start; finals; next })

let complement d = { d with finals = Array.map not d.finals }
let inter d1 d2 = product ( && ) d1 d2
let union d1 d2 = product ( || ) d1 d2
let diff d1 d2 = product (fun a b -> a && not b) d1 d2

let accepts d word =
  let idx = alphabet_index d.alphabet in
  let rec run q = function
    | [] -> d.finals.(q)
    | s :: rest -> (
        match Hashtbl.find_opt idx s with
        | None -> false
        | Some i -> run d.next.(q).(i) rest)
  in
  run d.start word

let run d word =
  let idx = alphabet_index d.alphabet in
  let rec go q = function
    | [] -> Some q
    | s :: rest -> (
        match Hashtbl.find_opt idx s with
        | None -> None
        | Some i -> go d.next.(q).(i) rest)
  in
  go d.start word

let final_reachable_from d q0 =
  let seen = Array.make d.num_states false in
  let found = ref false in
  let rec visit q =
    if (not seen.(q)) && not !found then begin
      seen.(q) <- true;
      if d.finals.(q) then found := true else Array.iter visit d.next.(q)
    end
  in
  visit q0;
  !found

let is_empty d =
  let seen = reachable d in
  not
    (Array.exists Fun.id
       (Array.mapi (fun q b -> b && d.finals.(q)) seen))

let shortest_witness d =
  (* BFS from start; parent pointers give the word. *)
  let parent = Array.make d.num_states None in
  let visited = Array.make d.num_states false in
  let queue = Queue.create () in
  visited.(d.start) <- true;
  Queue.add d.start queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let q = Queue.take queue in
    if d.finals.(q) then found := Some q
    else
      Array.iteri
        (fun i dst ->
          if not visited.(dst) then begin
            visited.(dst) <- true;
            parent.(dst) <- Some (q, d.alphabet.(i));
            Queue.add dst queue
          end)
        d.next.(q)
  done;
  match !found with
  | None -> None
  | Some q ->
      let rec build q acc =
        match parent.(q) with
        | None -> acc
        | Some (p, s) -> build p (s :: acc)
      in
      Some (build q [])

let equiv d1 d2 = is_empty (product ( <> ) d1 d2)
let subset d1 d2 = is_empty (diff d1 d2)

let one_state ~alphabet ~final =
  let alphabet = Array.of_list (List.sort_uniq Int.compare alphabet) in
  {
    num_states = 1;
    alphabet;
    start = 0;
    finals = [| final |];
    next = [| Array.make (Array.length alphabet) 0 |];
  }

let universal_lang ~alphabet = one_state ~alphabet ~final:true
let empty_lang ~alphabet = one_state ~alphabet ~final:false

let num_states d = d.num_states

let pp ppf d =
  Format.fprintf ppf "@[<v>dfa: %d states, start %d, alphabet [%s]@,"
    d.num_states d.start
    (String.concat ";" (List.map string_of_int (Array.to_list d.alphabet)));
  for q = 0 to d.num_states - 1 do
    Format.fprintf ppf "  %d%s:" q (if d.finals.(q) then " (final)" else "");
    Array.iteri
      (fun i dst -> Format.fprintf ppf " s%d->%d" d.alphabet.(i) dst)
      d.next.(q);
    Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
