type t = int

module Access_tbl = Hashtbl.Make (struct
  type t = Sral.Access.t

  let equal = Sral.Access.equal
  let hash = Sral.Access.hash
end)

type table = {
  ids : int Access_tbl.t;
  mutable backing : Sral.Access.t array;
  mutable count : int;
}

let dummy = Sral.Access.read "" ~at:""

let create () = { ids = Access_tbl.create 16; backing = Array.make 8 dummy; count = 0 }

let intern tbl a =
  match Access_tbl.find_opt tbl.ids a with
  | Some id -> id
  | None ->
      let id = tbl.count in
      if id >= Array.length tbl.backing then begin
        let bigger = Array.make (2 * Array.length tbl.backing) dummy in
        Array.blit tbl.backing 0 bigger 0 tbl.count;
        tbl.backing <- bigger
      end;
      tbl.backing.(id) <- a;
      tbl.count <- id + 1;
      Access_tbl.add tbl.ids a id;
      id

let of_accesses accesses =
  let tbl = create () in
  List.iter (fun a -> ignore (intern tbl a)) accesses;
  tbl

let find tbl a = Access_tbl.find_opt tbl.ids a

let access tbl id =
  if id < 0 || id >= tbl.count then invalid_arg "Symbol.access: bad symbol"
  else tbl.backing.(id)

let size tbl = tbl.count
let alphabet tbl = List.init tbl.count Fun.id
let accesses tbl = List.init tbl.count (fun i -> tbl.backing.(i))
let pp_symbol tbl ppf id = Sral.Access.pp ppf (access tbl id)
