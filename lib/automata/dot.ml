let label ?table s =
  match table with
  | Some tbl -> Format.asprintf "%a" (Symbol.pp_symbol tbl) s
  | None -> Printf.sprintf "s%d" s

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let header name = Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name

let state_line q ~final ~start =
  let shape = if final then "doublecircle" else "circle" in
  let extra = if start then " style=bold" else "" in
  Printf.sprintf "  %d [shape=%s%s];\n" q shape extra

let nfa ?(name = "nfa") ?table (n : Nfa.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header name);
  for q = 0 to Nfa.num_states n - 1 do
    Buffer.add_string buf
      (state_line q ~final:(Nfa.is_final n q) ~start:(q = n.Nfa.start))
  done;
  for q = 0 to Nfa.num_states n - 1 do
    List.iter
      (fun (s, q') ->
        Buffer.add_string buf
          (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" q q'
             (escape (label ?table s))))
      n.Nfa.moves.(q);
    List.iter
      (fun q' ->
        Buffer.add_string buf
          (Printf.sprintf "  %d -> %d [label=\"eps\" style=dashed];\n" q q'))
      n.Nfa.eps.(q)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let is_sink (d : Dfa.t) q =
  (not d.Dfa.finals.(q)) && Array.for_all (fun dst -> dst = q) d.Dfa.next.(q)

let dfa ?(name = "dfa") ?table (d : Dfa.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header name);
  for q = 0 to d.Dfa.num_states - 1 do
    if not (is_sink d q) then
      Buffer.add_string buf
        (state_line q ~final:d.Dfa.finals.(q) ~start:(q = d.Dfa.start))
  done;
  for q = 0 to d.Dfa.num_states - 1 do
    if not (is_sink d q) then
      Array.iteri
        (fun i dst ->
          if not (is_sink d dst) then
            Buffer.add_string buf
              (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" q dst
                 (escape (label ?table d.Dfa.alphabet.(i)))))
        d.Dfa.next.(q)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
