let rec nfa ~table p =
  match p with
  | Sral.Ast.Skip | Sral.Ast.Recv _ | Sral.Ast.Send _ | Sral.Ast.Signal _
  | Sral.Ast.Wait _ | Sral.Ast.Assign _ ->
      Nfa.eps_lang
  | Sral.Ast.Access a -> Nfa.sym (Symbol.intern table a)
  | Sral.Ast.Seq (p1, p2) -> Nfa.cat (nfa ~table p1) (nfa ~table p2)
  | Sral.Ast.If (_, p1, p2) -> Nfa.alt (nfa ~table p1) (nfa ~table p2)
  | Sral.Ast.While (_, body) -> Nfa.star (nfa ~table body)
  | Sral.Ast.Par (p1, p2) -> Nfa.shuffle (nfa ~table p1) (nfa ~table p2)

let dfa ~table ~alphabet p = Dfa.of_nfa ~alphabet (Nfa.trim (nfa ~table p))
