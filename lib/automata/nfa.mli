(** Nondeterministic finite automata with epsilon moves.

    NFAs represent trace models symbolically.  Besides the Thompson
    combinators mirroring Definition 3.2 ([cat], [alt], [star]), the
    {!shuffle} product implements the interleaving operator [#] that
    gives [p1 || p2] its trace model. *)

type t = private {
  num_states : int;
  start : int;
  finals : bool array;  (** length [num_states] *)
  moves : (Symbol.t * int) list array;  (** symbol transitions per state *)
  eps : int list array;  (** epsilon transitions per state *)
}

(** {2 Constructors} *)

val empty_lang : t
(** Accepts nothing. *)

val eps_lang : t
(** Accepts exactly the empty trace. *)

val sym : Symbol.t -> t
(** Accepts exactly the one-symbol trace. *)

val cat : t -> t -> t
val alt : t -> t -> t
val star : t -> t

val shuffle : t -> t -> t
(** Interleaving product: accepts all interleavings of a trace of the
    first operand with a trace of the second.  State count is the
    product of the operands' counts. *)

val of_regex : Regex.t -> t
(** Thompson construction. *)

val of_tables :
  num_states:int ->
  start:int ->
  finals:bool array ->
  moves:(Symbol.t * int) list array ->
  ?eps:int list array ->
  unit ->
  t
(** Escape hatch for building an NFA from explicit transition tables
    (e.g. to view a DFA as an NFA for state elimination).  [eps]
    defaults to no epsilon transitions.
    @raise Invalid_argument on inconsistent sizes. *)

(** {2 Queries} *)

val eps_closure : t -> int list -> int list
(** Sorted, duplicate-free epsilon closure of a set of states. *)

val accepts : t -> Symbol.t list -> bool
(** Direct subset simulation (no determinization). *)

val num_states : t -> int
val is_final : t -> int -> bool

val symbols : t -> Symbol.t list
(** Distinct symbols on transitions, sorted. *)

val trim : t -> t
(** Restrict to states reachable from the start.  (Co-reachability is
    not required by the downstream algorithms.) *)

val pp : Format.formatter -> t -> unit
