type t = {
  num_states : int;
  start : int;
  finals : bool array;
  moves : (Symbol.t * int) list array;
  eps : int list array;
}

let make ~num_states ~start ~finals ~moves ~eps =
  assert (Array.length finals = num_states);
  assert (Array.length moves = num_states);
  assert (Array.length eps = num_states);
  assert (start >= 0 && start < num_states);
  { num_states; start; finals; moves; eps }

let empty_lang =
  make ~num_states:1 ~start:0 ~finals:[| false |] ~moves:[| [] |] ~eps:[| [] |]

let eps_lang =
  make ~num_states:1 ~start:0 ~finals:[| true |] ~moves:[| [] |] ~eps:[| [] |]

let sym s =
  make ~num_states:2 ~start:0 ~finals:[| false; true |]
    ~moves:[| [ (s, 1) ]; [] |]
    ~eps:[| []; [] |]

(* Disjoint union of the state spaces: states of [n2] are shifted by
   [n1.num_states].  Returns the shift. *)
let disjoint n1 n2 =
  let shift = n1.num_states in
  let num_states = n1.num_states + n2.num_states in
  let finals = Array.make num_states false in
  Array.blit n1.finals 0 finals 0 shift;
  Array.iteri (fun i b -> finals.(shift + i) <- b) n2.finals;
  let moves = Array.make num_states [] in
  Array.blit n1.moves 0 moves 0 shift;
  Array.iteri
    (fun i l -> moves.(shift + i) <- List.map (fun (s, q) -> (s, q + shift)) l)
    n2.moves;
  let eps = Array.make num_states [] in
  Array.blit n1.eps 0 eps 0 shift;
  Array.iteri (fun i l -> eps.(shift + i) <- List.map (( + ) shift) l) n2.eps;
  (shift, num_states, finals, moves, eps)

let cat n1 n2 =
  let shift, num_states, finals, moves, eps = disjoint n1 n2 in
  (* finals of n1 get an eps edge to n2.start and stop being final *)
  for q = 0 to n1.num_states - 1 do
    if n1.finals.(q) then begin
      finals.(q) <- false;
      eps.(q) <- (n2.start + shift) :: eps.(q)
    end
  done;
  make ~num_states ~start:n1.start ~finals ~moves ~eps

let alt n1 n2 =
  let shift, num_states0, finals0, moves0, eps0 = disjoint n1 n2 in
  (* fresh start with eps edges to both starts *)
  let num_states = num_states0 + 1 in
  let start = num_states0 in
  let finals = Array.append finals0 [| false |] in
  let moves = Array.append moves0 [| [] |] in
  let eps = Array.append eps0 [| [ n1.start; n2.start + shift ] |] in
  make ~num_states ~start ~finals ~moves ~eps

let star n =
  (* fresh start, final; eps to old start; old finals eps back to fresh *)
  let num_states = n.num_states + 1 in
  let start = n.num_states in
  let finals = Array.append (Array.map (fun _ -> false) n.finals) [| true |] in
  let moves = Array.append n.moves [| [] |] in
  let eps =
    Array.append
      (Array.mapi
         (fun q l -> if n.finals.(q) then start :: l else l)
         n.eps)
      [| [ n.start ] |]
  in
  make ~num_states ~start ~finals ~moves ~eps

let shuffle n1 n2 =
  let m = n2.num_states in
  let pair q1 q2 = (q1 * m) + q2 in
  let num_states = n1.num_states * m in
  let finals = Array.make num_states false in
  let moves = Array.make num_states [] in
  let eps = Array.make num_states [] in
  for q1 = 0 to n1.num_states - 1 do
    for q2 = 0 to m - 1 do
      let q = pair q1 q2 in
      finals.(q) <- n1.finals.(q1) && n2.finals.(q2);
      moves.(q) <-
        List.map (fun (s, q1') -> (s, pair q1' q2)) n1.moves.(q1)
        @ List.map (fun (s, q2') -> (s, pair q1 q2')) n2.moves.(q2);
      eps.(q) <-
        List.map (fun q1' -> pair q1' q2) n1.eps.(q1)
        @ List.map (fun q2' -> pair q1 q2') n2.eps.(q2)
    done
  done;
  make ~num_states ~start:(pair n1.start n2.start) ~finals ~moves ~eps

let of_tables ~num_states ~start ~finals ~moves ?eps () =
  let eps = match eps with Some e -> e | None -> Array.make num_states [] in
  if
    Array.length finals <> num_states
    || Array.length moves <> num_states
    || Array.length eps <> num_states
    || start < 0
    || start >= num_states
  then invalid_arg "Nfa.of_tables: inconsistent sizes";
  { num_states; start; finals; moves; eps }

let rec of_regex = function
  | Regex.Empty -> empty_lang
  | Regex.Eps -> eps_lang
  | Regex.Sym s -> sym s
  | Regex.Alt (r1, r2) -> alt (of_regex r1) (of_regex r2)
  | Regex.Cat (r1, r2) -> cat (of_regex r1) (of_regex r2)
  | Regex.Star r -> star (of_regex r)

let eps_closure n states =
  let seen = Array.make n.num_states false in
  let rec visit q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter visit n.eps.(q)
    end
  in
  List.iter visit states;
  let acc = ref [] in
  for q = n.num_states - 1 downto 0 do
    if seen.(q) then acc := q :: !acc
  done;
  !acc

let step n states s =
  let targets =
    List.concat_map
      (fun q -> List.filter_map (fun (s', q') -> if s = s' then Some q' else None) n.moves.(q))
      states
  in
  eps_closure n targets

let accepts n word =
  let final_states =
    List.fold_left (step n) (eps_closure n [ n.start ]) word
  in
  List.exists (fun q -> n.finals.(q)) final_states

let num_states n = n.num_states
let is_final n q = n.finals.(q)

let symbols n =
  let acc = ref [] in
  Array.iter (fun l -> List.iter (fun (s, _) -> acc := s :: !acc) l) n.moves;
  List.sort_uniq Int.compare !acc

let trim n =
  let reachable = Array.make n.num_states false in
  let rec visit q =
    if not reachable.(q) then begin
      reachable.(q) <- true;
      List.iter (fun (_, q') -> visit q') n.moves.(q);
      List.iter visit n.eps.(q)
    end
  in
  visit n.start;
  let remap = Array.make n.num_states (-1) in
  let count = ref 0 in
  for q = 0 to n.num_states - 1 do
    if reachable.(q) then begin
      remap.(q) <- !count;
      incr count
    end
  done;
  let num_states = !count in
  let finals = Array.make num_states false in
  let moves = Array.make num_states [] in
  let eps = Array.make num_states [] in
  for q = 0 to n.num_states - 1 do
    if reachable.(q) then begin
      let q' = remap.(q) in
      finals.(q') <- n.finals.(q);
      moves.(q') <-
        List.filter_map
          (fun (s, dst) -> if reachable.(dst) then Some (s, remap.(dst)) else None)
          n.moves.(q);
      eps.(q') <-
        List.filter_map
          (fun dst -> if reachable.(dst) then Some remap.(dst) else None)
          n.eps.(q)
    end
  done;
  make ~num_states ~start:remap.(n.start) ~finals ~moves ~eps

let pp ppf n =
  Format.fprintf ppf "@[<v>nfa: %d states, start %d@," n.num_states n.start;
  for q = 0 to n.num_states - 1 do
    Format.fprintf ppf "  %d%s:" q (if n.finals.(q) then " (final)" else "");
    List.iter (fun (s, q') -> Format.fprintf ppf " --s%d-->%d" s q') n.moves.(q);
    List.iter (fun q' -> Format.fprintf ppf " --eps-->%d" q') n.eps.(q);
    Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
