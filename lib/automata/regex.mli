(** Regular expressions over interned symbols.

    Regular trace models (Definition 3.3) are exactly the languages of
    these expressions: [{a}] is [Sym a], union is [Alt], concatenation
    is [Cat] and Kleene closure is [Star].  [Empty] (the empty model)
    and [Eps] (the singleton empty-trace model) are included for
    algebraic closure — Definition 3.3 generates neither, but state
    elimination does. *)

type t =
  | Empty  (** no trace at all *)
  | Eps  (** the empty trace *)
  | Sym of Symbol.t
  | Alt of t * t
  | Cat of t * t
  | Star of t

(** {2 Smart constructors} — apply the obvious simplifications
    ([Empty] is a zero for [Cat] and unit for [Alt]; [Eps] a unit for
    [Cat]; nested/degenerate stars collapse). *)

val empty : t
val eps : t
val sym : Symbol.t -> t
val alt : t -> t -> t
val cat : t -> t -> t
val star : t -> t
val alt_list : t list -> t
val cat_list : t list -> t

val nullable : t -> bool
(** Does the language contain the empty trace? *)

val is_empty_lang : t -> bool
(** Is the language empty (no trace matches)? *)

val derivative : Symbol.t -> t -> t
(** Brzozowski derivative: [{w | s·w ∈ L}]. *)

val matches : t -> Symbol.t list -> bool
(** Membership by iterated derivatives. *)

val symbols : t -> Symbol.t list
(** Distinct symbols occurring, sorted. *)

val size : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val generate :
  ?star_depth:int -> symbols:Symbol.t list -> size:int -> Random.State.t -> t
(** Random regex drawn from Definition 3.3's grammar (never produces
    [Empty]; produces [Eps] only under [Star]).  [star_depth] bounds
    star nesting (default 2). *)

val pp : Format.formatter -> t -> unit
(** Symbols print as [s<i>]; use {!pp_with} to print accesses. *)

val pp_with : (Format.formatter -> Symbol.t -> unit) -> Format.formatter -> t -> unit
