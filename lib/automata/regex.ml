type t =
  | Empty
  | Eps
  | Sym of Symbol.t
  | Alt of t * t
  | Cat of t * t
  | Star of t

let empty = Empty
let eps = Eps
let sym s = Sym s

let alt r1 r2 =
  match (r1, r2) with
  | Empty, r | r, Empty -> r
  | _ -> if r1 = r2 then r1 else Alt (r1, r2)

let cat r1 r2 =
  match (r1, r2) with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | _ -> Cat (r1, r2)

let star = function
  | Empty | Eps -> Eps
  | Star _ as r -> r
  | r -> Star r

let alt_list l = List.fold_left alt Empty l
let cat_list l = List.fold_left cat Eps l

let rec nullable = function
  | Empty | Sym _ -> false
  | Eps | Star _ -> true
  | Alt (r1, r2) -> nullable r1 || nullable r2
  | Cat (r1, r2) -> nullable r1 && nullable r2

let rec is_empty_lang = function
  | Empty -> true
  | Eps | Sym _ | Star _ -> false
  | Alt (r1, r2) -> is_empty_lang r1 && is_empty_lang r2
  | Cat (r1, r2) -> is_empty_lang r1 || is_empty_lang r2

let rec derivative s = function
  | Empty | Eps -> Empty
  | Sym s' -> if s = s' then Eps else Empty
  | Alt (r1, r2) -> alt (derivative s r1) (derivative s r2)
  | Cat (r1, r2) ->
      let d = cat (derivative s r1) r2 in
      if nullable r1 then alt d (derivative s r2) else d
  | Star r as whole -> cat (derivative s r) whole

let matches r word =
  nullable (List.fold_left (fun r s -> derivative s r) r word)

let symbols r =
  let rec collect acc = function
    | Empty | Eps -> acc
    | Sym s -> s :: acc
    | Alt (r1, r2) | Cat (r1, r2) -> collect (collect acc r1) r2
    | Star r -> collect acc r
  in
  List.sort_uniq Int.compare (collect [] r)

let rec size = function
  | Empty | Eps | Sym _ -> 1
  | Alt (r1, r2) | Cat (r1, r2) -> 1 + size r1 + size r2
  | Star r -> 1 + size r

let equal r1 r2 = r1 = r2
let compare = Stdlib.compare

let generate ?(star_depth = 2) ~symbols ~size rng =
  let pick () = List.nth symbols (Random.State.int rng (List.length symbols)) in
  let rec gen size depth =
    if size <= 1 then Sym (pick ())
    else
      match Random.State.int rng (if depth > 0 then 4 else 3) with
      | 0 | 1 ->
          let split = 1 + Random.State.int rng (size - 1) in
          cat (gen split depth) (gen (size - split) depth)
      | 2 ->
          let split = 1 + Random.State.int rng (size - 1) in
          alt (gen split depth) (gen (size - split) depth)
      | _ -> star (gen (size - 1) (depth - 1))
  in
  gen (max 1 size) star_depth

let pp_with pp_sym ppf r =
  (* precedence: alt(1) < cat(2) < star(3) *)
  let rec go prec ppf r =
    match r with
    | Empty -> Format.pp_print_string ppf "0"
    | Eps -> Format.pp_print_string ppf "1"
    | Sym s -> pp_sym ppf s
    | Alt (r1, r2) ->
        let body ppf () = Format.fprintf ppf "%a + %a" (go 1) r1 (go 1) r2 in
        if prec > 1 then Format.fprintf ppf "(%a)" body () else body ppf ()
    | Cat (r1, r2) ->
        let body ppf () = Format.fprintf ppf "%a . %a" (go 2) r1 (go 2) r2 in
        if prec > 2 then Format.fprintf ppf "(%a)" body () else body ppf ()
    | Star r1 -> Format.fprintf ppf "%a*" (go 3) r1
  in
  go 0 ppf r

let pp ppf r = pp_with (fun ppf s -> Format.fprintf ppf "s%d" s) ppf r
