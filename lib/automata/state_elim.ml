(* Generalized NFA: a dense matrix of regexes between states
   0..n+1 where n is the source NFA's size; n is the fresh initial
   state and n+1 the fresh final state.  Interior states are eliminated
   one at a time with the classic update
     R(i,j) := R(i,j) + R(i,k) . R(k,k)* . R(k,j). *)

let regex (nfa : Nfa.t) =
  let n = Nfa.num_states nfa in
  let init = n in
  let final = n + 1 in
  let size = n + 2 in
  let m = Array.make_matrix size size Regex.empty in
  let add i j r = m.(i).(j) <- Regex.alt m.(i).(j) r in
  for q = 0 to n - 1 do
    List.iter (fun (s, q') -> add q q' (Regex.sym s)) nfa.moves.(q);
    List.iter (fun q' -> add q q' Regex.eps) nfa.eps.(q);
    if Nfa.is_final nfa q then add q final Regex.eps
  done;
  add init (nfa : Nfa.t).start Regex.eps;
  (* Eliminate interior states in order. *)
  for k = 0 to n - 1 do
    let loop = Regex.star m.(k).(k) in
    for i = 0 to size - 1 do
      if i <> k && m.(i).(k) <> Regex.empty then
        for j = 0 to size - 1 do
          if j <> k && m.(k).(j) <> Regex.empty then
            add i j (Regex.cat_list [ m.(i).(k); loop; m.(k).(j) ])
        done
    done;
    for i = 0 to size - 1 do
      m.(i).(k) <- Regex.empty;
      m.(k).(i) <- Regex.empty
    done
  done;
  m.(init).(final)
