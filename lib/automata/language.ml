type t = { table : Symbol.table; dfa : Dfa.t }

let of_program ?(extra_accesses = []) p =
  let table = Symbol.of_accesses (Sral.Program.accesses p @ extra_accesses) in
  let nfa = Of_program.nfa ~table p in
  let dfa = Dfa.minimize (Dfa.of_nfa ~alphabet:(Symbol.alphabet table) nfa) in
  { table; dfa }

let of_regex ~table r =
  let dfa =
    Dfa.minimize
      (Dfa.of_nfa ~alphabet:(Symbol.alphabet table) (Nfa.of_regex r))
  in
  { table; dfa }

let contains t trace =
  let rec encode = function
    | [] -> Some []
    | a :: rest -> (
        match Symbol.find t.table a with
        | None -> None
        | Some s -> Option.map (fun w -> s :: w) (encode rest))
  in
  match encode trace with
  | None -> false
  | Some word -> Dfa.accepts t.dfa word

let is_empty t = Dfa.is_empty t.dfa

let require_shared t1 t2 =
  if t1.table != t2.table then
    invalid_arg "Language: operands must share their symbol table"

let equiv t1 t2 =
  require_shared t1 t2;
  Dfa.equiv t1.dfa t2.dfa

let subset t1 t2 =
  require_shared t1 t2;
  Dfa.subset t1.dfa t2.dfa

let binop op t1 t2 =
  require_shared t1 t2;
  { table = t1.table; dfa = Dfa.minimize (op t1.dfa t2.dfa) }

let inter t1 t2 = binop Dfa.inter t1 t2
let union t1 t2 = binop Dfa.union t1 t2
let diff t1 t2 = binop Dfa.diff t1 t2

let witness t =
  Option.map
    (List.map (fun s -> Symbol.access t.table s))
    (Dfa.shortest_witness t.dfa)

let to_regex t =
  (* View the DFA as an NFA and eliminate states. *)
  let d = t.dfa in
  let moves =
    Array.init d.num_states (fun q ->
        Array.to_list (Array.mapi (fun i dst -> (d.alphabet.(i), dst)) d.next.(q)))
  in
  let nfa =
    Nfa.of_tables ~num_states:d.num_states ~start:d.start ~finals:d.finals
      ~moves ()
  in
  State_elim.regex nfa

let state_count t = Dfa.num_states t.dfa
