(** Facade: a coordinated spatio-temporal access-control system.

    Wires the RBAC policy, the spatio-temporal bindings, the per-object
    monitors and the audit log into the single object a server (or the
    Naplet emulation's security manager) consults.

    Three decision modes share one observable behavior:

    - [Indexed] (the default) resolves applicable bindings through
      {!Binding_index}, looks companions up in precomputed team
      rosters, and serves repeat decisions from the per-monitor verdict
      cache ({!Decision.decide_indexed}).
    - [Naive] is the seed's linear path — full binding scan, companion
      fold over every object, no caching — kept as the differential
      oracle and the E13 baseline.
    - [Lazy] evaluates history-scope spatial constraints incrementally
      as memoized Brzozowski-derivative residuals
      ({!Decision.decide_lazy} over {!Srac.Lazy_dfa}): no verdict
      cache to invalidate, no per-decision constraint compilation.

    The differential fuzz suite ([test/test_fuzz.ml]) checks that all
    modes produce identical verdicts (including denial reasons) and
    identical audit logs on randomized coalitions. *)

type t

type decision_mode = Indexed | Naive | Lazy

val create :
  ?mode:decision_mode ->
  ?bindings:Perm_binding.t list ->
  ?log_capacity:int ->
  ?bus:Obs.Bus.t ->
  Rbac.Policy.t ->
  t
(** [log_capacity] bounds the audit log (ring mode, for long
    emulations); lifetime counters stay exact either way.  [bus] is the
    observability spine the system publishes on (default: a fresh bus
    with the deterministic null clock); pass a bus built with a
    monotonic clock to give decision spans real durations.  The audit
    log is subscribed to the bus at creation, before any caller
    sinks. *)

val clone : t -> t
(** A pristine replica: same decision mode, same bindings (copied into
    a fresh index), the {e same} policy object, but fresh monitors,
    teams, audit log and bus.  This is the shard-safe entry point the
    parallel engine uses: each OCaml 5 domain decides against its own
    clone, so no mutable decision state (monitors, verdict caches,
    rosters, logs) is ever shared between domains.  The shared policy
    must not be mutated while clones are live on other domains —
    concurrent {e reads} of an unmutated policy are safe. *)

val of_policy_text : ?mode:decision_mode -> string -> t
(** Build from {!Policy_lang} text.  @raise Policy_lang.Error *)

val policy : t -> Rbac.Policy.t
val mode : t -> decision_mode

val bindings : t -> Perm_binding.t list
(** In insertion order. *)

val add_binding : t -> Perm_binding.t -> unit
(** Amortized O(1) append (the seed rebuilt the whole list per add). *)

val applicable_bindings : t -> Sral.Access.t -> Perm_binding.t list
(** The bindings {!check} consults for this access, in insertion order
    — resolved through the index.  Exposed for tests and tooling. *)

val log : t -> Audit_log.t

val bus : t -> Obs.Bus.t
(** The system's trace bus.  {!check} emits per-stage span events,
    cache probes and one {!Obs.Trace.Decision} per decision on it;
    {!arrive} emits {!Obs.Trace.Arrival}.  Subscribe sinks here to
    observe (or record) everything the system does. *)

val monitor : t -> object_id:string -> Monitor.t
(** The monitor for a mobile object, created on first use. *)

val join_team : t -> object_id:string -> team:string -> unit
(** Make the object a member of the named team; bindings with [Team]
    proof scope then consult every member's execution proofs (the
    introduction's "companions").  An object is in at most one team
    (re-joining moves it). *)

val team_of : t -> object_id:string -> string option
val teammates : t -> object_id:string -> string list
(** Other members of the object's team, sorted.  O(|team|) via the
    precomputed roster. *)

val new_session : t -> user:string -> Rbac.Session.t

val check :
  t ->
  session:Rbac.Session.t ->
  object_id:string ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  Decision.verdict
(** Decide, publish the decision on the {!bus} (which the audit log
    records), and — when granted — record the execution proof in the
    object's monitor (the server "carries out" the access and issues
    the proof, Section 2). *)

val check_batch :
  t ->
  session:Rbac.Session.t ->
  object_id:string ->
  program:Sral.Ast.t ->
  (Temporal.Q.t * Sral.Access.t) list ->
  Decision.verdict list
(** Decide a timed queue of accesses for one object, in order, with
    full {!check} semantics (bus events, audit entries, proof
    recording on grants).  The stateful counterpart of
    {!Decision.batch}; the E17 decision-storm benchmark drives each
    shard through this. *)

val arrive :
  t -> object_id:string -> server:string -> time:Temporal.Q.t -> unit
(** Record a migration arrival for the object. *)

val refresh :
  t ->
  session:Rbac.Session.t ->
  object_id:string ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  unit
(** Recompute every binding's Eq. 3.1 activation state for the object —
    call after arrival/role activation so validity durations accrue
    from the moment permissions become active. *)
