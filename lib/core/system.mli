(** Facade: a coordinated spatio-temporal access-control system.

    Wires the RBAC policy, the spatio-temporal bindings, the per-object
    monitors and the audit log into the single object a server (or the
    Naplet emulation's security manager) consults. *)

type t

val create : ?bindings:Perm_binding.t list -> Rbac.Policy.t -> t
val of_policy_text : string -> t
(** Build from {!Policy_lang} text.  @raise Policy_lang.Error *)

val policy : t -> Rbac.Policy.t
val bindings : t -> Perm_binding.t list
val add_binding : t -> Perm_binding.t -> unit
val log : t -> Audit_log.t

val monitor : t -> object_id:string -> Monitor.t
(** The monitor for a mobile object, created on first use. *)

val join_team : t -> object_id:string -> team:string -> unit
(** Make the object a member of the named team; bindings with [Team]
    proof scope then consult every member's execution proofs (the
    introduction's "companions").  An object is in at most one team
    (re-joining moves it). *)

val team_of : t -> object_id:string -> string option
val teammates : t -> object_id:string -> string list
(** Other members of the object's team, sorted. *)

val new_session : t -> user:string -> Rbac.Session.t

val check :
  t ->
  session:Rbac.Session.t ->
  object_id:string ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  Decision.verdict
(** Decide, log the decision, and — when granted — record the execution
    proof in the object's monitor (the server "carries out" the access
    and issues the proof, Section 2). *)

val arrive :
  t -> object_id:string -> server:string -> time:Temporal.Q.t -> unit
(** Record a migration arrival for the object. *)

val refresh :
  t ->
  session:Rbac.Session.t ->
  object_id:string ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  unit
(** Recompute every binding's Eq. 3.1 activation state for the object —
    call after arrival/role activation so validity durations accrue
    from the moment permissions become active. *)
