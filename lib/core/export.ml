let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let verdict_fields = function
  | Decision.Granted -> ("granted", "")
  | Decision.Denied reason ->
      ("denied", Format.asprintf "%a" Decision.pp_reason reason)

let entry_fields (e : Audit_log.entry) =
  let verdict, reason = verdict_fields e.Audit_log.verdict in
  let a = e.Audit_log.access in
  [
    Temporal.Q.to_string e.Audit_log.time;
    e.Audit_log.object_id;
    Sral.Access.operation_name a.Sral.Access.op;
    a.Sral.Access.resource;
    a.Sral.Access.server;
    verdict;
    reason;
  ]

let audit_csv log =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,object,operation,resource,server,verdict,reason\n";
  List.iter
    (fun entry ->
      Buffer.add_string buf
        (String.concat "," (List.map csv_field (entry_fields entry)));
      Buffer.add_char buf '\n')
    (Audit_log.entries log);
  Buffer.contents buf

let json_object fields =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" k (json_escape v))
         fields)
  ^ "}"

let audit_json log =
  let keys =
    [ "time"; "object"; "operation"; "resource"; "server"; "verdict"; "reason" ]
  in
  "["
  ^ String.concat ","
      (List.map
         (fun entry -> json_object (List.combine keys (entry_fields entry)))
         (Audit_log.entries log))
  ^ "]"

let bindings_json bindings =
  let render (b : Perm_binding.t) =
    json_object
      [
        ("permission", Rbac.Perm.to_string b.Perm_binding.perm);
        ( "spatial",
          match b.Perm_binding.spatial with
          | Some c -> Srac.Formula.to_string c
          | None -> "" );
        ( "modality",
          match b.Perm_binding.spatial_modality with
          | Srac.Program_sat.Exists -> "exists"
          | Srac.Program_sat.Forall -> "forall" );
        ( "scope",
          match b.Perm_binding.spatial_scope with
          | Perm_binding.Program -> "program"
          | Perm_binding.Performed -> "performed"
          | Perm_binding.Both -> "both" );
        ( "proofs",
          match b.Perm_binding.proof_scope with
          | Perm_binding.Own -> "own"
          | Perm_binding.Team -> "team" );
        ( "dur",
          match b.Perm_binding.dur with
          | Some d -> Temporal.Q.to_string d
          | None -> "inf" );
        ( "scheme",
          match b.Perm_binding.scheme with
          | Temporal.Validity.Whole_journey -> "journey"
          | Temporal.Validity.Per_server -> "server" );
      ]
  in
  "[" ^ String.concat "," (List.map render bindings) ^ "]"
