(* Per-monitor state of the lazy-derivative decision path
   (Decision.decide_lazy).

   Each monitor owns one [store]: a slot per permission binding it has
   evaluated (holding the binding's lazy constraint machine, residual
   cursors into the object's / team's performed history, a
   version-stamped RBAC activation bit and the binding's activation
   change cell) plus a per-access RBAC verdict cache.  Everything here
   is stamp-invalidated, never evicted: the bindings and accesses a
   monitor sees are bounded by the policy, not by traffic.

   Slots are keyed by the binding value *physically*: bindings are
   immutable and the binding index hands out the same objects on every
   lookup, and two structurally-equal bindings are semantically
   interchangeable, so distinct slots for them are merely harmless
   duplicates.  (Keying by [Perm_binding.key] would be wrong: two
   bindings may share a permission but carry different spatial
   constraints.) *)

module Binding_tbl = Hashtbl.Make (struct
  type t = Perm_binding.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module Access_tbl = Hashtbl.Make (struct
  type t = Sral.Access.t

  let equal = Sral.Access.equal
  let hash = Sral.Access.hash
end)

type cell = (Temporal.Q.t * bool) list ref
(* a monitor activation-change list (newest first), shared with
   Monitor.activations — cached in the slot so the hot path skips the
   hashtable probe *)

let active_now (c : cell) = match !c with [] -> false | (_, v) :: _ -> v

type slot = {
  machine : Srac.Lazy_dfa.t option;
      (* present iff the binding has a Performed/Both spatial scope *)
  cell : cell;
  mutable own_state : int;  (* residual state after own performed trace *)
  mutable own_consumed : int;  (* own history entries folded so far *)
  mutable team_state : int;  (* -1 = not computed *)
  mutable team_stamp_version : int;
  mutable team_stamp_history : int;
  mutable team_stamp_own : int;
  mutable may_session : Rbac.Session.t;
  mutable may_version : int;
  mutable may_ok : bool;  (* Rbac.Session.may for the binding's perm *)
  mutable prog_program : Sral.Ast.t option;
      (* the program [prog_result] was computed for, by identity — the
         monitor's spatial memo keys on a formatted permission string
         rebuilt per probe, too costly for the warm path *)
  mutable prog_result : (unit, string) result;
}

type rbac_entry = {
  mutable r_session : Rbac.Session.t;
  mutable r_version : int;
  mutable r_verdict : Rbac.Engine.verdict;
}

type store = { slots : slot Binding_tbl.t; rbac : rbac_entry Access_tbl.t }

let create () = { slots = Binding_tbl.create 8; rbac = Access_tbl.create 8 }
