(* Append-only store of permission bindings with a bucket index over
   the (operation, resource, server) pattern of each binding's
   permission.  Buckets are keyed by the pattern fields verbatim
   (wildcards included), so a lookup probes at most the 8 combinations
   of concrete-vs-"*" per field instead of scanning every binding. *)

type t = {
  mutable slots : Perm_binding.t option array;
  mutable len : int;
  buckets : (string, int list ref) Hashtbl.t;  (* reverse insertion order *)
}

let create () =
  { slots = Array.make 8 None; len = 0; buckets = Hashtbl.create 16 }

let length t = t.len

(* The store only grows, so the length doubles as a monotone version
   stamp for decision caches. *)
let version t = t.len

let bucket_key ~operation ~resource ~server =
  operation ^ ":" ^ resource ^ "@" ^ server

(* Where does this binding's pattern live?  The decomposition mirrors
   Rbac.Perm.matches exactly: structured targets bucket on their two
   fields; the unstructured "*" matches every structured access target;
   any other unstructured pattern matches no coalition access (accesses
   are always spelled "resource@server") and is not indexed at all. *)
let classify (b : Perm_binding.t) =
  let p = b.Perm_binding.perm in
  match Rbac.Perm.split_target p.Rbac.Perm.target with
  | r, Some s ->
      Some (bucket_key ~operation:p.Rbac.Perm.operation ~resource:r ~server:s)
  | "*", None ->
      Some (bucket_key ~operation:p.Rbac.Perm.operation ~resource:"*" ~server:"*")
  | _, None -> None

let add t b =
  if t.len = Array.length t.slots then begin
    let bigger = Array.make (2 * t.len) None in
    Array.blit t.slots 0 bigger 0 t.len;
    t.slots <- bigger
  end;
  let i = t.len in
  t.slots.(i) <- Some b;
  t.len <- i + 1;
  match classify b with
  | None -> ()
  | Some key -> (
      match Hashtbl.find_opt t.buckets key with
      | Some r -> r := i :: !r
      | None -> Hashtbl.add t.buckets key (ref [ i ]))

let of_list bindings =
  let t = create () in
  List.iter (add t) bindings;
  t

let to_list t =
  List.filter_map (fun i -> t.slots.(i)) (List.init t.len Fun.id)

let applicable t (a : Sral.Access.t) =
  let operation = Sral.Access.operation_name a.Sral.Access.op in
  let resource, server =
    (* same first-'@' split the matcher applies to the access target *)
    match Rbac.Perm.split_target (a.resource ^ "@" ^ a.server) with
    | r, Some s -> (r, s)
    | r, None -> (r, "")
  in
  let alts field = if field = "*" then [ "*" ] else [ field; "*" ] in
  let indices =
    List.fold_left
      (fun acc operation ->
        List.fold_left
          (fun acc resource ->
            List.fold_left
              (fun acc server ->
                match
                  Hashtbl.find_opt t.buckets
                    (bucket_key ~operation ~resource ~server)
                with
                | Some r -> List.rev_append !r acc
                | None -> acc)
              acc (alts server))
          acc (alts resource))
      [] (alts operation)
  in
  (* ascending slot index = binding-store insertion order, the order the
     linear scan would have produced *)
  let indices = List.sort_uniq Int.compare indices in
  let candidates = List.filter_map (fun i -> t.slots.(i)) indices in
  (* buckets are a conservative over-approximation (string collisions in
     exotic resource names are possible); the matcher has the last word *)
  List.filter (fun b -> Perm_binding.applies_to b a) candidates
