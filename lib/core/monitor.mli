(** Per-mobile-object runtime monitor.

    One monitor follows one mobile object through its journey: the
    servers it arrived at (and when), the execution proofs of the
    accesses it performed, and the activation history of each bound
    permission.  It is the state both halves of the coordinated
    decision read: the spatial checker consumes the proof store, the
    temporal checker the activation step functions and arrival times.

    Times must be fed in non-decreasing order (there is one logical
    clock per object — its own execution timeline, Section 4's "time
    line"); violating that raises [Invalid_argument]. *)

type t

val create : object_id:string -> t
val object_id : t -> string
val proofs : t -> Srac.Proof.store

val record_arrival : t -> server:string -> time:Temporal.Q.t -> unit
val arrivals : t -> Temporal.Q.t list
(** Ascending arrival times; empty until the first arrival. *)

val arrived : t -> bool
(** [arrivals m <> []], without building the list. *)

val itinerary : t -> (string * Temporal.Q.t) list
(** Servers visited with arrival times, in order. *)

val current_server : t -> string option

val record_access : t -> Sral.Access.t -> time:Temporal.Q.t -> unit
(** Issues an execution proof. *)

val performed : t -> Sral.Trace.t
(** The trace performed so far, in time order. *)

val set_active : t -> key:string -> time:Temporal.Q.t -> bool -> unit
(** Record a permission-activation state change (keyed by
    {!Perm_binding.key}).  Idempotent when the state does not change. *)

val activation_fn : t -> key:string -> Temporal.Step_fn.t
(** The permission's [active(perm, ·)] function so far; initially
    constant-false. *)

val activation_cell : t -> key:string -> Residual.cell
(** The key's raw activation-change cell, creating it empty if absent.
    The lazy decision path caches it per binding slot so refreshes and
    current-state reads skip the hashtable probe. *)

val set_active_cell : t -> Residual.cell -> time:Temporal.Q.t -> bool -> unit
(** {!set_active} against an already-resolved cell: same clock
    advancement and epoch accounting, no key lookup. *)

val residuals : t -> Residual.store
(** The monitor's lazy-decision state (binding slots, RBAC verdict
    cache).  Owned by the monitor so its lifetime matches the proof
    store the residual cursors index into. *)

val is_active_at : t -> key:string -> Temporal.Q.t -> bool

val memo_spatial :
  t ->
  key:string ->
  program:Sral.Ast.t ->
  (unit -> (unit, string) result) ->
  (unit, string) result
(** Memoize a program-level spatial check per binding key: the object's
    program is fixed for its lifetime and the program-scope check does
    not depend on runtime state, so recomputing the automata on every
    decision is pure waste.  The cache invalidates if a different
    program is presented under the same key. *)

val now : t -> Temporal.Q.t
(** Largest time seen so far (zero initially). *)

val advance : t -> Temporal.Q.t -> unit
(** Move the object's logical clock forward without recording anything.
    The decision fast path uses it on cache hits so the clock moves
    exactly as it would on the recomputing path.
    @raise Invalid_argument if the time is in the monitor's past. *)

(** {2 Change epochs and the verdict cache}

    Each epoch counts state changes of one input the full decision
    reads: [location] bumps on {!record_arrival}, [activation] on every
    {!set_active} that actually flips a state, [history] on
    {!record_access}.  A decision computed at some epoch vector remains
    valid while the vector (plus the session/bindings/team stamps the
    caller supplies) is unchanged — this extends the [memo_spatial]
    idea to the whole RBAC ∧ spatial prefix of the decision.  The
    temporal tail is deliberately *not* cached: it depends on the query
    time itself and is cheap to recompute. *)

val location_epoch : t -> int
val activation_epoch : t -> int
val history_epoch : t -> int

type decision_stamp = {
  location : int;
  activation : int;
  history : int;
  session : int;  (** {!Rbac.Session.version} at computation time *)
  bindings : int;  (** binding-store version at computation time *)
  team_version : int;  (** coalition membership stamp *)
  team_history : int;  (** sum of companions' history epochs *)
}

type cached_decision = {
  stamp : decision_stamp;
  access : Sral.Access.t;  (** compared on lookup, not trusted from key *)
  program : Sral.Ast.t;
  uses_history : bool;
      (** some applicable binding reads execution proofs — only then
          does a [history] mismatch invalidate *)
  uses_team : bool;
      (** some applicable binding has [Team] proof scope — only then do
          the team stamps invalidate *)
  pre_temporal : (unit, Verdict.reason) result;
      (** outcome of the RBAC ∧ spatial prefix; [Ok] means only the
          temporal tail remains to be evaluated *)
}

val find_decision : t -> key:string -> cached_decision option
val store_decision : t -> key:string -> cached_decision -> unit

val pp : Format.formatter -> t -> unit
