(** Per-mobile-object runtime monitor.

    One monitor follows one mobile object through its journey: the
    servers it arrived at (and when), the execution proofs of the
    accesses it performed, and the activation history of each bound
    permission.  It is the state both halves of the coordinated
    decision read: the spatial checker consumes the proof store, the
    temporal checker the activation step functions and arrival times.

    Times must be fed in non-decreasing order (there is one logical
    clock per object — its own execution timeline, Section 4's "time
    line"); violating that raises [Invalid_argument]. *)

type t

val create : object_id:string -> t
val object_id : t -> string
val proofs : t -> Srac.Proof.store

val record_arrival : t -> server:string -> time:Temporal.Q.t -> unit
val arrivals : t -> Temporal.Q.t list
(** Ascending arrival times; empty until the first arrival. *)

val itinerary : t -> (string * Temporal.Q.t) list
(** Servers visited with arrival times, in order. *)

val current_server : t -> string option

val record_access : t -> Sral.Access.t -> time:Temporal.Q.t -> unit
(** Issues an execution proof. *)

val performed : t -> Sral.Trace.t
(** The trace performed so far, in time order. *)

val set_active : t -> key:string -> time:Temporal.Q.t -> bool -> unit
(** Record a permission-activation state change (keyed by
    {!Perm_binding.key}).  Idempotent when the state does not change. *)

val activation_fn : t -> key:string -> Temporal.Step_fn.t
(** The permission's [active(perm, ·)] function so far; initially
    constant-false. *)

val is_active_at : t -> key:string -> Temporal.Q.t -> bool

val memo_spatial :
  t ->
  key:string ->
  program:Sral.Ast.t ->
  (unit -> (unit, string) result) ->
  (unit, string) result
(** Memoize a program-level spatial check per binding key: the object's
    program is fixed for its lifetime and the program-scope check does
    not depend on runtime state, so recomputing the automata on every
    decision is pure waste.  The cache invalidates if a different
    program is presented under the same key. *)

val now : t -> Temporal.Q.t
(** Largest time seen so far (zero initially). *)

val pp : Format.formatter -> t -> unit
