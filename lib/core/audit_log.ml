type entry = {
  time : Temporal.Q.t;
  object_id : string;
  access : Sral.Access.t;
  verdict : Decision.verdict;
}

type t = { mutable entries : entry list }
(* reverse record order *)

let create () = { entries = [] }
let record log e = log.entries <- e :: log.entries
let entries log = List.rev log.entries
let size log = List.length log.entries

let granted log =
  List.filter (fun e -> Decision.is_granted e.verdict) (entries log)

let denied log =
  List.filter (fun e -> not (Decision.is_granted e.verdict)) (entries log)

let grant_rate log =
  let n = size log in
  if n = 0 then 1.0
  else float_of_int (List.length (granted log)) /. float_of_int n

let by_object log id =
  List.filter (fun e -> String.equal e.object_id id) (entries log)

let by_server log server =
  List.filter (fun e -> String.equal e.access.Sral.Access.server server) (entries log)

let pp_entry ppf e =
  Format.fprintf ppf "[%a] %s: %a -> %a" Temporal.Q.pp e.time e.object_id
    Sral.Access.pp e.access Decision.pp_verdict e.verdict

let pp ppf log =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (entries log)
