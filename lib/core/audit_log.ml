type entry = {
  time : Temporal.Q.t;
  object_id : string;
  access : Sral.Access.t;
  verdict : Decision.verdict;
}

(* Ring buffer over [buf]: retained entries are the [len] slots starting
   at [start] (mod capacity).  In unbounded mode the buffer only grows
   and [start] stays 0.  Lifetime statistics ([total], [granted_total],
   the per-object/per-server count tables) are updated in O(1) at record
   time and never forget evicted entries. *)
type t = {
  mutable buf : entry option array;
  mutable start : int;
  mutable len : int;
  capacity : int option;
  mutable total : int;
  mutable granted_total : int;
  object_counts : (string, int) Hashtbl.t;
  server_counts : (string, int) Hashtbl.t;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 ->
      invalid_arg (Printf.sprintf "Audit_log.create: capacity %d < 1" c)
  | _ -> ());
  (* bounded mode allocates its ring in full so the modulus is always
     the array length; unbounded mode starts small and doubles *)
  let initial = match capacity with Some c -> c | None -> 16 in
  {
    buf = Array.make initial None;
    start = 0;
    len = 0;
    capacity;
    total = 0;
    granted_total = 0;
    object_counts = Hashtbl.create 16;
    server_counts = Hashtbl.create 16;
  }

let bump table key =
  Hashtbl.replace table key
    (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let grow log =
  let bigger = Array.make (2 * Array.length log.buf) None in
  (* unbounded mode never wraps, so the live region is a prefix *)
  Array.blit log.buf 0 bigger 0 log.len;
  log.buf <- bigger

let record log e =
  log.total <- log.total + 1;
  if Decision.is_granted e.verdict then
    log.granted_total <- log.granted_total + 1;
  bump log.object_counts e.object_id;
  bump log.server_counts e.access.Sral.Access.server;
  match log.capacity with
  | None ->
      if log.len = Array.length log.buf then grow log;
      log.buf.(log.len) <- Some e;
      log.len <- log.len + 1
  | Some cap ->
      if log.len < cap then begin
        log.buf.((log.start + log.len) mod Array.length log.buf) <- Some e;
        log.len <- log.len + 1
      end
      else begin
        (* full: overwrite the oldest slot and rotate *)
        log.buf.(log.start) <- Some e;
        log.start <- (log.start + 1) mod Array.length log.buf
      end

let size log = log.total
let retained log = log.len
let granted_count log = log.granted_total
let denied_count log = log.total - log.granted_total

let count_by_object log id =
  Option.value ~default:0 (Hashtbl.find_opt log.object_counts id)

let count_by_server log server =
  Option.value ~default:0 (Hashtbl.find_opt log.server_counts server)

let entries log =
  List.filter_map
    (fun i -> log.buf.((log.start + i) mod Array.length log.buf))
    (List.init log.len Fun.id)

let granted log =
  List.filter (fun e -> Decision.is_granted e.verdict) (entries log)

let denied log =
  List.filter (fun e -> not (Decision.is_granted e.verdict)) (entries log)

let grant_rate log =
  if log.total = 0 then 1.0
  else float_of_int log.granted_total /. float_of_int log.total

let by_object log id =
  List.filter (fun e -> String.equal e.object_id id) (entries log)

let by_server log server =
  List.filter (fun e -> String.equal e.access.Sral.Access.server server) (entries log)

let sink log =
  Obs.Sink.make ~name:"audit-log" (function
    | Obs.Trace.Decision { time; object_id; access; verdict } ->
        record log { time; object_id; access; verdict }
    | _ -> ())

let pp_entry ppf e =
  Format.fprintf ppf "[%a] %s: %a -> %a" Temporal.Q.pp e.time e.object_id
    Sral.Access.pp e.access Decision.pp_verdict e.verdict

let pp ppf log =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (entries log)
