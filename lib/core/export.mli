(** Exports for downstream tooling: audit logs and binding inventories
    as CSV or JSON (both hand-rendered — no dependencies). *)

val audit_csv : Audit_log.t -> string
(** Header [time,object,operation,resource,server,verdict,reason];
    times as exact rationals; fields quoted per RFC 4180 when needed. *)

val audit_json : Audit_log.t -> string
(** A JSON array of entry objects with the same fields. *)

val bindings_json : Perm_binding.t list -> string
(** The policy's spatio-temporal bindings as a JSON array
    (constraints rendered in SRAC concrete syntax). *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON quotes (exposed for
    tests). *)

val csv_field : string -> string
(** RFC 4180 quoting (exposed for tests). *)
