type t = { policy : Rbac.Policy.t; bindings : Perm_binding.t list }

exception Error of int * string

let error line fmt = Format.kasprintf (fun m -> raise (Error (line, m))) fmt

(* Split a line into words, keeping double-quoted stretches as single
   words (without the quotes). *)
let words line_no line =
  let n = String.length line in
  let rec scan i acc =
    if i >= n then List.rev acc
    else
      match line.[i] with
      | ' ' | '\t' -> scan (i + 1) acc
      | '"' -> (
          match String.index_from_opt line (i + 1) '"' with
          | None -> error line_no "unterminated quote"
          | Some j ->
              scan (j + 1) (String.sub line (i + 1) (j - i - 1) :: acc))
      | _ ->
          let rec stop j =
            if j < n && line.[j] <> ' ' && line.[j] <> '\t' then stop (j + 1)
            else j
          in
          let j = stop i in
          scan j (String.sub line i (j - i) :: acc)
  in
  scan 0 []

let parse_perm line_no s =
  try Rbac.Perm.of_string s
  with Invalid_argument m -> error line_no "%s" m

let parse_bind_clauses line_no perm clauses =
  let rec loop acc = function
    | [] -> acc
    | "spatial" :: text :: rest ->
        let formula =
          try Srac.Formula.of_string text
          with Invalid_argument m -> error line_no "%s" m
        in
        loop { acc with Perm_binding.spatial = Some formula } rest
    | "modality" :: m :: rest ->
        let modality =
          match m with
          | "exists" -> Srac.Program_sat.Exists
          | "forall" -> Srac.Program_sat.Forall
          | _ -> error line_no "unknown modality %S" m
        in
        loop { acc with Perm_binding.spatial_modality = modality } rest
    | "proofs" :: s :: rest ->
        let proof_scope =
          match s with
          | "own" -> Perm_binding.Own
          | "team" -> Perm_binding.Team
          | _ -> error line_no "unknown proof scope %S" s
        in
        loop { acc with Perm_binding.proof_scope } rest
    | "scope" :: s :: rest ->
        let scope =
          match s with
          | "program" -> Perm_binding.Program
          | "performed" -> Perm_binding.Performed
          | "both" -> Perm_binding.Both
          | _ -> error line_no "unknown scope %S" s
        in
        loop { acc with Perm_binding.spatial_scope = scope } rest
    | "dur" :: d :: rest ->
        let dur =
          if d = "inf" then None
          else
            try Some (Temporal.Q.of_string d)
            with Invalid_argument m -> error line_no "%s" m
        in
        loop { acc with Perm_binding.dur = dur } rest
    | "scheme" :: s :: rest ->
        let scheme =
          match s with
          | "journey" -> Temporal.Validity.Whole_journey
          | "server" -> Temporal.Validity.Per_server
          | _ -> error line_no "unknown scheme %S" s
        in
        loop { acc with Perm_binding.scheme = scheme } rest
    | w :: _ -> error line_no "unknown bind clause %S" w
  in
  loop (Perm_binding.make perm) clauses

let parse_sod line_no what rest =
  match rest with
  | name :: tail -> (
      (* roles ... "max" k *)
      let rec split_roles acc = function
        | [ "max"; k ] -> (
            match int_of_string_opt k with
            | Some max_roles -> (List.rev acc, max_roles)
            | None -> error line_no "bad %s cardinality %S" what k)
        | r :: rest -> split_roles (r :: acc) rest
        | [] -> error line_no "%s needs a trailing 'max <k>'" what
      in
      let roles, max_roles = split_roles [] tail in
      try Rbac.Sod.make ~name ~roles ~max_roles
      with Invalid_argument m -> error line_no "%s" m)
  | [] -> error line_no "%s needs a name" what

let parse_binding s =
  match words 1 s with
  | "bind" :: perm :: clauses | perm :: clauses ->
      parse_bind_clauses 1 (parse_perm 1 perm) clauses
  | [] -> error 1 "empty binding"

let parse text =
  let policy = Rbac.Policy.create () in
  let bindings = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match words line_no line with
      | [] -> ()
      | [ "user"; u ] -> Rbac.Policy.add_user policy u
      | [ "role"; r ] -> Rbac.Policy.add_role policy r
      | [ "inherit"; senior; junior ] -> (
          try Rbac.Policy.add_inheritance policy ~senior ~junior
          with Rbac.Hierarchy.Cycle (s, j) ->
            error line_no "inheritance %s > %s creates a cycle" s j)
      | [ "assign"; u; r ] -> (
          try Rbac.Policy.assign_user policy u r with
          | Rbac.Policy.Unknown (kind, name) ->
              error line_no "unknown %s %S" kind name
          | Rbac.Policy.Ssd_violation (c, _, _) ->
              error line_no "assignment violates %s"
                (Format.asprintf "%a" Rbac.Sod.pp c))
      | [ "grant"; r; perm ] -> (
          try Rbac.Policy.grant policy r (parse_perm line_no perm)
          with Rbac.Policy.Unknown (kind, name) ->
            error line_no "unknown %s %S" kind name)
      | "ssd" :: rest ->
          Rbac.Policy.add_ssd policy (parse_sod line_no "ssd" rest)
      | "dsd" :: rest ->
          Rbac.Policy.add_dsd policy (parse_sod line_no "dsd" rest)
      | "bind" :: perm :: clauses ->
          bindings :=
            parse_bind_clauses line_no (parse_perm line_no perm) clauses
            :: !bindings
      | w :: _ -> error line_no "unknown directive %S" w)
    lines;
  { policy; bindings = List.rev !bindings }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let render_binding (b : Perm_binding.t) =
  let clauses = Buffer.create 64 in
  (match b.Perm_binding.spatial with
  | Some c ->
      Buffer.add_string clauses
        (Format.asprintf " spatial \"%a\"" Srac.Formula.pp c);
      Buffer.add_string clauses
        (match b.Perm_binding.spatial_modality with
        | Srac.Program_sat.Exists -> " modality exists"
        | Srac.Program_sat.Forall -> " modality forall");
      Buffer.add_string clauses
        (match b.Perm_binding.spatial_scope with
        | Perm_binding.Program -> " scope program"
        | Perm_binding.Performed -> " scope performed"
        | Perm_binding.Both -> " scope both");
      Buffer.add_string clauses
        (match b.Perm_binding.proof_scope with
        | Perm_binding.Own -> ""
        | Perm_binding.Team -> " proofs team")
  | None -> ());
  (match b.Perm_binding.dur with
  | Some d ->
      Buffer.add_string clauses
        (Format.asprintf " dur %a scheme %s" Temporal.Q.pp d
           (match b.Perm_binding.scheme with
           | Temporal.Validity.Whole_journey -> "journey"
           | Temporal.Validity.Per_server -> "server"))
  | None -> ());
  Rbac.Perm.to_string b.Perm_binding.perm ^ Buffer.contents clauses

let render t =
  let buf = Buffer.create 512 in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter (fun u -> line "user %s" u) (Rbac.Policy.users t.policy);
  List.iter (fun r -> line "role %s" r) (Rbac.Policy.roles t.policy);
  List.iter
    (fun senior ->
      List.iter
        (fun junior -> line "inherit %s %s" senior junior)
        (Rbac.Hierarchy.direct_juniors (Rbac.Policy.hierarchy t.policy) senior))
    (Rbac.Policy.roles t.policy);
  List.iter
    (fun u ->
      List.iter
        (fun r -> line "assign %s %s" u r)
        (Rbac.Policy.assigned_roles t.policy u))
    (Rbac.Policy.users t.policy);
  List.iter
    (fun r ->
      List.iter
        (fun p -> line "grant %s %s" r (Rbac.Perm.to_string p))
        (Rbac.Policy.direct_permissions t.policy r))
    (Rbac.Policy.roles t.policy);
  List.iter
    (fun (c : Rbac.Sod.t) ->
      line "ssd %s %s max %d" c.Rbac.Sod.name (String.concat " " c.Rbac.Sod.roles)
        c.Rbac.Sod.max_roles)
    (Rbac.Policy.ssd_constraints t.policy);
  List.iter
    (fun (c : Rbac.Sod.t) ->
      line "dsd %s %s max %d" c.Rbac.Sod.name (String.concat " " c.Rbac.Sod.roles)
        c.Rbac.Sod.max_roles)
    (Rbac.Policy.dsd_constraints t.policy);
  List.iter (fun b -> line "bind %s" (render_binding b)) t.bindings;
  Buffer.contents buf
