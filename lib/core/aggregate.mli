(** Classification and aggregation of permission bindings — the
    paper's stated future work ("how to classify the temporal
    permissions and aggregate their validity durations", Section 8).

    Real policies accumulate several bindings touching the same
    permission (different officers, different concerns).  Aggregation
    merges every group of bindings with an identical permission pattern
    into one equivalent binding:

    - spatial constraints conjoin (and are {!Srac.Simplify.simplify}d)
      — sound only where conjunction distributes over the check: the
      history scope, and the [Forall] modality.  [Exists] program-scope
      constraints are never merged ([∃(C₁∧C₂)] is stronger than
      [∃C₁ ∧ ∃C₂]), nor are mixed scopes/modalities;
    - validity durations take the minimum (the tightest budget is the
      binding one under conjunctive semantics, for equal schemes);
      differing schemes are refused.

    [aggregate] only merges groups it can prove equivalent; the rest
    pass through untouched, so the result always decides exactly like
    the input (property-tested in the suite). *)

type group = {
  perm : Rbac.Perm.t;
  members : Perm_binding.t list;  (** at least one *)
}

val classify : Perm_binding.t list -> group list
(** Group bindings by their (exact) permission pattern, preserving
    order of first occurrence. *)

val merge_group : group -> Perm_binding.t option
(** One equivalent binding for the group, or [None] when the members
    are not soundly mergeable (mixed schemes, modalities or scopes). *)

val aggregate : Perm_binding.t list -> Perm_binding.t list
(** Merge every mergeable group; unmergeable groups are kept as-is.
    The output decides exactly like the input. *)

val stats : Perm_binding.t list -> int * int
(** [(groups, merged)] — how many groups {!classify} finds and how many
    bindings {!aggregate} returns. *)
