(** ASCII timeline rendering of an audit log — one lane per mobile
    object, grants as [G], denials as [x], time flowing left to right.

    {v
      time 0 .......................... 26  (1 col = 1)
      audit-naplet  |G---G--G--G---x--x-|
      scout         |--G-----------------|
    v}

    Purely a debugging/reporting aid; the bench harness and examples
    print these so a run's shape is visible at a glance. *)

val render : ?width:int -> Audit_log.t -> string
(** [width] (default 64) is the number of time columns.  Returns "(no
    events)" on an empty log.  When several events of one object fall
    into the same column, a denial wins the cell (safety-first
    display). *)
