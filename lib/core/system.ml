module String_set = Set.Make (String)

type decision_mode = Indexed | Naive | Lazy

type t = {
  policy : Rbac.Policy.t;
  mode : decision_mode;
  index : Binding_index.t;
  monitors : (string, Monitor.t) Hashtbl.t;
  teams : (string, string) Hashtbl.t;  (* object_id -> team name *)
  rosters : (string, String_set.t) Hashtbl.t;  (* team name -> members *)
  mutable teams_version : int;
  log : Audit_log.t;
  bus : Obs.Bus.t;
}

let create ?(mode = Indexed) ?(bindings = []) ?log_capacity ?bus policy =
  let bus = match bus with Some b -> b | None -> Obs.Bus.create () in
  let log = Audit_log.create ?capacity:log_capacity () in
  (* the audit log no longer records on its own: it is the bus's first
     subscriber, fed one Decision event per check *)
  Obs.Bus.subscribe bus (Audit_log.sink log);
  {
    policy;
    mode;
    index = Binding_index.of_list bindings;
    monitors = Hashtbl.create 8;
    teams = Hashtbl.create 8;
    rosters = Hashtbl.create 8;
    teams_version = 0;
    log;
    bus;
  }

let clone t =
  create ~mode:t.mode ~bindings:(Binding_index.to_list t.index) t.policy

let of_policy_text ?mode text =
  let parsed = Policy_lang.parse text in
  create ?mode ~bindings:parsed.Policy_lang.bindings parsed.Policy_lang.policy

let policy t = t.policy
let mode t = t.mode
let bindings t = Binding_index.to_list t.index
let add_binding t b = Binding_index.add t.index b
let applicable_bindings t access = Binding_index.applicable t.index access
let log t = t.log
let bus t = t.bus

let monitor t ~object_id =
  match Hashtbl.find_opt t.monitors object_id with
  | Some m -> m
  | None ->
      let m = Monitor.create ~object_id in
      Hashtbl.add t.monitors object_id m;
      m

let new_session t ~user = Rbac.Session.create t.policy ~user

let roster t team =
  Option.value ~default:String_set.empty (Hashtbl.find_opt t.rosters team)

let join_team t ~object_id ~team =
  (match Hashtbl.find_opt t.teams object_id with
  | Some old ->
      Hashtbl.replace t.rosters old (String_set.remove object_id (roster t old))
  | None -> ());
  Hashtbl.replace t.teams object_id team;
  Hashtbl.replace t.rosters team (String_set.add object_id (roster t team));
  t.teams_version <- t.teams_version + 1

let team_of t ~object_id = Hashtbl.find_opt t.teams object_id

let teammates t ~object_id =
  match Hashtbl.find_opt t.teams object_id with
  | None -> []
  | Some team -> String_set.elements (String_set.remove object_id (roster t team))

(* The seed's fold over every object in the coalition — kept verbatim
   as the [Naive] mode's companion lookup, both so E13 can measure the
   O(coalition) cost it had and so the differential fuzz suite runs the
   genuinely old path. *)
let teammates_scan t ~object_id =
  match Hashtbl.find_opt t.teams object_id with
  | None -> []
  | Some team ->
      Hashtbl.fold
        (fun other their_team acc ->
          if String.equal their_team team && not (String.equal other object_id)
          then other :: acc
          else acc)
        t.teams []
      |> List.sort String.compare

let companions t ~object_id =
  List.map (fun id -> monitor t ~object_id:id) (teammates t ~object_id)

let companions_scan t ~object_id =
  List.map (fun id -> monitor t ~object_id:id) (teammates_scan t ~object_id)

(* Cache stamp for everything the companions contribute to a decision:
   their identity (teams_version bumps on any membership change) and
   their proof stores (sum of history epochs; including the member
   count guards the all-zero corner). *)
let team_history_stamp companions =
  List.fold_left
    (fun acc m -> acc + Monitor.history_epoch m)
    (List.length companions) companions

let check t ~session ~object_id ~program ~time access =
  let m = monitor t ~object_id in
  let verdict =
    match t.mode with
    | Naive ->
        Decision.decide_naive ~obs:t.bus
          ~companions:(companions_scan t ~object_id)
          ~session ~monitor:m
          ~bindings:(Binding_index.to_list t.index)
          ~program ~time access
    | Indexed ->
        let applicable = Binding_index.applicable t.index access in
        let companions = companions t ~object_id in
        Decision.decide_indexed ~obs:t.bus ~companions ~session ~monitor:m
          ~applicable
          ~bindings_version:(Binding_index.version t.index)
          ~team_version:t.teams_version
          ~team_history:(team_history_stamp companions)
          ~program ~time access
    | Lazy ->
        let applicable = Binding_index.applicable t.index access in
        let companions = companions t ~object_id in
        Decision.decide_lazy ~obs:t.bus ~companions ~session ~monitor:m
          ~applicable ~team_version:t.teams_version
          ~team_history:(team_history_stamp companions)
          ~program ~time access
  in
  Obs.Bus.emit t.bus (Obs.Trace.Decision { time; object_id; access; verdict });
  (match verdict with
  | Decision.Granted -> Monitor.record_access m access ~time
  | Decision.Denied _ -> ());
  verdict

let check_batch t ~session ~object_id ~program accesses =
  List.map
    (fun (time, access) -> check t ~session ~object_id ~program ~time access)
    accesses

let arrive t ~object_id ~server ~time =
  Monitor.record_arrival (monitor t ~object_id) ~server ~time;
  Obs.Bus.emit t.bus (Obs.Trace.Arrival { time; object_id; server })

let refresh t ~session ~object_id ~program ~time =
  match t.mode with
  | Naive ->
      Decision.refresh_activation
        ~companions:(companions_scan t ~object_id)
        ~session
        ~monitor:(monitor t ~object_id)
        ~bindings:(Binding_index.to_list t.index)
        ~program ~time ()
  | Indexed ->
      Decision.refresh_activation
        ~companions:(companions t ~object_id)
        ~session
        ~monitor:(monitor t ~object_id)
        ~bindings:(Binding_index.to_list t.index)
        ~program ~time ()
  | Lazy ->
      let companions = companions t ~object_id in
      Decision.refresh_activation_lazy ~companions ~session
        ~monitor:(monitor t ~object_id)
        ~bindings:(Binding_index.to_list t.index)
        ~team_version:t.teams_version
        ~team_history:(team_history_stamp companions)
        ~program ~time ()
