type t = {
  policy : Rbac.Policy.t;
  mutable bindings : Perm_binding.t list;
  monitors : (string, Monitor.t) Hashtbl.t;
  teams : (string, string) Hashtbl.t;  (* object_id -> team name *)
  log : Audit_log.t;
}

let create ?(bindings = []) policy =
  {
    policy;
    bindings;
    monitors = Hashtbl.create 8;
    teams = Hashtbl.create 8;
    log = Audit_log.create ();
  }

let of_policy_text text =
  let parsed = Policy_lang.parse text in
  create ~bindings:parsed.Policy_lang.bindings parsed.Policy_lang.policy

let policy t = t.policy
let bindings t = t.bindings
let add_binding t b = t.bindings <- t.bindings @ [ b ]
let log t = t.log

let monitor t ~object_id =
  match Hashtbl.find_opt t.monitors object_id with
  | Some m -> m
  | None ->
      let m = Monitor.create ~object_id in
      Hashtbl.add t.monitors object_id m;
      m

let new_session t ~user = Rbac.Session.create t.policy ~user

let join_team t ~object_id ~team = Hashtbl.replace t.teams object_id team
let team_of t ~object_id = Hashtbl.find_opt t.teams object_id

let teammates t ~object_id =
  match Hashtbl.find_opt t.teams object_id with
  | None -> []
  | Some team ->
      Hashtbl.fold
        (fun other their_team acc ->
          if String.equal their_team team && not (String.equal other object_id)
          then other :: acc
          else acc)
        t.teams []
      |> List.sort String.compare

let companions t ~object_id =
  List.map (fun id -> monitor t ~object_id:id) (teammates t ~object_id)

let check t ~session ~object_id ~program ~time access =
  let m = monitor t ~object_id in
  let verdict =
    Decision.decide ~companions:(companions t ~object_id) ~session ~monitor:m
      ~bindings:t.bindings ~program ~time access
  in
  Audit_log.record t.log { Audit_log.time; object_id; access; verdict };
  (match verdict with
  | Decision.Granted -> Monitor.record_access m access ~time
  | Decision.Denied _ -> ());
  verdict

let arrive t ~object_id ~server ~time =
  Monitor.record_arrival (monitor t ~object_id) ~server ~time

let refresh t ~session ~object_id ~program ~time =
  Decision.refresh_activation ~companions:(companions t ~object_id) ~session
    ~monitor:(monitor t ~object_id) ~bindings:t.bindings ~program ~time ()
