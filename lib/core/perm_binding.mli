(** Bindings of spatio-temporal constraints to permissions.

    The paper's extension of RBAC attaches to a permission (i) a
    spatial SRAC constraint that the mobile object's program must be
    able to satisfy for the permission to be active (Eq. 3.1), and
    (ii) a validity duration with a base-time scheme (Eq. 4.1).  A
    binding packages these for one permission pattern; several bindings
    may apply to one access, in which case all must pass. *)

type spatial_scope =
  | Program
      (** the paper's [check(P, C)]: decide against the program's trace
          model (Theorem 3.2's symbolic checker) *)
  | Performed
      (** history-based: the trace performed so far, extended with the
          requested access, must satisfy [C] (Definition 3.6 over the
          execution proofs) — what the "too many times at s₁ ⇒ never at
          s₂" coalition rules need *)
  | Both

type proof_scope =
  | Own  (** only the requesting object's own execution proofs *)
  | Team
      (** the proofs of the whole team the object belongs to — the
          introduction's "previous access actions of the device and
          even of its companions".  Only affects [Performed]/[Both]
          spatial scopes (the program-level check is per-object). *)

type t = {
  perm : Rbac.Perm.t;  (** which permission(s) this binding constrains *)
  spatial : Srac.Formula.t option;  (** [None]: no spatial constraint *)
  spatial_modality : Srac.Program_sat.modality;
      (** [Exists] is the paper's [check(P,C)] ("can satisfy");
          [Forall] suits prohibitions.  Only used for [Program] scope. *)
  spatial_scope : spatial_scope;
  proof_scope : proof_scope;
  dur : Temporal.Q.t option;  (** validity duration; [None] = infinite *)
  scheme : Temporal.Validity.scheme;
}

val make :
  ?spatial:Srac.Formula.t ->
  ?spatial_modality:Srac.Program_sat.modality ->
  ?spatial_scope:spatial_scope ->
  ?proof_scope:proof_scope ->
  ?dur:Temporal.Q.t ->
  ?scheme:Temporal.Validity.scheme ->
  Rbac.Perm.t ->
  t
(** Defaults: no spatial constraint, [Exists], [Program] scope, [Own]
    proofs, infinite duration, [Whole_journey]. *)

val applies_to : t -> Sral.Access.t -> bool
(** Does the binding's permission pattern cover the access? *)

val key : t -> string
(** Stable identifier for monitor state, derived from the permission. *)

val pp : Format.formatter -> t -> unit
