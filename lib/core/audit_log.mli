(** Audit log of coordinated access-control decisions. *)

type entry = {
  time : Temporal.Q.t;
  object_id : string;
  access : Sral.Access.t;
  verdict : Decision.verdict;
}

type t

val create : unit -> t
val record : t -> entry -> unit
val entries : t -> entry list
(** In record order. *)

val size : t -> int
val granted : t -> entry list
val denied : t -> entry list
val grant_rate : t -> float
(** NaN-free: 1.0 on an empty log. *)

val by_object : t -> string -> entry list
val by_server : t -> string -> entry list
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
