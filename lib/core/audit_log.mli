(** Audit log of coordinated access-control decisions.

    The log is a {e sink} over the observability bus: it has no
    recording wiring of its own — {!Coordinated.System.check} emits an
    {!Obs.Trace.Decision} event and {!sink} turns it into an entry.
    ({!record} remains public for building logs by hand in tests.)

    Statistics ({!size}, {!granted_count}, {!grant_rate},
    {!count_by_object}, {!count_by_server}) are maintained
    incrementally at {!record} time — O(1) per record, O(1) per query —
    instead of re-walking the entry list.  They count over the log's
    whole lifetime.

    With [~capacity] the log keeps only the most recent entries (a ring
    buffer, for long emulations); the lifetime counters still cover
    every decision ever recorded, evicted or not. *)

type entry = {
  time : Temporal.Q.t;
  object_id : string;
  access : Sral.Access.t;
  verdict : Decision.verdict;
}

type t

val create : ?capacity:int -> unit -> t
(** Unbounded unless [capacity] is given.
    @raise Invalid_argument if [capacity < 1]. *)

val record : t -> entry -> unit

val entries : t -> entry list
(** Retained entries, in record order (everything, when unbounded). *)

val size : t -> int
(** Lifetime number of recorded decisions, O(1).  In unbounded mode
    this equals [List.length (entries t)]; in ring mode it keeps
    counting past evictions. *)

val retained : t -> int
(** Entries currently held — [min size capacity] in ring mode. *)

val granted_count : t -> int
(** Lifetime granted decisions, O(1). *)

val denied_count : t -> int
(** Lifetime denied decisions, O(1). *)

val granted : t -> entry list
(** Granted entries among {!entries} (retained only). *)

val denied : t -> entry list

val grant_rate : t -> float
(** Lifetime granted/size.  NaN-free: 1.0 on an empty log. *)

val count_by_object : t -> string -> int
(** Lifetime decisions concerning the object, O(1). *)

val count_by_server : t -> string -> int
(** Lifetime decisions at the server, O(1). *)

val by_object : t -> string -> entry list
(** Retained entries concerning the object. *)

val by_server : t -> string -> entry list

val sink : t -> Obs.Sink.t
(** The log as a trace-bus subscriber: records one entry per
    {!Obs.Trace.Decision} event and ignores every other variant.
    {!Coordinated.System} subscribes this at creation, so decisions
    reach the log through the bus rather than by direct calls. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
