include Obs.Verdict
