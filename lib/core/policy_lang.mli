(** Textual policy files for the coordinated model.

    A policy file declares the RBAC half (users, roles, hierarchy,
    assignments, grants, separation of duty) and the spatio-temporal
    bindings — the artifact a security officer writes (Section 3.4).

    Line-oriented syntax; [#] starts a comment:
    {v
      user     alice
      role     auditor
      role     chief
      inherit  chief auditor            # chief dominates auditor
      assign   alice auditor
      grant    auditor read:db@s1
      grant    auditor hash:*@*
      ssd      name rolea roleb ... max 1
      dsd      name rolea roleb ... max 1
      bind     read:db@s1 spatial "done(read cfg @ s1)" modality exists
      bind     read:db@s1 dur 10 scheme journey
      bind     hash:*@* dur 5/2 scheme server
    v}
    A [bind] line takes any subset of the clauses [spatial "..."],
    [modality exists|forall], [scope program|performed|both],
    [proofs own|team], [dur <rational>], [scheme journey|server]. *)

type t = {
  policy : Rbac.Policy.t;
  bindings : Perm_binding.t list;
}

exception Error of int * string
(** [(line_number, message)] *)

val parse : string -> t
(** Parse policy text.  @raise Error *)

val parse_file : string -> t
(** @raise Error and [Sys_error]. *)

val render : t -> string
(** Render back to (parseable) policy text.  [parse (render t)] is a
    fixed point: rendering the parse of a rendering reproduces it
    byte for byte. *)

val parse_binding : string -> Perm_binding.t
(** Parse one binding in the [bind] line syntax, with or without the
    leading [bind] keyword — e.g. ["read:db@s1 dur 10 scheme journey"].
    @raise Error (the reported line number is always 1). *)

val render_binding : Perm_binding.t -> string
(** Render one binding in the [bind] line syntax (without the leading
    [bind] keyword); inverse of {!parse_binding}. *)
