module Q = Temporal.Q

let render ?(width = 64) log =
  match Audit_log.entries log with
  | [] -> "(no events)"
  | entries ->
      let times = List.map (fun (e : Audit_log.entry) -> e.Audit_log.time) entries in
      let t_min = List.fold_left Q.min (List.hd times) times in
      let t_max = List.fold_left Q.max (List.hd times) times in
      let span = Q.sub t_max t_min in
      let column time =
        if Q.sign span = 0 then 0
        else
          let ratio = Q.div (Q.sub time t_min) span in
          let c =
            int_of_float (Float.of_int (width - 1) *. Q.to_float ratio)
          in
          max 0 (min (width - 1) c)
      in
      let objects =
        List.sort_uniq String.compare
          (List.map (fun (e : Audit_log.entry) -> e.Audit_log.object_id) entries)
      in
      let name_width =
        List.fold_left (fun acc o -> max acc (String.length o)) 4 objects
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  time %s .. %s\n" name_width "" (Q.to_string t_min)
           (Q.to_string t_max));
      List.iter
        (fun obj ->
          let lane = Bytes.make width '-' in
          List.iter
            (fun (e : Audit_log.entry) ->
              if String.equal e.Audit_log.object_id obj then begin
                let c = column e.Audit_log.time in
                let mark =
                  if Decision.is_granted e.Audit_log.verdict then 'G' else 'x'
                in
                (* a denial in the same cell wins *)
                if Bytes.get lane c <> 'x' then Bytes.set lane c mark
              end)
            entries;
          Buffer.add_string buf
            (Printf.sprintf "%-*s |%s|\n" name_width obj (Bytes.to_string lane)))
        objects;
      Buffer.contents buf
