(** Indexed permission-binding store.

    Replaces {!System}'s flat binding list: append is amortized O(1)
    (the old list was rebuilt with [@] on every add), and
    {!applicable} resolves an access by probing at most 8 pattern
    buckets — the concrete-vs-wildcard combinations of the access's
    (operation, resource, server) — instead of running
    {!Perm_binding.applies_to} over every binding in the coalition.

    The result of {!applicable} is provably the same list, in the same
    (insertion) order, as [List.filter (applies_to · access) (to_list t)]
    — property-tested in [test/test_core.ml]. *)

type t

val create : unit -> t
val of_list : Perm_binding.t list -> t

val add : t -> Perm_binding.t -> unit
(** Append; amortized O(1). *)

val length : t -> int

val version : t -> int
(** Monotone store stamp (the store is append-only, so the length
    serves): equal versions ⟹ identical contents.  Used as the
    [bindings] component of {!Monitor.decision_stamp}. *)

val to_list : t -> Perm_binding.t list
(** All bindings in insertion order. *)

val applicable : t -> Sral.Access.t -> Perm_binding.t list
(** Bindings whose permission pattern covers the access, in insertion
    order. *)
