(** The coordinated access-control decision — Eq. 3.1 ∧ Eq. 4.1.

    A request is granted iff

    + plain RBAC grants it: some role active in the subject's session
      carries a matching permission ([r ∈ AR(s) ∧ perm ∈ RP(r)]);
    + every applicable binding's spatial constraint passes
      [check(P, C)] against the object's program and execution proofs
      (Theorem 3.2's polynomial checker); and
    + every applicable binding's validity duration has not been
      exhausted: [valid(perm, t) = 1] per Eq. 4.1 under the binding's
      base-time scheme.

    The decision also maintains the permission's activation function in
    the monitor: whenever the RBAC∧spatial state differs from the
    recorded one, a state change is logged at the decision time — this
    is the "event will be triggered to set valid to 0" mechanism of
    Section 4, made explicit. *)

type reason = Verdict.reason =
  | Rbac_denied of string
  | Spatial_violation of { binding : string; detail : string }
  | Temporal_expired of { binding : string; spent : Temporal.Q.t }
  | Not_active of string
      (** the permission is not in the active state at decision time
          (Eq. 3.1's conjunction failed earlier on this timeline) *)
  | Not_arrived  (** no arrival recorded — object not on any server *)
  | Server_unavailable of string
      (** fail-closed denial minted by the Naplet security manager when
          the target server is inside a crash window *)

type verdict = Verdict.t = Granted | Denied of reason

val decide :
  ?obs:Obs.Bus.t ->
  ?companions:Monitor.t list ->
  session:Rbac.Session.t ->
  monitor:Monitor.t ->
  bindings:Perm_binding.t list ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  verdict
(** Decide the access at the given time.  Inspects only bindings whose
    permission pattern covers the access.  [companions] are the
    monitors of the object's teammates, consulted by bindings with
    [Team] proof scope.  With [obs], each pipeline stage (rbac,
    spatial, temporal) is bracketed with
    {!Obs.Trace.Stage_start}/[Stage_end] span events on the bus, in
    evaluation order; without it the decision is span-free and
    allocation-identical to the seed. *)

val decide_naive :
  ?obs:Obs.Bus.t ->
  ?companions:Monitor.t list ->
  session:Rbac.Session.t ->
  monitor:Monitor.t ->
  bindings:Perm_binding.t list ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  verdict
(** The linear-scan reference decision — literally {!decide}.  Kept
    under its own name as the differential oracle the indexed/cached
    fast path is fuzz-tested against, and as the baseline Bechamel's
    E13 experiment measures. *)

type request = {
  session : Rbac.Session.t;
  monitor : Monitor.t;
  companions : Monitor.t list;
  program : Sral.Ast.t;
  time : Temporal.Q.t;
  access : Sral.Access.t;
}
(** One pre-resolved decision input, as a shard's work queue holds it. *)

val batch :
  ?obs:Obs.Bus.t ->
  bindings:Perm_binding.t list ->
  request list ->
  verdict list
(** Decide a queue of requests against one binding store, in order —
    the per-shard inner loop of the parallel engine.  Pure decisions:
    nothing is recorded in the monitors (use
    {!Coordinated.System.check_batch} for the stateful, proof-issuing
    form).  Each request is decided exactly as {!decide} would. *)

val decide_indexed :
  ?obs:Obs.Bus.t ->
  ?companions:Monitor.t list ->
  session:Rbac.Session.t ->
  monitor:Monitor.t ->
  applicable:Perm_binding.t list ->
  bindings_version:int ->
  team_version:int ->
  team_history:int ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  verdict
(** The fast path.  [applicable] is the pre-filtered binding list (from
    {!Binding_index.applicable}), in binding-store insertion order —
    the caller is trusted to pass exactly the bindings {!decide} would
    have selected.  The RBAC ∧ spatial prefix of the outcome is cached
    in the monitor under the access's key and reused while the
    {!Monitor.decision_stamp} — location/activation/history epochs,
    {!Rbac.Session.version}, [bindings_version], and (for [Team]-scope
    bindings) [team_version]/[team_history] — is unchanged; only the
    cheap time-dependent temporal tail is recomputed on a hit.
    Observationally identical to {!decide_naive} on the same inputs,
    including the denial reason and the monitor-clock side effects
    (property-tested in [test/test_fuzz.ml]).  With [obs], every probe
    of the verdict cache additionally emits an
    {!Obs.Trace.Cache_probe} event (hit or miss) before the span
    events of whatever stages then run. *)

val decide_lazy :
  ?obs:Obs.Bus.t ->
  ?companions:Monitor.t list ->
  session:Rbac.Session.t ->
  monitor:Monitor.t ->
  applicable:Perm_binding.t list ->
  team_version:int ->
  team_history:int ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  Sral.Access.t ->
  verdict
(** The lazy-derivative path.  Observationally identical to
    {!decide_naive} on the same inputs — verdicts, denial strings,
    stage spans, monitor clock/epoch movement — but evaluates
    history-scope spatial constraints incrementally: each binding owns
    a {!Srac.Lazy_dfa} machine in the monitor's {!Residual} store, a
    cursor folds newly performed accesses into the residual state, and
    the grant / activation answers are memoized per-state nullability
    / feasibility bits.  RBAC verdicts and role checks are cached per
    access / binding, stamped by {!Rbac.Session.version}.  Unlike
    {!decide_indexed} there is no verdict cache to invalidate: cost
    does not regress when every grant moves the history epoch.  With
    [obs] the three stage spans are emitted exactly as the naive path
    does; without it the decision short-circuits at the first failure
    and the warm path performs zero allocation (benchmarked in E22,
    differentially fuzzed in [test/test_fuzz.ml]). *)

val refresh_activation :
  ?companions:Monitor.t list ->
  session:Rbac.Session.t ->
  monitor:Monitor.t ->
  bindings:Perm_binding.t list ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  unit ->
  unit
(** Recompute Eq. 3.1's [active(perm, ·)] for every binding at the
    given time — call at arrival/role-activation events so validity
    durations start burning when the permission becomes active, not
    when it is first exercised. *)

val refresh_activation_lazy :
  ?companions:Monitor.t list ->
  session:Rbac.Session.t ->
  monitor:Monitor.t ->
  bindings:Perm_binding.t list ->
  team_version:int ->
  team_history:int ->
  program:Sral.Ast.t ->
  time:Temporal.Q.t ->
  unit ->
  unit
(** {!refresh_activation} through the lazy machinery: same activation
    flips and epoch movement, computed from residual feasibility
    instead of a fresh DFA per history-scope binding. *)

val is_granted : verdict -> bool
val pp_reason : Format.formatter -> reason -> unit
val pp_verdict : Format.formatter -> verdict -> unit

val validity_dc_check :
  monitor:Monitor.t ->
  binding:Perm_binding.t ->
  time:Temporal.Q.t ->
  bool
(** Theorem 4.1, checked through the duration-calculus route: build the
    DC constraint [∫valid ≤ dur] and decide it with
    {!Temporal.Duration_calculus.sat} over [[t_b, t]].  Must agree with
    the step-function route used by {!decide} (property-tested). *)
