module Q = Temporal.Q

type reason = Verdict.reason =
  | Rbac_denied of string
  | Spatial_violation of { binding : string; detail : string }
  | Temporal_expired of { binding : string; spent : Temporal.Q.t }
  | Not_active of string
  | Not_arrived
  | Server_unavailable of string

type verdict = Verdict.t = Granted | Denied of reason

let is_granted = Verdict.is_granted
let pp_reason = Verdict.pp_reason
let pp_verdict = Verdict.pp

(* Feasibility semantics: can the program (still) satisfy the
   constraint?  Future accesses *will* carry execution proofs once
   performed, so Definition 3.6's Pr_x conjunct is vacuously true here;
   proofs bite in the history-based scope below. *)
let program_scope_ok ~monitor ~program (binding : Perm_binding.t) c =
  (* the check depends only on (program, constraint), both fixed for the
     object's lifetime — memoized per binding in the monitor *)
  Monitor.memo_spatial monitor ~key:(Perm_binding.key binding) ~program
    (fun () ->
      let outcome =
        Srac.Program_sat.check ~proofs:Srac.Proof.always
          ~modality:binding.spatial_modality program c
      in
      if outcome.holds then Ok ()
      else
        let detail =
          match (binding.spatial_modality, outcome.witness) with
          | Srac.Program_sat.Forall, Some t ->
              Format.asprintf "violating trace %a" Sral.Trace.pp t
          | _ ->
              Format.asprintf "no execution can satisfy %a" Srac.Formula.pp c
        in
        Error detail)

(* The history a binding consults: the object's own proofs, or —
   for Team proof scope — the time-merged proofs of the whole team
   ("the previous access actions of the device and even of its
   companions"). *)
let history ~monitor ~companions (b : Perm_binding.t) =
  match b.Perm_binding.proof_scope with
  | Perm_binding.Own -> Monitor.performed monitor
  | Perm_binding.Team ->
      let entries =
        List.concat_map
          (fun m -> Srac.Proof.entries (Monitor.proofs m))
          (monitor :: companions)
      in
      let by_time =
        List.stable_sort
          (fun (e1 : Srac.Proof.entry) e2 ->
            Temporal.Q.compare e1.Srac.Proof.time e2.Srac.Proof.time)
          entries
      in
      List.map (fun (e : Srac.Proof.entry) -> e.Srac.Proof.access) by_time

(* History-based half: the performed trace extended with the requested
   access must satisfy the constraint.  Every access in that trace
   either has a proof already or is about to get one, so Definition
   3.6's Pr_x conjunct is vacuous here. *)
let performed_scope_ok ~monitor ~companions ~access b c =
  let hypothetical = history ~monitor ~companions b @ [ access ] in
  if Srac.Trace_sat.sat ~proofs:Srac.Proof.always hypothetical c then Ok ()
  else
    match Srac.Trace_sat.explain ~proofs:Srac.Proof.always hypothetical c with
    | Ok () -> Ok ()
    | Error detail -> Error ("history: " ^ detail)

let spatial_ok ~monitor ~companions ~program ~access
    (binding : Perm_binding.t) =
  match binding.spatial with
  | None -> Ok ()
  | Some c -> (
      let program_side () = program_scope_ok ~monitor ~program binding c in
      let performed_side () =
        performed_scope_ok ~monitor ~companions ~access binding c
      in
      match binding.spatial_scope with
      | Perm_binding.Program -> program_side ()
      | Perm_binding.Performed -> performed_side ()
      | Perm_binding.Both -> (
          match program_side () with
          | Ok () -> performed_side ()
          | Error _ as failure -> failure))

let temporal_state ~monitor ~time (binding : Perm_binding.t) =
  let key = Perm_binding.key binding in
  let active = Monitor.activation_fn monitor ~key in
  match Monitor.arrivals monitor with
  | [] -> `Not_arrived
  | arrivals ->
      let valid_now =
        Temporal.Validity.is_valid_at ~scheme:binding.scheme ~arrivals
          ~dur:binding.dur active time
      in
      let spent =
        Temporal.Validity.spent ~scheme:binding.scheme ~arrivals
          ~dur:binding.dur active ~at:time
      in
      if valid_now then `Valid
      else if Temporal.Step_fn.value_at active time then `Expired spent
      else `Inactive

(* Eq. 3.1: active(perm) = role-held ∧ check(P, C).  The activation
   state is always computed with the *program-level* check — the
   permission is active while the program can (still) satisfy the
   constraint — so validity time accrues from the start of the journey,
   not from the first request.  The grant decision may additionally use
   the history-based scope. *)
let refresh_one ~session ~monitor ~companions ~program ~time
    (b : Perm_binding.t) =
  let rbac_ok =
    Rbac.Session.may session ~operation:b.perm.Rbac.Perm.operation
      ~target:b.perm.Rbac.Perm.target
  in
  let spatial_active =
    match b.spatial with
    | None -> true
    | Some c -> (
        match b.spatial_scope with
        | Perm_binding.Program | Perm_binding.Both ->
            Result.is_ok (program_scope_ok ~monitor ~program b c)
        | Perm_binding.Performed ->
            (* history scope: active while what actually happened can
               still be extended into a satisfying trace — prohibitions
               deactivate once violated, obligations stay active *)
            Srac.Program_sat.prefix_feasible
              ~performed:(history ~monitor ~companions b) c)
  in
  Monitor.set_active monitor ~key:(Perm_binding.key b) ~time
    (rbac_ok && spatial_active)

let refresh_activation ?(companions = []) ~session ~monitor ~bindings
    ~program ~time () =
  List.iter (refresh_one ~session ~monitor ~companions ~program ~time) bindings

(* The temporal tail of the decision, in binding order.  Shared by the
   recomputing path and the cache-hit fast path: it reads the query
   time, so it is recomputed on every decision either way. *)
let first_temporal_failure ~monitor ~time applicable =
  List.find_map
    (fun b ->
      match temporal_state ~monitor ~time b with
      | `Valid -> None
      | `Inactive -> Some (Not_active (Perm_binding.key b))
      | `Not_arrived -> Some Not_arrived
      | `Expired spent ->
          Some (Temporal_expired { binding = Perm_binding.key b; spent }))
    applicable

(* Bracket [f]'s evaluation with Stage_start/Stage_end span events on
   the bus, measuring host-clock nanoseconds through the bus clock
   (zero under the default null clock, keeping traces deterministic).
   With no bus the stage runs untouched — the un-instrumented fast
   path is byte-for-byte the seed's. *)
let span ~obs ~monitor ~time stage ok_of f =
  match obs with
  | None -> f ()
  | Some bus ->
      let object_id = Monitor.object_id monitor in
      Obs.Bus.emit bus (Obs.Trace.Stage_start { time; object_id; stage });
      let t0 = Obs.Bus.now_ns bus in
      let result = f () in
      let elapsed_ns = Int64.sub (Obs.Bus.now_ns bus) t0 in
      Obs.Bus.emit bus
        (Obs.Trace.Stage_end
           { time; object_id; stage; ok = ok_of result; elapsed_ns });
      result

(* Full recomputation over an already-filtered applicable-binding list. *)
let decide_applicable ?obs ~companions ~session ~monitor ~applicable ~program
    ~time access =
  let rbac =
    span ~obs ~monitor ~time Obs.Trace.Rbac
      (function Rbac.Engine.Granted -> true | Rbac.Engine.Denied _ -> false)
      (fun () -> Rbac.Engine.decide_access session access)
  in
  let spatial_results =
    span ~obs ~monitor ~time Obs.Trace.Spatial
      (List.for_all (fun (_, r) -> Result.is_ok r))
      (fun () ->
        List.iter
          (refresh_one ~session ~monitor ~companions ~program ~time)
          applicable;
        List.map
          (fun b -> (b, spatial_ok ~monitor ~companions ~program ~access b))
          applicable)
  in
  match rbac with
  | Rbac.Engine.Denied why -> Denied (Rbac_denied why)
  | Rbac.Engine.Granted -> (
      let spatial_failure =
        List.find_map
          (fun (b, spatial) ->
            match spatial with
            | Ok () -> None
            | Error detail ->
                Some
                  (Spatial_violation
                     { binding = Perm_binding.key b; detail }))
          spatial_results
      in
      match spatial_failure with
      | Some reason -> Denied reason
      | None -> (
          match
            span ~obs ~monitor ~time Obs.Trace.Temporal Option.is_none
              (fun () -> first_temporal_failure ~monitor ~time applicable)
          with
          | Some reason -> Denied reason
          | None -> Granted))

let decide ?obs ?(companions = []) ~session ~monitor ~bindings ~program ~time
    access =
  let applicable =
    List.filter (fun b -> Perm_binding.applies_to b access) bindings
  in
  decide_applicable ?obs ~companions ~session ~monitor ~applicable ~program
    ~time access

let decide_naive = decide

type request = {
  session : Rbac.Session.t;
  monitor : Monitor.t;
  companions : Monitor.t list;
  program : Sral.Ast.t;
  time : Temporal.Q.t;
  access : Sral.Access.t;
}

let batch ?obs ~bindings requests =
  List.map
    (fun r ->
      decide ?obs ~companions:r.companions ~session:r.session
        ~monitor:r.monitor ~bindings ~program:r.program ~time:r.time r.access)
    requests

(* Which cache-stamp components can affect the RBAC ∧ spatial prefix
   for this applicable set?  Program-scope constraints never read
   execution proofs; Performed/Both-scope ones do, and additionally
   read companions' proofs when the proof scope is [Team]. *)
let reads_history (b : Perm_binding.t) =
  b.spatial <> None
  &&
  match b.spatial_scope with
  | Perm_binding.Performed | Perm_binding.Both -> true
  | Perm_binding.Program -> false

let uses_history_of applicable = List.exists reads_history applicable

let uses_team_of applicable =
  List.exists
    (fun (b : Perm_binding.t) ->
      reads_history b && b.proof_scope = Perm_binding.Team)
    applicable

let stamp_matches (entry : Monitor.cached_decision) ~(now : Monitor.decision_stamp)
    =
  let s = entry.stamp in
  s.location = now.location && s.activation = now.activation
  && s.session = now.session && s.bindings = now.bindings
  && ((not entry.uses_history) || s.history = now.history)
  && ((not entry.uses_team)
     || (s.team_version = now.team_version
        && s.team_history = now.team_history))

let decide_indexed ?obs ?(companions = []) ~session ~monitor ~applicable
    ~bindings_version ~team_version ~team_history ~program ~time access =
  let current_stamp () =
    {
      Monitor.location = Monitor.location_epoch monitor;
      activation = Monitor.activation_epoch monitor;
      history = Monitor.history_epoch monitor;
      session = Rbac.Session.version session;
      bindings = bindings_version;
      team_version;
      team_history;
    }
  in
  let key = Sral.Access.to_string access in
  let cached =
    match Monitor.find_decision monitor ~key with
    | Some entry
      when stamp_matches entry ~now:(current_stamp ())
           && Sral.Access.equal entry.access access
           && Sral.Ast.equal entry.program program ->
        Some entry
    | _ -> None
  in
  (match obs with
  | Some bus ->
      Obs.Bus.emit bus
        (Obs.Trace.Cache_probe
           {
             time;
             object_id = Monitor.object_id monitor;
             hit = cached <> None;
           })
  | None -> ());
  match cached with
  | Some entry -> (
      (* replicate the naive path's clock movement: refresh_one advances
         the monitor clock once per applicable binding (and raises on
         backwards time), so the fast path must advance too *)
      if applicable <> [] then Monitor.advance monitor time;
      match entry.pre_temporal with
      | Error reason -> Denied reason
      | Ok () -> (
          match
            span ~obs ~monitor ~time Obs.Trace.Temporal Option.is_none
              (fun () -> first_temporal_failure ~monitor ~time applicable)
          with
          | Some reason -> Denied reason
          | None -> Granted))
  | None ->
      let verdict =
        decide_applicable ?obs ~companions ~session ~monitor ~applicable
          ~program ~time access
      in
      let pre_temporal =
        match verdict with
        | Granted -> Ok ()
        | Denied ((Rbac_denied _ | Spatial_violation _) as r) -> Error r
        (* Server_unavailable is minted by the Naplet security manager
           before the core procedure runs, so it cannot reach this
           recomputation; listed for exhaustiveness as transient *)
        | Denied (Temporal_expired _ | Not_active _ | Not_arrived
                 | Server_unavailable _) ->
            Ok ()
      in
      (* stamp *after* the recomputation: refresh_one may itself bump
         the activation epoch, and the cached entry must be valid
         against the post-decision state *)
      Monitor.store_decision monitor ~key
        {
          Monitor.stamp = current_stamp ();
          access;
          program;
          uses_history = uses_history_of applicable;
          uses_team = uses_team_of applicable;
          pre_temporal;
        };
      verdict

let validity_dc_check ~monitor ~(binding : Perm_binding.t) ~time =
  match binding.dur with
  | None -> true
  | Some dur -> (
      match Monitor.arrivals monitor with
      | [] -> false
      | arrivals ->
          let key = Perm_binding.key binding in
          let active = Monitor.activation_fn monitor ~key in
          let valid =
            Temporal.Validity.valid_fn ~scheme:binding.scheme ~arrivals
              ~dur:binding.dur active
          in
          let base =
            match binding.scheme with
            | Temporal.Validity.Whole_journey -> List.hd arrivals
            | Temporal.Validity.Per_server ->
                List.fold_left
                  (fun acc t -> if Q.le t time then Q.max acc t else acc)
                  (List.hd arrivals) arrivals
          in
          if Q.lt time base then false
          else
            let interp name =
              if String.equal name "valid" then valid
              else invalid_arg ("unknown state variable " ^ name)
            in
            (* Eq. 4.1 with [<=] is satisfied at the single boundary
               instant where the accumulated time equals [dur]; the
               step-function solution already switched off there (the
               budget is spent), so the agreeing DC reading is the
               strict "budget remains" form. *)
            let formula =
              Temporal.Duration_calculus.Dur_cmp
                (Temporal.State_expr.Var "valid", Temporal.Duration_calculus.Lt,
                 dur)
            in
            Temporal.Duration_calculus.sat interp
              (Temporal.Interval.make base time)
              formula
            && Temporal.Step_fn.value_at active time)
