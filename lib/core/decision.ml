module Q = Temporal.Q

type reason = Verdict.reason =
  | Rbac_denied of string
  | Spatial_violation of { binding : string; detail : string }
  | Temporal_expired of { binding : string; spent : Temporal.Q.t }
  | Not_active of string
  | Not_arrived
  | Server_unavailable of string

type verdict = Verdict.t = Granted | Denied of reason

let is_granted = Verdict.is_granted
let pp_reason = Verdict.pp_reason
let pp_verdict = Verdict.pp

(* Feasibility semantics: can the program (still) satisfy the
   constraint?  Future accesses *will* carry execution proofs once
   performed, so Definition 3.6's Pr_x conjunct is vacuously true here;
   proofs bite in the history-based scope below. *)
let program_scope_ok ~monitor ~program (binding : Perm_binding.t) c =
  (* the check depends only on (program, constraint), both fixed for the
     object's lifetime — memoized per binding in the monitor *)
  Monitor.memo_spatial monitor ~key:(Perm_binding.key binding) ~program
    (fun () ->
      let outcome =
        Srac.Program_sat.check ~proofs:Srac.Proof.always
          ~modality:binding.spatial_modality program c
      in
      if outcome.holds then Ok ()
      else
        let detail =
          match (binding.spatial_modality, outcome.witness) with
          | Srac.Program_sat.Forall, Some t ->
              Format.asprintf "violating trace %a" Sral.Trace.pp t
          | _ ->
              Format.asprintf "no execution can satisfy %a" Srac.Formula.pp c
        in
        Error detail)

(* The history a binding consults: the object's own proofs, or —
   for Team proof scope — the time-merged proofs of the whole team
   ("the previous access actions of the device and even of its
   companions"). *)
let history ~monitor ~companions (b : Perm_binding.t) =
  match b.Perm_binding.proof_scope with
  | Perm_binding.Own -> Monitor.performed monitor
  | Perm_binding.Team ->
      let entries =
        List.concat_map
          (fun m -> Srac.Proof.entries (Monitor.proofs m))
          (monitor :: companions)
      in
      let by_time =
        List.stable_sort
          (fun (e1 : Srac.Proof.entry) e2 ->
            Temporal.Q.compare e1.Srac.Proof.time e2.Srac.Proof.time)
          entries
      in
      List.map (fun (e : Srac.Proof.entry) -> e.Srac.Proof.access) by_time

(* History-based half: the performed trace extended with the requested
   access must satisfy the constraint.  Every access in that trace
   either has a proof already or is about to get one, so Definition
   3.6's Pr_x conjunct is vacuous here. *)
let performed_scope_ok ~monitor ~companions ~access b c =
  let hypothetical = history ~monitor ~companions b @ [ access ] in
  if Srac.Trace_sat.sat ~proofs:Srac.Proof.always hypothetical c then Ok ()
  else
    match Srac.Trace_sat.explain ~proofs:Srac.Proof.always hypothetical c with
    | Ok () -> Ok ()
    | Error detail -> Error ("history: " ^ detail)

let spatial_ok ~monitor ~companions ~program ~access
    (binding : Perm_binding.t) =
  match binding.spatial with
  | None -> Ok ()
  | Some c -> (
      let program_side () = program_scope_ok ~monitor ~program binding c in
      let performed_side () =
        performed_scope_ok ~monitor ~companions ~access binding c
      in
      match binding.spatial_scope with
      | Perm_binding.Program -> program_side ()
      | Perm_binding.Performed -> performed_side ()
      | Perm_binding.Both -> (
          match program_side () with
          | Ok () -> performed_side ()
          | Error _ as failure -> failure))

let temporal_state ~monitor ~time (binding : Perm_binding.t) =
  let key = Perm_binding.key binding in
  let active = Monitor.activation_fn monitor ~key in
  match Monitor.arrivals monitor with
  | [] -> `Not_arrived
  | arrivals ->
      let valid_now =
        Temporal.Validity.is_valid_at ~scheme:binding.scheme ~arrivals
          ~dur:binding.dur active time
      in
      let spent =
        Temporal.Validity.spent ~scheme:binding.scheme ~arrivals
          ~dur:binding.dur active ~at:time
      in
      if valid_now then `Valid
      else if Temporal.Step_fn.value_at active time then `Expired spent
      else `Inactive

(* Eq. 3.1: active(perm) = role-held ∧ check(P, C).  The activation
   state is always computed with the *program-level* check — the
   permission is active while the program can (still) satisfy the
   constraint — so validity time accrues from the start of the journey,
   not from the first request.  The grant decision may additionally use
   the history-based scope. *)
let refresh_one ~session ~monitor ~companions ~program ~time
    (b : Perm_binding.t) =
  let rbac_ok =
    Rbac.Session.may session ~operation:b.perm.Rbac.Perm.operation
      ~target:b.perm.Rbac.Perm.target
  in
  let spatial_active =
    match b.spatial with
    | None -> true
    | Some c -> (
        match b.spatial_scope with
        | Perm_binding.Program | Perm_binding.Both ->
            Result.is_ok (program_scope_ok ~monitor ~program b c)
        | Perm_binding.Performed ->
            (* history scope: active while what actually happened can
               still be extended into a satisfying trace — prohibitions
               deactivate once violated, obligations stay active *)
            Srac.Program_sat.prefix_feasible
              ~performed:(history ~monitor ~companions b) c)
  in
  Monitor.set_active monitor ~key:(Perm_binding.key b) ~time
    (rbac_ok && spatial_active)

let refresh_activation ?(companions = []) ~session ~monitor ~bindings
    ~program ~time () =
  List.iter (refresh_one ~session ~monitor ~companions ~program ~time) bindings

(* The temporal tail of the decision, in binding order.  Shared by the
   recomputing path and the cache-hit fast path: it reads the query
   time, so it is recomputed on every decision either way. *)
let first_temporal_failure ~monitor ~time applicable =
  List.find_map
    (fun b ->
      match temporal_state ~monitor ~time b with
      | `Valid -> None
      | `Inactive -> Some (Not_active (Perm_binding.key b))
      | `Not_arrived -> Some Not_arrived
      | `Expired spent ->
          Some (Temporal_expired { binding = Perm_binding.key b; spent }))
    applicable

(* Bracket [f]'s evaluation with Stage_start/Stage_end span events on
   the bus, measuring host-clock nanoseconds through the bus clock
   (zero under the default null clock, keeping traces deterministic).
   With no bus the stage runs untouched — the un-instrumented fast
   path is byte-for-byte the seed's. *)
let span ~obs ~monitor ~time stage ok_of f =
  match obs with
  | None -> f ()
  | Some bus ->
      let object_id = Monitor.object_id monitor in
      Obs.Bus.emit bus (Obs.Trace.Stage_start { time; object_id; stage });
      let t0 = Obs.Bus.now_ns bus in
      let result = f () in
      let elapsed_ns = Int64.sub (Obs.Bus.now_ns bus) t0 in
      Obs.Bus.emit bus
        (Obs.Trace.Stage_end
           { time; object_id; stage; ok = ok_of result; elapsed_ns });
      result

(* Full recomputation over an already-filtered applicable-binding list. *)
let decide_applicable ?obs ~companions ~session ~monitor ~applicable ~program
    ~time access =
  let rbac =
    span ~obs ~monitor ~time Obs.Trace.Rbac
      (function Rbac.Engine.Granted -> true | Rbac.Engine.Denied _ -> false)
      (fun () -> Rbac.Engine.decide_access session access)
  in
  let spatial_results =
    span ~obs ~monitor ~time Obs.Trace.Spatial
      (List.for_all (fun (_, r) -> Result.is_ok r))
      (fun () ->
        List.iter
          (refresh_one ~session ~monitor ~companions ~program ~time)
          applicable;
        List.map
          (fun b -> (b, spatial_ok ~monitor ~companions ~program ~access b))
          applicable)
  in
  match rbac with
  | Rbac.Engine.Denied why -> Denied (Rbac_denied why)
  | Rbac.Engine.Granted -> (
      let spatial_failure =
        List.find_map
          (fun (b, spatial) ->
            match spatial with
            | Ok () -> None
            | Error detail ->
                Some
                  (Spatial_violation
                     { binding = Perm_binding.key b; detail }))
          spatial_results
      in
      match spatial_failure with
      | Some reason -> Denied reason
      | None -> (
          match
            span ~obs ~monitor ~time Obs.Trace.Temporal Option.is_none
              (fun () -> first_temporal_failure ~monitor ~time applicable)
          with
          | Some reason -> Denied reason
          | None -> Granted))

let decide ?obs ?(companions = []) ~session ~monitor ~bindings ~program ~time
    access =
  let applicable =
    List.filter (fun b -> Perm_binding.applies_to b access) bindings
  in
  decide_applicable ?obs ~companions ~session ~monitor ~applicable ~program
    ~time access

let decide_naive = decide

type request = {
  session : Rbac.Session.t;
  monitor : Monitor.t;
  companions : Monitor.t list;
  program : Sral.Ast.t;
  time : Temporal.Q.t;
  access : Sral.Access.t;
}

let batch ?obs ~bindings requests =
  List.map
    (fun r ->
      decide ?obs ~companions:r.companions ~session:r.session
        ~monitor:r.monitor ~bindings ~program:r.program ~time:r.time r.access)
    requests

(* Which cache-stamp components can affect the RBAC ∧ spatial prefix
   for this applicable set?  Program-scope constraints never read
   execution proofs; Performed/Both-scope ones do, and additionally
   read companions' proofs when the proof scope is [Team]. *)
let reads_history (b : Perm_binding.t) =
  b.spatial <> None
  &&
  match b.spatial_scope with
  | Perm_binding.Performed | Perm_binding.Both -> true
  | Perm_binding.Program -> false

let uses_history_of applicable = List.exists reads_history applicable

let uses_team_of applicable =
  List.exists
    (fun (b : Perm_binding.t) ->
      reads_history b && b.proof_scope = Perm_binding.Team)
    applicable

let stamp_matches (entry : Monitor.cached_decision) ~(now : Monitor.decision_stamp)
    =
  let s = entry.stamp in
  s.location = now.location && s.activation = now.activation
  && s.session = now.session && s.bindings = now.bindings
  && ((not entry.uses_history) || s.history = now.history)
  && ((not entry.uses_team)
     || (s.team_version = now.team_version
        && s.team_history = now.team_history))

let decide_indexed ?obs ?(companions = []) ~session ~monitor ~applicable
    ~bindings_version ~team_version ~team_history ~program ~time access =
  let current_stamp () =
    {
      Monitor.location = Monitor.location_epoch monitor;
      activation = Monitor.activation_epoch monitor;
      history = Monitor.history_epoch monitor;
      session = Rbac.Session.version session;
      bindings = bindings_version;
      team_version;
      team_history;
    }
  in
  let key = Sral.Access.to_string access in
  let cached =
    match Monitor.find_decision monitor ~key with
    | Some entry
      when stamp_matches entry ~now:(current_stamp ())
           && Sral.Access.equal entry.access access
           && Sral.Ast.equal entry.program program ->
        Some entry
    | _ -> None
  in
  (match obs with
  | Some bus ->
      Obs.Bus.emit bus
        (Obs.Trace.Cache_probe
           {
             time;
             object_id = Monitor.object_id monitor;
             hit = cached <> None;
           })
  | None -> ());
  match cached with
  | Some entry -> (
      (* replicate the naive path's clock movement: refresh_one advances
         the monitor clock once per applicable binding (and raises on
         backwards time), so the fast path must advance too *)
      if applicable <> [] then Monitor.advance monitor time;
      match entry.pre_temporal with
      | Error reason -> Denied reason
      | Ok () -> (
          match
            span ~obs ~monitor ~time Obs.Trace.Temporal Option.is_none
              (fun () -> first_temporal_failure ~monitor ~time applicable)
          with
          | Some reason -> Denied reason
          | None -> Granted))
  | None ->
      let verdict =
        decide_applicable ?obs ~companions ~session ~monitor ~applicable
          ~program ~time access
      in
      let pre_temporal =
        match verdict with
        | Granted -> Ok ()
        | Denied ((Rbac_denied _ | Spatial_violation _) as r) -> Error r
        (* Server_unavailable is minted by the Naplet security manager
           before the core procedure runs, so it cannot reach this
           recomputation; listed for exhaustiveness as transient *)
        | Denied (Temporal_expired _ | Not_active _ | Not_arrived
                 | Server_unavailable _) ->
            Ok ()
      in
      (* stamp *after* the recomputation: refresh_one may itself bump
         the activation epoch, and the cached entry must be valid
         against the post-decision state *)
      Monitor.store_decision monitor ~key
        {
          Monitor.stamp = current_stamp ();
          access;
          program;
          uses_history = uses_history_of applicable;
          uses_team = uses_team_of applicable;
          pre_temporal;
        };
      verdict

(* ------------------------------------------------------------------ *)
(* Lazy-derivative decision path.

   [decide_lazy] mirrors [decide_naive]'s observable behavior —
   verdicts, denial strings, Obs trace spans, monitor clock and epoch
   movement — while replacing the per-decision spatial recomputation
   with incremental Brzozowski-derivative residuals ({!Srac.Lazy_dfa})
   and version-stamped RBAC caches, so a warm decision allocates
   nothing.  Per binding, the monitor keeps a {!Residual.slot} holding
   the binding's lazy machine and a cursor into the object's performed
   history; each decision folds only the not-yet-seen proof entries
   into the residual state, then answers grant (residual nullability
   after the access) and activation (residual feasibility) from
   memoized per-state bits.  Denial details fall back to the eager
   oracle so messages stay byte-identical. *)

let get_slot ~session ~monitor (b : Perm_binding.t) =
  let store = Monitor.residuals monitor in
  match Residual.Binding_tbl.find store.Residual.slots b with
  | slot -> slot
  | exception Not_found ->
      let machine =
        match (b.spatial, b.spatial_scope) with
        | Some c, (Perm_binding.Performed | Perm_binding.Both) ->
            Some (Srac.Lazy_dfa.create c)
        | _ -> None
      in
      let slot =
        {
          Residual.machine;
          cell = Monitor.activation_cell monitor ~key:(Perm_binding.key b);
          own_state = 0;
          own_consumed = 0;
          team_state = -1;
          team_stamp_version = -1;
          team_stamp_history = -1;
          team_stamp_own = -1;
          may_session = session;
          may_version = Rbac.Session.version session;
          may_ok =
            Rbac.Session.may session ~operation:b.perm.Rbac.Perm.operation
              ~target:b.perm.Rbac.Perm.target;
          prog_program = None;
          prog_result = Ok ();
        }
      in
      Residual.Binding_tbl.add store.Residual.slots b slot;
      slot

(* [Session.may] rebuilds the active permission set on every call; its
   result is fully determined by the session object and its version
   (which bumps on every role activation change and policy edit), so
   one cached bit per (binding, session, version) suffices. *)
let slot_may_ok ~session slot (b : Perm_binding.t) =
  let v = Rbac.Session.version session in
  if slot.Residual.may_session == session && slot.Residual.may_version = v then
    slot.Residual.may_ok
  else begin
    let ok =
      Rbac.Session.may session ~operation:b.perm.Rbac.Perm.operation
        ~target:b.perm.Rbac.Perm.target
    in
    slot.Residual.may_session <- session;
    slot.Residual.may_version <- v;
    slot.Residual.may_ok <- ok;
    ok
  end

(* The Program-scope outcome is fixed by (program, constraint,
   modality).  [program_scope_ok]'s monitor memo already exploits
   that, but its key is a formatted permission string rebuilt on every
   probe; the slot re-caches the result against the program's physical
   identity so the warm path touches no allocator.  A
   structurally-equal-but-distinct program falls through to the memo,
   which compares with [Ast.equal] — slower, never wrong. *)
let program_ok_cached ~monitor ~program slot (b : Perm_binding.t) c =
  match slot.Residual.prog_program with
  | Some p when p == program -> slot.Residual.prog_result
  | _ ->
      let r = program_scope_ok ~monitor ~program b c in
      slot.Residual.prog_program <- Some program;
      slot.Residual.prog_result <- r;
      r

(* Same caching argument for the full per-access RBAC verdict. *)
let rbac_cached ~session ~monitor access =
  let store = Monitor.residuals monitor in
  let v = Rbac.Session.version session in
  match Residual.Access_tbl.find store.Residual.rbac access with
  | e when e.Residual.r_session == session && e.Residual.r_version = v ->
      e.Residual.r_verdict
  | e ->
      let verdict = Rbac.Engine.decide_access session access in
      e.Residual.r_session <- session;
      e.Residual.r_version <- v;
      e.Residual.r_verdict <- verdict;
      verdict
  | exception Not_found ->
      let verdict = Rbac.Engine.decide_access session access in
      Residual.Access_tbl.add store.Residual.rbac access
        { Residual.r_session = session; r_version = v; r_verdict = verdict };
      verdict

(* Fold the [k] newest proof entries (given newest-first) into the
   slot's own-residual cursor, oldest first.  [k] is 1 in steady state
   — the access granted by the previous decision. *)
let rec fold_newest machine slot k (entries : Srac.Proof.entry list) =
  if k > 0 then
    match entries with
    | [] -> ()
    | e :: older ->
        fold_newest machine slot (k - 1) older;
        slot.Residual.own_state <-
          Srac.Lazy_dfa.step_access machine slot.Residual.own_state
            e.Srac.Proof.access

(* The monitor clock forces non-decreasing proof times, so insertion
   order is execution-time order and the cursor fold visits entries
   exactly as [Monitor.performed] would list them; [history_epoch]
   counts proofs, so it doubles as the entry count. *)
let own_state ~monitor machine slot =
  let total = Monitor.history_epoch monitor in
  if slot.Residual.own_consumed < total then begin
    fold_newest machine slot
      (total - slot.Residual.own_consumed)
      (Srac.Proof.rev_entries (Monitor.proofs monitor));
    slot.Residual.own_consumed <- total
  end;
  slot.Residual.own_state

(* Team-scope residuals cannot be cursor-incremental (companions'
   entries interleave by time), so the state is cached against the
   same stamps the verdict cache uses and refolded from scratch when
   any of them moves. *)
let team_state ~monitor ~companions ~team_version ~team_history machine slot b
    =
  let own = Monitor.history_epoch monitor in
  if
    slot.Residual.team_state >= 0
    && slot.Residual.team_stamp_version = team_version
    && slot.Residual.team_stamp_history = team_history
    && slot.Residual.team_stamp_own = own
  then slot.Residual.team_state
  else begin
    let st =
      List.fold_left
        (fun q a -> Srac.Lazy_dfa.step_access machine q a)
        (Srac.Lazy_dfa.start machine)
        (history ~monitor ~companions b)
    in
    slot.Residual.team_state <- st;
    slot.Residual.team_stamp_version <- team_version;
    slot.Residual.team_stamp_history <- team_history;
    slot.Residual.team_stamp_own <- own;
    st
  end

let scope_state ~monitor ~companions ~team_version ~team_history machine slot
    (b : Perm_binding.t) =
  match b.proof_scope with
  | Perm_binding.Own -> own_state ~monitor machine slot
  | Perm_binding.Team ->
      team_state ~monitor ~companions ~team_version ~team_history machine slot
        b

let refresh_one_lazy ~session ~monitor ~companions ~program ~time
    ~team_version ~team_history (b : Perm_binding.t) =
  let slot = get_slot ~session ~monitor b in
  let rbac_ok = slot_may_ok ~session slot b in
  let spatial_active =
    match b.spatial with
    | None -> true
    | Some c -> (
        match b.spatial_scope with
        | Perm_binding.Program | Perm_binding.Both ->
            Result.is_ok (program_ok_cached ~monitor ~program slot b c)
        | Perm_binding.Performed -> (
            match slot.Residual.machine with
            | Some machine ->
                Srac.Lazy_dfa.feasible machine
                  (scope_state ~monitor ~companions ~team_version ~team_history
                     machine slot b)
            | None -> assert false))
  in
  Monitor.set_active_cell monitor slot.Residual.cell ~time
    (rbac_ok && spatial_active)

let rec refresh_all_lazy ~session ~monitor ~companions ~program ~time
    ~team_version ~team_history = function
  | [] -> ()
  | b :: rest ->
      refresh_one_lazy ~session ~monitor ~companions ~program ~time
        ~team_version ~team_history b;
      refresh_all_lazy ~session ~monitor ~companions ~program ~time
        ~team_version ~team_history rest

let performed_ok_lazy ~session ~monitor ~companions ~access ~team_version
    ~team_history (b : Perm_binding.t) c =
  let slot = get_slot ~session ~monitor b in
  match slot.Residual.machine with
  | None -> assert false
  | Some machine ->
      let q =
        scope_state ~monitor ~companions ~team_version ~team_history machine
          slot b
      in
      if Srac.Lazy_dfa.nullable_after machine q access then Ok ()
      else
        (* deny: rerun the oracle so the denial detail is byte-identical
           (and a residual false-negative can never deny a granting
           oracle — equivalence of the grant direction is enforced by
           the residual property tests and the differential gate) *)
        performed_scope_ok ~monitor ~companions ~access b c

let spatial_ok_lazy ~session ~monitor ~companions ~program ~access
    ~team_version ~team_history (b : Perm_binding.t) =
  match b.spatial with
  | None -> Ok ()
  | Some c -> (
      let slot = get_slot ~session ~monitor b in
      match b.spatial_scope with
      | Perm_binding.Program -> program_ok_cached ~monitor ~program slot b c
      | Perm_binding.Performed ->
          performed_ok_lazy ~session ~monitor ~companions ~access ~team_version
            ~team_history b c
      | Perm_binding.Both -> (
          match program_ok_cached ~monitor ~program slot b c with
          | Ok () ->
              performed_ok_lazy ~session ~monitor ~companions ~access
                ~team_version ~team_history b c
          | Error _ as failure -> failure))

let rec first_spatial_failure_lazy ~session ~monitor ~companions ~program
    ~access ~team_version ~team_history = function
  | [] -> None
  | b :: rest -> (
      match
        spatial_ok_lazy ~session ~monitor ~companions ~program ~access
          ~team_version ~team_history b
      with
      | Ok () ->
          first_spatial_failure_lazy ~session ~monitor ~companions ~program
            ~access ~team_version ~team_history rest
      | Error detail ->
          Some (Spatial_violation { binding = Perm_binding.key b; detail }))

let temporal_state_lazy ~monitor ~time slot (b : Perm_binding.t) =
  if not (Monitor.arrived monitor) then `Not_arrived
  else
    match b.dur with
    | None ->
        (* no duration budget: the validity window union covers
           [first arrival, ∞) under both schemes, so validity at the
           (clock-current) query time is exactly the newest activation
           state — the cell head.  Expiry needs a budget, so the
           remaining distinction is only Valid/Inactive. *)
        if Residual.active_now slot.Residual.cell then `Valid else `Inactive
    | Some _ -> temporal_state ~monitor ~time b

let rec first_temporal_failure_lazy ~session ~monitor ~time = function
  | [] -> None
  | b :: rest -> (
      let slot = get_slot ~session ~monitor b in
      match temporal_state_lazy ~monitor ~time slot b with
      | `Valid -> first_temporal_failure_lazy ~session ~monitor ~time rest
      | `Inactive -> Some (Not_active (Perm_binding.key b))
      | `Not_arrived -> Some Not_arrived
      | `Expired spent ->
          Some (Temporal_expired { binding = Perm_binding.key b; spent }))

let decide_lazy ?obs ?(companions = []) ~session ~monitor ~applicable
    ~team_version ~team_history ~program ~time access =
  match obs with
  | None -> (
      (* uninstrumented fast path: no span closures, short-circuits at
         the first spatial failure (the skipped evaluations have no
         observable effect — they only warm caches that later
         decisions recompute identically) *)
      let rbac = rbac_cached ~session ~monitor access in
      refresh_all_lazy ~session ~monitor ~companions ~program ~time
        ~team_version ~team_history applicable;
      match rbac with
      | Rbac.Engine.Denied why -> Denied (Rbac_denied why)
      | Rbac.Engine.Granted -> (
          match
            first_spatial_failure_lazy ~session ~monitor ~companions ~program
              ~access ~team_version ~team_history applicable
          with
          | Some reason -> Denied reason
          | None -> (
              match
                first_temporal_failure_lazy ~session ~monitor ~time applicable
              with
              | Some reason -> Denied reason
              | None -> Granted)))
  | Some _ -> (
      (* instrumented: identical stage bracketing to decide_naive so
         traces are byte-comparable *)
      let rbac =
        span ~obs ~monitor ~time Obs.Trace.Rbac
          (function
            | Rbac.Engine.Granted -> true
            | Rbac.Engine.Denied _ -> false)
          (fun () -> rbac_cached ~session ~monitor access)
      in
      let spatial_results =
        span ~obs ~monitor ~time Obs.Trace.Spatial
          (List.for_all (fun (_, r) -> Result.is_ok r))
          (fun () ->
            refresh_all_lazy ~session ~monitor ~companions ~program ~time
              ~team_version ~team_history applicable;
            List.map
              (fun b ->
                ( b,
                  spatial_ok_lazy ~session ~monitor ~companions ~program
                    ~access ~team_version ~team_history b ))
              applicable)
      in
      match rbac with
      | Rbac.Engine.Denied why -> Denied (Rbac_denied why)
      | Rbac.Engine.Granted -> (
          let spatial_failure =
            List.find_map
              (fun (b, spatial) ->
                match spatial with
                | Ok () -> None
                | Error detail ->
                    Some
                      (Spatial_violation
                         { binding = Perm_binding.key b; detail }))
              spatial_results
          in
          match spatial_failure with
          | Some reason -> Denied reason
          | None -> (
              match
                span ~obs ~monitor ~time Obs.Trace.Temporal Option.is_none
                  (fun () ->
                    first_temporal_failure_lazy ~session ~monitor ~time
                      applicable)
              with
              | Some reason -> Denied reason
              | None -> Granted)))

let refresh_activation_lazy ?(companions = []) ~session ~monitor ~bindings
    ~team_version ~team_history ~program ~time () =
  refresh_all_lazy ~session ~monitor ~companions ~program ~time ~team_version
    ~team_history bindings

let validity_dc_check ~monitor ~(binding : Perm_binding.t) ~time =
  match binding.dur with
  | None -> true
  | Some dur -> (
      match Monitor.arrivals monitor with
      | [] -> false
      | arrivals ->
          let key = Perm_binding.key binding in
          let active = Monitor.activation_fn monitor ~key in
          let valid =
            Temporal.Validity.valid_fn ~scheme:binding.scheme ~arrivals
              ~dur:binding.dur active
          in
          let base =
            match binding.scheme with
            | Temporal.Validity.Whole_journey -> List.hd arrivals
            | Temporal.Validity.Per_server ->
                List.fold_left
                  (fun acc t -> if Q.le t time then Q.max acc t else acc)
                  (List.hd arrivals) arrivals
          in
          if Q.lt time base then false
          else
            let interp name =
              if String.equal name "valid" then valid
              else invalid_arg ("unknown state variable " ^ name)
            in
            (* Eq. 4.1 with [<=] is satisfied at the single boundary
               instant where the accumulated time equals [dur]; the
               step-function solution already switched off there (the
               budget is spent), so the agreeing DC reading is the
               strict "budget remains" form. *)
            let formula =
              Temporal.Duration_calculus.Dur_cmp
                (Temporal.State_expr.Var "valid", Temporal.Duration_calculus.Lt,
                 dur)
            in
            Temporal.Duration_calculus.sat interp
              (Temporal.Interval.make base time)
              formula
            && Temporal.Step_fn.value_at active time)
