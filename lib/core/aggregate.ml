type group = { perm : Rbac.Perm.t; members : Perm_binding.t list }

let classify bindings =
  let rec insert groups (b : Perm_binding.t) =
    match groups with
    | [] -> [ { perm = b.Perm_binding.perm; members = [ b ] } ]
    | g :: rest ->
        if Rbac.Perm.equal g.perm b.Perm_binding.perm then
          { g with members = g.members @ [ b ] } :: rest
        else g :: insert rest b
  in
  List.fold_left insert [] bindings

let same_scheme (b1 : Perm_binding.t) (b2 : Perm_binding.t) =
  b1.Perm_binding.scheme = b2.Perm_binding.scheme

let same_modality (b1 : Perm_binding.t) (b2 : Perm_binding.t) =
  b1.Perm_binding.spatial_modality = b2.Perm_binding.spatial_modality

let same_scope (b1 : Perm_binding.t) (b2 : Perm_binding.t) =
  b1.Perm_binding.spatial_scope = b2.Perm_binding.spatial_scope
  && b1.Perm_binding.proof_scope = b2.Perm_binding.proof_scope

(* Conjunction distributes over the check only for the Forall modality
   (∀(C₁∧C₂) = ∀C₁ ∧ ∀C₂) and for the history scope (one trace is
   tested).  ∃(C₁∧C₂) is *stronger* than ∃C₁ ∧ ∃C₂, so Exists
   program-scope constraints must not be merged. *)
let spatial_conjoinable (b : Perm_binding.t) =
  match (b.Perm_binding.spatial_scope, b.Perm_binding.spatial_modality) with
  | Perm_binding.Performed, _ -> true
  | (Perm_binding.Program | Perm_binding.Both), Srac.Program_sat.Forall -> true
  | (Perm_binding.Program | Perm_binding.Both), Srac.Program_sat.Exists ->
      false

let min_dur d1 d2 =
  match (d1, d2) with
  | None, d | d, None -> d
  | Some a, Some b -> Some (Temporal.Q.min a b)

let conjoin c1 c2 =
  match (c1, c2) with
  | None, c | c, None -> c
  | Some a, Some b -> Some (Srac.Simplify.simplify (Srac.Formula.And (a, b)))

let merge_group group =
  match group.members with
  | [] -> None
  | [ only ] -> Some only
  | first :: rest ->
      (* schemes only matter when a duration is present on that member;
         be conservative: require agreement whenever both sides carry
         durations, and agreement of modality/scope whenever both sides
         carry spatial constraints *)
      let compatible (b : Perm_binding.t) =
        (b.Perm_binding.dur = None
        || first.Perm_binding.dur = None
        || same_scheme first b)
        && (b.Perm_binding.spatial = None
           || first.Perm_binding.spatial = None
           || (same_modality first b && same_scope first b
              && spatial_conjoinable b))
      in
      (* every later member must also be compatible with the evolving
         merge; since scheme/modality/scope are inherited from the
         first member carrying them, pairwise-with-first plus
         pairwise-among-carriers is what we need.  Keep it simple and
         sound: require all members pairwise compatible. *)
      let rec pairwise = function
        | [] | [ _ ] -> true
        | b :: rest ->
            List.for_all
              (fun b' ->
                ((b : Perm_binding.t).Perm_binding.dur = None
                || (b' : Perm_binding.t).Perm_binding.dur = None
                || same_scheme b b')
                && (b.Perm_binding.spatial = None
                   || b'.Perm_binding.spatial = None
                   || (same_modality b b' && same_scope b b'
                      && spatial_conjoinable b)))
              rest
            && pairwise rest
      in
      if not (List.for_all compatible rest && pairwise group.members) then
        None
      else
        let merged =
          List.fold_left
            (fun (acc : Perm_binding.t) (b : Perm_binding.t) ->
              {
                acc with
                Perm_binding.spatial =
                  conjoin acc.Perm_binding.spatial b.Perm_binding.spatial;
                dur = min_dur acc.Perm_binding.dur b.Perm_binding.dur;
                scheme =
                  (if acc.Perm_binding.dur = None then b.Perm_binding.scheme
                   else acc.Perm_binding.scheme);
                spatial_modality =
                  (if acc.Perm_binding.spatial = None then
                     b.Perm_binding.spatial_modality
                   else acc.Perm_binding.spatial_modality);
                spatial_scope =
                  (if acc.Perm_binding.spatial = None then
                     b.Perm_binding.spatial_scope
                   else acc.Perm_binding.spatial_scope);
                proof_scope =
                  (if acc.Perm_binding.spatial = None then
                     b.Perm_binding.proof_scope
                   else acc.Perm_binding.proof_scope);
              })
            first rest
        in
        Some merged

let aggregate bindings =
  List.concat_map
    (fun group ->
      match merge_group group with
      | Some merged -> [ merged ]
      | None -> group.members)
    (classify bindings)

let stats bindings =
  (List.length (classify bindings), List.length (aggregate bindings))
