type spatial_scope = Program | Performed | Both
type proof_scope = Own | Team

type t = {
  perm : Rbac.Perm.t;
  spatial : Srac.Formula.t option;
  spatial_modality : Srac.Program_sat.modality;
  spatial_scope : spatial_scope;
  proof_scope : proof_scope;
  dur : Temporal.Q.t option;
  scheme : Temporal.Validity.scheme;
}

let make ?spatial ?(spatial_modality = Srac.Program_sat.Exists)
    ?(spatial_scope = Program) ?(proof_scope = Own) ?dur
    ?(scheme = Temporal.Validity.Whole_journey) perm =
  { perm; spatial; spatial_modality; spatial_scope; proof_scope; dur; scheme }

let applies_to binding (a : Sral.Access.t) =
  Rbac.Perm.matches binding.perm
    ~operation:(Sral.Access.operation_name a.op)
    ~target:(a.resource ^ "@" ^ a.server)

let key binding = Rbac.Perm.to_string binding.perm

let pp ppf b =
  Format.fprintf ppf "@[<h>bind %a" Rbac.Perm.pp b.perm;
  (match b.spatial with
  | Some c ->
      let modality =
        match b.spatial_modality with
        | Srac.Program_sat.Exists -> "exists"
        | Srac.Program_sat.Forall -> "forall"
      in
      Format.fprintf ppf " spatial(%s) %a" modality Srac.Formula.pp c
  | None -> ());
  (match b.dur with
  | Some d ->
      Format.fprintf ppf " dur %a (%a)" Temporal.Q.pp d
        Temporal.Validity.pp_scheme b.scheme
  | None -> ());
  Format.fprintf ppf "@]"
