(** Static policy analysis ("lint") — what a security officer wants to
    know about a policy file before deploying it to the coalition.

    All checks are conservative: a reported finding is a real defect
    or dead weight; silence is not a proof of health. *)

type finding =
  | Unsatisfiable_spatial of string
      (** the binding's constraint simplifies to [false]: the
          permission can never be granted *)
  | Vacuous_spatial of string
      (** the constraint simplifies to [true]: the binding's spatial
          clause is dead weight (its temporal clause may still matter) *)
  | Dead_binding of string
      (** no role is granted any permission overlapping the binding's
          pattern: the binding can never apply *)
  | Role_without_permissions of string
      (** the role grants nothing, directly or by inheritance *)
  | Role_unassigned of string
      (** no user is assigned the role (directly or via a senior) *)
  | Zero_duration of string
      (** the binding's validity duration is 0: permanently expired *)

val check : Policy_lang.t -> finding list
(** Findings in a stable order (binding findings first, in declaration
    order; then role findings alphabetically). *)

val pp_finding : Format.formatter -> finding -> unit
val to_string : finding list -> string
