(** Static policy analysis ("lint") — what a security officer wants to
    know about a policy file before deploying it to the coalition.

    All checks are conservative: a reported finding is a real defect
    or dead weight; silence is not a proof of health.  Binding-level
    findings carry the binding's 0-based declaration [index] in the
    policy file alongside its permission key, so two bindings on the
    same permission stay distinguishable.

    Spatial satisfiability and vacuity are decided {e semantically}
    through {!Srac.Decide} (DFA emptiness/universality on the closure
    alphabet), not by syntactic simplification; the whole-policy
    analyzer ([stacc analyze], [lib/analysis]) builds its
    cross-binding and world-dependent findings on the same engine. *)

type finding =
  | Unsatisfiable_spatial of { index : int; binding : string }
      (** the binding's constraint language is empty: the permission
          can never be granted *)
  | Vacuous_spatial of { index : int; binding : string }
      (** the constraint language is universal: the binding's spatial
          clause is dead weight (its temporal clause may still matter) *)
  | Dead_binding of { index : int; binding : string }
      (** no role is granted any permission overlapping the binding's
          pattern: the binding can never apply *)
  | Role_without_permissions of string
      (** the role grants nothing, directly or by inheritance *)
  | Role_unassigned of string
      (** no user is assigned the role (directly or via a senior) *)
  | Zero_duration of { index : int; binding : string }
      (** the binding's validity duration is 0: permanently expired *)

val check : Policy_lang.t -> finding list
(** Findings in a stable order (binding findings first, in declaration
    order; then role findings alphabetically). *)

val pp_finding : Format.formatter -> finding -> unit
val to_string : finding list -> string
