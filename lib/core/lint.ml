type finding =
  | Unsatisfiable_spatial of string
  | Vacuous_spatial of string
  | Dead_binding of string
  | Role_without_permissions of string
  | Role_unassigned of string
  | Zero_duration of string

let binding_findings policy (b : Perm_binding.t) =
  let key = Perm_binding.key b in
  let spatial =
    match b.Perm_binding.spatial with
    | None -> []
    | Some c ->
        if Srac.Simplify.is_trivially_false c then [ Unsatisfiable_spatial key ]
        else if Srac.Simplify.is_trivially_true c then [ Vacuous_spatial key ]
        else []
  in
  let dead =
    let granted_somewhere =
      List.exists
        (fun role ->
          List.exists
            (fun perm -> Rbac.Perm.overlaps perm b.Perm_binding.perm)
            (Rbac.Policy.role_permissions policy role))
        (Rbac.Policy.roles policy)
    in
    if granted_somewhere then [] else [ Dead_binding key ]
  in
  let zero =
    match b.Perm_binding.dur with
    | Some d when Temporal.Q.sign d = 0 -> [ Zero_duration key ]
    | _ -> []
  in
  spatial @ dead @ zero

let role_findings policy =
  let roles = Rbac.Policy.roles policy in
  let users = Rbac.Policy.users policy in
  List.concat_map
    (fun role ->
      let no_perms =
        if Rbac.Policy.role_permissions policy role = [] then
          [ Role_without_permissions role ]
        else []
      in
      let unassigned =
        let held_by_someone =
          List.exists
            (fun user ->
              List.mem role (Rbac.Policy.authorized_roles policy user))
            users
        in
        if held_by_someone then [] else [ Role_unassigned role ]
      in
      no_perms @ unassigned)
    roles

let check (parsed : Policy_lang.t) =
  List.concat_map
    (binding_findings parsed.Policy_lang.policy)
    parsed.Policy_lang.bindings
  @ role_findings parsed.Policy_lang.policy

let pp_finding ppf = function
  | Unsatisfiable_spatial b ->
      Format.fprintf ppf
        "binding %s: spatial constraint is unsatisfiable — the permission \
         can never be granted"
        b
  | Vacuous_spatial b ->
      Format.fprintf ppf
        "binding %s: spatial constraint is trivially true — dead weight" b
  | Dead_binding b ->
      Format.fprintf ppf
        "binding %s: no role grants a matching permission — binding never \
         applies"
        b
  | Role_without_permissions r ->
      Format.fprintf ppf "role %s: grants no permissions" r
  | Role_unassigned r -> Format.fprintf ppf "role %s: assigned to no user" r
  | Zero_duration b ->
      Format.fprintf ppf "binding %s: validity duration is zero — permanently \
                          expired" b

let to_string findings =
  String.concat "\n"
    (List.map (fun f -> Format.asprintf "%a" pp_finding f) findings)
