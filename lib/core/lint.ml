type finding =
  | Unsatisfiable_spatial of { index : int; binding : string }
  | Vacuous_spatial of { index : int; binding : string }
  | Dead_binding of { index : int; binding : string }
  | Role_without_permissions of string
  | Role_unassigned of string
  | Zero_duration of { index : int; binding : string }

let binding_findings policy index (b : Perm_binding.t) =
  let binding = Perm_binding.key b in
  let spatial =
    match b.Perm_binding.spatial with
    | None -> []
    | Some c ->
        (* semantic, not syntactic: decided on the constraint's closure
           alphabet (Srac.Decide), so e.g. [#(2,1,σ)] or
           [done(a) && !done(a)] is caught, not just a literal [false] *)
        if not (Srac.Decide.satisfiable c) then
          [ Unsatisfiable_spatial { index; binding } ]
        else if Srac.Decide.valid c then [ Vacuous_spatial { index; binding } ]
        else []
  in
  let dead =
    let granted_somewhere =
      List.exists
        (fun role ->
          List.exists
            (fun perm -> Rbac.Perm.overlaps perm b.Perm_binding.perm)
            (Rbac.Policy.role_permissions policy role))
        (Rbac.Policy.roles policy)
    in
    if granted_somewhere then [] else [ Dead_binding { index; binding } ]
  in
  let zero =
    match b.Perm_binding.dur with
    | Some d when Temporal.Q.sign d = 0 ->
        [ Zero_duration { index; binding } ]
    | _ -> []
  in
  spatial @ dead @ zero

let role_findings policy =
  let roles = Rbac.Policy.roles policy in
  let users = Rbac.Policy.users policy in
  List.concat_map
    (fun role ->
      let no_perms =
        if Rbac.Policy.role_permissions policy role = [] then
          [ Role_without_permissions role ]
        else []
      in
      let unassigned =
        let held_by_someone =
          List.exists
            (fun user ->
              List.mem role (Rbac.Policy.authorized_roles policy user))
            users
        in
        if held_by_someone then [] else [ Role_unassigned role ]
      in
      no_perms @ unassigned)
    roles

let check (parsed : Policy_lang.t) =
  List.concat
    (List.mapi
       (binding_findings parsed.Policy_lang.policy)
       parsed.Policy_lang.bindings)
  @ role_findings parsed.Policy_lang.policy

let pp_finding ppf = function
  | Unsatisfiable_spatial { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): spatial constraint is unsatisfiable — the \
         permission can never be granted"
        index binding
  | Vacuous_spatial { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): spatial constraint is trivially true — dead weight"
        index binding
  | Dead_binding { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): no role grants a matching permission — binding \
         never applies"
        index binding
  | Role_without_permissions r ->
      Format.fprintf ppf "role %s: grants no permissions" r
  | Role_unassigned r -> Format.fprintf ppf "role %s: assigned to no user" r
  | Zero_duration { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): validity duration is zero — permanently expired"
        index binding

let to_string findings =
  String.concat "\n"
    (List.map (fun f -> Format.asprintf "%a" pp_finding f) findings)
