(** Decision outcomes, factored out of {!Decision} so lower layers
    (notably {!Monitor}'s verdict cache) can store them without
    depending on the decision procedure itself.  {!Decision} re-exports
    these constructors under its historical names ([Decision.reason],
    [Decision.verdict]); new code may use either spelling. *)

type reason =
  | Rbac_denied of string
  | Spatial_violation of { binding : string; detail : string }
  | Temporal_expired of { binding : string; spent : Temporal.Q.t }
  | Not_active of string
      (** the permission is not in the active state at decision time
          (Eq. 3.1's conjunction failed earlier on this timeline) *)
  | Not_arrived  (** no arrival recorded — object not on any server *)

type t = Granted | Denied of reason

val is_granted : t -> bool
val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> t -> unit
