(** Decision outcomes, factored out of {!Decision} so lower layers
    (notably {!Monitor}'s verdict cache) can store them without
    depending on the decision procedure itself.  The type now lives in
    {!Obs.Verdict} — the observability layer carries verdicts inside
    {!Obs.Trace.Decision} events, and sits below this library — and is
    re-exported here unchanged.  {!Decision} re-exports these
    constructors under its historical names ([Decision.reason],
    [Decision.verdict]); all three spellings are interchangeable. *)

type reason = Obs.Verdict.reason =
  | Rbac_denied of string
  | Spatial_violation of { binding : string; detail : string }
  | Temporal_expired of { binding : string; spent : Temporal.Q.t }
  | Not_active of string
      (** the permission is not in the active state at decision time
          (Eq. 3.1's conjunction failed earlier on this timeline) *)
  | Not_arrived  (** no arrival recorded — object not on any server *)
  | Server_unavailable of string
      (** fail-closed denial: the target server is crashed or its
          policy replica is stale (produced by the Naplet layer's
          security manager, never by the core decision procedure) *)

type t = Obs.Verdict.t = Granted | Denied of reason

val is_granted : t -> bool
val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> t -> unit
