module Q = Temporal.Q

type decision_stamp = {
  location : int;
  activation : int;
  history : int;
  session : int;
  bindings : int;
  team_version : int;
  team_history : int;
}

type cached_decision = {
  stamp : decision_stamp;
  access : Sral.Access.t;
  program : Sral.Ast.t;
  uses_history : bool;
  uses_team : bool;
  pre_temporal : (unit, Verdict.reason) result;
}

type t = {
  object_id : string;
  proofs : Srac.Proof.store;
  mutable visits : (string * Q.t) list;  (* reverse order *)
  activations : (string, (Q.t * bool) list ref) Hashtbl.t;
      (* per key, reverse-order change list *)
  spatial_memo : (string, Sral.Ast.t * (unit, string) result) Hashtbl.t;
  decision_memo : (string, cached_decision) Hashtbl.t;
  residuals : Residual.store;
  mutable clock : Q.t;
  mutable location_epoch : int;
  mutable activation_epoch : int;
  mutable history_epoch : int;
}

let create ~object_id =
  {
    object_id;
    proofs = Srac.Proof.create ();
    visits = [];
    activations = Hashtbl.create 8;
    spatial_memo = Hashtbl.create 8;
    decision_memo = Hashtbl.create 8;
    residuals = Residual.create ();
    clock = Q.zero;
    location_epoch = 0;
    activation_epoch = 0;
    history_epoch = 0;
  }

let object_id m = m.object_id
let proofs m = m.proofs
let location_epoch m = m.location_epoch
let activation_epoch m = m.activation_epoch
let history_epoch m = m.history_epoch

let advance m time =
  if Q.lt time m.clock then
    invalid_arg
      (Format.asprintf "Monitor: time went backwards (%a < %a)" Q.pp time Q.pp
         m.clock)
  else m.clock <- time

let record_arrival m ~server ~time =
  advance m time;
  m.location_epoch <- m.location_epoch + 1;
  m.visits <- (server, time) :: m.visits

let arrivals m = List.rev_map snd m.visits
let arrived m = m.visits <> []
let itinerary m = List.rev m.visits
let current_server m = match m.visits with [] -> None | (s, _) :: _ -> Some s

let record_access m a ~time =
  advance m time;
  m.history_epoch <- m.history_epoch + 1;
  Srac.Proof.record m.proofs a ~time

let performed m = Srac.Proof.performed_trace m.proofs

let changes_ref m key =
  match Hashtbl.find_opt m.activations key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add m.activations key r;
      r

let set_active_cell m (r : Residual.cell) ~time state =
  advance m time;
  let current = match !r with [] -> false | (_, v) :: _ -> v in
  if Bool.equal current state then ()
  else begin
    m.activation_epoch <- m.activation_epoch + 1;
    r := (time, state) :: !r
  end

let set_active m ~key ~time state = set_active_cell m (changes_ref m key) ~time state

let activation_cell m ~key = changes_ref m key
let residuals m = m.residuals

let activation_fn m ~key =
  match Hashtbl.find_opt m.activations key with
  | None -> Temporal.Step_fn.const false
  | Some r -> Temporal.Step_fn.of_changes ~init:false (List.rev !r)

let is_active_at m ~key t = Temporal.Step_fn.value_at (activation_fn m ~key) t

let memo_spatial m ~key ~program compute =
  match Hashtbl.find_opt m.spatial_memo key with
  | Some (cached_program, value) when Sral.Ast.equal cached_program program ->
      value
  | _ ->
      let value = compute () in
      Hashtbl.replace m.spatial_memo key (program, value);
      value

let find_decision m ~key = Hashtbl.find_opt m.decision_memo key
let store_decision m ~key entry = Hashtbl.replace m.decision_memo key entry

let now m = m.clock

let pp ppf m =
  Format.fprintf ppf "@[<v>monitor %s (clock %a)@," m.object_id Q.pp m.clock;
  List.iter
    (fun (s, t) -> Format.fprintf ppf "  arrived %s at %a@," s Q.pp t)
    (itinerary m);
  Format.fprintf ppf "  performed %a@," Sral.Trace.pp (performed m);
  Format.fprintf ppf "@]"
