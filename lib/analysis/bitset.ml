type t = Bytes.t

let create nbits = Bytes.make ((nbits + 7) / 8) '\000'
let size_bytes = Bytes.length
let copy = Bytes.copy

let get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let clear b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get b j) land lnot (1 lsl (i land 7))))

let equal = Bytes.equal
let compare = Bytes.compare
let hash (b : t) = Hashtbl.hash b
let key b = Bytes.to_string b
let prefix_key b ~bytes = Bytes.sub_string b 0 bytes

let subset_bytes a b ~pos ~len =
  let rec go i =
    i >= pos + len
    || let x = Char.code (Bytes.get a i) in
       x land Char.code (Bytes.get b i) = x && go (i + 1)
  in
  go pos

let equal_bytes a b ~pos ~len =
  let rec go i =
    i >= pos + len || (Bytes.get a i = Bytes.get b i && go (i + 1))
  in
  go pos

let popcount_byte = Array.init 256 (fun b ->
    let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
    go b 0)

let cardinal b =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte.(Char.code c)) b;
  !n
