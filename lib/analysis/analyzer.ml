module Q = Temporal.Q
module Dfa = Automata.Dfa
module Symbol = Automata.Symbol
module Pb = Coordinated.Perm_binding

type finding =
  | Unsatisfiable of { index : int; binding : string }
  | Vacuous of { index : int; binding : string }
  | Shadowed of { index : int; binding : string; by_index : int; by : string }
  | Unexercisable of { index : int; binding : string }
  | Temporal_excluded of {
      index : int;
      binding : string;
      needed : Q.t;
      budget : Q.t;
    }

type report = {
  findings : finding list;
  bindings : int;
  alphabet : int;
  truncated : bool;
}

let finding_index = function
  | Unsatisfiable { index; _ }
  | Vacuous { index; _ }
  | Shadowed { index; _ }
  | Unexercisable { index; _ }
  | Temporal_excluded { index; _ } ->
      index

let finding_binding = function
  | Unsatisfiable { binding; _ }
  | Vacuous { binding; _ }
  | Shadowed { binding; _ }
  | Unexercisable { binding; _ }
  | Temporal_excluded { binding; _ } ->
      binding

(* Runtime activation of a Performed-scope binding is restricted-
   alphabet prefix feasibility: extensions range over the constraint's
   mentioned accesses plus the history.  Flagging a binding as
   temporally excluded needs activation to hold continuously along any
   satisfying walk, which is exact when every universe access a Card
   selector matches is also mentioned by an atom/ordering of the
   constraint — then an access outside the mentioned set is irrelevant
   to the constraint and deleting it from an extension preserves
   satisfaction. *)
let selectors_covered ~universe c =
  let mentioned = Srac.Formula.accesses c in
  let rec go = function
    | Srac.Formula.True | Srac.Formula.False | Srac.Formula.Atom _
    | Srac.Formula.Ordered _ ->
        true
    | Srac.Formula.Card { sel; _ } ->
        List.for_all
          (fun a ->
            (not (Srac.Selector.matches sel a))
            || List.exists (Sral.Access.equal a) mentioned)
          universe
    | Srac.Formula.And (c1, c2) | Srac.Formula.Or (c1, c2) -> go c1 && go c2
    | Srac.Formula.Not c -> go c
  in
  go c

let accesses_subset c1 c2 =
  let a2 = Srac.Formula.accesses c2 in
  List.for_all
    (fun a -> List.exists (Sral.Access.equal a) a2)
    (Srac.Formula.accesses c1)

(* Σ*·P: words whose last symbol is covered by the binding's pattern. *)
let pattern_dfa ~table b =
  let syms = Symbol.alphabet table in
  let k = List.length syms in
  let next = Array.make_matrix 2 k 0 in
  List.iter
    (fun sym ->
      if Pb.applies_to b (Symbol.access table sym) then (
        next.(0).(sym) <- 1;
        next.(1).(sym) <- 1))
    syms;
  Dfa.of_tables ~alphabet:syms ~start:0 ~finals:[| false; true |] ~next

let syntactic_only (bindings : Pb.t array) ~alphabet =
  let findings =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun index b ->
              match b.Pb.spatial with
              | None -> []
              | Some c ->
                  if not (Srac.Decide.satisfiable c) then
                    [ Unsatisfiable { index; binding = Pb.key b } ]
                  else if Srac.Decide.valid c then
                    [ Vacuous { index; binding = Pb.key b } ]
                  else [])
            bindings))
  in
  {
    findings;
    bindings = Array.length bindings;
    alphabet;
    truncated = true;
  }

let analyze ?world (parsed : Coordinated.Policy_lang.t) =
  let bindings = Array.of_list parsed.Coordinated.Policy_lang.bindings in
  let formulas =
    List.filter_map (fun b -> b.Pb.spatial) (Array.to_list bindings)
  in
  let base = Srac.Decide.closure_alphabet formulas in
  let alphabet_accs =
    match world with
    | None -> base
    | Some w ->
        List.sort_uniq Sral.Access.compare (base @ w.World.universe)
  in
  let alphabet = List.length alphabet_accs in
  if alphabet > Srac.Decide.max_closure then syntactic_only bindings ~alphabet
  else
    let table = Symbol.of_accesses alphabet_accs in
    let syms = Symbol.alphabet table in
    let dfa =
      Array.map
        (fun b ->
          match b.Pb.spatial with
          | None -> Dfa.universal_lang ~alphabet:syms
          | Some c -> Srac.Compile.dfa ~table ~proofs:Srac.Proof.always c)
        bindings
    in
    let unsat =
      Array.mapi (fun i b -> b.Pb.spatial <> None && Dfa.is_empty dfa.(i)) bindings
    in
    let vacuous i =
      bindings.(i).Pb.spatial <> None && Dfa.is_empty (Dfa.complement dfa.(i))
    in
    let n = Array.length bindings in
    (* Activation state at runtime is keyed by the binding's permission
       string (Monitor.set_active), so bindings sharing one permission
       alias a single monitor slot whose value is the *last* same-key
       binding's activation at each refresh.  Removing such a loser
       rewires the slot for every surviving same-key binding, which the
       language-inclusion reasoning cannot see — that is only sound in
       the cases slot_safe admits. *)
    let key_of i = Pb.key bindings.(i) in
    (* the single concrete access a wildcard-free pattern denotes *)
    let pattern_access i =
      let p = bindings.(i).Pb.perm in
      let op = p.Rbac.Perm.operation and target = p.Rbac.Perm.target in
      if String.contains op '*' || String.contains target '*' then None
      else
        match String.index_opt target '@' with
        | None -> None
        | Some at ->
            Some
              (Sral.Access.make
                 ~op:(Sral.Access.operation_of_name op)
                 ~resource:(String.sub target 0 at)
                 ~server:
                   (String.sub target (at + 1)
                      (String.length target - at - 1)))
    in
    (* does a decision-time spatial pass on the key's single access
       imply the binding's activation?  (Performed-scope activation is
       prefix feasibility over mentioned accesses ∪ history: the access
       itself must be a legal extension symbol.) *)
    let activation_transparent i =
      match bindings.(i).Pb.spatial_scope with
      | Pb.Program -> true
      | Pb.Performed | Pb.Both -> (
          match bindings.(i).Pb.spatial with
          | None -> true
          | Some c -> (
              match pattern_access i with
              | None -> false
              | Some a ->
                  List.exists (Sral.Access.equal a)
                    (Srac.Formula.accesses c)))
    in
    let slot_safe wi li =
      let group = ref [] in
      for i = n - 1 downto 0 do
        if i <> li && String.equal (key_of i) (key_of li) then
          group := i :: !group
      done;
      match !group with
      | [] -> true (* private slot: removal deletes it outright *)
      | group when List.exists (fun i -> i > li) group ->
          (* a later same-key binding overwrites the slot at every
             refresh either way: the slot's history is unchanged *)
          true
      | group ->
          (* [l] is the slot's last writer: after removal the slot
             holds the previous writer's activation.  Sound when the
             whole group shares the concrete single-access pattern with
             the winner, nobody accrues a duration against the slot,
             and each survivor's activation is implied by its own
             decision-time spatial pass. *)
          String.equal (key_of wi) (key_of li)
          && pattern_access li <> None
          && List.for_all (fun i -> bindings.(i).Pb.dur = None) group
          && List.for_all activation_transparent group
    in
    (* [shadows w l]: winner [w] grants everywhere loser [l] does, so
       removing [l] changes no outcome.  [l] must carry no duration
       (language inclusion makes [l]'s activation at least [w]'s, but a
       duration budget would then also burn at least as fast, and [l]
       could expire where [w] still grants). *)
    let shadows wi li =
      wi <> li
      && (not unsat.(wi))
      && bindings.(li).Pb.dur = None
      && Rbac.Perm.subsumes bindings.(wi).Pb.perm bindings.(li).Pb.perm
      && bindings.(wi).Pb.spatial_scope = bindings.(li).Pb.spatial_scope
      && bindings.(wi).Pb.spatial_modality = bindings.(li).Pb.spatial_modality
      && bindings.(wi).Pb.proof_scope = bindings.(li).Pb.proof_scope
      && Dfa.subset dfa.(wi) dfa.(li)
      && slot_safe wi li
      &&
      (* Performed-scope activation is restricted-alphabet feasibility:
         the loser's alphabet must not lack extension accesses the
         winner's feasibility witness uses *)
      match bindings.(li).Pb.spatial_scope with
      | Pb.Performed -> (
          match (bindings.(wi).Pb.spatial, bindings.(li).Pb.spatial) with
          | None, _ | _, None -> true
          | Some cw, Some cl -> accesses_subset cw cl)
      | Pb.Program | Pb.Both -> true
    in
    let shadow_winner li =
      let rec first wi =
        if wi >= n then None
        else if shadows wi li && (wi < li || not (shadows li wi)) then Some wi
        else first (wi + 1)
      in
      first 0
    in
    let itin =
      lazy
        (match world with
        | Some w -> World.itinerary_dfa ~table w
        | None -> assert false)
    in
    let world_findings index b =
      match world with
      | None -> []
      | Some w ->
          let itin = Lazy.force itin in
          let prod_ip = Dfa.inter itin (pattern_dfa ~table b) in
          let full = lazy (Dfa.inter dfa.(index) prod_ip) in
          let unexercisable =
            match b.Pb.spatial_scope with
            | Pb.Performed | Pb.Both -> Dfa.is_empty (Lazy.force full)
            | Pb.Program ->
                Dfa.is_empty prod_ip
                || b.Pb.spatial <> None
                   && b.Pb.spatial_modality = Srac.Program_sat.Exists
                   && Dfa.is_empty (Dfa.inter dfa.(index) itin)
          in
          if unexercisable then
            [ Unexercisable { index; binding = Pb.key b } ]
          else
            let grant_lang =
              (* the language whose shortest word bounds the earliest
                 grant from below: Program scope grants at the first
                 covered performable access (the check constrains the
                 program, not the walked prefix); history scopes need
                 the walk itself to satisfy the constraint *)
              match b.Pb.spatial_scope with
              | Pb.Program -> Some prod_ip
              | Pb.Both -> Some (Lazy.force full)
              | Pb.Performed ->
                  let exact =
                    match b.Pb.spatial with
                    | None -> true
                    | Some c -> selectors_covered ~universe:w.World.universe c
                  in
                  if exact then Some (Lazy.force full) else None
            in
            let temporal =
              match (b.Pb.dur, b.Pb.scheme, grant_lang) with
              | Some budget, Temporal.Validity.Whole_journey, Some lang -> (
                  match Dfa.shortest_witness lang with
                  | None -> []
                  | Some word ->
                      let needed =
                        Q.mul (Q.of_int (List.length word)) w.World.step
                      in
                      if Q.ge needed budget then
                        [
                          Temporal_excluded
                            { index; binding = Pb.key b; needed; budget };
                        ]
                      else [])
              | _ -> []
            in
            temporal
    in
    let per_binding index b =
      if unsat.(index) then [ Unsatisfiable { index; binding = Pb.key b } ]
      else
        let vac =
          if vacuous index then [ Vacuous { index; binding = Pb.key b } ]
          else []
        in
        let shadowed =
          match shadow_winner index with
          | Some wi ->
              [
                Shadowed
                  {
                    index;
                    binding = Pb.key b;
                    by_index = wi;
                    by = Pb.key bindings.(wi);
                  };
              ]
          | None -> []
        in
        vac @ shadowed @ world_findings index b
    in
    let findings =
      List.concat (Array.to_list (Array.mapi per_binding bindings))
    in
    { findings; bindings = n; alphabet; truncated = false }

let witnesses ~world (parsed : Coordinated.Policy_lang.t) =
  let bindings = Array.of_list parsed.Coordinated.Policy_lang.bindings in
  let formulas =
    List.filter_map (fun b -> b.Pb.spatial) (Array.to_list bindings)
  in
  let alphabet_accs =
    List.sort_uniq Sral.Access.compare
      (Srac.Decide.closure_alphabet formulas @ world.World.universe)
  in
  if List.length alphabet_accs > Srac.Decide.max_closure then []
  else
    let table = Symbol.of_accesses alphabet_accs in
    let itin = World.itinerary_dfa ~table world in
    List.filter_map
      (fun (index, b) ->
        let c_dfa =
          match b.Pb.spatial with
          | None -> Dfa.universal_lang ~alphabet:(Symbol.alphabet table)
          | Some c -> Srac.Compile.dfa ~table ~proofs:Srac.Proof.always c
        in
        let lang = Dfa.inter c_dfa (Dfa.inter itin (pattern_dfa ~table b)) in
        Option.map
          (fun word ->
            (index, Pb.key b, List.map (Symbol.access table) word))
          (Dfa.shortest_witness lang))
      (List.mapi (fun i b -> (i, b)) (Array.to_list bindings))
