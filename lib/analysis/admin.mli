(** Administrative safety: can this user {e ever} acquire this
    permission, quantifying over administrative actions?

    {!Safety.can_acquire} answers the safety question for one fixed
    deployment.  In a coalition, the deployment itself evolves:
    administrators assign and deassign roles, grant and revoke
    permissions, add separation-of-duty constraints, append bindings,
    and objects join and leave the coalition.  This module decides
    reachability of a leak over that {b administrative transition
    system} — the STACC analogue of NGAC safety analysis.

    {2 The transition system}

    An {!instance} fixes the base deployment (policy + bindings +
    world), the leak goal [(user, perm, server)], and a {!schedule}: a
    pool of administrative {!op}s the adversary may fire, a budget on
    how many fire in total, and the object's initial coalition
    membership.  Each op's precondition mirrors the real
    {!Rbac.Policy} API exactly — [Assign] is blocked by an active SSD
    constraint precisely when {!Rbac.Policy.assign_user} would raise
    [Ssd_violation], [Add_ssd] is blocked when
    {!Rbac.Policy.add_ssd} would reject it retroactively — so every
    reachable symbolic state corresponds to a deployment an
    administrator can actually produce (and witness replays never trip
    an exception).

    {2 The engine}

    States are packed {!Bitset}s over the interned (user×role,
    role×perm, pool-binding, pool-DSD, pool-SSD) universe plus a
    membership flag, each region byte-aligned.  A breadth-first
    worklist explores deployments; at every coalition-member state the
    leak goal is decided by {!Safety.can_acquire} as the {b leaf
    oracle}, memoized on the state's deployment fingerprint (the
    UA/PA/binding/DSD byte prefix — SSD constraints restrict admin ops
    but never decisions, so they are excluded from the fingerprint;
    this is sound because every {e reachable} state is SSD-consistent
    by construction).  Two prunings:

    - {b dominance}: a state revisited with no more remaining budget
      than before is not re-expanded;
    - {b antichain subsumption} (only on SoD-free instances — no SSD
      or DSD in the base or the pool): a state whose assignments and
      grants are pointwise included in an already-explored state with
      the same active bindings, no less membership and no less
      remaining budget is never expanded.  The restriction is
      essential: under SSD, extra assignments can {e block} a needed
      [Assign]; under DSD, extra assignments can block role
      activation; and unequal binding sets change which walks the leaf
      oracle considers — in all three cases pointwise inclusion stops
      being a simulation.

    A positive verdict carries the admin-op sequence {e and} the leaf
    witness walk, and is {e replayed} before being reported: the ops
    are applied through the real [Rbac.Policy] / {!Coordinated.System}
    API on a clone of the base (each emitting
    {!Obs.Trace.Policy_changed}), then the walk is driven through the
    mutated system to [Granted] — zero false positives by
    construction.  A negative verdict states the frontier invariant
    (every reachable deployment was explored and none leaks); bounded
    exhaustion is reported honestly as [Undetermined]. *)

(** One administrative action.  [Join]/[Leave] move the queried object
    in or out of the schedule's team; the other seven mutate the
    policy or the binding list. *)
type op =
  | Assign of string * string  (** user, role *)
  | Deassign of string * string
  | Grant of string * Rbac.Perm.t  (** role, permission *)
  | Revoke of string * Rbac.Perm.t
  | Add_ssd of Rbac.Sod.t
  | Add_dsd of Rbac.Sod.t
  | Add_binding of Coordinated.Perm_binding.t
  | Join
  | Leave

val op_to_string : op -> string
(** Render in the schedule line syntax ([assign u r], [grant r p],
    [ssd name r1 r2 max k], [bind perm clauses…], [join], [leave]) —
    the same string {!op_of_string} parses and
    {!Obs.Trace.Policy_changed} records. *)

val op_of_string : string -> op
(** @raise Invalid_argument on a malformed op line. *)

type schedule = {
  pool : op list;  (** ops the adversary may fire, in declaration order *)
  budget : int;  (** how many op firings in total *)
  team : string;  (** the team [Join] joins (default ["coalition"]) *)
  joined : bool;  (** initial coalition membership (default [true]) *)
}

val parse_schedule : string -> schedule
(** Line-oriented, [#] comments; directives [budget <n>],
    [team <name>], [joined true|false], every other non-blank line one
    {!op_of_string} op.  @raise Invalid_argument *)

val render_schedule : schedule -> string
(** Inverse of {!parse_schedule} up to comments and blank lines. *)

type instance = {
  base : Coordinated.Policy_lang.t;
  world : World.t;
  schedule : schedule;
  user : string;
  perm : Rbac.Perm.t;
  server : string;
}

val make :
  base:Coordinated.Policy_lang.t ->
  world:World.t ->
  schedule:schedule ->
  user:string ->
  perm:Rbac.Perm.t ->
  server:string ->
  instance
(** Validated construction.
    @raise Invalid_argument when the queried user, an op's user, or an
    op's role is not declared in the base policy; when the queried
    permission's operation or resource is a wildcard; or when the
    budget is negative. *)

type stats = {
  expanded : int;  (** states popped and goal-checked *)
  generated : int;  (** successor states produced *)
  leaf_calls : int;  (** leaf-oracle materializations (memo misses) *)
  leaf_hits : int;  (** leaf-oracle memo hits *)
  visited_hits : int;  (** successors pruned by exact-state dominance *)
  antichain_hits : int;  (** successors pruned by antichain subsumption *)
  antichain : bool;  (** was antichain pruning enabled (SoD-free)? *)
}

type verdict =
  | Leak of { ops : op list; witness : Safety.witness }
      (** [ops] applied in order to the base deployment, then the
          witness walk, ends in a granted access — replayed through
          {!Coordinated.System} before being reported *)
  | Safe of { explored : int }
      (** frontier invariant: all [explored] deployments reachable
          within the budget were checked and none leaks *)
  | Undetermined of { reason : string; explored : int }

type outcome = { verdict : verdict; stats : stats }

val check : ?max_states:int -> instance -> outcome
(** Decide leak reachability.  [max_states] (default [200_000]) bounds
    exploration; exhausting it yields [Undetermined] naming the
    bound. *)

val brute_force : ?max_nodes:int -> instance -> outcome
(** Explicit enumeration of every op {e sequence} of length ≤ budget
    (no state dedup, no pruning) with the same leaf rule — the
    small-model oracle the differential suite compares {!check}
    against, and the baseline E21 measures against.  [max_nodes]
    (default [2_000_000]) turns runaway enumerations into
    [Undetermined]. *)

val replay_witness :
  ?bus:Obs.Bus.t ->
  instance ->
  op list ->
  trace:Sral.Trace.t ->
  Coordinated.Decision.verdict
(** Replay an admin-op sequence through the real API on a clone of the
    base deployment — each op emits {!Obs.Trace.Policy_changed} on the
    system bus (pass [bus] to observe them) — then drive the walk via
    {!Safety.replay_through} and return the final access's verdict.
    [Leave] moves the object to a fresh singleton team (the system has
    no leave primitive; an empty team is observationally equal to no
    team).  @raise Invalid_argument if an op's precondition fails,
    which cannot happen for sequences produced by {!check}. *)

val pp_op : Format.formatter -> op -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_outcome : Format.formatter -> outcome -> unit
