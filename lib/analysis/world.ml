module Q = Temporal.Q

type t = {
  servers : string list;
  links : Digraph.t;
  entries : string list;
  universe : Sral.Access.t list;
  step : Q.t;
}

(* Reflexive-transitive closure, precomputed per world creation would
   need a cache; worlds are small, so we just query the digraph. *)
let reaches t s s' =
  String.equal s s' || List.mem s' (Digraph.reachable_from t.links s)

let make ?links ?entries ?(step = Q.of_int 1) ~servers ~universe () =
  let servers = List.sort_uniq String.compare servers in
  if servers = [] then invalid_arg "World.make: no servers";
  if Q.sign step <= 0 then invalid_arg "World.make: step must be positive";
  let known s = List.mem s servers in
  let g = Digraph.create () in
  List.iter (Digraph.add_vertex g) servers;
  (match links with
  | None ->
      (* complete topology: every migration allowed *)
      List.iter
        (fun s -> List.iter (fun s' -> Digraph.add_edge g s s') servers)
        servers
  | Some edges ->
      List.iter
        (fun (s, s') ->
          if not (known s && known s') then
            invalid_arg
              (Printf.sprintf "World.make: link %s->%s outside servers" s s');
          Digraph.add_edge g s s')
        edges);
  let entries =
    match entries with
    | None -> servers
    | Some es ->
        List.iter
          (fun e ->
            if not (known e) then
              invalid_arg (Printf.sprintf "World.make: entry %s unknown" e))
          es;
        List.sort_uniq String.compare es
  in
  if entries = [] then invalid_arg "World.make: no entries";
  let universe = List.sort_uniq Sral.Access.compare universe in
  { servers; links = g; entries; universe; step }

let of_policy ?links ?entries ?step (parsed : Coordinated.Policy_lang.t) =
  let policy = parsed.Coordinated.Policy_lang.policy in
  let bindings = parsed.Coordinated.Policy_lang.bindings in
  let grants =
    List.concat_map (Rbac.Policy.role_permissions policy) (Rbac.Policy.roles policy)
  in
  let patterns =
    List.map (fun b -> b.Coordinated.Perm_binding.perm) bindings
  in
  let concrete_server (p : Rbac.Perm.t) =
    match Rbac.Perm.split_target p.target with
    | _, Some s when s <> "*" -> Some s
    | _ -> None
  in
  let servers = List.filter_map concrete_server (grants @ patterns) in
  let servers = List.sort_uniq String.compare servers in
  if servers = [] then
    invalid_arg "World.of_policy: no concrete server in any grant or binding";
  let concrete_access (p : Rbac.Perm.t) =
    match Rbac.Perm.split_target p.target with
    | r, Some s when p.operation <> "*" && r <> "*" && s <> "*" ->
        Some
          (Sral.Access.make
             ~op:(Sral.Access.operation_of_name p.operation)
             ~resource:r ~server:s)
    | _ -> None
  in
  let spelled = List.filter_map concrete_access (grants @ patterns) in
  let mentioned =
    List.concat_map
      (fun (b : Coordinated.Perm_binding.t) ->
        match b.spatial with
        | None -> []
        | Some c ->
            List.filter
              (fun (a : Sral.Access.t) -> List.mem a.server servers)
              (Srac.Formula.accesses c))
      bindings
  in
  make ?links ?entries ?step ~servers ~universe:(spelled @ mentioned) ()

let entry_for t s = List.find_opt (fun e -> reaches t e s) t.entries

let performable t trace =
  let rec go current = function
    | [] -> true
    | (a : Sral.Access.t) :: rest ->
        (match current with
        | None -> entry_for t a.server <> None
        | Some s -> reaches t s a.server)
        && go (Some a.server) rest
  in
  go None trace

let itinerary_dfa ~table t =
  let module Symbol = Automata.Symbol in
  let n = List.length t.servers in
  let idx_of s =
    let rec go i = function
      | [] -> None
      | s' :: rest -> if String.equal s s' then Some i else go (i + 1) rest
    in
    go 0 t.servers
  in
  (* state 0 = not yet arrived; 1..n = standing at server i-1; n+1 = sink *)
  let sink = n + 1 in
  let alphabet = Symbol.alphabet table in
  let k = List.length alphabet in
  let next = Array.make_matrix (n + 2) k sink in
  (* only universe accesses are performable: anything else dead-ends,
     keeping product languages exact over the world's real traces *)
  let target sym =
    let a = Symbol.access table sym in
    if List.exists (Sral.Access.equal a) t.universe then
      idx_of a.Sral.Access.server
    else None
  in
  List.iter
    (fun sym ->
      (match target sym with
      | Some j when entry_for t (List.nth t.servers j) <> None ->
          next.(0).(sym) <- j + 1
      | _ -> ());
      for i = 0 to n - 1 do
        match target sym with
        | Some j when reaches t (List.nth t.servers i) (List.nth t.servers j)
          ->
            next.(i + 1).(sym) <- j + 1
        | _ -> ()
      done)
    alphabet;
  let finals = Array.make (n + 2) true in
  finals.(sink) <- false;
  Automata.Dfa.of_tables ~alphabet ~start:0 ~finals ~next

let walks t ~max_len =
  let step_ok current (a : Sral.Access.t) =
    match current with
    | None -> entry_for t a.server <> None
    | Some s -> reaches t s a.server
  in
  let rec extend len current prefix acc =
    if len = 0 then acc
    else
      List.fold_left
        (fun acc a ->
          if step_ok current a then
            let w = prefix @ [ a ] in
            extend (len - 1) (Some a.Sral.Access.server) w (w :: acc)
          else acc)
        acc t.universe
  in
  let by_len w1 w2 =
    let c = compare (List.length w1) (List.length w2) in
    if c <> 0 then c else compare w1 w2
  in
  List.sort by_len (extend max_len None [] [])

let pp ppf t =
  Format.fprintf ppf
    "@[<v>world: %d server(s), %d link(s), %d entr%s, %d access(es), step %a@]"
    (List.length t.servers) (Digraph.edge_count t.links)
    (List.length t.entries)
    (if List.length t.entries = 1 then "y" else "ies")
    (List.length t.universe) Q.pp t.step
