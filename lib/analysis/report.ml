module Q = Temporal.Q

let pp_finding ppf (f : Analyzer.finding) =
  match f with
  | Analyzer.Unsatisfiable { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): spatial constraint is semantically \
         unsatisfiable — the permission can never be granted"
        index binding
  | Analyzer.Vacuous { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): spatial constraint is universally true — it \
         restricts nothing"
        index binding
  | Analyzer.Shadowed { index; binding; by_index; by } ->
      Format.fprintf ppf
        "binding #%d (%s): shadowed by binding #%d (%s) — removing it \
         changes no decision"
        index binding by_index by
  | Analyzer.Unexercisable { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): unexercisable — no performable itinerary \
         reaches a covered access under the constraint"
        index binding
  | Analyzer.Temporal_excluded { index; binding; needed; budget } ->
      Format.fprintf ppf
        "binding #%d (%s): temporally excluded — earliest possible grant \
         at t=%a, but the whole-journey budget %a is already spent"
        index binding Q.pp needed Q.pp budget

let pp ppf (r : Analyzer.report) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_finding f) r.findings;
  Format.fprintf ppf "%d binding(s), alphabet %d%s: %d finding(s)@]"
    r.bindings r.alphabet
    (if r.truncated then " (truncated: semantic pass skipped)" else "")
    (List.length r.findings)

(* JSON string escaping, Obs.Export-compatible subset. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json (f : Analyzer.finding) =
  match f with
  | Analyzer.Unsatisfiable { index; binding } ->
      Printf.sprintf {|{"kind":"unsatisfiable","index":%d,"binding":"%s"}|}
        index (escape binding)
  | Analyzer.Vacuous { index; binding } ->
      Printf.sprintf {|{"kind":"vacuous","index":%d,"binding":"%s"}|} index
        (escape binding)
  | Analyzer.Shadowed { index; binding; by_index; by } ->
      Printf.sprintf
        {|{"kind":"shadowed","index":%d,"binding":"%s","by_index":%d,"by":"%s"}|}
        index (escape binding) by_index (escape by)
  | Analyzer.Unexercisable { index; binding } ->
      Printf.sprintf {|{"kind":"unexercisable","index":%d,"binding":"%s"}|}
        index (escape binding)
  | Analyzer.Temporal_excluded { index; binding; needed; budget } ->
      Printf.sprintf
        {|{"kind":"temporal-excluded","index":%d,"binding":"%s","needed":"%s","budget":"%s"}|}
        index (escape binding)
        (escape (Q.to_string needed))
        (escape (Q.to_string budget))

let to_jsonl (r : Analyzer.report) =
  let header =
    Printf.sprintf
      {|{"kind":"report","bindings":%d,"alphabet":%d,"truncated":%b,"findings":%d}|}
      r.bindings r.alphabet r.truncated
      (List.length r.findings)
  in
  String.concat ""
    (List.map
       (fun line -> line ^ "\n")
       (header :: List.map finding_to_json r.findings))
