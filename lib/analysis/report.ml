module Q = Temporal.Q

let pp_finding ppf (f : Analyzer.finding) =
  match f with
  | Analyzer.Unsatisfiable { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): spatial constraint is semantically \
         unsatisfiable — the permission can never be granted"
        index binding
  | Analyzer.Vacuous { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): spatial constraint is universally true — it \
         restricts nothing"
        index binding
  | Analyzer.Shadowed { index; binding; by_index; by } ->
      Format.fprintf ppf
        "binding #%d (%s): shadowed by binding #%d (%s) — removing it \
         changes no decision"
        index binding by_index by
  | Analyzer.Unexercisable { index; binding } ->
      Format.fprintf ppf
        "binding #%d (%s): unexercisable — no performable itinerary \
         reaches a covered access under the constraint"
        index binding
  | Analyzer.Temporal_excluded { index; binding; needed; budget } ->
      Format.fprintf ppf
        "binding #%d (%s): temporally excluded — earliest possible grant \
         at t=%a, but the whole-journey budget %a is already spent"
        index binding Q.pp needed Q.pp budget

let pp ppf (r : Analyzer.report) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_finding f) r.findings;
  Format.fprintf ppf "%d binding(s), alphabet %d%s: %d finding(s)@]"
    r.bindings r.alphabet
    (if r.truncated then " (truncated: semantic pass skipped)" else "")
    (List.length r.findings)

(* JSON string escaping, Obs.Export-compatible subset. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json (f : Analyzer.finding) =
  match f with
  | Analyzer.Unsatisfiable { index; binding } ->
      Printf.sprintf {|{"kind":"unsatisfiable","index":%d,"binding":"%s"}|}
        index (escape binding)
  | Analyzer.Vacuous { index; binding } ->
      Printf.sprintf {|{"kind":"vacuous","index":%d,"binding":"%s"}|} index
        (escape binding)
  | Analyzer.Shadowed { index; binding; by_index; by } ->
      Printf.sprintf
        {|{"kind":"shadowed","index":%d,"binding":"%s","by_index":%d,"by":"%s"}|}
        index (escape binding) by_index (escape by)
  | Analyzer.Unexercisable { index; binding } ->
      Printf.sprintf {|{"kind":"unexercisable","index":%d,"binding":"%s"}|}
        index (escape binding)
  | Analyzer.Temporal_excluded { index; binding; needed; budget } ->
      Printf.sprintf
        {|{"kind":"temporal-excluded","index":%d,"binding":"%s","needed":"%s","budget":"%s"}|}
        index (escape binding)
        (escape (Q.to_string needed))
        (escape (Q.to_string budget))

let admin_to_json ~user ~perm ~server (o : Admin.outcome) =
  let s = o.Admin.stats in
  let head =
    Printf.sprintf
      {|"kind":"admin-query","user":"%s","perm":"%s","server":"%s"|}
      (escape user)
      (escape (Rbac.Perm.to_string perm))
      (escape server)
  in
  let tail =
    Printf.sprintf
      {|"expanded":%d,"generated":%d,"leaf_calls":%d,"leaf_hits":%d,"visited_hits":%d,"antichain_hits":%d,"antichain":%b|}
      s.Admin.expanded s.Admin.generated s.Admin.leaf_calls s.Admin.leaf_hits
      s.Admin.visited_hits s.Admin.antichain_hits s.Admin.antichain
  in
  match o.Admin.verdict with
  | Admin.Leak { ops; witness } ->
      let ops_json =
        String.concat ","
          (List.map
             (fun op -> "\"" ^ escape (Admin.op_to_string op) ^ "\"")
             ops)
      in
      let steps_json =
        String.concat ","
          (List.map
             (fun (a, t) ->
               Printf.sprintf {|{"access":"%s","time":"%s"}|}
                 (escape (Format.asprintf "%a" Sral.Access.pp a))
                 (escape (Q.to_string t)))
             witness.Safety.steps)
      in
      Printf.sprintf
        {|{%s,"verdict":"leak","ops":[%s],"entry":"%s","steps":[%s],%s}|}
        head ops_json
        (escape witness.Safety.entry)
        steps_json tail
  | Admin.Safe { explored } ->
      Printf.sprintf {|{%s,"verdict":"safe","explored":%d,%s}|} head explored
        tail
  | Admin.Undetermined { reason; explored } ->
      Printf.sprintf
        {|{%s,"verdict":"undetermined","reason":"%s","explored":%d,%s}|} head
        (escape reason) explored tail

let to_jsonl (r : Analyzer.report) =
  let header =
    Printf.sprintf
      {|{"kind":"report","bindings":%d,"alphabet":%d,"truncated":%b,"findings":%d}|}
      r.bindings r.alphabet r.truncated
      (List.length r.findings)
  in
  String.concat ""
    (List.map
       (fun line -> line ^ "\n")
       (header :: List.map finding_to_json r.findings))
