module Q = Temporal.Q
module Dfa = Automata.Dfa
module Symbol = Automata.Symbol
module Pb = Coordinated.Perm_binding
module System = Coordinated.System

type witness = {
  entry : string;
  steps : (Sral.Access.t * Q.t) list;
}

type impossibility =
  | Not_authorized of { user : string }
  | Unreachable of { binding : string option }
  | Expired of { binding : string; needed : Q.t; budget : Q.t }

type verdict =
  | Acquirable of witness
  | Impossible of impossibility
  | Undetermined of string

let activate_all session policy user =
  List.iter
    (fun role ->
      try Rbac.Session.activate session role with
      | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _ -> ())
    (Rbac.Policy.authorized_roles policy user)

let replay_through ~sys ~world ~user ~trace () =
  if trace = [] then invalid_arg "Safety.replay: empty trace";
  let session = System.new_session sys ~user in
  activate_all session (System.policy sys) user;
  let program = Sral.Ast.seq (List.map Sral.Ast.access trace) in
  let oid = "analysis" in
  let first = List.hd trace in
  let entry =
    match World.entry_for world first.Sral.Access.server with
    | Some e -> e
    | None -> first.Sral.Access.server
  in
  System.arrive sys ~object_id:oid ~server:entry ~time:Q.zero;
  System.refresh sys ~session ~object_id:oid ~program ~time:Q.zero;
  let monitor = System.monitor sys ~object_id:oid in
  let n = List.length trace in
  let verdict = ref Coordinated.Decision.Granted in
  List.iteri
    (fun i0 (a : Sral.Access.t) ->
      let i = i0 + 1 in
      let time = Q.mul (Q.of_int i) world.World.step in
      if Coordinated.Monitor.current_server monitor <> Some a.server then
        System.arrive sys ~object_id:oid ~server:a.server ~time;
      if i < n then (
        (* the walked prefix is history by fiat — the oracle quantifies
           over performed traces, not over granted ones *)
        Coordinated.Monitor.record_access monitor a ~time;
        System.refresh sys ~session ~object_id:oid ~program ~time)
      else
        verdict := System.check sys ~session ~object_id:oid ~program ~time a)
    trace;
  !verdict

let replay ?mode ?bindings ~world ~policy:(parsed : Coordinated.Policy_lang.t)
    ~user ~trace () =
  let bindings =
    Option.value bindings ~default:parsed.Coordinated.Policy_lang.bindings
  in
  let sys =
    System.create ?mode ~bindings parsed.Coordinated.Policy_lang.policy
  in
  replay_through ~sys ~world ~user ~trace ()

(* Accepted words of [d] with length in [min_len, max_len], shortest
   first, capped; symbols in table order within one length. *)
let words (d : Dfa.t) ~min_len ~max_len ~cap =
  let k = Array.length d.Dfa.alphabet in
  let found = ref [] in
  let count = ref 0 in
  for len = min_len to max_len do
    let rec go q word remaining =
      if !count < cap then
        if remaining = 0 then (
          if d.Dfa.finals.(q) then (
            found := List.rev word :: !found;
            incr count))
        else
          for s = 0 to k - 1 do
            let q' = d.Dfa.next.(q).(s) in
            if Dfa.final_reachable_from d q' then go q' (s :: word) (remaining - 1)
          done
    in
    go d.Dfa.start [] len
  done;
  List.rev !found

let ends_with_dfa ~table access =
  let syms = Symbol.alphabet table in
  let k = List.length syms in
  let next = Array.make_matrix 2 k 0 in
  List.iter
    (fun sym ->
      let target =
        if Sral.Access.equal (Symbol.access table sym) access then 1 else 0
      in
      next.(0).(sym) <- target;
      next.(1).(sym) <- target)
    syms;
  Dfa.of_tables ~alphabet:syms ~start:0 ~finals:[| false; true |] ~next

let can_acquire ~world ~policy:(parsed : Coordinated.Policy_lang.t) ~user ~perm
    ~server =
  let resource = fst (Rbac.Perm.split_target perm.Rbac.Perm.target) in
  if perm.Rbac.Perm.operation = "*" || resource = "*" then
    invalid_arg "Safety.can_acquire: operation and resource must be concrete";
  let access =
    Sral.Access.make
      ~op:(Sral.Access.operation_of_name perm.Rbac.Perm.operation)
      ~resource ~server
  in
  let rbac_policy = parsed.Coordinated.Policy_lang.policy in
  let authorized =
    List.exists
      (fun p ->
        Rbac.Perm.matches p
          ~operation:(Sral.Access.operation_name access.Sral.Access.op)
          ~target:(resource ^ "@" ^ server))
      (try Rbac.Policy.user_permissions rbac_policy user with _ -> [])
  in
  if not authorized then Impossible (Not_authorized { user })
  else if not (List.exists (Sral.Access.equal access) world.World.universe)
  then Impossible (Unreachable { binding = None })
  else
    let applicable =
      List.filter
        (fun b -> Pb.applies_to b access)
        parsed.Coordinated.Policy_lang.bindings
    in
    let formulas = List.filter_map (fun b -> b.Pb.spatial) applicable in
    let alphabet_accs =
      List.sort_uniq Sral.Access.compare
        ((access :: world.World.universe)
        @ Srac.Decide.closure_alphabet formulas)
    in
    if List.length alphabet_accs > Srac.Decide.max_closure then
      Undetermined "constraint alphabet exceeds the analysis bound"
    else
      let table = Symbol.of_accesses alphabet_accs in
      let itin = World.itinerary_dfa ~table world in
      let ends = ends_with_dfa ~table access in
      let base = Dfa.inter itin ends in
      let constraint_dfa b =
        match b.Pb.spatial with
        | None -> None
        | Some c -> Some (Srac.Compile.dfa ~table ~proofs:Srac.Proof.always c)
      in
      let with_dfas = List.map (fun b -> (b, constraint_dfa b)) applicable in
      let joint =
        List.fold_left
          (fun acc (_, d) ->
            match d with None -> acc | Some d -> Dfa.inter acc d)
          base with_dfas
      in
      if Dfa.is_empty joint then
        let culprit =
          List.find_map
            (fun (b, d) ->
              match d with
              | Some d when Dfa.is_empty (Dfa.inter base d) ->
                  Some (Pb.key b)
              | _ -> None)
            with_dfas
        in
        Impossible (Unreachable { binding = culprit })
      else
        let shortest =
          match Dfa.shortest_witness joint with
          | Some w -> List.length w
          | None -> assert false
        in
        let needed = Q.mul (Q.of_int shortest) world.World.step in
        let expired =
          (* every granting walk passes all applicable bindings at once,
             so the joint shortest length bounds any grant instant from
             below; a whole-journey budget not reaching it is spent
             before the first possible grant (same activation caveats as
             the analyzer: static for Program/Both scopes, exact for
             Performed only under selector coverage) *)
          List.find_map
            (fun (b : Pb.t) ->
              match (b.Pb.dur, b.Pb.scheme) with
              | Some budget, Temporal.Validity.Whole_journey
                when Q.ge needed budget ->
                  let exact =
                    match (b.Pb.spatial_scope, b.Pb.spatial) with
                    | (Pb.Program | Pb.Both), _ -> true
                    | Pb.Performed, None -> true
                    | Pb.Performed, Some c ->
                        Analyzer.selectors_covered
                          ~universe:world.World.universe c
                  in
                  if exact then
                    Some
                      (Expired { binding = Pb.key b; needed; budget })
                  else None
              | _ -> None)
            applicable
        in
        match expired with
        | Some imp -> Impossible imp
        | None -> (
            let candidates =
              words joint ~min_len:shortest ~max_len:(shortest + 2) ~cap:24
            in
            let to_trace w = List.map (Symbol.access table) w in
            let granted =
              List.find_opt
                (fun w ->
                  Coordinated.Decision.is_granted
                    (replay ~world ~policy:parsed ~user ~trace:(to_trace w) ()))
                candidates
            in
            match granted with
            | Some w ->
                let trace = to_trace w in
                let entry =
                  match
                    World.entry_for world (List.hd trace).Sral.Access.server
                  with
                  | Some e -> e
                  | None -> (List.hd trace).Sral.Access.server
                in
                let steps =
                  List.mapi
                    (fun i a ->
                      (a, Q.mul (Q.of_int (i + 1)) world.World.step))
                    trace
                in
                Acquirable { entry; steps }
            | None ->
                Undetermined
                  "spatially reachable, but no bounded walk was granted \
                   (activation may lag behind feasibility)")

let pp_verdict ppf = function
  | Acquirable { entry; steps } ->
      Format.fprintf ppf "@[<v>acquirable: enter at %s (t=0)" entry;
      List.iter
        (fun (a, t) ->
          Format.fprintf ppf "@,  t=%a  %a" Q.pp t Sral.Access.pp a)
        steps;
      Format.fprintf ppf "@,  last access is granted@]"
  | Impossible (Not_authorized { user }) ->
      Format.fprintf ppf "impossible: no role of %s grants the permission"
        user
  | Impossible (Unreachable { binding = Some b }) ->
      Format.fprintf ppf
        "impossible: no performable walk satisfies binding %s" b
  | Impossible (Unreachable { binding = None }) ->
      Format.fprintf ppf
        "impossible: no performable walk reaches the access under the \
         bindings' conjunction"
  | Impossible (Expired { binding; needed; budget }) ->
      Format.fprintf ppf
        "impossible: earliest grant needs %a but binding %s expires at %a"
        Q.pp needed binding Q.pp budget
  | Undetermined why -> Format.fprintf ppf "undetermined: %s" why
