(** Safety queries: can this user ever exercise this permission at
    this server, in this world?

    The query is answered constructively.  A positive answer carries a
    {b witness}: a concrete entry server and step-timed walk whose last
    access is the queried one, found by intersecting every applicable
    binding's constraint DFA with the world's reachable-itinerary
    language and an "ends with the queried access" language, and then
    {e replayed through the real decision pipeline}
    ({!Coordinated.System.check}) before being returned — a witness is
    never reported unless the runtime actually grants it.  A negative
    answer carries the reason the product analysis proves no walk can
    ever be granted.

    The corner the automata cannot settle — the product is non-empty
    but every bounded-length candidate is denied, which can happen when
    a [Performed]-scope binding's restricted-alphabet activation lags
    behind true feasibility — is reported honestly as
    {!verdict.Undetermined} rather than guessed. *)

type witness = {
  entry : string;  (** server the object enters the coalition at, time 0 *)
  steps : (Sral.Access.t * Temporal.Q.t) list;
      (** the walk, one access per world step; the last access is the
          queried one and its time is the decision instant *)
}

type impossibility =
  | Not_authorized of { user : string }
      (** no authorized role holds a matching permission *)
  | Unreachable of { binding : string option }
      (** no performable walk ends with the access while satisfying the
          constraints — of the named binding alone, or (with [None])
          only of the conjunction *)
  | Expired of { binding : string; needed : Temporal.Q.t; budget : Temporal.Q.t }
      (** every candidate walk takes [needed ≥ budget] time, so the
          binding's whole-journey validity is spent before the first
          possible grant *)

type verdict =
  | Acquirable of witness
  | Impossible of impossibility
  | Undetermined of string

val can_acquire :
  world:World.t ->
  policy:Coordinated.Policy_lang.t ->
  user:string ->
  perm:Rbac.Perm.t ->
  server:string ->
  verdict
(** [perm]'s operation and target resource must be concrete (no ["*"]).
    @raise Invalid_argument otherwise. *)

val replay :
  ?mode:Coordinated.System.decision_mode ->
  ?bindings:Coordinated.Perm_binding.t list ->
  world:World.t ->
  policy:Coordinated.Policy_lang.t ->
  user:string ->
  trace:Sral.Trace.t ->
  unit ->
  Coordinated.Decision.verdict
(** Replay a walk under the world's timing model and adjudicate its
    last access: enter at the first entry server reaching the walk's
    start (time 0), migrate and perform one access per [step] (the
    [i]-th at [i·step]), record intermediate accesses as history, and
    decide the final one through the full pipeline with a straight-line
    program of the walk.  [bindings] overrides the policy's bindings
    (the oracle tests use it to isolate one binding).
    @raise Invalid_argument on an empty trace. *)

val replay_through :
  sys:Coordinated.System.t ->
  world:World.t ->
  user:string ->
  trace:Sral.Trace.t ->
  unit ->
  Coordinated.Decision.verdict
(** Like {!replay}, but drives the walk through an {e existing} system
    — the admin verifier uses it to adjudicate a walk after replaying a
    sequence of administrative mutations on the live system.
    @raise Invalid_argument on an empty trace. *)

val pp_verdict : Format.formatter -> verdict -> unit
