(** Whole-policy semantic analysis.

    Every check here reuses the decision-time machinery: each binding's
    spatial formula is compiled through {!Srac.Compile} to a complete
    DFA over one shared alphabet — the {!Srac.Decide} closure alphabet
    of all formulas, extended with the world's universe when a world is
    given — and the findings are automata-theoretic facts about those
    languages:

    - {b Unsatisfiable}: the constraint language is empty; the binding
      denies every access it applies to, under any itinerary.
    - {b Vacuous}: the language is universal; the spatial constraint
      restricts nothing (the binding may still act temporally).
    - {b Shadowed}: a winner binding [w] makes loser [l] redundant —
      [w]'s pattern {!Rbac.Perm.subsumes} [l]'s, scope, modality and
      proof scope agree, [L(C_w) ⊆ L(C_l)] by product-DFA inclusion,
      [l] carries no duration, and (for [Performed] scope) [C_w]'s
      mentioned accesses are among [C_l]'s, so [l]'s restricted-alphabet
      activation is implied by [w]'s.  Because runtime activation state
      is keyed by the permission string, bindings sharing [l]'s
      permission alias one monitor slot; when [l] is that slot's last
      writer, the finding additionally requires the same-key group to
      share a concrete single-access pattern with [w], carry no
      durations, and have activation implied by its own decision-time
      spatial pass — otherwise removing [l] could rewire the group's
      temporal accounting.  Removing [l] then changes no grant/deny
      outcome.
    - {b Unexercisable}: in the given world, no performable trace
      exercises the binding — the product of constraint language,
      reachable-itinerary language and "ends with a pattern-covered
      access" language is empty.
    - {b Temporal_excluded}: the binding's validity window cannot
      overlap any spatially-satisfying epoch — every trace reaching a
      grantable access needs at least [needed = ℓ·step] time
      ([ℓ] = shortest word of the product above), and the
      whole-journey budget is [budget ≤ needed], so the permission has
      always expired by the time it could first be granted.

    World-dependent findings are relative to the world's execution
    model: agents enter at time 0, perform one action per [step], and
    hold their authorized roles for the whole journey.  [Per_server]
    schemes are never flagged temporally (the budget resets on
    migration, and an arrival can coincide with the access).  All
    findings are sound for that model — zero false positives, enforced
    by the replay oracle in [test/test_analysis.ml] — and deliberately
    incomplete (a binding may be useless in ways the automata cannot
    see). *)

type finding =
  | Unsatisfiable of { index : int; binding : string }
  | Vacuous of { index : int; binding : string }
  | Shadowed of { index : int; binding : string; by_index : int; by : string }
  | Unexercisable of { index : int; binding : string }
  | Temporal_excluded of {
      index : int;
      binding : string;
      needed : Temporal.Q.t;  (** earliest possible grant instant *)
      budget : Temporal.Q.t;  (** the binding's whole-journey duration *)
    }
      (** [index] is the binding's 0-based declaration index in the
          policy file; [binding] its permission key. *)

type report = {
  findings : finding list;
      (** declaration order; within one binding: unsatisfiable,
          vacuous, shadowed, unexercisable, temporal. *)
  bindings : int;  (** number of bindings analyzed *)
  alphabet : int;  (** size of the shared analysis alphabet *)
  truncated : bool;
      (** the closure alphabet exceeded {!Srac.Decide.max_closure}:
          only per-binding satisfiability/vacuity was checked, with
          {!Srac.Decide}'s own conservative fallback *)
}

val finding_index : finding -> int
val finding_binding : finding -> string

val selectors_covered : universe:Sral.Access.t list -> Srac.Formula.t -> bool
(** Is restricted-alphabet activation exact for this constraint in this
    universe — i.e. is every universe access matched by one of its Card
    selectors also mentioned by one of its atoms/orderings?  The
    precondition under which a [Performed]-scope binding's runtime
    activation provably holds along every satisfying walk (used by the
    temporal-exclusion checks here and in {!Safety}). *)

val analyze : ?world:World.t -> Coordinated.Policy_lang.t -> report
(** Without a world, only the world-independent findings
    (unsatisfiable, vacuous, shadowed) are produced. *)

val witnesses :
  world:World.t ->
  Coordinated.Policy_lang.t ->
  (int * string * Sral.Trace.t) list
(** For each binding the world can exercise: [(index, key, walk)] with
    a shortest performable walk whose last access the binding covers
    and which satisfies its constraint — a replayable certificate that
    the binding is {e not} unexercisable (feed it to
    {!Safety.replay}).  Bindings with an empty product are absent.
    Empty when the joint alphabet exceeds {!Srac.Decide.max_closure}. *)
