(** Packed bitsets for the admin verifier's symbolic states.

    A set of [n] bits stored in [⌈n/8⌉] bytes, little-endian within a
    byte.  The admin transition system packs every state component
    (user×role assignments, role×perm grants, pool-binding activations,
    SoD-constraint activations, membership flags) into one value, each
    region starting on a byte boundary, so that

    - structural equality / hashing of a state is equality / hashing of
      the underlying bytes,
    - a contiguous byte range is a usable cache key
      ({!prefix_key} — the leaf-oracle fingerprint), and
    - region-wise subset tests for antichain subsumption are byte-range
      AND-compares ({!subset_bytes}). *)

type t

val create : int -> t
(** [create n] is [n] zero bits (rounded up to whole bytes). *)

val size_bytes : t -> int
val copy : t -> t
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val key : t -> string
(** The raw bytes as an immutable string — a hashtable key that is
    stable under later mutation of [t]. *)

val prefix_key : t -> bytes:int -> string
(** The first [bytes] bytes as an immutable string. *)

val subset_bytes : t -> t -> pos:int -> len:int -> bool
(** [subset_bytes a b ~pos ~len]: within the byte range
    [\[pos, pos+len)], is every bit of [a] also set in [b]? *)

val equal_bytes : t -> t -> pos:int -> len:int -> bool

val cardinal : t -> int
(** Number of set bits. *)
