(** Rendering of analyzer reports: human-readable text and
    deterministic JSONL.

    The JSONL convention follows {!Obs.Export}: one object per line,
    keys in a fixed order, rationals written exactly with
    {!Temporal.Q.to_string} — identical analyses export byte-identical
    documents, so CI can compare them verbatim.  The first line is a
    summary object ([kind = "report"]); each following line is one
    finding in report order. *)

val pp_finding : Format.formatter -> Analyzer.finding -> unit
(** One line, e.g.
    ["binding #2 (read:cfg@s1): shadowed by binding #0 (read:*@s1)"]. *)

val pp : Format.formatter -> Analyzer.report -> unit
(** Human-readable multi-line report, findings in order, ending with a
    one-line summary. *)

val to_jsonl : Analyzer.report -> string
(** Newline-terminated JSONL document. *)

val finding_to_json : Analyzer.finding -> string
(** One JSON object, no trailing newline. *)

val admin_to_json :
  user:string -> perm:Rbac.Perm.t -> server:string -> Admin.outcome -> string
(** One [kind = "admin-query"] JSON object for an administrative-safety
    outcome (no trailing newline): the query, the verdict — with the
    admin-op sequence, entry server and timed walk on a leak — and the
    engine's exploration counters.  Deterministic: identical outcomes
    render byte-identically. *)
