module Q = Temporal.Q
module Pb = Coordinated.Perm_binding
module Pl = Coordinated.Policy_lang
module System = Coordinated.System

type op =
  | Assign of string * string
  | Deassign of string * string
  | Grant of string * Rbac.Perm.t
  | Revoke of string * Rbac.Perm.t
  | Add_ssd of Rbac.Sod.t
  | Add_dsd of Rbac.Sod.t
  | Add_binding of Pb.t
  | Join
  | Leave

let sod_to_string kw (c : Rbac.Sod.t) =
  Printf.sprintf "%s %s %s max %d" kw c.Rbac.Sod.name
    (String.concat " " c.Rbac.Sod.roles)
    c.Rbac.Sod.max_roles

let op_to_string = function
  | Assign (u, r) -> Printf.sprintf "assign %s %s" u r
  | Deassign (u, r) -> Printf.sprintf "deassign %s %s" u r
  | Grant (r, p) -> Printf.sprintf "grant %s %s" r (Rbac.Perm.to_string p)
  | Revoke (r, p) -> Printf.sprintf "revoke %s %s" r (Rbac.Perm.to_string p)
  | Add_ssd c -> sod_to_string "ssd" c
  | Add_dsd c -> sod_to_string "dsd" c
  | Add_binding b -> "bind " ^ Pl.render_binding b
  | Join -> "join"
  | Leave -> "leave"

let pp_op ppf op = Format.pp_print_string ppf (op_to_string op)

let bad fmt = Format.kasprintf invalid_arg fmt

let split_words s =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' s)

let parse_sod kw = function
  | name :: tail -> (
      let rec split_roles acc = function
        | [ "max"; k ] -> (
            match int_of_string_opt k with
            | Some max_roles -> (List.rev acc, max_roles)
            | None -> bad "Admin: bad %s cardinality %S" kw k)
        | r :: rest -> split_roles (r :: acc) rest
        | [] -> bad "Admin: %s needs a trailing 'max <k>'" kw
      in
      let roles, max_roles = split_roles [] tail in
      Rbac.Sod.make ~name ~roles ~max_roles)
  | [] -> bad "Admin: %s needs a name" kw

let parse_perm s =
  try Rbac.Perm.of_string s with Invalid_argument m -> bad "Admin: %s" m

let op_of_string line =
  match split_words line with
  | [ "assign"; u; r ] -> Assign (u, r)
  | [ "deassign"; u; r ] -> Deassign (u, r)
  | [ "grant"; r; p ] -> Grant (r, parse_perm p)
  | [ "revoke"; r; p ] -> Revoke (r, parse_perm p)
  | "ssd" :: rest -> Add_ssd (parse_sod "ssd" rest)
  | "dsd" :: rest -> Add_dsd (parse_sod "dsd" rest)
  | "bind" :: _ -> (
      let body =
        String.trim (String.sub line 4 (String.length line - 4))
      in
      match Pl.parse_binding body with
      | b -> Add_binding b
      | exception Pl.Error (_, m) -> bad "Admin: %s" m)
  | [ "join" ] -> Join
  | [ "leave" ] -> Leave
  | w :: _ -> bad "Admin: unknown op %S" w
  | [] -> bad "Admin: empty op"

type schedule = { pool : op list; budget : int; team : string; joined : bool }

let parse_schedule text =
  let pool = ref [] in
  let budget = ref 0 in
  let team = ref "coalition" in
  let joined = ref true in
  List.iter
    (fun raw ->
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match split_words (String.map (function '\t' -> ' ' | c -> c) line) with
      | [] -> ()
      | [ "budget"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> budget := n
          | _ -> bad "Admin: bad budget %S" n)
      | [ "team"; t ] -> team := t
      | [ "joined"; b ] -> (
          match bool_of_string_opt b with
          | Some b -> joined := b
          | None -> bad "Admin: bad joined flag %S" b)
      | _ -> pool := op_of_string (String.trim line) :: !pool)
    (String.split_on_char '\n' text);
  { pool = List.rev !pool; budget = !budget; team = !team; joined = !joined }

let render_schedule s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "budget %d\n" s.budget);
  Buffer.add_string buf (Printf.sprintf "team %s\n" s.team);
  Buffer.add_string buf (Printf.sprintf "joined %b\n" s.joined);
  List.iter
    (fun op -> Buffer.add_string buf (op_to_string op ^ "\n"))
    s.pool;
  Buffer.contents buf

type instance = {
  base : Pl.t;
  world : World.t;
  schedule : schedule;
  user : string;
  perm : Rbac.Perm.t;
  server : string;
}

let make ~base ~world ~schedule ~user ~perm ~server =
  let policy = base.Pl.policy in
  let known_user u =
    if not (List.mem u (Rbac.Policy.users policy)) then
      bad "Admin.make: user %S not declared in the base policy" u
  in
  let known_role r =
    if not (Rbac.Hierarchy.mem (Rbac.Policy.hierarchy policy) r) then
      bad "Admin.make: role %S not declared in the base policy" r
  in
  known_user user;
  let resource = fst (Rbac.Perm.split_target perm.Rbac.Perm.target) in
  if perm.Rbac.Perm.operation = "*" || resource = "*" then
    bad "Admin.make: the queried operation and resource must be concrete";
  if schedule.budget < 0 then bad "Admin.make: negative budget";
  List.iter
    (function
      | Assign (u, r) | Deassign (u, r) ->
          known_user u;
          known_role r
      | Grant (r, _) | Revoke (r, _) -> known_role r
      | Add_ssd _ | Add_dsd _ | Add_binding _ | Join | Leave -> ())
    schedule.pool;
  { base; world; schedule; user; perm; server }

(* ------------------------------------------------------------------ *)
(* The interned state space.  One packed bitset per state; regions in
   fingerprint-first order (UA, PA, bindings, DSD — everything the
   leaf oracle reads), then SSD and the membership flag, each region
   byte-aligned so the fingerprint is a byte prefix and region subset
   tests are byte-range compares. *)

type space = {
  inst : instance;
  ua : (string * string) array;
  pa : (string * Rbac.Perm.t) array;
  bnd : Pb.t array;
  dsdc : Rbac.Sod.t array;
  ssdc : Rbac.Sod.t array;
  ua_bit : int;
  pa_bit : int;
  bnd_bit : int;
  dsd_bit : int;
  ssd_bit : int;
  joined_bit : int;
  nbits : int;
  leaf_bytes : int;  (* byte length of the UA+PA+bindings+DSD prefix *)
  bnd_pos : int;  (* byte offset / length of the bindings region, *)
  bnd_len : int;  (* for antichain grouping *)
  ua_pa_len : int;  (* byte length of the UA+PA prefix *)
  ua_index : (string * string, int) Hashtbl.t;
  by_user : (string * int) list array;
      (* user index -> (role, ua bit index) list *)
  user_ids : (string, int) Hashtbl.t;
  sod_free : bool;
}

let dedup compare l =
  let sorted = List.sort_uniq compare l in
  Array.of_list sorted

let dedup_stable eq l =
  let rec go seen = function
    | [] -> List.rev seen
    | x :: rest ->
        if List.exists (eq x) seen then go seen rest else go (x :: seen) rest
  in
  Array.of_list (go [] l)

let round8 bits = (bits + 7) / 8 * 8

let make_space inst =
  let policy = inst.base.Pl.policy in
  let pool = inst.schedule.pool in
  let base_ua =
    List.concat_map
      (fun u -> List.map (fun r -> (u, r)) (Rbac.Policy.assigned_roles policy u))
      (Rbac.Policy.users policy)
  in
  let pool_ua =
    List.filter_map
      (function Assign (u, r) | Deassign (u, r) -> Some (u, r) | _ -> None)
      pool
  in
  let base_pa =
    List.concat_map
      (fun r ->
        List.map (fun p -> (r, p)) (Rbac.Policy.direct_permissions policy r))
      (Rbac.Policy.roles policy)
  in
  let pool_pa =
    List.filter_map
      (function Grant (r, p) | Revoke (r, p) -> Some (r, p) | _ -> None)
      pool
  in
  let pair_compare (u1, r1) (u2, r2) =
    match String.compare u1 u2 with 0 -> String.compare r1 r2 | c -> c
  in
  let pa_compare (r1, p1) (r2, p2) =
    match String.compare r1 r2 with 0 -> Rbac.Perm.compare p1 p2 | c -> c
  in
  let ua = dedup pair_compare (base_ua @ pool_ua) in
  let pa = dedup pa_compare (base_pa @ pool_pa) in
  let bnd =
    dedup_stable ( = )
      (List.filter_map (function Add_binding b -> Some b | _ -> None) pool)
  in
  let dsdc =
    dedup_stable ( = )
      (List.filter_map (function Add_dsd c -> Some c | _ -> None) pool)
  in
  let ssdc =
    dedup_stable ( = )
      (List.filter_map (function Add_ssd c -> Some c | _ -> None) pool)
  in
  let ua_bit = 0 in
  let pa_bit = ua_bit + round8 (Array.length ua) in
  let bnd_bit = pa_bit + round8 (Array.length pa) in
  let dsd_bit = bnd_bit + round8 (Array.length bnd) in
  let ssd_bit = dsd_bit + round8 (Array.length dsdc) in
  let joined_bit = ssd_bit + round8 (Array.length ssdc) in
  let nbits = joined_bit + 8 in
  let ua_index = Hashtbl.create 64 in
  Array.iteri (fun i p -> Hashtbl.replace ua_index p i) ua;
  let users = Array.of_list (Rbac.Policy.users policy) in
  let user_ids = Hashtbl.create 16 in
  Array.iteri (fun i u -> Hashtbl.replace user_ids u i) users;
  let by_user = Array.make (max 1 (Array.length users)) [] in
  Array.iteri
    (fun i (u, r) ->
      match Hashtbl.find_opt user_ids u with
      | Some j -> by_user.(j) <- (r, i) :: by_user.(j)
      | None -> ())
    ua;
  Array.iteri (fun j l -> by_user.(j) <- List.rev l) by_user;
  let sod_free =
    Rbac.Policy.ssd_constraints policy = []
    && Rbac.Policy.dsd_constraints policy = []
    && Array.length ssdc = 0
    && Array.length dsdc = 0
  in
  {
    inst;
    ua;
    pa;
    bnd;
    dsdc;
    ssdc;
    ua_bit;
    pa_bit;
    bnd_bit;
    dsd_bit;
    ssd_bit;
    joined_bit;
    nbits;
    leaf_bytes = ssd_bit / 8;
    bnd_pos = bnd_bit / 8;
    bnd_len = (dsd_bit - bnd_bit) / 8;
    ua_pa_len = bnd_bit / 8;
    ua_index;
    by_user;
    user_ids;
    sod_free;
  }

let initial space =
  let st = Bitset.create space.nbits in
  let policy = space.inst.base.Pl.policy in
  Array.iteri
    (fun i (u, r) ->
      if List.mem r (Rbac.Policy.assigned_roles policy u) then
        Bitset.set st (space.ua_bit + i))
    space.ua;
  Array.iteri
    (fun i (r, p) ->
      if List.exists (Rbac.Perm.equal p) (Rbac.Policy.direct_permissions policy r)
      then Bitset.set st (space.pa_bit + i))
    space.pa;
  if space.inst.schedule.joined then Bitset.set st space.joined_bit;
  st

let joined space st = Bitset.get st space.joined_bit

let current_roles space st u =
  match Hashtbl.find_opt space.user_ids u with
  | None -> []
  | Some j ->
      List.filter_map
        (fun (r, i) -> if Bitset.get st (space.ua_bit + i) then Some r else None)
        space.by_user.(j)

(* SSD constraints active at a state: the base policy's plus every
   pool constraint whose bit is set. *)
let active_ssd space st =
  let pool =
    List.filteri
      (fun i _ -> Bitset.get st (space.ssd_bit + i))
      (Array.to_list space.ssdc)
  in
  Rbac.Policy.ssd_constraints space.inst.base.Pl.policy @ pool

let ssd_blocks space st u r =
  let current = current_roles space st u in
  List.exists
    (fun c -> Rbac.Sod.would_violate c ~current ~adding:r)
    (active_ssd space st)

let find_index index p =
  match Hashtbl.find_opt index p with
  | Some i -> i
  | None -> assert false

let array_find eq a x =
  let rec go i =
    if i >= Array.length a then assert false
    else if eq a.(i) x then i
    else go (i + 1)
  in
  go 0

(* Precondition-checked successor: [None] when the real admin API
   would reject the op (or it is a no-op toggle). *)
let apply space st op =
  let flip setter bit =
    let st' = Bitset.copy st in
    setter st' bit;
    Some st'
  in
  match op with
  | Assign (u, r) ->
      let i = space.ua_bit + find_index space.ua_index (u, r) in
      if Bitset.get st i then None
      else if ssd_blocks space st u r then None
      else flip Bitset.set i
  | Deassign (u, r) ->
      let i = space.ua_bit + find_index space.ua_index (u, r) in
      if Bitset.get st i then flip Bitset.clear i else None
  | Grant (r, p) ->
      let i =
        space.pa_bit
        + array_find
            (fun (r', p') (r, p) -> r' = r && Rbac.Perm.equal p' p)
            space.pa (r, p)
      in
      if Bitset.get st i then None else flip Bitset.set i
  | Revoke (r, p) ->
      let i =
        space.pa_bit
        + array_find
            (fun (r', p') (r, p) -> r' = r && Rbac.Perm.equal p' p)
            space.pa (r, p)
      in
      if Bitset.get st i then flip Bitset.clear i else None
  | Add_ssd c ->
      let i = space.ssd_bit + array_find ( = ) space.ssdc c in
      if Bitset.get st i then None
      else if
        (* mirror Rbac.Policy.add_ssd's retroactive rejection *)
        List.exists
          (fun u -> Rbac.Sod.violates c (current_roles space st u))
          (Rbac.Policy.users space.inst.base.Pl.policy)
      then None
      else flip Bitset.set i
  | Add_dsd c ->
      let i = space.dsd_bit + array_find ( = ) space.dsdc c in
      if Bitset.get st i then None else flip Bitset.set i
  | Add_binding b ->
      let i = space.bnd_bit + array_find ( = ) space.bnd b in
      if Bitset.get st i then None else flip Bitset.set i
  | Join ->
      if Bitset.get st space.joined_bit then None
      else flip Bitset.set space.joined_bit
  | Leave ->
      if Bitset.get st space.joined_bit then flip Bitset.clear space.joined_bit
      else None

(* ------------------------------------------------------------------ *)
(* Leaf oracle: materialize the deployment a state denotes and ask
   Safety.can_acquire.  SSD constraints are deliberately omitted — the
   leaf never assigns roles, and every reachable state is
   SSD-consistent because each op checked its precondition when it
   fired — so states differing only in SSD bits share one fingerprint. *)

let materialize space st =
  let base = space.inst.base.Pl.policy in
  let p = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user p) (Rbac.Policy.users base);
  List.iter (Rbac.Policy.add_role p) (Rbac.Policy.roles base);
  List.iter
    (fun senior ->
      List.iter
        (fun junior -> Rbac.Policy.add_inheritance p ~senior ~junior)
        (Rbac.Hierarchy.direct_juniors (Rbac.Policy.hierarchy base) senior))
    (Rbac.Policy.roles base);
  Array.iteri
    (fun i (u, r) ->
      if Bitset.get st (space.ua_bit + i) then Rbac.Policy.assign_user p u r)
    space.ua;
  Array.iteri
    (fun i (r, perm) ->
      if Bitset.get st (space.pa_bit + i) then Rbac.Policy.grant p r perm)
    space.pa;
  List.iter (Rbac.Policy.add_dsd p) (Rbac.Policy.dsd_constraints base);
  Array.iteri
    (fun i c ->
      if Bitset.get st (space.dsd_bit + i) then Rbac.Policy.add_dsd p c)
    space.dsdc;
  let pool_bindings =
    List.filteri
      (fun i _ -> Bitset.get st (space.bnd_bit + i))
      (Array.to_list space.bnd)
  in
  { Pl.policy = p; bindings = space.inst.base.Pl.bindings @ pool_bindings }

type stats = {
  expanded : int;
  generated : int;
  leaf_calls : int;
  leaf_hits : int;
  visited_hits : int;
  antichain_hits : int;
  antichain : bool;
}

type verdict =
  | Leak of { ops : op list; witness : Safety.witness }
  | Safe of { explored : int }
  | Undetermined of { reason : string; explored : int }

type outcome = { verdict : verdict; stats : stats }

type counters = {
  mutable c_expanded : int;
  mutable c_generated : int;
  mutable c_leaf_calls : int;
  mutable c_leaf_hits : int;
  mutable c_visited_hits : int;
  mutable c_antichain_hits : int;
}

let fresh_counters () =
  {
    c_expanded = 0;
    c_generated = 0;
    c_leaf_calls = 0;
    c_leaf_hits = 0;
    c_visited_hits = 0;
    c_antichain_hits = 0;
  }

let stats_of c ~antichain =
  {
    expanded = c.c_expanded;
    generated = c.c_generated;
    leaf_calls = c.c_leaf_calls;
    leaf_hits = c.c_leaf_hits;
    visited_hits = c.c_visited_hits;
    antichain_hits = c.c_antichain_hits;
    antichain;
  }

let leaf space memo counters st =
  let fp = Bitset.prefix_key st ~bytes:space.leaf_bytes in
  match Hashtbl.find_opt memo fp with
  | Some v ->
      counters.c_leaf_hits <- counters.c_leaf_hits + 1;
      v
  | None ->
      counters.c_leaf_calls <- counters.c_leaf_calls + 1;
      let deployment = materialize space st in
      let v =
        Safety.can_acquire ~world:space.inst.world ~policy:deployment
          ~user:space.inst.user ~perm:space.inst.perm
          ~server:space.inst.server
      in
      Hashtbl.replace memo fp v;
      v

(* ------------------------------------------------------------------ *)
(* Witness replay through the real API. *)

let clone_policy p =
  let q = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user q) (Rbac.Policy.users p);
  List.iter (Rbac.Policy.add_role q) (Rbac.Policy.roles p);
  List.iter
    (fun senior ->
      List.iter
        (fun junior -> Rbac.Policy.add_inheritance q ~senior ~junior)
        (Rbac.Hierarchy.direct_juniors (Rbac.Policy.hierarchy p) senior))
    (Rbac.Policy.roles p);
  List.iter
    (fun u ->
      List.iter (Rbac.Policy.assign_user q u) (Rbac.Policy.assigned_roles p u))
    (Rbac.Policy.users p);
  List.iter
    (fun r ->
      List.iter (Rbac.Policy.grant q r) (Rbac.Policy.direct_permissions p r))
    (Rbac.Policy.roles p);
  List.iter (Rbac.Policy.add_ssd q) (Rbac.Policy.ssd_constraints p);
  List.iter (Rbac.Policy.add_dsd q) (Rbac.Policy.dsd_constraints p);
  q

let oid = "analysis"

let apply_real inst sys op =
  let policy = System.policy sys in
  (match op with
  | Assign (u, r) -> Rbac.Policy.assign_user policy u r
  | Deassign (u, r) -> Rbac.Policy.deassign_user policy u r
  | Grant (r, p) -> Rbac.Policy.grant policy r p
  | Revoke (r, p) -> Rbac.Policy.revoke policy r p
  | Add_ssd c -> Rbac.Policy.add_ssd policy c
  | Add_dsd c -> Rbac.Policy.add_dsd policy c
  | Add_binding b -> System.add_binding sys b
  | Join -> System.join_team sys ~object_id:oid ~team:inst.schedule.team
  | Leave -> System.join_team sys ~object_id:oid ~team:("solo:" ^ oid));
  Obs.Bus.emit (System.bus sys)
    (Obs.Trace.Policy_changed
       {
         time = Q.zero;
         op = op_to_string op;
         version = Rbac.Policy.version policy;
       })

let replay_witness ?bus inst ops ~trace =
  let policy = clone_policy inst.base.Pl.policy in
  let sys = System.create ?bus ~bindings:inst.base.Pl.bindings policy in
  List.iter (apply_real inst sys) ops;
  Safety.replay_through ~sys ~world:inst.world ~user:inst.user ~trace ()

(* ------------------------------------------------------------------ *)
(* The symbolic engine. *)

let exhausted_reason bound =
  Printf.sprintf "state bound %d exhausted before the frontier closed" bound

let undetermined_leaves_reason n =
  Printf.sprintf
    "%d reachable deployment(s) left the leaf oracle undetermined" n

(* Replay the engine's witness before reporting it; a divergence (which
   would be an engine bug) is reported honestly, never as a leak. *)
let confirm_leak inst ops (w : Safety.witness) ~explored ~stats =
  let trace = List.map fst w.Safety.steps in
  let verdict =
    match replay_witness inst ops ~trace with
    | v when Coordinated.Decision.is_granted v -> Leak { ops; witness = w }
    | _ ->
        Undetermined
          {
            reason =
              "witness replay diverged from the leaf oracle (engine bug?)";
            explored;
          }
    | exception Invalid_argument m ->
        Undetermined { reason = "witness replay rejected: " ^ m; explored }
  in
  { verdict; stats }

let check ?(max_states = 200_000) inst =
  let space = make_space inst in
  let budget = inst.schedule.budget in
  let counters = fresh_counters () in
  let memo = Hashtbl.create 64 in
  let visited : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let parents : (string, string * op) Hashtbl.t = Hashtbl.create 256 in
  (* Antichain entries grouped by (binding bits, membership): a new
     state is subsumed iff some explored state in its group has
     pointwise-superset UA and PA bits and at least as much remaining
     budget.  Only sound SoD-free (see the .mli). *)
  let antichain : (string, (Bitset.t * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let group_key st =
    Printf.sprintf "%s%c"
      (String.sub (Bitset.key st) space.bnd_pos space.bnd_len)
      (if joined space st then '\001' else '\000')
  in
  let subsumed st rem =
    match Hashtbl.find_opt antichain (group_key st) with
    | None -> false
    | Some entries ->
        List.exists
          (fun (bigger, rem') ->
            rem' >= rem
            && Bitset.subset_bytes st bigger ~pos:0 ~len:space.ua_pa_len)
          !entries
  in
  let record st rem =
    let k = group_key st in
    let entries =
      match Hashtbl.find_opt antichain k with
      | Some e -> e
      | None ->
          let e = ref [] in
          Hashtbl.replace antichain k e;
          e
    in
    (* keep it an antichain: drop entries the newcomer dominates *)
    entries :=
      (st, rem)
      :: List.filter
           (fun (smaller, rem') ->
             not
               (rem >= rem'
               && Bitset.subset_bytes smaller st ~pos:0 ~len:space.ua_pa_len))
           !entries
  in
  let queue = Queue.create () in
  let init = initial space in
  Hashtbl.replace visited (Bitset.key init) budget;
  if space.sod_free then record init budget;
  Queue.push (init, 0) queue;
  let rec path_to key acc =
    match Hashtbl.find_opt parents key with
    | None -> acc
    | Some (parent, op) -> path_to parent (op :: acc)
  in
  let undet = ref 0 in
  let result = ref None in
  (while !result = None && not (Queue.is_empty queue) do
     if counters.c_expanded >= max_states then
       result :=
         Some
           {
             verdict =
               Undetermined
                 {
                   reason = exhausted_reason max_states;
                   explored = counters.c_expanded;
                 };
             stats = stats_of counters ~antichain:space.sod_free;
           }
     else begin
       let st, depth = Queue.pop queue in
       counters.c_expanded <- counters.c_expanded + 1;
       (if joined space st then
          match leaf space memo counters st with
          | Safety.Acquirable w ->
              let ops = path_to (Bitset.key st) [] in
              result :=
                Some
                  (confirm_leak inst ops w ~explored:counters.c_expanded
                     ~stats:(stats_of counters ~antichain:space.sod_free))
          | Safety.Undetermined _ -> incr undet
          | Safety.Impossible _ -> ());
       if !result = None && depth < budget then
         List.iter
           (fun op ->
             match apply space st op with
             | None -> ()
             | Some st' ->
                 counters.c_generated <- counters.c_generated + 1;
                 let k' = Bitset.key st' in
                 let rem' = budget - depth - 1 in
                 let seen =
                   match Hashtbl.find_opt visited k' with
                   | Some r when r >= rem' ->
                       counters.c_visited_hits <- counters.c_visited_hits + 1;
                       true
                   | _ -> false
                 in
                 if not seen then
                   if space.sod_free && subsumed st' rem' then
                     counters.c_antichain_hits <-
                       counters.c_antichain_hits + 1
                   else begin
                     Hashtbl.replace visited k' rem';
                     Hashtbl.replace parents k' (Bitset.key st, op);
                     if space.sod_free then record st' rem';
                     Queue.push (st', depth + 1) queue
                   end)
           inst.schedule.pool
     end
   done);
  match !result with
  | Some outcome -> outcome
  | None ->
      let stats = stats_of counters ~antichain:space.sod_free in
      let verdict =
        if !undet > 0 then
          Undetermined
            {
              reason = undetermined_leaves_reason !undet;
              explored = counters.c_expanded;
            }
        else Safe { explored = counters.c_expanded }
      in
      { verdict; stats }

(* ------------------------------------------------------------------ *)
(* Explicit enumeration: every op sequence, no dedup, no pruning. *)

let brute_force ?(max_nodes = 2_000_000) inst =
  let space = make_space inst in
  let budget = inst.schedule.budget in
  let counters = fresh_counters () in
  let memo = Hashtbl.create 64 in
  let undet = ref 0 in
  let found = ref None in
  let nodes = ref 0 in
  let exception Cut of string in
  let rec go st depth acc =
    if !found = None then begin
      incr nodes;
      if !nodes > max_nodes then raise (Cut (exhausted_reason max_nodes));
      counters.c_expanded <- counters.c_expanded + 1;
      (if joined space st then
         match leaf space memo counters st with
         | Safety.Acquirable w -> found := Some (List.rev acc, w)
         | Safety.Undetermined _ -> incr undet
         | Safety.Impossible _ -> ());
      if !found = None && depth < budget then
        List.iter
          (fun op ->
            match apply space st op with
            | None -> ()
            | Some st' ->
                counters.c_generated <- counters.c_generated + 1;
                go st' (depth + 1) (op :: acc))
          inst.schedule.pool
    end
  in
  match go (initial space) 0 [] with
  | exception Cut reason ->
      {
        verdict = Undetermined { reason; explored = counters.c_expanded };
        stats = stats_of counters ~antichain:false;
      }
  | () -> (
      let stats = stats_of counters ~antichain:false in
      match !found with
      | Some (ops, w) ->
          confirm_leak inst ops w ~explored:counters.c_expanded ~stats
      | None ->
          let verdict =
            if !undet > 0 then
              Undetermined
                {
                  reason = undetermined_leaves_reason !undet;
                  explored = counters.c_expanded;
                }
            else Safe { explored = counters.c_expanded }
          in
          { verdict; stats })

let pp_verdict ppf = function
  | Leak { ops; witness } ->
      Format.fprintf ppf "@[<v>leak: %d admin op(s) reach an acquirable state"
        (List.length ops);
      List.iter (fun op -> Format.fprintf ppf "@,  admin: %a" pp_op op) ops;
      Format.fprintf ppf "@,then %a@]" Safety.pp_verdict
        (Safety.Acquirable witness)
  | Safe { explored } ->
      Format.fprintf ppf
        "safe: all %d deployment(s) reachable within the budget keep the \
         permission unacquirable"
        explored
  | Undetermined { reason; explored } ->
      Format.fprintf ppf "undetermined after %d state(s): %s" explored reason

let pp_outcome ppf { verdict; stats } =
  Format.fprintf ppf
    "@[<v>%a@,%d expanded, %d generated, leaf %d+%d (calls+hits), pruned \
     %d visited / %d antichain%s@]"
    pp_verdict verdict stats.expanded stats.generated stats.leaf_calls
    stats.leaf_hits stats.visited_hits stats.antichain_hits
    (if stats.antichain then "" else " (antichain off: SoD present)")
