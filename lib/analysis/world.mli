(** The deployment world a policy is analyzed against: which coalition
    servers exist, which migrations the itinerary topology allows,
    where mobile objects may enter, which concrete accesses are
    performable, and how fast anything can happen.

    The world induces the {b reachable-itinerary language}: a trace
    [a₁…aₙ] is {e performable} iff some entry server reaches
    [server(a₁)] and each [server(aᵢ)] reaches [server(aᵢ₊₁)] along the
    link digraph (reachability, not adjacency — objects may migrate
    through servers without accessing anything).  This language is
    regular — {!itinerary_dfa} is its automaton over a symbol table —
    and intersecting it with a binding's constraint language is how the
    analyzer decides that a permission is grantable nowhere any agent
    can actually stand.

    Time: one action (an access, with any migration preceding it) takes
    [step] time units, so the [i]-th access of a trace happens at
    [i·step] with the first arrival at time 0.  This is the timing
    model the analyzer's temporal-overlap findings, the safety-query
    witnesses and the oracle replay all share. *)

type t = private {
  servers : string list;  (** sorted, distinct *)
  links : Digraph.t;  (** allowed migration edges over [servers] *)
  entries : string list;  (** servers where objects may start *)
  universe : Sral.Access.t list;
      (** the concrete accesses performable in this coalition; sorted *)
  step : Temporal.Q.t;  (** time per action; strictly positive *)
}

val make :
  ?links:(string * string) list ->
  ?entries:string list ->
  ?step:Temporal.Q.t ->
  servers:string list ->
  universe:Sral.Access.t list ->
  unit ->
  t
(** Defaults: complete link graph over [servers], every server an
    entry, [step = 1].  Accesses of [universe] at unknown servers are
    kept (they are simply never performable).
    @raise Invalid_argument on an empty server list, an entry or link
    endpoint outside [servers], or a non-positive [step]. *)

val of_policy :
  ?links:(string * string) list ->
  ?entries:string list ->
  ?step:Temporal.Q.t ->
  Coordinated.Policy_lang.t ->
  t
(** Derive the world a policy file implies: servers are the concrete
    (non-wildcard) server components of granted permissions and
    binding patterns — the places the coalition actually protects;
    the universe is every concrete access spelled out by a grant or a
    binding pattern, plus each constraint-mentioned access hosted on a
    known server.  Constraint-only servers are deliberately {e not}
    deployment servers: a constraint referring to a server no grant
    lives on is exactly what the unexercisable analysis should catch.
    @raise Invalid_argument when no concrete server is derivable (pass
    {!make} an explicit world instead). *)

val reaches : t -> string -> string -> bool
(** Reflexive-transitive reachability along the links. *)

val entry_for : t -> string -> string option
(** The first entry server (in [entries] order) reaching the given
    server. *)

val performable : t -> Sral.Trace.t -> bool
(** Is the trace a walk of the world?  The empty trace is. *)

val itinerary_dfa : table:Automata.Symbol.table -> t -> Automata.Dfa.t
(** The reachable-itinerary language over the table's full alphabet:
    prefix-closed, complete; accesses at unknown servers dead-end. *)

val walks : t -> max_len:int -> Sral.Trace.t list
(** Every performable trace of length 1..[max_len] over the universe,
    in length-then-lexicographic order — the exhaustive replay grid of
    the analyzer's oracle tests.  Exponential; meant for small
    worlds. *)

val pp : Format.formatter -> t -> unit
