let rec satisfied_by_empty (c : Formula.t) =
  match c with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom _ -> false
  | Formula.Ordered _ -> false
  | Formula.Card { lo; hi = _; sel = _ } -> lo <= 0
  | Formula.And (c1, c2) -> satisfied_by_empty c1 && satisfied_by_empty c2
  | Formula.Or (c1, c2) -> satisfied_by_empty c1 || satisfied_by_empty c2
  | Formula.Not c1 -> not (satisfied_by_empty c1)

let rec derive (c : Formula.t) a =
  match c with
  | Formula.True -> Formula.True
  | Formula.False -> Formula.False
  | Formula.Atom b ->
      if Sral.Access.equal a b then Formula.True else Formula.Atom b
  | Formula.Ordered (b, c2) ->
      if Sral.Access.equal a b then
        (* the consumed b may pair with a later c2, or a fresh b-c2 pair
           may still happen entirely in the tail *)
        Formula.Or (Formula.Atom c2, Formula.Ordered (b, c2))
      else Formula.Ordered (b, c2)
  | Formula.Card { lo; hi; sel } ->
      if Selector.matches sel a then
        let lo = max 0 (lo - 1) in
        match hi with
        | Some 0 -> Formula.False
        | Some h -> Formula.Card { lo; hi = Some (h - 1); sel }
        | None -> Formula.Card { lo; hi = None; sel }
      else c
  | Formula.And (c1, c2) -> Formula.And (derive c1 a, derive c2 a)
  | Formula.Or (c1, c2) -> Formula.Or (derive c1 a, derive c2 a)
  | Formula.Not c1 -> Formula.Not (derive c1 a)

let after c a = Simplify.simplify (derive c a)
let after_trace c trace = List.fold_left after c trace
