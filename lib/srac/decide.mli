(** Semantic decision procedures for SRAC constraints — satisfiability,
    universality and language inclusion over {e every} possible access
    alphabet, not just the accesses a formula happens to mention.

    The subtlety is the alphabet.  A constraint denotes a regular trace
    language {e relative to an alphabet}, and a formula that is
    unsatisfiable over its own mentioned accesses may be satisfiable
    once other accesses exist: [count(1, inf, srv=s9)] mentions no
    access at all, yet any access at [s9] satisfies it.  Deciding a
    property "for all alphabets" is still finite because SRAC selectors
    only test field names: partition the (infinite) access space into
    the regions the formula can distinguish — one per combination of a
    {e mentioned} operation/resource/server name or a fresh
    representative standing for "any other" — and any trace maps
    region-wise onto this {b closure alphabet} preserving satisfaction
    of the formula (atoms are their own singleton regions; selectors
    are unions of regions; counts are preserved pointwise).  Hence:

    - [C] is satisfiable by {e some} trace over {e some} alphabet iff
      its DFA over the closure alphabet is non-empty;
    - [C] is valid (every trace over every alphabet satisfies it) iff
      [¬C] is unsatisfiable;
    - [L(C₁) ⊆ L(C₂)] over every alphabet iff the inclusion holds over
      their joint closure alphabet (decided as a product-DFA subset
      test).

    The closure alphabet has [(o+1)·(r+1)·(s+1)] accesses for [o]
    mentioned operations, [r] resources and [s] servers; formulas whose
    grid would exceed {!max_closure} fall back to the syntactic
    {!Simplify} checks, which only err on the side of reporting
    nothing.  [Core.Lint] delegates its satisfiability findings here so
    the syntactic lint and the semantic analyzer can never disagree. *)

val max_closure : int
(** Largest closure-alphabet size the exact procedures will build
    (4096); beyond it the syntactic fallback is used. *)

val closure_alphabet : Formula.t list -> Sral.Access.t list
(** The joint closure alphabet of the formulas: every combination of a
    mentioned (or one fresh) operation, resource and server name,
    sorted and distinct.  Always non-empty (the all-fresh access). *)

val satisfiable : Formula.t -> bool
(** Is there any trace, over any alphabet, satisfying the constraint?
    (Static semantics: every access carries an execution proof.) *)

val valid : Formula.t -> bool
(** Does every trace over every alphabet satisfy the constraint?  A
    binding whose constraint is valid is spatial dead weight. *)

val witness : Formula.t -> Sral.Trace.t option
(** A shortest satisfying trace over the closure alphabet, when
    satisfiable ([None] when unsatisfiable or over {!max_closure}). *)

val included : Formula.t -> Formula.t -> bool
(** [included c1 c2]: does every trace satisfying [c1] satisfy [c2],
    over every alphabet?  Decided as a product-DFA language-inclusion
    test over the joint closure alphabet; [false] (no claim) on
    fallback. *)

val equivalent : Formula.t -> Formula.t -> bool
(** Inclusion both ways. *)
