type t =
  | True
  | False
  | Atom of Sral.Access.t
  | Ordered of Sral.Access.t * Sral.Access.t
  | Card of { lo : int; hi : int option; sel : Selector.t }
  | And of t * t
  | Or of t * t
  | Not of t

let implies c1 c2 = Or (Not c1, c2)
let at_most n sel = Card { lo = 0; hi = Some n; sel }
let at_least n sel = Card { lo = n; hi = None; sel }

let accesses c =
  let rec collect acc = function
    | True | False | Card _ -> acc
    | Atom a -> a :: acc
    | Ordered (a1, a2) -> a1 :: a2 :: acc
    | And (c1, c2) | Or (c1, c2) -> collect (collect acc c1) c2
    | Not c -> collect acc c
  in
  List.sort_uniq Sral.Access.compare (collect [] c)

let rec size = function
  | True | False | Atom _ | Ordered _ | Card _ -> 1
  | Not c -> 1 + size c
  | And (c1, c2) | Or (c1, c2) -> 1 + size c1 + size c2

let equal c1 c2 = c1 = c2

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom a -> Format.fprintf ppf "done(%a)" Sral.Access.pp a
  | Ordered (a1, a2) ->
      Format.fprintf ppf "seq(%a, %a)" Sral.Access.pp a1 Sral.Access.pp a2
  | Card { lo; hi; sel } ->
      let hi_str = match hi with None -> "inf" | Some n -> string_of_int n in
      Format.fprintf ppf "count(%d, %s, %a)" lo hi_str Selector.pp sel
  | And (c1, c2) -> Format.fprintf ppf "(%a && %a)" pp c1 pp c2
  | Or (c1, c2) -> Format.fprintf ppf "(%a or %a)" pp c1 pp c2
  | Not c -> Format.fprintf ppf "!%a" pp_atom c

and pp_atom ppf c =
  match c with
  | True | False | Atom _ | Ordered _ | Card _ | And _ | Or _ | Not _ -> (
      match c with
      | And _ | Or _ -> Format.fprintf ppf "(%a)" pp c
      | _ -> pp ppf c)

let to_string c = Format.asprintf "%a" pp c

(* ------------------------------------------------------------------ *)
(* Concrete-syntax parser                                              *)

type cursor = { s : string; mutable pos : int }

let fail cur fmt =
  Format.kasprintf
    (fun msg ->
      invalid_arg (Printf.sprintf "Formula.of_string at %d: %s" cur.pos msg))
    fmt

let skip_ws cur =
  while
    cur.pos < String.length cur.s
    && (match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    cur.pos <- cur.pos + 1
  done

let looking_at cur prefix =
  skip_ws cur;
  let n = String.length prefix in
  cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = prefix

let try_eat cur prefix =
  if looking_at cur prefix then begin
    cur.pos <- cur.pos + String.length prefix;
    true
  end
  else false

let eat cur prefix =
  if not (try_eat cur prefix) then fail cur "expected %S" prefix

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let parse_word cur =
  skip_ws cur;
  let start = cur.pos in
  while cur.pos < String.length cur.s && is_word_char cur.s.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur "expected a word";
  String.sub cur.s start (cur.pos - start)

let parse_int cur =
  let w = parse_word cur in
  match int_of_string_opt w with
  | Some i -> i
  | None -> fail cur "expected an integer, got %S" w

(* An access slice runs to the next ',' or unmatched ')' at depth 0
   (custom operations contribute balanced parentheses). *)
let parse_access cur =
  skip_ws cur;
  let start = cur.pos in
  let depth = ref 0 in
  let continue_ = ref true in
  while !continue_ && cur.pos < String.length cur.s do
    (match cur.s.[cur.pos] with
    | '(' -> incr depth
    | ')' -> if !depth = 0 then continue_ := false else decr depth
    | ',' -> if !depth = 0 then continue_ := false
    | _ -> ());
    if !continue_ then cur.pos <- cur.pos + 1
  done;
  let slice = String.sub cur.s start (cur.pos - start) in
  try Sral.Parser.access slice
  with Sral.Parser.Parse_error msg -> fail cur "bad access %S: %s" slice msg

let rec parse_sel cur =
  let lhs = parse_sel_unary cur in
  if try_eat cur "&" then Selector.And (lhs, parse_sel cur)
  else if try_eat cur "|" then Selector.Or (lhs, parse_sel cur)
  else lhs

and parse_sel_unary cur =
  if try_eat cur "~" then Selector.Not (parse_sel_unary cur)
  else if try_eat cur "(" then begin
    let sel = parse_sel cur in
    eat cur ")";
    sel
  end
  else if try_eat cur "is(" then begin
    let a = parse_access cur in
    eat cur ")";
    Selector.Exactly a
  end
  else if try_eat cur "op=" then
    Selector.Op (Sral.Access.operation_of_name (parse_word cur))
  else if try_eat cur "res=" then Selector.Resource (parse_word cur)
  else if try_eat cur "srv=" then Selector.Server (parse_word cur)
  else if try_eat cur "any" then Selector.Any
  else fail cur "expected a selector"

(* precedence: -> (right) < or < && < unary *)
let rec parse_formula cur =
  let lhs = parse_or cur in
  if try_eat cur "->" then implies lhs (parse_formula cur) else lhs

and parse_or cur =
  let lhs = parse_and cur in
  if looking_at cur "or" then begin
    (* make sure it is the keyword, not a prefix of a word *)
    let after = cur.pos + 2 in
    if after >= String.length cur.s || not (is_word_char cur.s.[after]) then begin
      cur.pos <- after;
      Or (lhs, parse_or cur)
    end
    else lhs
  end
  else lhs

and parse_and cur =
  let lhs = parse_unary cur in
  if try_eat cur "&&" then And (lhs, parse_and cur) else lhs

and parse_unary cur =
  skip_ws cur;
  if try_eat cur "!" then Not (parse_unary cur)
  else if try_eat cur "done(" then begin
    let a = parse_access cur in
    eat cur ")";
    Atom a
  end
  else if try_eat cur "seq(" then begin
    let a1 = parse_access cur in
    eat cur ",";
    let a2 = parse_access cur in
    eat cur ")";
    Ordered (a1, a2)
  end
  else if try_eat cur "count(" then begin
    let lo = parse_int cur in
    eat cur ",";
    skip_ws cur;
    let hi = if try_eat cur "inf" then None else Some (parse_int cur) in
    eat cur ",";
    let sel = parse_sel cur in
    eat cur ")";
    Card { lo; hi; sel }
  end
  else if try_eat cur "(" then begin
    let c = parse_formula cur in
    eat cur ")";
    c
  end
  else if try_eat cur "true" then True
  else if try_eat cur "false" then False
  else fail cur "expected a constraint"

let of_string s =
  let cur = { s; pos = 0 } in
  let c = parse_formula cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing input";
  c
