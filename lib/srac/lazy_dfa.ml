(* Lazy subset construction over Brzozowski derivative residuals.

   A machine is a growable DFA whose states are *simplified residual
   formulas* ({!Derivative.after} images of the source constraint) and
   whose alphabet is an arena of interned accesses: the constraint's
   own accesses plus every access the monitored object performs.
   Nothing is compiled up front — a transition is materialized the
   first time some trace actually takes it, and from then on stepping
   is two array reads.  The steady-state decision path therefore
   allocates nothing: arrays are preallocated and grown geometrically,
   symbol lookup uses a no-option hashtable probe, and verdict
   (nullability) and feasibility are cached per state.

   Equivalence with the eager oracle (`Compile.dfa` / `Trace_sat.sat` /
   `Program_sat.prefix_feasible`) is property-tested in test_srac and
   differentially fuzzed through the full decision procedure in
   test_fuzz. *)

module Access_tbl = Hashtbl.Make (struct
  type t = Sral.Access.t

  let equal = Sral.Access.equal
  let hash = Sral.Access.hash
end)

module Formula_tbl = Hashtbl.Make (struct
  type t = Formula.t

  let equal = Formula.equal
  let hash = Hashtbl.hash
end)

type t = {
  source : Formula.t;  (* the raw constraint, pre-simplification *)
  mutable syms : Sral.Access.t array;  (* symbol id -> access *)
  sym_ids : int Access_tbl.t;  (* access -> symbol id *)
  mutable sym_count : int;
  mutable states : Formula.t array;  (* state id -> residual *)
  mutable null : bool array;  (* satisfied-by-empty-extension flag *)
  state_ids : int Formula_tbl.t;  (* residual -> state id *)
  mutable state_count : int;
  mutable rows : int array array;  (* state -> symbol -> state; -1 = lazy *)
  mutable feas : int array;  (* -1 unknown / 0 infeasible / 1 feasible *)
  mutable feas_stamp : int array;  (* arena size when feas was recorded *)
  mutable gen : int array;  (* search-visited generation marks *)
  mutable cur_gen : int;
  mutable materialized : int;  (* transitions materialized so far *)
}

(* Residual state spaces are finite for constraints whose simplified
   derivatives close up (the n-ary {!Simplify} canonicalization
   guarantees this for the SRAC connectives), but a non-canonical
   corner would otherwise grow states without bound — fail loudly
   instead of consuming the heap. *)
let max_states = 1 lsl 16

let dummy_access = Sral.Access.read "" ~at:""

let grow_array a len fill =
  let a' = Array.make len fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let intern_sym m a =
  match Access_tbl.find m.sym_ids a with
  | id -> id
  | exception Not_found ->
      let id = m.sym_count in
      if id = Array.length m.syms then
        m.syms <- grow_array m.syms (2 * id) dummy_access;
      m.syms.(id) <- a;
      Access_tbl.add m.sym_ids a id;
      m.sym_count <- id + 1;
      id

let find_sym m a =
  match Access_tbl.find m.sym_ids a with
  | id -> id
  | exception Not_found -> -1

let intern_state m f =
  match Formula_tbl.find m.state_ids f with
  | id -> id
  | exception Not_found ->
      let id = m.state_count in
      if id >= max_states then
        invalid_arg
          (Format.asprintf "Lazy_dfa: residual state space exploded for %a"
             Formula.pp m.source);
      if id = Array.length m.states then begin
        let len = 2 * id in
        m.states <- grow_array m.states len Formula.True;
        m.null <- grow_array m.null len false;
        m.rows <- grow_array m.rows len [||];
        m.feas <- grow_array m.feas len (-1);
        m.feas_stamp <- grow_array m.feas_stamp len 0;
        m.gen <- grow_array m.gen len 0
      end;
      m.states.(id) <- f;
      m.null.(id) <- Derivative.satisfied_by_empty f;
      m.rows.(id) <- Array.make (max 4 m.sym_count) (-1);
      m.feas.(id) <- -1;
      m.feas_stamp.(id) <- 0;
      m.gen.(id) <- 0;
      Formula_tbl.add m.state_ids f id;
      m.state_count <- id + 1;
      id

let create c =
  let m =
    {
      source = c;
      syms = Array.make 4 dummy_access;
      sym_ids = Access_tbl.create 16;
      sym_count = 0;
      states = Array.make 8 Formula.True;
      null = Array.make 8 false;
      state_ids = Formula_tbl.create 16;
      state_count = 0;
      rows = Array.make 8 [||];
      feas = Array.make 8 (-1);
      feas_stamp = Array.make 8 0;
      gen = Array.make 8 0;
      cur_gen = 0;
      materialized = 0;
    }
  in
  (* intern the *raw* formula's accesses: the eager feasibility oracle
     builds its alphabet from [Formula.accesses c] before
     simplification, and simplification may drop accesses that still
     matter to cardinality selectors *)
  List.iter (fun a -> ignore (intern_sym m a)) (Formula.accesses c);
  ignore (intern_state m (Simplify.simplify c));
  m

let start _ = 0
let nullable m q = m.null.(q)
let residual m q = m.states.(q)
let num_states m = m.state_count
let num_symbols m = m.sym_count
let transitions m = m.materialized

let materialize m q s =
  let row = m.rows.(q) in
  let row =
    if s < Array.length row then row
    else begin
      let row' = grow_array row (max (2 * Array.length row) (s + 1)) (-1) in
      m.rows.(q) <- row';
      row'
    end
  in
  let tgt = intern_state m (Derivative.after m.states.(q) m.syms.(s)) in
  row.(s) <- tgt;
  m.materialized <- m.materialized + 1;
  tgt

let step m q s =
  let row = m.rows.(q) in
  if s < Array.length row then begin
    let tgt = Array.unsafe_get row s in
    if tgt >= 0 then tgt else materialize m q s
  end
  else materialize m q s

let step_access m q a = step m q (intern_sym m a)

let nullable_after m q a =
  let s = find_sym m a in
  if s >= 0 then m.null.(step m q s)
  else
    (* an access outside the arena (a denied or not-yet-performed
       query) must not pollute the alphabet: derive directly without
       interning.  Cold path; allocates. *)
    Derivative.satisfied_by_empty (Derivative.after m.states.(q) a)

(* Is any nullable residual reachable from [q] over the current
   alphabet?  Mirrors [Program_sat.prefix_feasible]'s
   final-state-reachability over the same symbol set.  A [true] answer
   is stable under arena growth (more symbols only add words); [false]
   is stamped with the arena size and recomputed if the arena has
   grown since. *)
let search m q =
  m.cur_gen <- m.cur_gen + 1;
  let g = m.cur_gen in
  let n_syms = m.sym_count in
  (* derivatives introduce no fresh accesses, so the alphabet is fixed
     during the search even though new states may be interned *)
  let visited = ref [] in
  let stack = ref [ q ] in
  m.gen.(q) <- g;
  let found = ref false in
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        visited := v :: !visited;
        if m.null.(v) || m.feas.(v) = 1 then found := true
        else if m.feas.(v) = 0 && m.feas_stamp.(v) = n_syms then
          () (* known dead end at this alphabet: don't expand *)
        else
          for s = 0 to n_syms - 1 do
            let t = step m v s in
            if m.gen.(t) <> g then begin
              m.gen.(t) <- g;
              stack := t :: !stack
            end
          done
  done;
  if !found then begin
    m.feas.(q) <- 1;
    true
  end
  else begin
    (* everything reachable from any visited state was explored, so
       the whole visited set is infeasible at this alphabet *)
    List.iter
      (fun v ->
        m.feas.(v) <- 0;
        m.feas_stamp.(v) <- n_syms)
      !visited;
    false
  end

let feasible m q =
  if m.null.(q) then true
  else if m.feas.(q) = 1 then true
  else if m.feas.(q) = 0 && m.feas_stamp.(q) = m.sym_count then false
  else search m q
