(** Lazy-derivative constraint machines (RE2-style lazy subset
    construction over Brzozowski residuals).

    The eager pipeline compiles a constraint to a full DFA over a fixed
    alphabet before the first query ({!Compile}); this module instead
    materializes exactly the states and transitions the monitored
    object's trace actually visits.  States are interned simplified
    {!Derivative} residuals, symbols are interned accesses, and both
    live in preallocated geometrically-grown arrays, so the warm path
    — [step_access] on a known symbol, [nullable], a memoized
    [feasible] — performs zero allocation.

    Semantics (all property-tested against the eager oracles):
    - [nullable m q] = [Trace_sat.sat] of the trace that led to [q]
      (with vacuous proofs), because the residual of a satisfied
      constraint is satisfied by the empty extension;
    - [feasible m q] = [Program_sat.prefix_feasible] of that trace over
      the machine's current alphabet (the constraint's accesses plus
      every access stepped so far). *)

type t

val create : Formula.t -> t
(** Build a machine for the constraint.  Interns the constraint's own
    accesses (pre-simplification, matching the eager feasibility
    oracle's alphabet) and the simplified constraint as state 0.  No
    transitions are materialized. *)

val start : t -> int
(** The initial state (the simplified source constraint). *)

val step_access : t -> int -> Sral.Access.t -> int
(** Step a residual state by a *performed* access, interning the
    access into the alphabet if new.  Warm transitions are two array
    reads; cold ones derive + simplify once and are memoized. *)

val nullable : t -> int -> bool
(** Is the state's residual satisfied by the empty extension?  O(1). *)

val nullable_after : t -> int -> Sral.Access.t -> bool
(** [nullable] of the state reached by the access — without interning
    it: a hypothetical (possibly denied) access must not enter the
    alphabet and skew later feasibility answers.  Allocation-free when
    the access is already interned. *)

val feasible : t -> int -> bool
(** Can the state's residual still be satisfied by some extension over
    the machine's current alphabet?  Memoized per state: a [true]
    answer is permanent (alphabets only grow), a [false] answer is
    stamped with the alphabet size and recomputed after growth. *)

val residual : t -> int -> Formula.t
(** The state's residual formula (for tests and diagnostics). *)

val num_states : t -> int
val num_symbols : t -> int

val transitions : t -> int
(** Transitions materialized so far. *)
