module Symbol = Automata.Symbol
module Dfa = Automata.Dfa

let alphabet_of ~program formula =
  Symbol.of_accesses (Sral.Program.accesses program @ Formula.accesses formula)

(* Σ* a Σ* : 2 states; state 1 (seen) is absorbing-final. *)
let atom_dfa ~table a =
  let alphabet = Symbol.alphabet table in
  match Symbol.find table a with
  | None ->
      (* the access can never occur in a trace over this alphabet *)
      Dfa.empty_lang ~alphabet
  | Some s ->
      let k = List.length alphabet in
      let row0 = Array.init k (fun i -> if i = s then 1 else 0) in
      let row1 = Array.make k 1 in
      Dfa.of_tables ~alphabet ~start:0 ~finals:[| false; true |]
        ~next:[| row0; row1 |]

(* Σ* a1 Σ* a2 Σ* : 3 states. *)
let ordered_dfa ~table a1 a2 =
  let alphabet = Symbol.alphabet table in
  match (Symbol.find table a1, Symbol.find table a2) with
  | None, _ | _, None -> Dfa.empty_lang ~alphabet
  | Some s1, Some s2 ->
      let k = List.length alphabet in
      let row0 = Array.init k (fun i -> if i = s1 then 1 else 0) in
      let row1 = Array.init k (fun i -> if i = s2 then 2 else 1) in
      let row2 = Array.make k 2 in
      Dfa.of_tables ~alphabet ~start:0 ~finals:[| false; false; true |]
        ~next:[| row0; row1; row2 |]

(* Counting automaton for #(lo, hi, sel): state = number of matching
   symbols seen, saturating at [cap]. *)
let card_dfa ~table ~lo ~hi sel =
  let alphabet = Symbol.alphabet table in
  let matching =
    List.map (fun s -> Selector.matches sel (Symbol.access table s)) alphabet
  in
  let matching = Array.of_list matching in
  let cap = match hi with Some h -> h + 1 | None -> lo in
  let num_states = cap + 1 in
  let k = Array.length matching in
  let next =
    Array.init num_states (fun q ->
        Array.init k (fun i ->
            if matching.(i) then Stdlib.min cap (q + 1) else q))
  in
  let finals =
    Array.init num_states (fun q ->
        lo <= q && match hi with None -> true | Some h -> q <= h)
  in
  Dfa.of_tables ~alphabet ~start:0 ~finals ~next

let rec dfa ~table ~proofs (c : Formula.t) =
  let alphabet = Symbol.alphabet table in
  match c with
  | Formula.True -> Dfa.universal_lang ~alphabet
  | Formula.False -> Dfa.empty_lang ~alphabet
  | Formula.Atom a ->
      if Proof.holds proofs a then atom_dfa ~table a
      else Dfa.empty_lang ~alphabet
  | Formula.Ordered (a1, a2) ->
      if Proof.holds proofs a1 && Proof.holds proofs a2 then
        ordered_dfa ~table a1 a2
      else Dfa.empty_lang ~alphabet
  | Formula.Card { lo; hi; sel } -> card_dfa ~table ~lo ~hi sel
  | Formula.And (c1, c2) ->
      Dfa.minimize (Dfa.inter (dfa ~table ~proofs c1) (dfa ~table ~proofs c2))
  | Formula.Or (c1, c2) ->
      Dfa.minimize (Dfa.union (dfa ~table ~proofs c1) (dfa ~table ~proofs c2))
  | Formula.Not c1 -> Dfa.complement (dfa ~table ~proofs c1)
