module Symbol = Automata.Symbol
module Dfa = Automata.Dfa

let max_closure = 4096

(* --- mentioned field names ---------------------------------------- *)

type names = {
  ops : Sral.Access.operation list;
  resources : string list;
  servers : string list;
}

let empty_names = { ops = []; resources = []; servers = [] }

let add_op n op = if List.mem op n.ops then n else { n with ops = op :: n.ops }

let add_resource n r =
  if List.mem r n.resources then n else { n with resources = r :: n.resources }

let add_server n s =
  if List.mem s n.servers then n else { n with servers = s :: n.servers }

let add_access n (a : Sral.Access.t) =
  add_server (add_resource (add_op n a.op) a.resource) a.server

let rec add_selector n = function
  | Selector.Any -> n
  | Selector.Op op -> add_op n op
  | Selector.Resource r -> add_resource n r
  | Selector.Server s -> add_server n s
  | Selector.Exactly a -> add_access n a
  | Selector.And (s1, s2) | Selector.Or (s1, s2) ->
      add_selector (add_selector n s1) s2
  | Selector.Not s -> add_selector n s

let rec add_formula n = function
  | Formula.True | Formula.False -> n
  | Formula.Atom a -> add_access n a
  | Formula.Ordered (a1, a2) -> add_access (add_access n a1) a2
  | Formula.Card { sel; _ } -> add_selector n sel
  | Formula.And (c1, c2) | Formula.Or (c1, c2) ->
      add_formula (add_formula n c1) c2
  | Formula.Not c -> add_formula n c

(* A name different from every string in [used] — the representative of
   "any other name" in its field.  Deterministic. *)
let fresh used =
  let rec go candidate =
    if List.mem candidate used then go (candidate ^ "_") else candidate
  in
  go "other"

let closure_alphabet formulas =
  let n = List.fold_left add_formula empty_names formulas in
  let op_names =
    List.map Sral.Access.operation_name n.ops
  in
  let ops = Sral.Access.Custom (fresh op_names) :: n.ops in
  let resources = fresh n.resources :: n.resources in
  let servers = fresh n.servers :: n.servers in
  let grid =
    List.concat_map
      (fun op ->
        List.concat_map
          (fun resource ->
            List.map
              (fun server -> Sral.Access.make ~op ~resource ~server)
              servers)
          resources)
      ops
  in
  List.sort_uniq Sral.Access.compare grid

(* --- exact procedures with syntactic fallback --------------------- *)

let compiled formulas =
  let alphabet = closure_alphabet formulas in
  if List.length alphabet > max_closure then None
  else
    let table = Symbol.of_accesses alphabet in
    Some
      ( table,
        List.map (fun c -> Compile.dfa ~table ~proofs:Proof.always c) formulas
      )

let satisfiable c =
  match compiled [ c ] with
  | Some (_, [ d ]) -> not (Dfa.is_empty d)
  | _ -> not (Simplify.is_trivially_false c)

let valid c =
  match compiled [ Formula.Not c ] with
  | Some (_, [ d ]) -> Dfa.is_empty d
  | _ -> Simplify.is_trivially_true c

let witness c =
  match compiled [ c ] with
  | Some (table, [ d ]) ->
      Option.map
        (List.map (fun s -> Symbol.access table s))
        (Dfa.shortest_witness d)
  | _ -> None

let included c1 c2 =
  match compiled [ c1; c2 ] with
  | Some (_, [ d1; d2 ]) -> Dfa.subset d1 d2
  | _ -> false

let equivalent c1 c2 =
  match compiled [ c1; c2 ] with
  | Some (_, [ d1; d2 ]) -> Dfa.equiv d1 d2
  | _ -> false
