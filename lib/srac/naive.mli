(** Naive baseline checker: enumerate the trace model and test each
    trace with Definition 3.6.

    Exact for loop-free programs; for programs with loops it is a
    bounded approximation (loops unrolled [loop_bound] times), which is
    the best an enumerating checker can do — this is exactly the
    "seems to be undecidable when traces(P) is infinite" strawman the
    paper raises before Theorem 3.2, and the benchmark baseline the
    symbolic checker is compared against (experiment E7). *)

val check :
  ?proofs:Proof.store ->
  ?modality:Program_sat.modality ->
  ?loop_bound:int ->
  Sral.Ast.t ->
  Formula.t ->
  Program_sat.outcome
(** [loop_bound] defaults to 3. *)

val trace_count : ?loop_bound:int -> Sral.Ast.t -> int
(** Size of the enumerated (bounded) trace model — the thing that blows
    up. *)
