let ordered_in_trace trace a1 a2 =
  (* exists i < j with t_i = a1 and t_j = a2 *)
  let rec scan = function
    | [] -> false
    | b :: rest ->
        if Sral.Access.equal b a1 then Sral.Trace.mem a2 rest || scan rest
        else scan rest
  in
  scan trace

let rec sat ~proofs trace (c : Formula.t) =
  match c with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom a -> Sral.Trace.mem a trace && Proof.holds proofs a
  | Formula.Ordered (a1, a2) ->
      ordered_in_trace trace a1 a2
      && Proof.holds proofs a1 && Proof.holds proofs a2
  | Formula.Card { lo; hi; sel } ->
      let n = Sral.Trace.count (Selector.matches sel) trace in
      lo <= n && (match hi with None -> true | Some h -> n <= h)
  | Formula.And (c1, c2) -> sat ~proofs trace c1 && sat ~proofs trace c2
  | Formula.Or (c1, c2) -> sat ~proofs trace c1 || sat ~proofs trace c2
  | Formula.Not c1 -> not (sat ~proofs trace c1)

let explain ~proofs trace c =
  let rec find_failure (c : Formula.t) : string option =
    match c with
    | Formula.True -> None
    | Formula.False -> Some "constraint is false"
    | Formula.Atom a ->
        if not (Sral.Trace.mem a trace) then
          Some (Format.asprintf "access %a not in trace" Sral.Access.pp a)
        else if not (Proof.holds proofs a) then
          Some (Format.asprintf "no execution proof for %a" Sral.Access.pp a)
        else None
    | Formula.Ordered (a1, a2) ->
        if sat ~proofs trace c then None
        else
          Some
            (Format.asprintf "%a does not precede %a (with proofs)"
               Sral.Access.pp a1 Sral.Access.pp a2)
    | Formula.Card { lo; hi; sel } ->
        let n = Sral.Trace.count (Selector.matches sel) trace in
        if n < lo then
          Some
            (Format.asprintf "only %d accesses match %a (need >= %d)" n
               Selector.pp sel lo)
        else (
          match hi with
          | Some h when n > h ->
              Some
                (Format.asprintf "%d accesses match %a (allowed <= %d)" n
                   Selector.pp sel h)
          | _ -> None)
    | Formula.And (c1, c2) -> (
        match find_failure c1 with
        | Some _ as failure -> failure
        | None -> find_failure c2)
    | Formula.Or (c1, c2) ->
        if sat ~proofs trace c1 || sat ~proofs trace c2 then None
        else
          Some
            (Format.asprintf "neither disjunct holds: %a" Formula.pp
               (Formula.Or (c1, c2)))
    | Formula.Not c1 ->
        if sat ~proofs trace c1 then
          Some (Format.asprintf "negated constraint holds: %a" Formula.pp c1)
        else None
  in
  match find_failure c with None -> Ok () | Some msg -> Error msg
