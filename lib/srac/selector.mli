(** Selection operations [σ] over sets of accesses.

    Example 3.5 uses [σ_RSW(A)] to select the accesses touching a
    restricted software package regardless of site; a selector is a
    predicate over accesses built from attribute tests. *)

type t =
  | Any
  | Op of Sral.Access.operation
  | Resource of string
  | Server of string
  | Exactly of Sral.Access.t
  | And of t * t
  | Or of t * t
  | Not of t

val matches : t -> Sral.Access.t -> bool

val select : t -> Sral.Access.t list -> Sral.Access.t list
(** [σ(A)]: the subset of [A] matching the selector. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
