type t =
  | Any
  | Op of Sral.Access.operation
  | Resource of string
  | Server of string
  | Exactly of Sral.Access.t
  | And of t * t
  | Or of t * t
  | Not of t

let rec matches sel (a : Sral.Access.t) =
  match sel with
  | Any -> true
  | Op op -> Sral.Access.operation_name op = Sral.Access.operation_name a.op
  | Resource r -> String.equal r a.resource
  | Server s -> String.equal s a.server
  | Exactly a' -> Sral.Access.equal a a'
  | And (s1, s2) -> matches s1 a && matches s2 a
  | Or (s1, s2) -> matches s1 a || matches s2 a
  | Not s -> not (matches s a)

let select sel accesses = List.filter (matches sel) accesses
let equal s1 s2 = s1 = s2

let rec pp ppf = function
  | Any -> Format.pp_print_string ppf "any"
  | Op op -> Format.fprintf ppf "op=%s" (Sral.Access.operation_name op)
  | Resource r -> Format.fprintf ppf "res=%s" r
  | Server s -> Format.fprintf ppf "srv=%s" s
  | Exactly a -> Format.fprintf ppf "is(%a)" Sral.Access.pp a
  | And (s1, s2) -> Format.fprintf ppf "(%a & %a)" pp s1 pp s2
  | Or (s1, s2) -> Format.fprintf ppf "(%a | %a)" pp s1 pp s2
  | Not s -> Format.fprintf ppf "~%a" pp s
