(** Constraint normalization and simplification.

    Policy files accumulate redundancy (machine-generated bindings,
    aggregation of several officers' rules).  [simplify] applies
    language-preserving rewrites — constant folding, double-negation
    and De Morgan pushes, idempotence, absorption of trivially
    true/false cardinalities — and [nnf] produces negation normal form.
    Preservation of Definition 3.6 semantics is property-tested against
    both the trace checker and the compiled automata. *)

val nnf : Formula.t -> Formula.t
(** Negation normal form: negation only on atomic constraints.
    (Atoms, orderings and cardinalities stay negated as units: SRAC has
    no complemented atom forms.) *)

val simplify : Formula.t -> Formula.t
(** Fixpoint of the rewrite system.  Never grows the formula. *)

val is_trivially_true : Formula.t -> bool
(** Syntactic: the formula simplifies to [True]. *)

val is_trivially_false : Formula.t -> bool
