(** The shared-resource access constraint language SRAC
    (Definition 3.4):

    {v  C ::= T | F | a | a₁⊗a₂ | #(m,n,σ(A)) | C∧C | C∨C | ¬C  v}

    with [C₁→C₂] defined as [¬C₁∨C₂]. *)

type t =
  | True
  | False
  | Atom of Sral.Access.t  (** [a]: the access must be performed *)
  | Ordered of Sral.Access.t * Sral.Access.t
      (** [a₁ ⊗ a₂]: [a₁] is performed strictly before [a₂] (other
          accesses may come in between). *)
  | Card of { lo : int; hi : int option; sel : Selector.t }
      (** [#(m, n, σ(A))]: the number of performed accesses selected by
          [σ] lies in [[m, n]]; [hi = None] means unbounded above. *)
  | And of t * t
  | Or of t * t
  | Not of t

val implies : t -> t -> t
(** [implies c1 c2 = Or (Not c1, c2)], the paper's [→]. *)

val at_most : int -> Selector.t -> t
(** [at_most n σ] is [#(0, n, σ(A))] — e.g. Example 3.5's restricted
    software rule is [at_most 5 (Resource "rsw")]. *)

val at_least : int -> Selector.t -> t

val accesses : t -> Sral.Access.t list
(** Accesses mentioned by atoms and ordering constraints, sorted
    distinct.  (Selectors are predicates and mention no specific
    access.) *)

val size : t -> int
(** AST node count — the [n] of Theorem 3.2. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Parse the concrete syntax used by policy files:
    {v
      C := 'true' | 'false'
         | 'done(' access ')'            atom
         | 'seq(' access ',' access ')'  ordering  a1 ⊗ a2
         | 'count(' m ',' (n|'inf') ',' sel ')'
         | C '&&' C | C 'or' C | '!' C | C '->' C | '(' C ')'
      sel := 'any' | 'op=' name | 'res=' name | 'srv=' name
           | 'is(' access ')' | sel '&' sel | sel '|' sel | '~' sel
           | '(' sel ')'
    v}
    @raise Invalid_argument on parse errors. *)
