type entry = { access : Sral.Access.t; time : Temporal.Q.t }

type store = Store of entry list ref | Always
(* entries kept in reverse issue order *)

let create () = Store (ref [])

let record store access ~time =
  match store with
  | Always -> invalid_arg "Proof.record: the Always store is read-only"
  | Store entries -> entries := { access; time } :: !entries

let entry_list = function Always -> [] | Store entries -> List.rev !entries

let holds store a =
  match store with
  | Always -> true
  | Store entries -> List.exists (fun e -> Sral.Access.equal e.access a) !entries

let holds_before store a t =
  match store with
  | Always -> true
  | Store entries ->
      List.exists
        (fun e -> Sral.Access.equal e.access a && Temporal.Q.le e.time t)
        !entries

let times store a =
  List.sort Temporal.Q.compare
    (List.filter_map
       (fun e -> if Sral.Access.equal e.access a then Some e.time else None)
       (entry_list store))

let count_matching store pred =
  List.length (List.filter (fun e -> pred e.access) (entry_list store))

let entries = entry_list
let rev_entries = function Always -> [] | Store entries -> !entries

let performed_trace store =
  let by_time =
    List.stable_sort
      (fun e1 e2 -> Temporal.Q.compare e1.time e2.time)
      (entry_list store)
  in
  List.map (fun e -> e.access) by_time

let size store = List.length (entry_list store)

let copy = function
  | Always -> Always
  | Store entries -> Store (ref !entries)

let always = Always
