module Symbol = Automata.Symbol
module Dfa = Automata.Dfa

type modality = Exists | Forall

type outcome = { holds : bool; witness : Sral.Trace.t option }

let check ?(proofs = Proof.always) ?(modality = Exists) program formula =
  let table = Compile.alphabet_of ~program formula in
  let alphabet = Symbol.alphabet table in
  let program_dfa = Automata.Of_program.dfa ~table ~alphabet program in
  let constraint_dfa = Compile.dfa ~table ~proofs formula in
  let decode word = List.map (Symbol.access table) word in
  match modality with
  | Exists ->
      let satisfying = Dfa.inter program_dfa constraint_dfa in
      let witness = Dfa.shortest_witness satisfying in
      { holds = witness <> None; witness = Option.map decode witness }
  | Forall ->
      let violating = Dfa.diff program_dfa constraint_dfa in
      let witness = Dfa.shortest_witness violating in
      { holds = witness = None; witness = Option.map decode witness }

type stats = {
  alphabet_size : int;
  program_states : int;
  constraint_states : int;
}

let instrument ?(proofs = Proof.always) program formula =
  let table = Compile.alphabet_of ~program formula in
  let alphabet = Symbol.alphabet table in
  let program_dfa = Automata.Of_program.dfa ~table ~alphabet program in
  let constraint_dfa = Compile.dfa ~table ~proofs formula in
  {
    alphabet_size = List.length alphabet;
    program_states = Dfa.num_states program_dfa;
    constraint_states = Dfa.num_states constraint_dfa;
  }

let check_bool ?proofs ?modality program formula =
  (check ?proofs ?modality program formula).holds

let prefix_feasible ?(universe = []) ~performed formula =
  let table =
    Symbol.of_accesses (Formula.accesses formula @ performed @ universe)
  in
  let dfa = Compile.dfa ~table ~proofs:Proof.always formula in
  let word = List.map (Symbol.intern table) performed in
  match Dfa.run dfa word with
  | None -> false
  | Some q -> Dfa.final_reachable_from dfa q
