(** Execution proofs and the proof store.

    When a coalition server carries out an access it issues an
    execution proof recording [(o, op, r, s)] and the execution time
    (Section 2).  [Pr_x(a)] is true iff such a proof exists.  The store
    belongs to one mobile object (the [o] component is fixed). *)

type entry = { access : Sral.Access.t; time : Temporal.Q.t }

type store

val create : unit -> store

val record : store -> Sral.Access.t -> time:Temporal.Q.t -> unit
(** Issue a proof for an executed access. *)

val holds : store -> Sral.Access.t -> bool
(** [Pr_x(a)]. *)

val holds_before : store -> Sral.Access.t -> Temporal.Q.t -> bool
(** A proof with [time <= t] exists. *)

val times : store -> Sral.Access.t -> Temporal.Q.t list
(** Ascending execution times of all proofs for the access. *)

val count_matching : store -> (Sral.Access.t -> bool) -> int
(** Number of proofs whose access matches the predicate (with
    multiplicity). *)

val entries : store -> entry list
(** All proofs in issue order. *)

val rev_entries : store -> entry list
(** All proofs newest-first, O(1) — the store's native order.  The
    lazy decision path reads only the suffix it has not yet folded
    into its residual cursor, so it must not pay a list reversal per
    decision. *)

val performed_trace : store -> Sral.Trace.t
(** The accesses in execution-time order — the trace the object has
    actually performed so far. *)

val size : store -> int
val copy : store -> store

val always : store
(** A store for which [Pr_x] holds of every access — used by static
    (pre-execution) constraint checking, where Definition 3.6's
    [Pr_c(a)] conjunct is vacuous.  {!record} on it is an error. *)
