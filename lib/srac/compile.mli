(** Compilation of SRAC constraints to DFAs — the symbolic half of the
    Theorem 3.2 decision procedure.

    Every SRAC formula denotes a regular (indeed star-free) set of
    traces over a finite access alphabet:

    - [a] — every trace containing [a]:         [Σ* a Σ*];
    - [a₁⊗a₂] — [a₁] strictly before [a₂]:      [Σ* a₁ Σ* a₂ Σ*];
    - [#(m,n,σ)] — a counting automaton with [n+2] (or [m+1]) states,
      saturating above its largest relevant count;
    - booleans — DFA product and complement.

    The DFAs are complete over the chosen alphabet, so the sizes stay
    small: atoms are 2–3 states, cardinality [O(n)], and products
    multiply — polynomial for the conjunctive constraints access
    policies are built from.

    The Definition 3.6 proof conjunct is resolved at compile time: an
    atom whose access has no execution proof in [proofs] denotes the
    empty language (it can never be satisfied), exactly mirroring
    [t ⊨ a  ⟺  a ∈ t ∧ Pr_x(a)].  Pass {!Proof.always} to get the
    purely structural semantics. *)

val dfa :
  table:Automata.Symbol.table ->
  proofs:Proof.store ->
  Formula.t ->
  Automata.Dfa.t
(** Over the full alphabet of [table].  Accesses mentioned by the
    formula must already be interned (use {!alphabet_of}). *)

val alphabet_of :
  program:Sral.Ast.t -> Formula.t -> Automata.Symbol.table
(** Symbol table covering the program's and the constraint's accesses —
    the alphabet both sides of the check are compiled over. *)
