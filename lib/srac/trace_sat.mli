(** Finite-trace constraint satisfaction — Definition 3.6.

    [sat ~proofs t C] decides [t ⊨ C] where the atom and ordering cases
    additionally require execution proofs ([Pr_x]) as the definition
    demands.  Pass {!Proof.always} for the purely structural reading
    (static checking before execution). *)

val sat : proofs:Proof.store -> Sral.Trace.t -> Formula.t -> bool

val explain :
  proofs:Proof.store -> Sral.Trace.t -> Formula.t -> (unit, string) result
(** Like {!sat} but a failing check reports which subformula failed
    first (for audit logs and error messages). *)
