open Formula

let rec nnf c =
  match c with
  | True | False | Atom _ | Ordered _ | Card _ -> c
  | And (c1, c2) -> And (nnf c1, nnf c2)
  | Or (c1, c2) -> Or (nnf c1, nnf c2)
  | Not inner -> (
      match inner with
      | True -> False
      | False -> True
      | Not c1 -> nnf c1
      | And (c1, c2) -> Or (nnf (Not c1), nnf (Not c2))
      | Or (c1, c2) -> And (nnf (Not c1), nnf (Not c2))
      | Atom _ | Ordered _ | Card _ -> Not inner)

(* A cardinality constraint can be vacuous (every trace satisfies it)
   or unsatisfiable (no trace does). *)
let card_status ~lo ~hi =
  if lo <= 0 && hi = None then `Always
  else
    match hi with
    | Some h when h < lo -> `Never
    | Some h when h < 0 -> `Never
    | _ -> `Other

let rec rewrite c =
  match c with
  | True | False | Atom _ | Ordered _ -> c
  | Card { lo; hi; sel = _ } as card -> (
      match card_status ~lo ~hi with
      | `Always -> True
      | `Never -> False
      | `Other -> card)
  | Not c1 -> (
      match rewrite c1 with
      | True -> False
      | False -> True
      | Not c2 -> c2
      | c1' -> Not c1')
  | And (c1, c2) -> (
      match (rewrite c1, rewrite c2) with
      | False, _ | _, False -> False
      | True, c' | c', True -> c'
      | c1', c2' when equal c1' c2' -> c1'
      (* absorption: c && (c or d) = c *)
      | c1', Or (a, b) when equal c1' a || equal c1' b -> c1'
      | Or (a, b), c2' when equal c2' a || equal c2' b -> c2'
      (* contradiction: c && !c = false *)
      | c1', Not c2' when equal c1' c2' -> False
      | Not c1', c2' when equal c1' c2' -> False
      | c1', c2' -> And (c1', c2'))
  | Or (c1, c2) -> (
      match (rewrite c1, rewrite c2) with
      | True, _ | _, True -> True
      | False, c' | c', False -> c'
      | c1', c2' when equal c1' c2' -> c1'
      (* absorption: c or (c && d) = c *)
      | c1', And (a, b) when equal c1' a || equal c1' b -> c1'
      | And (a, b), c2' when equal c2' a || equal c2' b -> c2'
      (* excluded middle: c or !c = true *)
      | c1', Not c2' when equal c1' c2' -> True
      | Not c1', c2' when equal c1' c2' -> True
      | c1', c2' -> Or (c1', c2'))

let simplify c =
  let rec fix c =
    let c' = rewrite c in
    if equal c c' then c else fix c'
  in
  fix c

let is_trivially_true c = equal (simplify c) True
let is_trivially_false c = equal (simplify c) False
