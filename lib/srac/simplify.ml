open Formula

let rec nnf c =
  match c with
  | True | False | Atom _ | Ordered _ | Card _ -> c
  | And (c1, c2) -> And (nnf c1, nnf c2)
  | Or (c1, c2) -> Or (nnf c1, nnf c2)
  | Not inner -> (
      match inner with
      | True -> False
      | False -> True
      | Not c1 -> nnf c1
      | And (c1, c2) -> Or (nnf (Not c1), nnf (Not c2))
      | Or (c1, c2) -> And (nnf (Not c1), nnf (Not c2))
      | Atom _ | Ordered _ | Card _ -> Not inner)

(* A cardinality constraint can be vacuous (every trace satisfies it)
   or unsatisfiable (no trace does). *)
let card_status ~lo ~hi =
  if lo <= 0 && hi = None then `Always
  else
    match hi with
    | Some h when h < lo -> `Never
    | Some h when h < 0 -> `Never
    | _ -> `Other

(* Left-to-right conjunct/disjunct spines.  [And]/[Or] are treated as
   n-ary: the rewrite flattens the whole spine, folds constants,
   removes duplicates (keeping the first occurrence) and rebuilds
   right-nested.  Binary-only rewriting cannot reach a canonical form
   for derivative residuals — deriving seq(b,c) by b repeatedly yields
   ever-deeper [Or (Atom c, Or (Atom c, ...))] towers that only n-ary
   dedup collapses, and a finite residual state space (see
   {!Lazy_dfa}) depends on that collapse. *)
let rec and_spine c acc =
  match c with
  | And (c1, c2) -> and_spine c1 (and_spine c2 acc)
  | c -> c :: acc

let rec or_spine c acc =
  match c with
  | Or (c1, c2) -> or_spine c1 (or_spine c2 acc)
  | c -> c :: acc

let dedup parts =
  let rec go seen = function
    | [] -> List.rev seen
    | p :: rest ->
        if List.exists (equal p) seen then go seen rest
        else go (p :: seen) rest
  in
  go [] parts

(* c && !c (resp. c or !c) anywhere in the spine *)
let has_complementary parts =
  List.exists
    (fun p -> match p with Not q -> List.exists (equal q) parts | _ -> false)
    parts

let rec rewrite c =
  match c with
  | True | False | Atom _ | Ordered _ -> c
  | Card { lo; hi; sel = _ } as card -> (
      match card_status ~lo ~hi with
      | `Always -> True
      | `Never -> False
      | `Other -> card)
  | Not c1 -> (
      match rewrite c1 with
      | True -> False
      | False -> True
      | Not c2 -> c2
      | c1' -> Not c1')
  | And (c1, c2) ->
      let parts = and_spine (rewrite c1) (and_spine (rewrite c2) []) in
      if List.exists (equal False) parts then False
      else
        let parts = List.filter (fun p -> not (equal True p)) parts in
        let parts = dedup parts in
        if has_complementary parts then False
        else
          (* absorption: c && (c or d) = c — drop any disjunction one
             of whose disjuncts also appears as a conjunct *)
          let parts =
            List.filter
              (fun p ->
                match p with
                | Or _ ->
                    not
                      (List.exists
                         (fun q ->
                           (not (equal q p))
                           && List.exists (equal q) (or_spine p []))
                         parts)
                | _ -> true)
              parts
          in
          rebuild_and parts
  | Or (c1, c2) ->
      let parts = or_spine (rewrite c1) (or_spine (rewrite c2) []) in
      if List.exists (equal True) parts then True
      else
        let parts = List.filter (fun p -> not (equal False p)) parts in
        let parts = dedup parts in
        if has_complementary parts then True
        else
          (* absorption: c or (c && d) = c *)
          let parts =
            List.filter
              (fun p ->
                match p with
                | And _ ->
                    not
                      (List.exists
                         (fun q ->
                           (not (equal q p))
                           && List.exists (equal q) (and_spine p []))
                         parts)
                | _ -> true)
              parts
          in
          rebuild_or parts

and rebuild_and = function
  | [] -> True
  | [ p ] -> p
  | p :: rest -> And (p, rebuild_and rest)

and rebuild_or = function
  | [] -> False
  | [ p ] -> p
  | p :: rest -> Or (p, rebuild_or rest)

let simplify c =
  let rec fix c =
    let c' = rewrite c in
    if equal c c' then c else fix c'
  in
  fix c

let is_trivially_true c = equal (simplify c) True
let is_trivially_false c = equal (simplify c) False
