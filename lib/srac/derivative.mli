(** Syntactic derivatives of SRAC constraints.

    [after c a] is the residual constraint: a trace [a :: w] satisfies
    [c] exactly when [w] satisfies [after c a] (Brzozowski derivatives,
    lifted from languages to Definition 3.6 formulas).  This gives a
    second, automaton-free route to runtime monitoring: fold the
    performed accesses over the policy's constraint and inspect what
    remains — [True] means "already satisfied come what may", [False]
    "irrecoverably violated" — and the suite differentially tests it
    against both the trace checker and the DFA residual.

    Derivatives commute with every boolean connective (satisfaction is
    defined pointwise), so only the three atomic cases carry logic:

    - [Atom b]: discharged when [a = b];
    - [Ordered (b, c)]: when [a = b], the tail may finish the pair with
      just [c] — or start a fresh pair;
    - [Card]: matching accesses decrement the window; an exceeded upper
      bound is [False] forever.

    Proof conjuncts: the derivative treats the consumed access as
    proof-carrying (it is about traces being executed), matching
    {!Trace_sat.sat} with {!Proof.always}. *)

val after : Formula.t -> Sral.Access.t -> Formula.t
(** Simplified with {!Simplify.simplify}. *)

val after_trace : Formula.t -> Sral.Trace.t -> Formula.t
(** Left fold of {!after}. *)

val satisfied_by_empty : Formula.t -> bool
(** Does the empty trace satisfy the constraint?  (The "nullable" of
    the derivative view; [after_trace c t |> satisfied_by_empty] equals
    [Trace_sat.sat t c].) *)
