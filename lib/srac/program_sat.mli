(** Mobile-object execution satisfaction checking — Definition 3.7 and
    Theorem 3.2.

    [P ⊨ C] relates a program's (possibly infinite) trace model to a
    constraint.  Section 3.4's [check(P, C)] asks whether the program
    *can* satisfy the constraint, i.e. the existential reading; the
    universal reading (every execution satisfies it) is what a
    prohibition needs.  Both are decided symbolically: build the trace
    DFA [A(P)] and the constraint DFA [A(C)] over their joint alphabet
    and test emptiness of a product — no trace enumeration, so loops
    and the infinite models they induce are handled exactly. *)

type modality =
  | Exists  (** some trace of [P] satisfies [C] — the paper's [check] *)
  | Forall  (** every trace of [P] satisfies [C] *)

type outcome = {
  holds : bool;
  witness : Sral.Trace.t option;
      (** [Exists]: a shortest satisfying trace when [holds];
          [Forall]: a shortest violating trace when [not holds]. *)
}

val check :
  ?proofs:Proof.store ->
  ?modality:modality ->
  Sral.Ast.t ->
  Formula.t ->
  outcome
(** [proofs] defaults to {!Proof.always} (static checking);
    [modality] defaults to [Exists]. *)

val check_bool :
  ?proofs:Proof.store -> ?modality:modality -> Sral.Ast.t -> Formula.t -> bool

type stats = {
  alphabet_size : int;
  program_states : int;  (** determinized program trace model *)
  constraint_states : int;  (** compiled constraint DFA *)
}

val instrument : ?proofs:Proof.store -> Sral.Ast.t -> Formula.t -> stats
(** The automata sizes {!check} would operate on — what the E2
    experiment reports to substantiate where the paper's O(m·n) claim
    holds and where constraint conjunctions blow up. *)

val prefix_feasible :
  ?universe:Sral.Access.t list -> performed:Sral.Trace.t -> Formula.t -> bool
(** Can the already-performed trace still be extended (by any accesses
    whatsoever) into one satisfying the constraint?  Decided as
    non-emptiness of the residual language of [A(C)] after the
    performed prefix.  This is the activation condition history-scoped
    constraints use: a prohibition like [#(0,n,σ)] stays feasible until
    the count is exceeded, while an obligation like [a₁⊗a₂] is feasible
    from the start.

    The residual is computed over the alphabet of the constraint's and
    the prefix's accesses plus [universe] (default empty); extensions
    using accesses outside that alphabet only matter through selectors,
    which is conservative in the feasible direction (a selector-matching
    fresh access could only *break* a cardinality bound, never repair
    unsatisfiability).  Pass a larger [universe] when the deployment
    knows which other accesses exist. *)
