let enumerate ?(loop_bound = 3) program =
  Sral.Trace_ops.to_list (Sral.Trace_ops.traces_bounded ~loop_bound program)

let check ?(proofs = Proof.always) ?(modality = Program_sat.Exists)
    ?(loop_bound = 3) program formula =
  let traces = enumerate ~loop_bound program in
  let sat t = Trace_sat.sat ~proofs t formula in
  match modality with
  | Program_sat.Exists -> (
      match List.find_opt sat traces with
      | Some t -> { Program_sat.holds = true; witness = Some t }
      | None -> { Program_sat.holds = false; witness = None })
  | Program_sat.Forall -> (
      match List.find_opt (fun t -> not (sat t)) traces with
      | Some t -> { Program_sat.holds = false; witness = Some t }
      | None -> { Program_sat.holds = true; witness = None })

let trace_count ?loop_bound program =
  List.length (enumerate ?loop_bound program)
