module String_set = Set.Make (String)
module String_map = Map.Make (String)

type t = { mutable succ : String_set.t String_map.t }

let create () = { succ = String_map.empty }

let add_vertex g v =
  if not (String_map.mem v g.succ) then
    g.succ <- String_map.add v String_set.empty g.succ

let add_edge g u v =
  add_vertex g u;
  add_vertex g v;
  g.succ <-
    String_map.update u
      (function
        | Some set -> Some (String_set.add v set)
        | None -> Some (String_set.singleton v))
      g.succ

let of_edges edges =
  let g = create () in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let vertices g = List.map fst (String_map.bindings g.succ)

let edges g =
  List.concat_map
    (fun (u, set) -> List.map (fun v -> (u, v)) (String_set.elements set))
    (String_map.bindings g.succ)

let mem_vertex g v = String_map.mem v g.succ

let successors g v =
  match String_map.find_opt v g.succ with
  | Some set -> String_set.elements set
  | None -> []

let mem_edge g u v = List.mem v (successors g u)

let predecessors g v =
  List.filter_map
    (fun (u, set) -> if String_set.mem v set then Some u else None)
    (String_map.bindings g.succ)

let out_degree g v = List.length (successors g v)
let in_degree g v = List.length (predecessors g v)
let vertex_count g = String_map.cardinal g.succ
let edge_count g = List.length (edges g)

let topological_sort g =
  let in_deg =
    List.fold_left
      (fun m (_, v) ->
        String_map.update v
          (function Some d -> Some (d + 1) | None -> Some 1)
          m)
      (String_map.map (fun _ -> 0) g.succ)
      (edges g)
  in
  (* Kahn with an ordered "ready" set for determinism *)
  let ready =
    String_map.fold
      (fun v d acc -> if d = 0 then String_set.add v acc else acc)
      in_deg String_set.empty
  in
  let rec loop ready in_deg acc =
    match String_set.min_elt_opt ready with
    | None -> List.rev acc
    | Some v ->
        let ready = String_set.remove v ready in
        let ready, in_deg =
          List.fold_left
            (fun (ready, in_deg) w ->
              let d = String_map.find w in_deg - 1 in
              let in_deg = String_map.add w d in_deg in
              if d = 0 then (String_set.add w ready, in_deg)
              else (ready, in_deg))
            (ready, in_deg) (successors g v)
        in
        loop ready in_deg (v :: acc)
  in
  let order = loop ready in_deg [] in
  if List.length order = vertex_count g then Some order else None

let is_dag g = topological_sort g <> None

let sccs g =
  (* Tarjan, iterative-enough for our sizes (recursive with the stack
     depth bounded by vertex count). *)
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := List.sort String.compare (pop []) :: !components
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    (vertices g);
  List.rev !components

let reachable_from g v =
  if not (mem_vertex g v) then []
  else begin
    let seen = Hashtbl.create 16 in
    let rec visit u =
      if not (Hashtbl.mem seen u) then begin
        Hashtbl.replace seen u ();
        List.iter visit (successors g u)
      end
    in
    visit v;
    List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  end

let transitive_closure g =
  let closure = create () in
  List.iter
    (fun v ->
      add_vertex closure v;
      List.iter
        (fun w -> if not (String.equal v w) then add_edge closure v w)
        (reachable_from g v))
    (vertices g);
  closure

let reverse g =
  let r = create () in
  List.iter (add_vertex r) (vertices g);
  List.iter (fun (u, v) -> add_edge r v u) (edges g);
  r

let to_dot ?(name = "g") ?(vertex_attr = fun _ -> None) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun v ->
      match vertex_attr v with
      | Some attr -> Buffer.add_string buf (Printf.sprintf "  %S [%s];\n" v attr)
      | None -> Buffer.add_string buf (Printf.sprintf "  %S;\n" v))
    (vertices g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" u v))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d vertices, %d edges@," (vertex_count g)
    (edge_count g);
  List.iter
    (fun (u, v) -> Format.fprintf ppf "  %s -> %s@," u v)
    (edges g);
  Format.fprintf ppf "@]"

let random_dag ~vertices:vs ~edge_prob rng =
  let g = create () in
  List.iter (add_vertex g) vs;
  let arr = Array.of_list vs in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < edge_prob then add_edge g arr.(i) arr.(j)
    done
  done;
  g

let layered ~layers ~width ~fanout rng =
  let g = create () in
  let name l i = Printf.sprintf "m%d_%d" l i in
  for l = 0 to layers - 1 do
    for i = 0 to width - 1 do
      add_vertex g (name l i)
    done
  done;
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      let deps = 1 + Random.State.int rng (max 1 fanout) in
      for _ = 1 to deps do
        add_edge g (name l i) (name (l + 1) (Random.State.int rng width))
      done
    done
  done;
  g
