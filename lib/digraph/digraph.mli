(** Directed graphs with string-labelled vertices.

    Substrate for the Section 6 scenario: the module-dependency digraph
    of Figure 1, where an edge [A -> D] means module [A] depends on
    module [D].  General enough for itineraries and role hierarchies
    too. *)

type t

val create : unit -> t

val add_vertex : t -> string -> unit
(** Idempotent. *)

val add_edge : t -> string -> string -> unit
(** Adds missing endpoints; idempotent on duplicate edges. *)

val of_edges : (string * string) list -> t
val vertices : t -> string list
(** Sorted. *)

val edges : t -> (string * string) list
(** Sorted lexicographically. *)

val mem_vertex : t -> string -> bool
val mem_edge : t -> string -> string -> bool
val successors : t -> string -> string list
(** Sorted; empty for unknown vertices. *)

val predecessors : t -> string -> string list
val out_degree : t -> string -> int
val in_degree : t -> string -> int
val vertex_count : t -> int
val edge_count : t -> int

val topological_sort : t -> string list option
(** [None] when the graph has a cycle.  Deterministic (ties broken
    alphabetically, Kahn's algorithm). *)

val is_dag : t -> bool

val sccs : t -> string list list
(** Strongly connected components (Tarjan), each sorted, in reverse
    topological order of the condensation. *)

val reachable_from : t -> string -> string list
(** Vertices reachable from the given vertex (including itself if
    present), sorted. *)

val transitive_closure : t -> t

val reverse : t -> t

val to_dot : ?name:string -> ?vertex_attr:(string -> string option) -> t -> string
(** GraphViz rendering; [vertex_attr v] may contribute an attribute
    string such as ["color=red"]. *)

val pp : Format.formatter -> t -> unit

(** {2 Generators} (seeded, for tests and benchmark workloads) *)

val random_dag :
  vertices:string list -> edge_prob:float -> Random.State.t -> t
(** Random DAG: each forward pair (in list order) becomes an edge with
    probability [edge_prob], so the input order is a topological
    order. *)

val layered :
  layers:int -> width:int -> fanout:int -> Random.State.t -> t
(** Layered DAG shaped like a software-module dependency graph:
    vertices [m<layer>_<i>]; each vertex depends on up to [fanout]
    vertices of the next layer. *)
