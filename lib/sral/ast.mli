(** Abstract syntax of SRAL programs (Definition 3.1 of the paper).

    {v
      a ::= op r @ s | ch ? x | ch ! e | signal(xi) | wait(xi)
          | x := e
          | a1 ; a2 | if c then a1 else a2 | while c do a | a1 || a2
    v}

    [x := e] is the one addition over the paper's grammar: Definition
    3.1 ranges conditions over a set of variables [V] but gives no
    construct that binds them besides channel receive; assignment makes
    loop conditions expressible without a peer agent, and erases to the
    same trace model (assignments are not shared-resource accesses). *)

type t =
  | Skip  (** the empty program; unit of [Seq] and [Par] *)
  | Access of Access.t  (** [op r @ s] *)
  | Recv of string * string  (** [ch ? x]: receive from channel into var *)
  | Send of string * Expr.t  (** [ch ! e]: append value of [e] to channel *)
  | Signal of string  (** [signal(xi)] *)
  | Wait of string  (** [wait(xi)]: blocks until the signal was raised *)
  | Assign of string * Expr.t  (** [x := e] *)
  | Seq of t * t  (** [a1 ; a2] *)
  | If of Expr.t * t * t  (** [if c then a1 else a2] *)
  | While of Expr.t * t  (** [while c do a] *)
  | Par of t * t  (** [a1 || a2]: interleaved execution *)

val seq : t list -> t
(** Right-nested sequential composition; [seq []] is [Skip]. *)

val par : t list -> t
(** Right-nested parallel composition; [par []] is [Skip]. *)

val access : Access.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
