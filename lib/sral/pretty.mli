(** Pretty-printing of SRAL programs in concrete syntax.

    The output parses back to an equal AST (round-trip property tested
    in the suite). *)

val pp : Format.formatter -> Ast.t -> unit
val to_string : Ast.t -> string
