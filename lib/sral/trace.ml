type t = Access.t list

let empty = []
let is_empty t = t = []
let length = List.length
let mem a t = List.exists (Access.equal a) t
let concat t v = t @ v
let count pred t = List.length (List.filter pred t)

let positions a t =
  let rec loop i = function
    | [] -> []
    | b :: rest ->
        if Access.equal a b then i :: loop (i + 1) rest else loop (i + 1) rest
  in
  loop 0 t

let equal t v = List.length t = List.length v && List.for_all2 Access.equal t v

let rec compare t v =
  match (t, v) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: t', b :: v' ->
      let c = Access.compare a b in
      if c <> 0 then c else compare t' v'

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Access.pp)
    t

let to_string t = Format.asprintf "%a" pp t
