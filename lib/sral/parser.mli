(** Recursive-descent parser for the SRAL concrete syntax.

    Grammar (see {!Pretty} for the printer of the same grammar):
    {v
      program := term (';' program)?
      term    := factor ('||' term)?
      factor  := 'skip'
               | op-name resource '@' server          (access)
               | 'op' '(' name ')' resource '@' server
               | chan '?' var | chan '!' expr
               | 'signal' '(' name ')' | 'wait' '(' name ')'
               | var ':=' expr
               | 'if' expr 'then' '{' program '}' 'else' '{' program '}'
               | 'while' expr 'do' '{' program '}'
               | '{' program '}'
    v}
    Operation names [read], [write], [execute] map to the built-in
    operations; any other leading identifier followed by an identifier
    is parsed as a custom-operation access.  Expressions use the usual
    precedence with boolean disjunction spelled [or] (to keep [||] for
    parallel composition). *)

exception Parse_error of string

val program : string -> Ast.t
(** Parse a complete program.  @raise Parse_error *)

val expr : string -> Expr.t
(** Parse a complete expression.  @raise Parse_error *)

val access : string -> Access.t
(** Parse a single access, e.g. ["read db @ s1"].  @raise Parse_error *)
