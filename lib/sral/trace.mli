(** Execution traces: finite sequences of shared-resource accesses.

    A trace records the accesses a mobile object performed and their
    order (Section 3.2). *)

type t = Access.t list

val empty : t
val is_empty : t -> bool
val length : t -> int
val mem : Access.t -> t -> bool
val concat : t -> t -> t
(** [concat t v] is the trace [t ^ v] ([t] followed by [v]). *)

val count : (Access.t -> bool) -> t -> int
(** Number of elements satisfying the predicate. *)

val positions : Access.t -> t -> int list
(** 0-based positions of an access in the trace, ascending. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
