type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type t =
  | Int of int
  | Bool of bool
  | Var of string
  | Binop of binop * t * t
  | Not of t
  | Neg of t

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let arith name f v1 v2 =
  match (v1, v2) with
  | Value.Int i, Value.Int j -> Value.Int (f i j)
  | _ -> eval_error "operator %s expects integers" name

let cmp f v1 v2 = Value.Bool (f (Value.compare v1 v2) 0)

let rec eval env e =
  match e with
  | Int i -> Value.Int i
  | Bool b -> Value.Bool b
  | Var x -> (
      match Env.find env x with
      | Some v -> v
      | None -> eval_error "unbound variable %s" x)
  | Not e1 -> Value.Bool (not (Value.truthy (eval env e1)))
  | Neg e1 -> (
      match eval env e1 with
      | Value.Int i -> Value.Int (-i)
      | Value.Bool _ -> eval_error "unary minus expects an integer")
  | Binop (And, e1, e2) ->
      if Value.truthy (eval env e1) then Value.Bool (Value.truthy (eval env e2))
      else Value.Bool false
  | Binop (Or, e1, e2) ->
      if Value.truthy (eval env e1) then Value.Bool true
      else Value.Bool (Value.truthy (eval env e2))
  | Binop (op, e1, e2) -> (
      let v1 = eval env e1 in
      let v2 = eval env e2 in
      match op with
      | Add -> arith "+" ( + ) v1 v2
      | Sub -> arith "-" ( - ) v1 v2
      | Mul -> arith "*" ( * ) v1 v2
      | Div ->
          if v2 = Value.Int 0 then eval_error "division by zero"
          else arith "/" ( / ) v1 v2
      | Mod ->
          if v2 = Value.Int 0 then eval_error "modulo by zero"
          else arith "%%" ( mod ) v1 v2
      | Lt -> cmp ( < ) v1 v2
      | Le -> cmp ( <= ) v1 v2
      | Gt -> cmp ( > ) v1 v2
      | Ge -> cmp ( >= ) v1 v2
      | Eq -> Value.Bool (Value.equal v1 v2)
      | Ne -> Value.Bool (not (Value.equal v1 v2))
      | And | Or -> assert false)

let eval_bool env e = Value.truthy (eval env e)

let free_vars e =
  let rec collect acc = function
    | Int _ | Bool _ -> acc
    | Var x -> x :: acc
    | Not e1 | Neg e1 -> collect acc e1
    | Binop (_, e1, e2) -> collect (collect acc e1) e2
  in
  List.sort_uniq String.compare (collect [] e)

let rec size = function
  | Int _ | Bool _ | Var _ -> 1
  | Not e1 | Neg e1 -> 1 + size e1
  | Binop (_, e1, e2) -> 1 + size e1 + size e2

let rec equal e1 e2 =
  match (e1, e2) with
  | Int i, Int j -> i = j
  | Bool b, Bool c -> b = c
  | Var x, Var y -> String.equal x y
  | Not a, Not b | Neg a, Neg b -> equal a b
  | Binop (op1, a1, b1), Binop (op2, a2, b2) ->
      op1 = op2 && equal a1 a2 && equal b1 b2
  | (Int _ | Bool _ | Var _ | Not _ | Neg _ | Binop _), _ -> false

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "or"

(* Precedence levels for printing with minimal parentheses; higher binds
   tighter.  Mirrors the parser's precedence climbing. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec pp_prec prec ppf e =
  match e with
  | Int i -> Format.pp_print_int ppf i
  | Bool b -> Format.pp_print_bool ppf b
  | Var x -> Format.pp_print_string ppf x
  | Not e1 -> Format.fprintf ppf "!%a" (pp_prec 6) e1
  | Neg e1 -> Format.fprintf ppf "-%a" (pp_prec 6) e1
  | Binop (op, e1, e2) ->
      let p = binop_prec op in
      let body ppf () =
        Format.fprintf ppf "%a %s %a" (pp_prec p) e1 (binop_name op)
          (pp_prec (p + 1)) e2
      in
      if p < prec then Format.fprintf ppf "(%a)" body ()
      else body ppf ()

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e
