(** Arithmetic and boolean expressions.

    Expressions appear as conditions of [if]/[while] (the syntactic set
    [C] of the paper) and as payloads of channel sends ([a!e]). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type t =
  | Int of int
  | Bool of bool
  | Var of string
  | Binop of binop * t * t
  | Not of t
  | Neg of t

exception Eval_error of string
(** Raised on unbound variables, type mismatches and division by zero. *)

val eval : Env.t -> t -> Value.t
(** Big-step evaluation.  [And]/[Or] short-circuit.
    @raise Eval_error on dynamic errors. *)

val eval_bool : Env.t -> t -> bool
(** [eval_bool env e] is [Value.truthy (eval env e)]. *)

val free_vars : t -> string list
(** Sorted, without duplicates. *)

val size : t -> int
(** Number of AST nodes. *)

val equal : t -> t -> bool
val binop_name : binop -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
