(** Static analyses over SRAL programs. *)

val size : Ast.t -> int
(** Number of AST nodes — the [m] of Theorem 3.2. *)

val accesses : Ast.t -> Access.t list
(** The access alphabet of the program: every distinct [op r @ s]
    occurring syntactically, sorted. *)

val servers : Ast.t -> string list
(** Distinct servers named by the program's accesses, sorted. *)

val resources : Ast.t -> string list
(** Distinct resources named by the program's accesses, sorted. *)

val channels : Ast.t -> string list
(** Channels used by [?] or [!], sorted. *)

val signals : Ast.t -> string list
(** Events used by [signal]/[wait], sorted. *)

val free_vars : Ast.t -> string list
(** Variables read before being bound by [:=] or [?] on every path is a
    flow question; this is the simpler syntactic over-approximation:
    all variables occurring in expressions, minus none.  Sorted. *)

val assigned_vars : Ast.t -> string list
(** Variables bound by [:=] or [?], sorted. *)

val has_par : Ast.t -> bool
val has_loop : Ast.t -> bool

val access_count : Ast.t -> int
(** Number of access occurrences (with repetition). *)

val server_flow : Ast.t -> (string * string) list
(** Possible migration edges: pairs [(s, s')] with [s <> s'] such that
    some execution performs an access at [s] directly followed by one
    at [s'].  Computed on the trace-model structure (conditions not
    evaluated), so it over-approximates real runs the same way
    [traces] does.  Sorted, distinct. *)

val normalize : Ast.t -> Ast.t
(** Remove [Skip] units: [Seq (Skip, p) = p], [Par (p, Skip) = p], etc.
    Trace-model preserving. *)
