(* Concrete-syntax grammar printed here (and accepted by {!Parser}):
     program := term (';' program)?
     term    := factor ('||' factor)*
     factor  := primitive | block
   so ';' binds looser than '||', and nested compositions that violate
   this shape are wrapped in braces. *)

open Ast

let rec pp ppf p =
  match p with
  | Seq (p1, p2) -> Format.fprintf ppf "@[<v>%a;@ %a@]" pp_term p1 pp p2
  | _ -> pp_term ppf p

and pp_term ppf p =
  match p with
  | Par (p1, p2) ->
      Format.fprintf ppf "%a || %a" pp_factor p1 pp_term p2
  | _ -> pp_factor ppf p

and pp_factor ppf p =
  match p with
  | Skip -> Format.pp_print_string ppf "skip"
  | Access a -> Access.pp ppf a
  | Recv (ch, x) -> Format.fprintf ppf "%s ? %s" ch x
  | Send (ch, e) -> Format.fprintf ppf "%s ! %a" ch Expr.pp e
  | Signal x -> Format.fprintf ppf "signal(%s)" x
  | Wait x -> Format.fprintf ppf "wait(%s)" x
  | Assign (x, e) -> Format.fprintf ppf "%s := %a" x Expr.pp e
  | If (c, p1, p2) ->
      Format.fprintf ppf "@[<v>if %a then {@;<1 2>@[<v>%a@]@ } else {@;<1 2>@[<v>%a@]@ }@]"
        Expr.pp c pp p1 pp p2
  | While (c, body) ->
      Format.fprintf ppf "@[<v>while %a do {@;<1 2>@[<v>%a@]@ }@]" Expr.pp c
        pp body
  | Seq _ | Par _ -> Format.fprintf ppf "{ @[<v>%a@] }" pp p

let to_string p = Format.asprintf "%a" pp p
