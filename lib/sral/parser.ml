exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type state = { tokens : Lexer.token array; mutable pos : int }

let peek st = st.tokens.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1)
  else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let next st =
  let tok = peek st in
  advance st;
  tok

let expect st tok what =
  if peek st = tok then advance st
  else parse_error "expected %s, found %a" what Lexer.pp_token (peek st)

let ident st =
  match next st with
  | Lexer.IDENT x -> x
  | tok -> parse_error "expected identifier, found %a" Lexer.pp_token tok

(* --- expressions: precedence climbing --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let rec loop acc =
    if peek st = Lexer.KW_OR then (
      advance st;
      loop (Expr.Binop (Expr.Or, acc, parse_and st)))
    else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if peek st = Lexer.ANDAND then (
      advance st;
      loop (Expr.Binop (Expr.And, acc, parse_cmp st)))
    else acc
  in
  loop (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.LT -> Some Expr.Lt
    | Lexer.LE -> Some Expr.Le
    | Lexer.GT -> Some Expr.Gt
    | Lexer.GE -> Some Expr.Ge
    | Lexer.EQ -> Some Expr.Eq
    | Lexer.NE -> Some Expr.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Expr.Binop (op, lhs, parse_add st)

and parse_add st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        loop (Expr.Binop (Expr.Add, acc, parse_mul st))
    | Lexer.MINUS ->
        advance st;
        loop (Expr.Binop (Expr.Sub, acc, parse_mul st))
    | _ -> acc
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
        advance st;
        loop (Expr.Binop (Expr.Mul, acc, parse_unary st))
    | Lexer.SLASH ->
        advance st;
        loop (Expr.Binop (Expr.Div, acc, parse_unary st))
    | Lexer.PERCENT ->
        advance st;
        loop (Expr.Binop (Expr.Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.BANG ->
      advance st;
      Expr.Not (parse_unary st)
  | Lexer.MINUS ->
      advance st;
      Expr.Neg (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match next st with
  | Lexer.INT i -> Expr.Int i
  | Lexer.KW_TRUE -> Expr.Bool true
  | Lexer.KW_FALSE -> Expr.Bool false
  | Lexer.IDENT x -> Expr.Var x
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN "')'";
      e
  | tok -> parse_error "expected expression, found %a" Lexer.pp_token tok

(* --- programs --- *)

let rec parse_program st =
  let lhs = parse_term st in
  if peek st = Lexer.SEMI then (
    advance st;
    Ast.Seq (lhs, parse_program st))
  else lhs

and parse_term st =
  let lhs = parse_factor st in
  if peek st = Lexer.PARALLEL then (
    advance st;
    Ast.Par (lhs, parse_term st))
  else lhs

and parse_block st =
  expect st Lexer.LBRACE "'{'";
  let p = parse_program st in
  expect st Lexer.RBRACE "'}'";
  p

and parse_access_tail st op =
  let resource = ident st in
  expect st Lexer.AT "'@'";
  let server = ident st in
  Ast.Access (Access.make ~op ~resource ~server)

and parse_factor st =
  match peek st with
  | Lexer.KW_SKIP ->
      advance st;
      Ast.Skip
  | Lexer.KW_SIGNAL ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let x = ident st in
      expect st Lexer.RPAREN "')'";
      Ast.Signal x
  | Lexer.KW_WAIT ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let x = ident st in
      expect st Lexer.RPAREN "')'";
      Ast.Wait x
  | Lexer.KW_OP ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let name = ident st in
      expect st Lexer.RPAREN "')'";
      parse_access_tail st (Access.Custom name)
  | Lexer.KW_IF ->
      advance st;
      let c = parse_expr st in
      expect st Lexer.KW_THEN "'then'";
      let p1 = parse_block st in
      expect st Lexer.KW_ELSE "'else'";
      let p2 = parse_block st in
      Ast.If (c, p1, p2)
  | Lexer.KW_WHILE ->
      advance st;
      let c = parse_expr st in
      expect st Lexer.KW_DO "'do'";
      let body = parse_block st in
      Ast.While (c, body)
  | Lexer.LBRACE -> parse_block st
  | Lexer.IDENT x -> (
      match peek2 st with
      | Lexer.QUESTION ->
          advance st;
          advance st;
          Ast.Recv (x, ident st)
      | Lexer.BANG ->
          advance st;
          advance st;
          Ast.Send (x, parse_expr st)
      | Lexer.ASSIGN ->
          advance st;
          advance st;
          Ast.Assign (x, parse_expr st)
      | Lexer.IDENT _ ->
          advance st;
          parse_access_tail st (Access.operation_of_name x)
      | tok ->
          parse_error "after %s: expected '?', '!', ':=' or a resource, found %a"
            x Lexer.pp_token tok)
  | tok -> parse_error "expected a program, found %a" Lexer.pp_token tok

let run_parser parse input =
  let tokens =
    try Array.of_list (Lexer.tokenize input)
    with Lexer.Lex_error (msg, off) ->
      parse_error "lexical error at offset %d: %s" off msg
  in
  let st = { tokens; pos = 0 } in
  let result = parse st in
  expect st Lexer.EOF "end of input";
  result

let program input = run_parser parse_program input
let expr input = run_parser parse_expr input

let access input =
  match run_parser parse_factor input with
  | Ast.Access a -> a
  | _ -> parse_error "expected a single access"
