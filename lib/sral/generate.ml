let default_ops = [ Access.Read; Access.Write; Access.Execute ]

let choose rng l = List.nth l (Random.State.int rng (List.length l))

let access ?(ops = default_ops) ~resources ~servers rng =
  Access.make ~op:(choose rng ops) ~resource:(choose rng resources)
    ~server:(choose rng servers)

let counter = ref 0

let fresh_var () =
  incr counter;
  Printf.sprintf "v%d" !counter

(* Loop conditions must terminate when executed, so generated loops use a
   counter variable: i := 0; while i < k do { body; i := i + 1 }. *)
let bounded_loop rng body =
  let i = fresh_var () in
  let k = 1 + Random.State.int rng 3 in
  Ast.Seq
    ( Ast.Assign (i, Expr.Int 0),
      Ast.While
        ( Expr.Binop (Expr.Lt, Expr.Var i, Expr.Int k),
          Ast.Seq
            (body, Ast.Assign (i, Expr.Binop (Expr.Add, Expr.Var i, Expr.Int 1)))
        ) )

let rec gen ~allow_par ~allow_io ~allow_loop ~resources ~servers size rng =
  if size <= 1 then Ast.Access (access ~resources ~servers rng)
  else
    let split = 1 + Random.State.int rng (max 1 (size - 1)) in
    let left () =
      gen ~allow_par ~allow_io ~allow_loop ~resources ~servers split rng
    in
    let right () =
      gen ~allow_par ~allow_io ~allow_loop ~resources ~servers (size - split)
        rng
    in
    match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 -> Ast.Seq (left (), right ())
    | 4 | 5 ->
        let c =
          Expr.Binop
            (Expr.Lt, Expr.Int (Random.State.int rng 10), Expr.Int (Random.State.int rng 10))
        in
        Ast.If (c, left (), right ())
    | 6 when allow_par -> Ast.Par (left (), right ())
    | 7 when allow_loop ->
        bounded_loop rng
          (gen ~allow_par ~allow_io ~allow_loop ~resources ~servers (size - 1)
             rng)
    | 8 when allow_io ->
        let x = fresh_var () in
        Ast.Seq (Ast.Assign (x, Expr.Int (Random.State.int rng 100)), right ())
    | _ -> Ast.Seq (left (), right ())

let program ?(allow_par = true) ?(allow_io = false) ~resources ~servers ~size
    rng =
  gen ~allow_par ~allow_io ~allow_loop:true ~resources ~servers size rng

let loop_free_program ~resources ~servers ~size rng =
  gen ~allow_par:true ~allow_io:false ~allow_loop:false ~resources ~servers
    size rng
