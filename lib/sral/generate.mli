(** Seeded random generation of accesses and programs.

    Used by the property-test suites and by the benchmark workload
    generators (experiment E2's m × n sweep).  All generators take an
    explicit [Random.State.t] so workloads are reproducible. *)

val access :
  ?ops:Access.operation list ->
  resources:string list ->
  servers:string list ->
  Random.State.t ->
  Access.t

val program :
  ?allow_par:bool ->
  ?allow_io:bool ->
  resources:string list ->
  servers:string list ->
  size:int ->
  Random.State.t ->
  Ast.t
(** A random well-formed program with approximately [size] AST nodes.
    [allow_par] (default [true]) enables [||]; [allow_io] (default
    [false]) enables channels/signals/assignment — disable it when the
    program is meant for pure trace-model work. *)

val loop_free_program :
  resources:string list ->
  servers:string list ->
  size:int ->
  Random.State.t ->
  Ast.t
(** Like {!program} but without [while] (finite trace model). *)
