(** Runtime values carried by SRAL variables and channels. *)

type t = Int of int | Bool of bool

val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** @raise Invalid_argument on a boolean. *)

val to_bool : t -> bool
(** @raise Invalid_argument on an integer. *)

val truthy : t -> bool
(** [truthy v] is [v] as a condition: booleans as themselves, integers
    as [v <> 0] (matching the C-family languages SRAL is modelled on). *)

val pp : Format.formatter -> t -> unit
