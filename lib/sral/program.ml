open Ast

let rec fold f acc p =
  let acc = f acc p in
  match p with
  | Skip | Access _ | Recv _ | Send _ | Signal _ | Wait _ | Assign _ -> acc
  | Seq (p1, p2) | Par (p1, p2) -> fold f (fold f acc p1) p2
  | If (_, p1, p2) -> fold f (fold f acc p1) p2
  | While (_, body) -> fold f acc body

let size p = fold (fun n _ -> n + 1) 0 p

let accesses p =
  let collect acc = function Access a -> a :: acc | _ -> acc in
  List.sort_uniq Access.compare (fold collect [] p)

let servers p =
  List.sort_uniq String.compare
    (List.map (fun (a : Access.t) -> a.server) (accesses p))

let resources p =
  List.sort_uniq String.compare
    (List.map (fun (a : Access.t) -> a.resource) (accesses p))

let channels p =
  let collect acc = function
    | Recv (ch, _) | Send (ch, _) -> ch :: acc
    | _ -> acc
  in
  List.sort_uniq String.compare (fold collect [] p)

let signals p =
  let collect acc = function
    | Signal x | Wait x -> x :: acc
    | _ -> acc
  in
  List.sort_uniq String.compare (fold collect [] p)

let free_vars p =
  let collect acc = function
    | Send (_, e) | Assign (_, e) -> Expr.free_vars e @ acc
    | If (c, _, _) | While (c, _) -> Expr.free_vars c @ acc
    | _ -> acc
  in
  List.sort_uniq String.compare (fold collect [] p)

let assigned_vars p =
  let collect acc = function
    | Assign (x, _) | Recv (_, x) -> x :: acc
    | _ -> acc
  in
  List.sort_uniq String.compare (fold collect [] p)

let has_par p = fold (fun b q -> b || match q with Par _ -> true | _ -> false) false p
let has_loop p = fold (fun b q -> b || match q with While _ -> true | _ -> false) false p

let access_count p =
  fold (fun n q -> match q with Access _ -> n + 1 | _ -> n) 0 p

(* For each subprogram: the servers of possibly-first accesses, of
   possibly-last accesses, whether it can perform no access at all, and
   the internal adjacency set.  Standard first/last/nullable style
   analysis over the trace-model structure. *)
let server_flow p =
  let module SS = Set.Make (String) in
  let module PS = Set.Make (struct
    type t = string * string

    let compare = Stdlib.compare
  end) in
  (* [pairs froms tos]: every (from, to) edge with distinct servers *)
  let pairs froms tos =
    SS.fold
      (fun from acc ->
        SS.fold
          (fun to_ acc ->
            if String.equal from to_ then acc else PS.add (from, to_) acc)
          tos acc)
      froms PS.empty
  in
  let rec analyze p =
    match p with
    | Ast.Skip | Ast.Recv _ | Ast.Send _ | Ast.Signal _ | Ast.Wait _
    | Ast.Assign _ ->
        (SS.empty, SS.empty, true, PS.empty)
    | Ast.Access a ->
        let s = SS.singleton a.Access.server in
        (s, s, false, PS.empty)
    | Ast.Seq (p1, p2) ->
        let f1, l1, n1, e1 = analyze p1 in
        let f2, l2, n2, e2 = analyze p2 in
        let firsts = if n1 then SS.union f1 f2 else f1 in
        let lasts = if n2 then SS.union l1 l2 else l2 in
        (firsts, lasts, n1 && n2, PS.union (pairs l1 f2) (PS.union e1 e2))
    | Ast.If (_, p1, p2) ->
        let f1, l1, n1, e1 = analyze p1 in
        let f2, l2, n2, e2 = analyze p2 in
        (SS.union f1 f2, SS.union l1 l2, n1 || n2, PS.union e1 e2)
    | Ast.While (_, body) ->
        let f, l, _, e = analyze body in
        (* the body may repeat: last-of-body -> first-of-body edges *)
        (f, l, true, PS.union e (pairs l f))
    | Ast.Par (p1, p2) ->
        let f1, l1, n1, e1 = analyze p1 in
        let f2, l2, n2, e2 = analyze p2 in
        (* interleaving: any access of one branch may directly follow
           any access of the other *)
        let all1 = SS.union f1 l1 and all2 = SS.union f2 l2 in
        let cross =
          PS.union (pairs (servers_of p1 all1) (servers_of p2 all2))
            (pairs (servers_of p2 all2) (servers_of p1 all1))
        in
        ( SS.union f1 f2,
          SS.union l1 l2,
          n1 && n2,
          PS.union cross (PS.union e1 e2) )
  and servers_of p _fallback =
    (* all servers of the subprogram: interleaving can juxtapose any two *)
    List.fold_left (fun acc s -> SS.add s acc) SS.empty (servers p)
  in
  let _, _, _, edges = analyze p in
  PS.elements edges

let rec normalize p =
  match p with
  | Skip | Access _ | Recv _ | Send _ | Signal _ | Wait _ | Assign _ -> p
  | Seq (p1, p2) -> (
      match (normalize p1, normalize p2) with
      | Skip, q | q, Skip -> q
      | q1, q2 -> Seq (q1, q2))
  | Par (p1, p2) -> (
      match (normalize p1, normalize p2) with
      | Skip, q | q, Skip -> q
      | q1, q2 -> Par (q1, q2))
  | If (c, p1, p2) -> If (c, normalize p1, normalize p2)
  | While (c, body) -> While (c, normalize body)
