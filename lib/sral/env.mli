(** Variable environments for SRAL programs.

    An environment maps variable names (the syntactic set [V] of the
    paper) to runtime values.  Environments are immutable; the agent
    machine threads them through its small-step transitions. *)

type t

val empty : t
val of_list : (string * Value.t) list -> t
val bind : t -> string -> Value.t -> t
val find : t -> string -> Value.t option

val find_exn : t -> string -> Value.t
(** @raise Not_found when the variable is unbound. *)

val mem : t -> string -> bool
val bindings : t -> (string * Value.t) list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
