type error = Unsupported of string | Eval_error of string | Out_of_fuel

type outcome = { trace : Trace.t; env : Env.t }

exception Error of error

let run ?(fuel = 100_000) ?(env = Env.empty) program =
  let remaining = ref fuel in
  let tick () =
    if !remaining <= 0 then raise (Error Out_of_fuel) else decr remaining
  in
  (* accesses accumulated in reverse *)
  let rec go env acc p =
    tick ();
    match p with
    | Ast.Skip -> (env, acc)
    | Ast.Access a -> (env, a :: acc)
    | Ast.Assign (x, e) -> (Env.bind env x (Expr.eval env e), acc)
    | Ast.Recv (ch, _) -> raise (Error (Unsupported ("receive on " ^ ch)))
    | Ast.Send (ch, _) -> raise (Error (Unsupported ("send on " ^ ch)))
    | Ast.Signal x -> raise (Error (Unsupported ("signal " ^ x)))
    | Ast.Wait x -> raise (Error (Unsupported ("wait " ^ x)))
    | Ast.Seq (p1, p2) ->
        let env, acc = go env acc p1 in
        go env acc p2
    | Ast.If (c, p1, p2) ->
        if Expr.eval_bool env c then go env acc p1 else go env acc p2
    | Ast.While (c, body) ->
        if Expr.eval_bool env c then
          let env, acc = go env acc body in
          go env acc p
        else (env, acc)
    | Ast.Par (p1, p2) ->
        (* one legal interleaving: left branch entirely first *)
        let env, acc = go env acc p1 in
        go env acc p2
  in
  match go env [] program with
  | env, acc -> Ok { trace = List.rev acc; env }
  | exception Error e -> Error e
  | exception Expr.Eval_error msg -> Error (Eval_error msg)

let trace_of ?fuel ?env program =
  match run ?fuel ?env program with
  | Ok { trace; _ } -> Some trace
  | Error _ -> None

let pp_error ppf = function
  | Unsupported what -> Format.fprintf ppf "unsupported construct: %s" what
  | Eval_error msg -> Format.fprintf ppf "evaluation error: %s" msg
  | Out_of_fuel -> Format.pp_print_string ppf "out of fuel"
