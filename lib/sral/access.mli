(** Shared-resource accesses.

    An access is the primitive action of the paper's model: a tuple
    [(op, r, s)] meaning "perform operation [op] on shared resource [r]
    at coalition server [s]".  The mobile object performing the access
    is implicit (it is the object whose program contains the access);
    the full paper tuple [(o, op, r, s)] is recovered at runtime by the
    monitor, which knows which object it tracks. *)

type operation =
  | Read
  | Write
  | Execute
  | Custom of string
      (** Application-defined operation, e.g. [Custom "hash"] for the
          integrity-audit scenario of Section 6. *)

type t = {
  op : operation;
  resource : string;  (** shared resource name, ranges over [R] *)
  server : string;  (** hosting server name, ranges over [S] *)
}

val make : op:operation -> resource:string -> server:string -> t

val read : string -> at:string -> t
(** [read r ~at:s] is the access [read r @ s]. *)

val write : string -> at:string -> t
val execute : string -> at:string -> t

val custom : string -> string -> at:string -> t
(** [custom name r ~at:s] is the access [op(name) r @ s]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val operation_name : operation -> string
(** Lower-case operation name as used by the concrete syntax. *)

val operation_of_name : string -> operation
(** Inverse of {!operation_name}; unknown names map to [Custom]. *)

val pp : Format.formatter -> t -> unit
(** Prints in concrete SRAL syntax, e.g. [read db1 @ s2]. *)

val pp_operation : Format.formatter -> operation -> unit
val to_string : t -> string
