type operation = Read | Write | Execute | Custom of string

type t = { op : operation; resource : string; server : string }

let make ~op ~resource ~server = { op; resource; server }
let read resource ~at = { op = Read; resource; server = at }
let write resource ~at = { op = Write; resource; server = at }
let execute resource ~at = { op = Execute; resource; server = at }
let custom name resource ~at = { op = Custom name; resource; server = at }

let operation_name = function
  | Read -> "read"
  | Write -> "write"
  | Execute -> "execute"
  | Custom name -> name

let operation_of_name = function
  | "read" -> Read
  | "write" -> Write
  | "execute" -> Execute
  | name -> Custom name

let compare_operation op1 op2 =
  match (op1, op2) with
  | Read, Read | Write, Write | Execute, Execute -> 0
  | Custom n1, Custom n2 -> String.compare n1 n2
  | Read, _ -> -1
  | _, Read -> 1
  | Write, _ -> -1
  | _, Write -> 1
  | Execute, _ -> -1
  | _, Execute -> 1

let compare a1 a2 =
  let c = compare_operation a1.op a2.op in
  if c <> 0 then c
  else
    let c = String.compare a1.resource a2.resource in
    if c <> 0 then c else String.compare a1.server a2.server

let equal a1 a2 = compare a1 a2 = 0
(* combined without building a tuple: this hash sits on allocation-free
   hot paths (symbol interning, per-access verdict caches) *)
let hash a =
  let h = Hashtbl.hash (operation_name a.op) in
  let h = (h * 131) + Hashtbl.hash a.resource in
  let h = (h * 131) + Hashtbl.hash a.server in
  h land max_int

let pp_operation ppf op = Format.pp_print_string ppf (operation_name op)

let pp ppf a =
  match a.op with
  | Read | Write | Execute ->
      Format.fprintf ppf "%a %s @@ %s" pp_operation a.op a.resource a.server
  | Custom name ->
      Format.fprintf ppf "op(%s) %s @@ %s" name a.resource a.server

let to_string a = Format.asprintf "%a" pp a
