(** Operators on trace models (finite sets of traces), Section 3.2.

    These are the *extensional* operators — they materialize sets of
    traces and therefore only terminate on finite models.  The symbolic
    (automata-based) counterparts live in the [automata] library; this
    module is the executable specification the automata are tested
    against. *)

module Trace_set : Set.S with type elt = Trace.t

type t = Trace_set.t

val of_list : Trace.t list -> t
val to_list : t -> Trace.t list

val concat : t -> t -> t
(** Pointwise concatenation [T . V]. *)

val union : t -> t -> t

val interleave_traces : Trace.t -> Trace.t -> t
(** All interleavings of two traces (the [#] operator on traces).
    The result has [C(|t|+|v|, |t|)] elements — use on short traces. *)

val interleave : t -> t -> t
(** Pointwise extension of {!interleave_traces} to trace models. *)

val kleene : bound:int -> t -> t
(** [kleene ~bound m] is [ε ∪ m ∪ m.m ∪ ... ∪ m^bound] — the Kleene
    closure truncated at [bound] concatenations (the full closure is
    infinite whenever [m] contains a non-empty trace). *)

val traces_bounded : loop_bound:int -> Ast.t -> t
(** Definition 3.2's [traces(p)] with [while] unrolled at most
    [loop_bound] times: a finite under-approximation of the trace
    model, exact for loop-free programs.  Conditions are not evaluated
    (both branches contribute), matching the paper's trace semantics.
    Non-access primitives contribute the empty trace. *)
