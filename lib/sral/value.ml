type t = Int of int | Bool of bool

let equal v1 v2 =
  match (v1, v2) with
  | Int i, Int j -> i = j
  | Bool b, Bool c -> b = c
  | Int _, Bool _ | Bool _, Int _ -> false

let compare v1 v2 =
  match (v1, v2) with
  | Int i, Int j -> Int.compare i j
  | Bool b, Bool c -> Bool.compare b c
  | Int _, Bool _ -> -1
  | Bool _, Int _ -> 1

let to_int = function
  | Int i -> i
  | Bool _ -> invalid_arg "Value.to_int: boolean value"

let to_bool = function
  | Bool b -> b
  | Int _ -> invalid_arg "Value.to_bool: integer value"

let truthy = function Bool b -> b | Int i -> i <> 0

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Bool b -> Format.pp_print_bool ppf b
