(** Hand-written lexer for the SRAL concrete syntax. *)

type token =
  | INT of int
  | IDENT of string
  | KW_SKIP
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_SIGNAL
  | KW_WAIT
  | KW_OP
  | KW_TRUE
  | KW_FALSE
  | KW_OR
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | AT  (** [@] *)
  | QUESTION
  | BANG
  | ASSIGN  (** [:=] *)
  | PARALLEL  (** [||] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ  (** [==] *)
  | NE  (** [!=] *)
  | ANDAND  (** [&&] *)
  | EOF

exception Lex_error of string * int
(** [(message, offset)] — byte offset into the input. *)

val tokenize : string -> token list
(** Whole-input tokenization, ending with [EOF].  Comments run from [#]
    to end of line.
    @raise Lex_error on an unexpected character. *)

val pp_token : Format.formatter -> token -> unit
