module String_map = Map.Make (String)

type t = Value.t String_map.t

let empty = String_map.empty

let of_list l =
  List.fold_left (fun env (x, v) -> String_map.add x v env) empty l

let bind env x v = String_map.add x v env
let find env x = String_map.find_opt x env
let find_exn env x = String_map.find x env
let mem env x = String_map.mem x env
let bindings env = String_map.bindings env
let equal env1 env2 = String_map.equal Value.equal env1 env2

let pp ppf env =
  let pp_binding ppf (x, v) = Format.fprintf ppf "%s=%a" x Value.pp v in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_binding)
    (bindings env)
