(** Big-step reference evaluator for SRAL programs.

    Runs a program to completion in one (deterministic) execution
    order, collecting the access trace — the executable counterpart of
    the trace semantics, used for differential testing against the
    Naplet machine's small-step interpreter and against the symbolic
    trace model.

    Channels and signals need a peer to synchronize with, so this
    single-object evaluator rejects them; [Par] is evaluated
    left-branch-first (one legal interleaving). *)

type error =
  | Unsupported of string  (** channel/signal constructs *)
  | Eval_error of string  (** unbound variable, type error, ... *)
  | Out_of_fuel  (** loop exceeded the step budget *)

type outcome = { trace : Trace.t; env : Env.t }

val run : ?fuel:int -> ?env:Env.t -> Ast.t -> (outcome, error) result
(** [fuel] (default 100_000) bounds total evaluation steps. *)

val trace_of : ?fuel:int -> ?env:Env.t -> Ast.t -> Trace.t option
(** Just the trace, [None] on any error. *)

val pp_error : Format.formatter -> error -> unit
