type t =
  | Skip
  | Access of Access.t
  | Recv of string * string
  | Send of string * Expr.t
  | Signal of string
  | Wait of string
  | Assign of string * Expr.t
  | Seq of t * t
  | If of Expr.t * t * t
  | While of Expr.t * t
  | Par of t * t

let rec seq = function
  | [] -> Skip
  | [ p ] -> p
  | p :: rest -> Seq (p, seq rest)

let rec par = function
  | [] -> Skip
  | [ p ] -> p
  | p :: rest -> Par (p, par rest)

let access a = Access a

let rec equal p1 p2 =
  match (p1, p2) with
  | Skip, Skip -> true
  | Access a1, Access a2 -> Access.equal a1 a2
  | Recv (c1, x1), Recv (c2, x2) -> String.equal c1 c2 && String.equal x1 x2
  | Send (c1, e1), Send (c2, e2) -> String.equal c1 c2 && Expr.equal e1 e2
  | Signal x1, Signal x2 | Wait x1, Wait x2 -> String.equal x1 x2
  | Assign (x1, e1), Assign (x2, e2) ->
      String.equal x1 x2 && Expr.equal e1 e2
  | Seq (a1, b1), Seq (a2, b2) | Par (a1, b1), Par (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | If (c1, a1, b1), If (c2, a2, b2) ->
      Expr.equal c1 c2 && equal a1 a2 && equal b1 b2
  | While (c1, a1), While (c2, a2) -> Expr.equal c1 c2 && equal a1 a2
  | ( ( Skip | Access _ | Recv _ | Send _ | Signal _ | Wait _ | Assign _
      | Seq _ | If _ | While _ | Par _ ),
      _ ) ->
      false

let compare p1 p2 = Stdlib.compare p1 p2
