type token =
  | INT of int
  | IDENT of string
  | KW_SKIP
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_SIGNAL
  | KW_WAIT
  | KW_OP
  | KW_TRUE
  | KW_FALSE
  | KW_OR
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | AT
  | QUESTION
  | BANG
  | ASSIGN
  | PARALLEL
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | EOF

exception Lex_error of string * int

let keyword_of_ident = function
  | "skip" -> Some KW_SKIP
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "signal" -> Some KW_SIGNAL
  | "wait" -> Some KW_WAIT
  | "op" -> Some KW_OP
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "or" -> Some KW_OR
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let peek i = if i < n then Some input.[i] else None in
  let rec scan i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1) acc
      | '#' ->
          let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
          scan (skip i) acc
      | '{' -> scan (i + 1) (LBRACE :: acc)
      | '}' -> scan (i + 1) (RBRACE :: acc)
      | '(' -> scan (i + 1) (LPAREN :: acc)
      | ')' -> scan (i + 1) (RPAREN :: acc)
      | ';' -> scan (i + 1) (SEMI :: acc)
      | '@' -> scan (i + 1) (AT :: acc)
      | '?' -> scan (i + 1) (QUESTION :: acc)
      | '+' -> scan (i + 1) (PLUS :: acc)
      | '-' -> scan (i + 1) (MINUS :: acc)
      | '*' -> scan (i + 1) (STAR :: acc)
      | '/' -> scan (i + 1) (SLASH :: acc)
      | '%' -> scan (i + 1) (PERCENT :: acc)
      | ':' ->
          if peek (i + 1) = Some '=' then scan (i + 2) (ASSIGN :: acc)
          else raise (Lex_error ("expected ':='", i))
      | '|' ->
          if peek (i + 1) = Some '|' then scan (i + 2) (PARALLEL :: acc)
          else raise (Lex_error ("expected '||'", i))
      | '&' ->
          if peek (i + 1) = Some '&' then scan (i + 2) (ANDAND :: acc)
          else raise (Lex_error ("expected '&&'", i))
      | '<' ->
          if peek (i + 1) = Some '=' then scan (i + 2) (LE :: acc)
          else scan (i + 1) (LT :: acc)
      | '>' ->
          if peek (i + 1) = Some '=' then scan (i + 2) (GE :: acc)
          else scan (i + 1) (GT :: acc)
      | '=' ->
          if peek (i + 1) = Some '=' then scan (i + 2) (EQ :: acc)
          else raise (Lex_error ("expected '=='", i))
      | '!' ->
          (* '!' is channel send when followed by an operand, NOT when it
             negates; '!=' is always disequality.  The parser tells send
             from negation by context, so we only split off '!='. *)
          if peek (i + 1) = Some '=' then scan (i + 2) (NE :: acc)
          else scan (i + 1) (BANG :: acc)
      | c when is_digit c ->
          let rec stop j = if j < n && is_digit input.[j] then stop (j + 1) else j in
          let j = stop i in
          scan j (INT (int_of_string (String.sub input i (j - i))) :: acc)
      | c when is_ident_start c ->
          let rec stop j = if j < n && is_ident_char input.[j] then stop (j + 1) else j in
          let j = stop i in
          let word = String.sub input i (j - i) in
          let tok =
            match keyword_of_ident word with
            | Some kw -> kw
            | None -> IDENT word
          in
          scan j (tok :: acc)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  in
  scan 0 []

let pp_token ppf tok =
  let s =
    match tok with
    | INT i -> string_of_int i
    | IDENT x -> Printf.sprintf "ident %s" x
    | KW_SKIP -> "skip"
    | KW_IF -> "if"
    | KW_THEN -> "then"
    | KW_ELSE -> "else"
    | KW_WHILE -> "while"
    | KW_DO -> "do"
    | KW_SIGNAL -> "signal"
    | KW_WAIT -> "wait"
    | KW_OP -> "op"
    | KW_TRUE -> "true"
    | KW_FALSE -> "false"
    | KW_OR -> "or"
    | LBRACE -> "{"
    | RBRACE -> "}"
    | LPAREN -> "("
    | RPAREN -> ")"
    | SEMI -> ";"
    | AT -> "@"
    | QUESTION -> "?"
    | BANG -> "!"
    | ASSIGN -> ":="
    | PARALLEL -> "||"
    | PLUS -> "+"
    | MINUS -> "-"
    | STAR -> "*"
    | SLASH -> "/"
    | PERCENT -> "%"
    | LT -> "<"
    | LE -> "<="
    | GT -> ">"
    | GE -> ">="
    | EQ -> "=="
    | NE -> "!="
    | ANDAND -> "&&"
    | EOF -> "<eof>"
  in
  Format.pp_print_string ppf s
