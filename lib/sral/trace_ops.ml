module Trace_set = Set.Make (struct
  type t = Trace.t

  let compare = Trace.compare
end)

type t = Trace_set.t

let of_list l = Trace_set.of_list l
let to_list s = Trace_set.elements s

let concat m1 m2 =
  Trace_set.fold
    (fun t acc ->
      Trace_set.fold (fun v acc -> Trace_set.add (Trace.concat t v) acc) m2 acc)
    m1 Trace_set.empty

let union = Trace_set.union

(* Definition in Section 3.2: head(t).x for x in (tail t # v), plus the
   symmetric case. *)
let rec interleave_traces t v =
  match (t, v) with
  | [], _ -> Trace_set.singleton v
  | _, [] -> Trace_set.singleton t
  | a :: t', b :: v' ->
      let left =
        Trace_set.map (fun x -> a :: x) (interleave_traces t' v)
      in
      let right =
        Trace_set.map (fun x -> b :: x) (interleave_traces t v')
      in
      Trace_set.union left right

let interleave m1 m2 =
  Trace_set.fold
    (fun t acc ->
      Trace_set.fold
        (fun v acc -> Trace_set.union (interleave_traces t v) acc)
        m2 acc)
    m1 Trace_set.empty

let kleene ~bound m =
  let eps = Trace_set.singleton Trace.empty in
  let rec loop acc power i =
    if i >= bound then acc
    else
      let power = concat power m in
      if Trace_set.subset power acc then acc
      else loop (Trace_set.union acc power) power (i + 1)
  in
  loop eps eps 0

let rec traces_bounded ~loop_bound p =
  let eps = Trace_set.singleton Trace.empty in
  match p with
  | Ast.Skip | Ast.Recv _ | Ast.Send _ | Ast.Signal _ | Ast.Wait _
  | Ast.Assign _ ->
      eps
  | Ast.Access a -> Trace_set.singleton [ a ]
  | Ast.Seq (p1, p2) ->
      concat (traces_bounded ~loop_bound p1) (traces_bounded ~loop_bound p2)
  | Ast.If (_, p1, p2) ->
      union (traces_bounded ~loop_bound p1) (traces_bounded ~loop_bound p2)
  | Ast.Par (p1, p2) ->
      interleave (traces_bounded ~loop_bound p1) (traces_bounded ~loop_bound p2)
  | Ast.While (_, body) -> kleene ~bound:loop_bound (traces_bounded ~loop_bound body)
