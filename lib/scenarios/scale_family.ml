module Q = Temporal.Q

let resources = [ "r1"; "r2"; "r3" ]

(* One permissive policy shared by the big-coalition builds: a single
   worker role with a wildcard grant, so decision cost is the flat
   indexed path and the benchmark measures the engine, not the policy. *)
let permissive_control () =
  let p = Rbac.Policy.create () in
  Rbac.Policy.add_user p "u1";
  Rbac.Policy.add_role p "worker";
  Rbac.Policy.grant p "worker" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
  Rbac.Policy.assign_user p "u1" "worker";
  Coordinated.System.create ~bindings:[] p

module Drive (W : Naplet.World_intf.S) = struct
  (* ------------------------------------------------------------------
     Randomized small coalitions — the conformance corpus.  Everything
     is drawn from (salt, seed) through the same code path for both
     engines, so equal inputs must yield byte-equal exported traces. *)

  let random_trace ?(faults = true) ~salt ~seed () =
    let rng = Random.State.make [| salt; seed |] in
    let n_servers = 2 + Random.State.int rng 3 in
    let server_names =
      List.init n_servers (fun i -> Printf.sprintf "s%d" (i + 1))
    in
    let policy = Rbac.Policy.create () in
    List.iter (Rbac.Policy.add_user policy) Parallel.Workload.users;
    List.iter (Rbac.Policy.add_role policy) Parallel.Workload.roles;
    List.iter
      (fun (role, perm) -> Rbac.Policy.grant policy role perm)
      (Parallel.Workload.grants ~resources ~servers:server_names rng);
    List.iter
      (fun (u, r) -> Rbac.Policy.assign_user policy u r)
      (Parallel.Workload.assignments rng);
    let bindings = Parallel.Workload.bindings ~resources rng in
    let control = Coordinated.System.create ~bindings policy in
    let sink, captured = Obs.Sink.memory () in
    Obs.Bus.subscribe (Coordinated.System.bus control) sink;
    let world = W.create control in
    List.iter
      (fun name ->
        let capacity = 1 + Random.State.int rng 2 in
        let access_duration =
          if Random.State.bool rng then Q.one else Q.make 1 2
        in
        let s = Naplet.Server.create ~access_duration ~capacity name in
        List.iter
          (fun r -> Naplet.Server.put_resource s ~name:r ~contents:(r ^ "@" ^ name))
          resources;
        W.add_server world s)
      server_names;
    (if faults && Random.State.int rng 3 > 0 then
       let name =
         Parallel.Workload.pick rng [ "light"; "moderate"; "heavy" ]
       in
       let plan =
         Fault.Plan.of_name name
           ~seed:(Random.State.int rng 1_000_000)
           ~servers:server_names ~horizon:60
       in
       let injector = Fault.Injector.create ~seed:(Random.State.int rng 1_000_000) plan in
       let resilience = Fault.Resilience.make ~recv_timeout:(Q.of_int 25) () in
       W.set_faults ~resilience world injector);
    let n_agents = 3 + Random.State.int rng 8 in
    for i = 1 to n_agents do
      let id = Printf.sprintf "o%d" i in
      let owner = Parallel.Workload.pick rng Parallel.Workload.users in
      let roles =
        List.filter (fun _ -> Random.State.bool rng) Parallel.Workload.roles
      in
      let home = Parallel.Workload.pick rng server_names in
      let program =
        Sral.Generate.program ~allow_io:true ~resources ~servers:server_names
          ~size:(4 + Random.State.int rng 8)
          rng
      in
      let team =
        if Random.State.int rng 3 = 0 then
          Some (Parallel.Workload.pick rng Parallel.Workload.team_names)
        else None
      in
      W.spawn ?team world ~id ~owner ~roles ~home program
    done;
    (* a mid-run administrative intervention through the public [at]
       API, so the closure-carrying admin path stays covered *)
    if Random.State.bool rng then begin
      let extra = Parallel.Workload.bindings ~resources rng in
      match extra with
      | [] -> ()
      | b :: _ ->
          W.at world
            ~time:(Q.of_int (1 + Random.State.int rng 20))
            (fun () -> Coordinated.System.add_binding control b)
    end;
    ignore (W.run world);
    Obs.Export.to_string (captured ())

  (* ------------------------------------------------------------------
     Big uniform coalitions — the scaling benchmark.  [objects] agents
     spread over [servers] servers; programs are shared ASTs (two local
     reads, with every 100th agent hopping to the next server so the
     migration path stays warm), so per-agent state is the machine +
     the SoA row, not a private program tree. *)

  let build_big ?(config = W.default_config) ~objects ~servers () =
    let control = permissive_control () in
    let world = W.create ~config control in
    let server_names =
      Array.init servers (fun i -> Printf.sprintf "s%d" (i + 1))
    in
    Array.iter
      (fun name ->
        let s = Naplet.Server.create ~capacity:4 name in
        Naplet.Server.put_resource s ~name:"r1" ~contents:"blob";
        W.add_server world s)
      server_names;
    let local_program =
      Array.map
        (fun s ->
          let a = Sral.Access.read "r1" ~at:s in
          Sral.Ast.seq [ Sral.Ast.Access a; Sral.Ast.Access a ])
        server_names
    in
    let hop_program =
      Array.mapi
        (fun i s ->
          let next = server_names.((i + 1) mod servers) in
          Sral.Ast.seq
            [
              Sral.Ast.Access (Sral.Access.read "r1" ~at:s);
              Sral.Ast.Access (Sral.Access.read "r1" ~at:next);
            ])
        server_names
    in
    for i = 0 to objects - 1 do
      let home = i mod servers in
      let program =
        if i mod 100 = 0 then hop_program.(home) else local_program.(home)
      in
      W.spawn world
        ~id:(Printf.sprintf "o%d" (i + 1))
        ~owner:"u1" ~roles:[ "worker" ]
        ~home:server_names.(home)
        program
    done;
    world
end

module Soa = Drive (Naplet.World)
module Legacy = Drive (Naplet.World_legacy)

(* The conformance gate: identical coalitions through both engines,
   byte-compared.  Returns the divergent seeds (empty = conformant). *)
let divergences ?(salt = 1919) ~runs offset =
  let diverged = ref [] in
  for seed = offset to offset + runs - 1 do
    let soa = Soa.random_trace ~salt ~seed () in
    let legacy = Legacy.random_trace ~salt ~seed () in
    if not (String.equal soa legacy) then diverged := seed :: !diverged
  done;
  List.rev !diverged
