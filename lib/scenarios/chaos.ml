module Q = Temporal.Q

let servers = [ "s1"; "s2"; "s3" ]
let horizon = 120

type report = {
  plan : Fault.Plan.t;
  seed : int;
  mode : Coordinated.System.decision_mode;
  metrics : Naplet.Metrics.t;
  trace : Obs.Trace.event list;
  violations : Fault.Invariant.violation list;
  routes : (string * string list) list;
}

(* Each courier gets a ring itinerary with an [Alt] middle leg, so a
   crashed alternative has a live detour. *)
let courier_itinerary i =
  let open Naplet.Itinerary in
  match i mod 3 with
  | 0 -> Seq [ Visit "s1"; Alt [ Visit "s2"; Visit "s3" ]; Visit "s1" ]
  | 1 -> Seq [ Visit "s2"; Alt [ Visit "s3"; Visit "s1" ]; Visit "s2" ]
  | _ -> Seq [ Visit "s3"; Alt [ Visit "s1"; Visit "s2" ]; Visit "s3" ]

let task server =
  Sral.Ast.Access (Sral.Access.custom "hash" "status" ~at:server)

let courier_route plan i =
  (* route around servers already down at dispatch; mid-run crashes are
     handled by the retry/fail-closed machinery instead *)
  let down s = Fault.Plan.server_down plan ~server:s ~time:Q.zero in
  Naplet.Itinerary.linearize_avoiding ~down (courier_itinerary i)

let producer_program messages =
  Sral.Ast.seq
    (List.init messages (fun i ->
         Sral.Ast.Send ("chaos-ch", Sral.Expr.Int i))
    @ [ Sral.Ast.Signal "chaos-done" ])

let consumer_program messages =
  Sral.Ast.seq
    (List.init messages (fun i ->
         Sral.Ast.Recv ("chaos-ch", Printf.sprintf "x%d" i))
    @ [ Sral.Ast.Wait "chaos-done" ])

let build_control ~mode =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "auditor";
  Rbac.Policy.add_role policy "system_auditor";
  Rbac.Policy.assign_user policy "auditor" "system_auditor";
  Rbac.Policy.grant policy "system_auditor"
    (Rbac.Perm.make ~operation:"hash" ~target:"*@*");
  Coordinated.System.create ~mode policy

let run ?(mode = Coordinated.System.Indexed) ?(plan_name = "moderate")
    ?(seed = 42) ?(couriers = 4) ?(messages = 4) () =
  let control = build_control ~mode in
  let capture, trace = Obs.Sink.memory () in
  Obs.Bus.subscribe (Coordinated.System.bus control) capture;
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    servers;
  let plan = Fault.Plan.of_name plan_name ~seed ~servers ~horizon in
  let injector = Fault.Injector.create ~seed plan in
  let resilience = Fault.Resilience.make ~recv_timeout:(Q.of_int 30) () in
  Naplet.World.set_faults ~resilience world injector;
  (* the Figure-1 audit itinerary, now under chaos *)
  Naplet.World.spawn world ~id:"audit-naplet" ~owner:"auditor"
    ~roles:[ "system_auditor" ] ~home:"s1"
    (Integrity_audit.audit_program ());
  (* couriers: rerouted itineraries *)
  let routes =
    List.init couriers (fun i ->
        let id = Printf.sprintf "courier-%d" i in
        let route = courier_route plan i in
        let home = List.nth servers (i mod List.length servers) in
        Naplet.World.spawn world ~id ~owner:"auditor"
          ~roles:[ "system_auditor" ] ~home
          (Sral.Ast.seq (List.map task route));
        (id, route))
  in
  (* channel + signal traffic exposed to drop/delay/duplicate/loss *)
  Naplet.World.spawn world ~id:"chaos-producer" ~owner:"auditor"
    ~roles:[ "system_auditor" ] ~home:"s1" (producer_program messages);
  Naplet.World.spawn world ~id:"chaos-consumer" ~owner:"auditor"
    ~roles:[ "system_auditor" ] ~home:"s2" (consumer_program messages);
  let metrics = Naplet.World.run world in
  let trace = trace () in
  let violations = Fault.Invariant.check ~plan trace in
  { plan; seed; mode; metrics; trace; violations; routes }

let export report = Obs.Export.to_string report.trace
