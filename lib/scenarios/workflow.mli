(** A coalition editorial workflow — the "workflow management system"
    motivation of Section 4, composed from every mechanism at once.

    Three stages on two servers: an author drafts at the [desk] server,
    a reviewer reviews at the [press] server, a publisher releases the
    issue there.  Enforcement:

    - spatial: reviewing requires the draft to have been written first,
      publishing requires the review — both as [⊗] constraints over
      *team* proofs (different naplets perform each stage);
    - RBAC: distinct roles per stage, with a dynamic
      separation-of-duty constraint — nobody may activate both the
      reviewer and the publisher role in one session (the reviewer must
      not approve their own release);
    - temporal: the publish permission carries a deadline.

    The [cheat] run has the reviewer's owner also attempt the publish
    stage in the same session: DSD blocks the role activation, so the
    publish access is denied by RBAC — the workflow needs a third
    principal. *)

type outcome = {
  drafted : bool;
  reviewed : bool;
  published : bool;
  denied : int;  (** total denials across the run *)
  all_completed : bool;  (** every agent ran to completion *)
}

val run : ?cheat:bool -> ?deadline:Temporal.Q.t -> unit -> outcome
(** Defaults: honest principals, no deadline.  With [cheat:true] the
    publish stage is attempted under the reviewer's session and fails.
    With a tight [deadline] (the budget starts at the publisher's
    dispatch) the publish stage expires. *)
