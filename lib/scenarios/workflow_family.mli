(** Coalition temporal workflows — the DAG-of-tasks scenario family.

    A workflow fixes a coalition deployment (RBAC population, grants,
    assignments, spatio-temporal bindings, a pool of mobile {e
    performer} objects) together with a DAG of tasks.  Each task names
    one shared-resource access that must be {e granted} by the deployed
    policy for the workflow to progress, optionally inside a temporal
    validity window, and tasks are related by separation-of-duty
    (pairwise-distinct performers) and binding-of-duty (one performer)
    constraints across the mobile objects — the constraint vocabulary
    of "Security Constraints in Temporal Role-Based Access-Controlled
    Workflows" mapped onto [lib/temporal] + [lib/srac].

    {b Execution semantics} are definitional and deterministic: tasks
    run one per slot in the {e canonical order} (Kahn's algorithm over
    the DAG, ties broken by declaration order).  The task at canonical
    position [k] (0-based) is performed by its assigned object, which
    arrives at the task's server at time [2k+1] and has the access
    decided at time [slot k = 2k+2] through the real decision pipeline.
    An assignment {e completes} the workflow iff every duty constraint
    holds, every task's slot lies inside its window, and every task's
    access is granted.  The encoding of a run is a
    {!Parallel.Scenario.t} — one interpreter ({!Parallel.Scenario.run},
    driving {!Coordinated.System.check}) serves the satisfiability
    checker, the brute-force oracle, the chaos/fuzz suites and the
    sharded conformance harness alike, so the family is a first-class
    workload for every existing harness.

    An optional {!Fault.Plan.t} rides along exactly as in
    {!Parallel.Scenario}: a task whose server is inside a crash window
    at its slot is denied fail-closed ([Server_unavailable]),
    deterministically from plan data alone. *)

type task = {
  name : string;
  access : Sral.Access.t;  (** the permission the task needs *)
  window : Temporal.Interval.t option;
      (** global-time validity window the task's decision slot must lie
          in ([None]: always valid) *)
  after : string list;  (** prerequisite task names (DAG edges) *)
}

type duty =
  | Separation of string list
      (** the named tasks must be performed by pairwise-distinct
          objects (SoD) *)
  | Binding of string list  (** ... by one and the same object (BoD) *)

type performer = { id : string; owner : string; roles : string list }
(** A mobile object available to the workflow.  Its SRAL program is the
    whole workflow script (every task access in canonical order) — the
    script is public; which steps an object {e performs} is the
    assignment's choice. *)

type t = private {
  users : string list;
  roles : string list;
  grants : (string * Rbac.Perm.t) list;
  assignments : (string * string) list;  (** user, role *)
  bindings : Coordinated.Perm_binding.t list;
  performers : performer list;
  tasks : task list;  (** in canonical (topological) order *)
  duties : duty list;
  plan : Fault.Plan.t option;
}

val make :
  ?users:string list ->
  ?roles:string list ->
  ?grants:(string * Rbac.Perm.t) list ->
  ?assignments:(string * string) list ->
  ?bindings:Coordinated.Perm_binding.t list ->
  ?duties:duty list ->
  ?plan:Fault.Plan.t ->
  performers:performer list ->
  tasks:task list ->
  unit ->
  t
(** Validates everything once: task names unique, [after] and duty
    edges resolve, the task graph is acyclic, duty groups have ≥ 2
    tasks, performer ids unique, owners are declared users, and the
    RBAC fields materialize into a well-formed policy.  Tasks are
    re-ordered into the canonical topological order.
    @raise Invalid_argument on any violation. *)

val slot : int -> Temporal.Q.t
(** Decision instant of the task at canonical position [k]: [2k+2]. *)

val task_slot : t -> string -> Temporal.Q.t
(** {!slot} of the named task.  @raise Not_found on unknown name. *)

val in_window : t -> int -> bool
(** Does task [k]'s window contain its slot?  (Assignment-independent,
    because the schedule is canonical.) *)

val windows_ok : t -> bool

val policy_of : t -> Rbac.Policy.t

val script : t -> Sral.Ast.t
(** The straight-line workflow script every performer carries. *)

type assignment = (string * string) list
(** [(task name, performer id)] pairs in canonical task order.  A
    prefix assignment covers the first [k] tasks. *)

val duties_ok : t -> assignment -> bool
(** Duty constraints restricted to the tasks the assignment covers. *)

val to_scenario : t -> assignment -> Parallel.Scenario.t
(** The run of the (possibly prefix) assignment as coalition data: per
    covered task [k], event [2k] is [Arrive] and event [2k+1] the
    [Check], so {!Parallel.Scenario}'s event clock (event [i] at time
    [i+1]) lands each decision exactly on {!slot}[ k].
    @raise Invalid_argument if the assignment is not a prefix of the
    canonical task order or names an unknown performer. *)

type task_result = {
  task : string;
  performer : string;
  verdict : Coordinated.Decision.verdict;
  in_window : bool;
}

type outcome = {
  results : task_result list;  (** canonical order, one per covered task *)
  completed : bool;
      (** duties hold ∧ every covered task in window ∧ every verdict
          granted — for a full assignment, "the workflow completes" *)
  raw : Parallel.Scenario.outcome;
      (** the underlying coalition run (trace, audit counters, log) *)
}

val run :
  ?mode:Coordinated.System.decision_mode -> t -> assignment -> outcome
(** Interpret {!to_scenario} with {!Parallel.Scenario.run} and read
    each task's structured verdict back off the decision events of the
    trace. *)

(** {2 Seeded generator families}

    All sampling comes from the caller's [Random.State.t] in
    [test/gen.ml] / {!Parallel.Workload} style: the same state always
    yields the same workflow. *)

type family = Satisfiable | Unsatisfiable | Adversarial

val family_name : family -> string
val family_of_name : string -> family option

val satisfiable :
  ?tasks:int -> ?performers:int -> Random.State.t -> t * assignment
(** A workflow with a {e planted} completing assignment (returned):
    grants cover each task's access for its planted performer, windows
    contain the slots, duties are consistent with the plant, bindings
    are harmless. *)

val unsatisfiable : ?tasks:int -> ?performers:int -> Random.State.t -> t
(** Unsatisfiable {e by construction}: a planted-satisfiable workflow
    sabotaged in one of four provable ways — all grants covering some
    task's access revoked; some task's window moved off its slot;
    a separation duty over more tasks than there are performers
    (pigeonhole); or a binding duty whose two tasks' permissions are
    granted to roles no single performer can hold together. *)

val adversarial :
  ?tasks:int -> ?performers:int -> ?faults:bool -> Random.State.t -> t
(** Everything random: grants/assignments from {!Parallel.Workload}'s
    distributions, the full spatio-temporal binding mix, windows that
    may contain, touch or miss their slots (including point and
    rational-endpoint windows), random duties, and (with [faults],
    default sometimes) a named fault plan over the run's horizon.  May
    be satisfiable or not — the differential suite decides each against
    the brute-force oracle. *)

val generate :
  ?tasks:int -> ?performers:int -> family -> Random.State.t -> t

val workflows :
  ?tasks:int -> ?performers:int -> family -> salt:int -> count:int -> int -> t array
(** [workflows fam ~salt ~count seed]: workflow [i] is generated from
    [Random.State.make [|salt; seed; i|]] — reproducible from the
    triple, and growing [count] never changes existing instances. *)

val pp_task : Format.formatter -> task -> unit
val pp : Format.formatter -> t -> unit
