(** Seeded admin-safety scenario families for the administrative
    verifier ({!Analysis.Admin}).

    Small-model instances (≤3 users, ≤3 roles, op budgets ≤4) in three
    families:

    - {b Reachable}: a leak is reachable {e by construction} — the
      generator plants an op sequence (optionally [join], then the
      needed [assign] and [grant]s) that provably reaches an
      acquirable deployment, then buries it among distractor ops and
      shuffles the pool.  The verifier must answer [Leak].
    - {b Sabotaged}: the leak is unreachable {e by construction} — the
      goal permission is granted nowhere and the pool cannot grant it,
      or the one granting role is SSD-blocked with no deassign in the
      pool, or the object is outside the coalition with no [join].
      The verifier must answer [Safe].
    - {b Adversarial}: everything random over the full op surface
      (assign/deassign, grant/revoke, ssd/dsd, bind, join/leave) —
      the differential suite decides these against
      {!Analysis.Admin.brute_force}.

    Generation draws only from the given [Random.State.t], so a seed
    reproduces an instance exactly. *)

type family = Reachable | Sabotaged | Adversarial

val family_name : family -> string
val family_of_name : string -> family option

val generate : family -> Random.State.t -> Analysis.Admin.instance

val reachable : Random.State.t -> Analysis.Admin.instance
val sabotaged : Random.State.t -> Analysis.Admin.instance
val adversarial : Random.State.t -> Analysis.Admin.instance
