module Q = Temporal.Q

let fig1 () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "auditor";
  Rbac.Policy.add_role policy "system_auditor";
  Rbac.Policy.assign_user policy "auditor" "system_auditor";
  Rbac.Policy.grant policy "system_auditor"
    (Rbac.Perm.make ~operation:"hash" ~target:"*@*");
  let bindings =
    List.map
      (fun (m, formula) ->
        Coordinated.Perm_binding.make ~spatial:formula
          ~spatial_scope:Coordinated.Perm_binding.Performed
          (Rbac.Perm.make ~operation:"hash"
             ~target:
               (m ^ "@" ^ List.assoc m Integrity_audit.placement)))
      (Integrity_audit.dependency_constraints ())
  in
  { Coordinated.Policy_lang.policy; bindings }

let fig1_text () = Coordinated.Policy_lang.render (fig1 ())
let fig1_world () = Analysis.World.of_policy (fig1 ())

let defective_text () =
  String.concat "\n"
    [
      "# Deliberately defective policy: one specimen of every analyzer";
      "# finding.  Binding indexes are load-bearing — the expected report";
      "# names them — so append, don't reorder.";
      "user   carol";
      "role   operator";
      "assign carol operator";
      "grant  operator read:*@*";
      "grant  operator write:log@s2";
      "# 0: healthy control (and the shadow winner for #3)";
      "bind   read:cfg@s1 spatial \"done(read cfg @ s1)\" scope performed";
      "# 1: semantically unsatisfiable (no syntactic 'false' anywhere)";
      "bind   read:db@s1 spatial \"done(read db @ s1) && !done(read db @ \
       s1)\" scope performed";
      "# 2: vacuous — the constraint is a tautology";
      "bind   write:log@s2 spatial \"done(write log @ s2) or !done(write \
       log @ s2)\"";
      "# 3: shadowed by #0 — same pattern and scope, strictly weaker \
       constraint";
      "bind   read:cfg@s1 spatial \"done(read cfg @ s1) or done(read db @ \
       s1)\" scope performed";
      "# 4: unexercisable — s9 exists in no grant or pattern, so the world";
      "# cannot perform the access the constraint demands";
      "bind   read:db@s1 spatial \"done(read vault @ s9)\" scope performed";
      "# 5: temporally excluded — the shortest satisfying walk takes 2 time";
      "# units, the whole-journey budget is 3/2";
      "bind   read:db@s1 spatial \"seq(read cfg @ s1, read db @ s1)\" scope \
       performed dur 3/2 scheme journey";
      "";
    ]

let defective () = Coordinated.Policy_lang.parse (defective_text ())
let defective_world () = Analysis.World.of_policy (defective ())

let defective_expected () =
  [
    Analysis.Analyzer.Unsatisfiable { index = 1; binding = "read:db@s1" };
    Analysis.Analyzer.Vacuous { index = 2; binding = "write:log@s2" };
    Analysis.Analyzer.Shadowed
      { index = 3; binding = "read:cfg@s1"; by_index = 0; by = "read:cfg@s1" };
    Analysis.Analyzer.Unexercisable { index = 4; binding = "read:db@s1" };
    Analysis.Analyzer.Temporal_excluded
      {
        index = 5;
        binding = "read:db@s1";
        needed = Q.of_int 2;
        budget = Q.make 3 2;
      };
  ]
