(** Workflow satisfiability: does {e any} object-to-task assignment
    complete a {!Workflow_family.t} under the deployed policy?

    The checker and the brute-force oracle decide the {e same}
    predicate by construction, because both reduce an assignment to the
    one definitional interpreter ({!Workflow_family.run}, i.e.
    {!Parallel.Scenario.run} driving {!Coordinated.System.check}) and
    both search assignments in the same lexicographic order (task at
    canonical position 0 most significant; performers in declaration
    order).  The checker prunes with {e sound, prefix-determined}
    filters only — static RBAC candidacy via
    {!Rbac.Engine.decide_access} on a simulated session, fail-closed
    crash windows from the fault plan, window prechecks, duty
    forward-checking and prefix replay — so when both find a witness it
    is the {e same} witness, and the differential suite can compare
    assignments for equality rather than mere sat/unsat agreement. *)

type impossibility =
  | Window_missed of {
      task : string;
      window : Temporal.Interval.t;
      slot : Temporal.Q.t;
    }
      (** the task's validity window does not contain its decision
          slot — no assignment can move the canonical schedule *)
  | No_candidate of { task : string; rejected : (string * string) list }
      (** no performer statically qualifies; [rejected] pairs each
          performer id with the reason ([rbac: ...] or [server ... is
          down at ...]) *)
  | Duty_unsatisfiable of { duty : Workflow_family.duty; detail : string }
      (** a separation duty over more tasks than there are performers,
          or a binding duty whose tasks share no common candidate *)
  | Exhausted of { task : string; attempts : (string * string) list }
      (** the backtracking search emptied; [task] is the deepest task
          reached and [attempts] pairs each performer tried there with
          the denial that rejected it *)

type verdict =
  | Complete of Workflow_family.assignment
      (** lexicographically-first completing assignment — a replayable
          witness: {!Workflow_family.run} on it completes *)
  | Impossible of impossibility

val check :
  ?mode:Coordinated.System.decision_mode -> Workflow_family.t -> verdict

val brute_force :
  ?mode:Coordinated.System.decision_mode ->
  Workflow_family.t ->
  Workflow_family.assignment option
(** The oracle: enumerate {e every} full assignment in lexicographic
    order and replay each through the interpreter, returning the first
    that completes.  No pruning, no shared code with {!check} beyond
    the interpreter itself.  Cost [performers ^ tasks] full replays —
    small instances only. *)

val candidates : Workflow_family.t -> int -> string list
(** Performer ids statically able to perform task [k]: plain-RBAC
    grant covers the access (simulated session, best-effort role
    activation exactly as the interpreter does) and the task's server
    is not inside a crash window at [slot k].  Sound: a non-candidate
    is denied in every run. *)

type comparison =
  | Agree_sat of Workflow_family.assignment
      (** both found this same witness *)
  | Agree_unsat of impossibility
  | Divergent of string

val against_brute_force :
  ?mode:Coordinated.System.decision_mode -> Workflow_family.t -> comparison
(** Run both deciders and compare.  [Divergent] also covers the
    checker returning a witness that fails to replay, and witnesses
    that differ — stricter than sat/unsat agreement. *)

val verdict_name : verdict -> string
(** ["sat"] or ["unsat"]. *)

val explain : impossibility -> string
val pp_verdict : Format.formatter -> verdict -> unit

val report_line :
  index:int -> family:Workflow_family.family -> Workflow_family.t -> string
(** One deterministic JSON object (no trailing newline, fixed key
    order) describing the differential on one workflow: index, family,
    size, checker verdict, witness or impossibility, brute-force
    verdict, agreement, and witness replay status.  Used verbatim by
    [stacc workflow] and the E18 report so two runs byte-compare. *)
