module Q = Temporal.Q
module W = Workflow_family

type impossibility =
  | Window_missed of {
      task : string;
      window : Temporal.Interval.t;
      slot : Temporal.Q.t;
    }
  | No_candidate of { task : string; rejected : (string * string) list }
  | Duty_unsatisfiable of { duty : W.duty; detail : string }
  | Exhausted of { task : string; attempts : (string * string) list }

type verdict = Complete of W.assignment | Impossible of impossibility

let render_verdict v = Format.asprintf "%a" Coordinated.Decision.pp_verdict v

(* Static candidacy, shared by the checker's filters and the duty
   prechecks.  Exactly mirrors the interpreter: sessions are created
   once per performer with best-effort role activation, and the RBAC
   stage of the decision pipeline is Rbac.Engine.decide_access on that
   session.  A [`Rbac] or [`Down] rejection therefore holds in every
   run, whatever the rest of the assignment does. *)
let candidate_table (wf : W.t) =
  let policy = W.policy_of wf in
  let sessions =
    List.map
      (fun (p : W.performer) ->
        let s = Rbac.Session.create policy ~user:p.owner in
        List.iter
          (fun r ->
            try Rbac.Session.activate s r with
            | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _ ->
                ())
          p.roles;
        (p.id, s))
      wf.W.performers
  in
  let tasks = Array.of_list wf.W.tasks in
  Array.mapi
    (fun k (tk : W.task) ->
      let server = tk.W.access.Sral.Access.server in
      let down =
        match wf.W.plan with
        | None -> false
        | Some plan -> Fault.Plan.server_down plan ~server ~time:(W.slot k)
      in
      List.map
        (fun (id, session) ->
          if down then
            ( id,
              Error
                (Printf.sprintf "server %s is down at %s" server
                   (Q.to_string (W.slot k))) )
          else
            match Rbac.Engine.decide_access session tk.W.access with
            | Rbac.Engine.Granted -> (id, Ok ())
            | Rbac.Engine.Denied why -> (id, Error ("rbac: " ^ why)))
        sessions)
    tasks

let ok_ids row = List.filter_map (fun (id, r) -> if Result.is_ok r then Some id else None) row

let candidates wf k = ok_ids (candidate_table wf).(k)

let duty_names = function W.Separation ns -> ns | W.Binding ns -> ns

(* Assignment-independent prechecks, in a fixed order so the checker's
   unsat explanations are deterministic. *)
let precheck (wf : W.t) table =
  let tasks = Array.of_list wf.W.tasks in
  let n = Array.length tasks in
  let missed =
    List.find_map
      (fun k ->
        if W.in_window wf k then None
        else
          match tasks.(k).W.window with
          | None -> None
          | Some w ->
              Some
                (Window_missed
                   { task = tasks.(k).W.name; window = w; slot = W.slot k }))
      (List.init n Fun.id)
  in
  match missed with
  | Some imp -> Some imp
  | None -> (
      let no_candidate =
        List.find_map
          (fun k ->
            if ok_ids table.(k) = [] then
              Some
                (No_candidate
                   {
                     task = tasks.(k).W.name;
                     rejected =
                       List.map
                         (fun (id, r) ->
                           (id, match r with Ok () -> "ok" | Error e -> e))
                         table.(k);
                   })
            else None)
          (List.init n Fun.id)
      in
      match no_candidate with
      | Some imp -> Some imp
      | None ->
          let m = List.length wf.W.performers in
          let position name =
            let rec go k = function
              | [] -> assert false
              | (tk : W.task) :: _ when String.equal tk.W.name name -> k
              | _ :: rest -> go (k + 1) rest
            in
            go 0 wf.W.tasks
          in
          List.find_map
            (fun duty ->
              match duty with
              | W.Separation names when List.length names > m ->
                  Some
                    (Duty_unsatisfiable
                       {
                         duty;
                         detail =
                           Printf.sprintf
                             "%d mutually-separated tasks, %d performers"
                             (List.length names) m;
                       })
              | W.Separation _ -> None
              | W.Binding names ->
                  let shared =
                    List.fold_left
                      (fun acc name ->
                        let ids = ok_ids table.(position name) in
                        List.filter (fun id -> List.mem id ids) acc)
                      (List.map (fun (p : W.performer) -> p.W.id) wf.W.performers)
                      names
                  in
                  if shared = [] then
                    Some
                      (Duty_unsatisfiable
                         {
                           duty;
                           detail = "no performer qualifies for every bound task";
                         })
                  else None)
            wf.W.duties)

(* Depth-first search in lexicographic order.  The verdict of task [k]
   in any run is determined by the assignment prefix covering tasks
   0..k (every performer carries the same full script, and the
   interpreter's state at slot k only reads events of earlier tasks),
   so replaying the prefix after each extension is an *exact* test:
   a denial prunes a subtree that provably contains no witness, and a
   grant means the prefix is a real partial completion.  Hence the
   first full assignment reached is the lexicographic minimum among
   all completing assignments — the same one brute force finds. *)
let check ?mode (wf : W.t) =
  let table = candidate_table wf in
  match precheck wf table with
  | Some imp -> Impossible imp
  | None ->
      let tasks = Array.of_list wf.W.tasks in
      let n = Array.length tasks in
      let deepest = ref (-1) and deepest_attempts = ref [] in
      let rec go k prefix_rev =
        if k = n then Some (List.rev prefix_rev)
        else begin
          let attempts = ref [] in
          let found =
            List.find_map
              (fun (id, sr) ->
                match sr with
                | Error why ->
                    attempts := (id, why) :: !attempts;
                    None
                | Ok () -> (
                    let prefix =
                      List.rev ((tasks.(k).W.name, id) :: prefix_rev)
                    in
                    if not (W.duties_ok wf prefix) then begin
                      attempts := (id, "duty violated") :: !attempts;
                      None
                    end
                    else
                      let outcome = W.run ?mode wf prefix in
                      let last =
                        List.nth outcome.W.results
                          (List.length outcome.W.results - 1)
                      in
                      match last.W.verdict with
                      | Coordinated.Decision.Granted ->
                          go (k + 1) ((tasks.(k).W.name, id) :: prefix_rev)
                      | Coordinated.Decision.Denied _ as v ->
                          attempts := (id, render_verdict v) :: !attempts;
                          None))
              table.(k)
          in
          (if found = None && k > !deepest then begin
             deepest := k;
             deepest_attempts := List.rev !attempts
           end);
          found
        end
      in
      (match go 0 [] with
      | Some witness -> Complete witness
      | None ->
          Impossible
            (Exhausted
               {
                 task = tasks.(!deepest).W.name;
                 attempts = !deepest_attempts;
               }))

(* The oracle: every full assignment, lexicographic order, full replay,
   no pruning and no shared search code. *)
let brute_force ?mode (wf : W.t) =
  let ids = List.map (fun (p : W.performer) -> p.W.id) wf.W.performers in
  let names = List.map (fun (tk : W.task) -> tk.W.name) wf.W.tasks in
  let rec enum = function
    | [] -> [ [] ]
    | name :: rest ->
        let tails = enum rest in
        List.concat_map
          (fun id -> List.map (fun tl -> (name, id) :: tl) tails)
          ids
  in
  List.find_opt (fun asg -> (W.run ?mode wf asg).W.completed) (enum names)

type comparison =
  | Agree_sat of W.assignment
  | Agree_unsat of impossibility
  | Divergent of string

let render_assignment asg =
  String.concat "," (List.map (fun (t, p) -> t ^ "=" ^ p) asg)

let explain = function
  | Window_missed { task; window; slot } ->
      Format.asprintf "task %s: window %a misses slot %a" task
        Temporal.Interval.pp window Q.pp slot
  | No_candidate { task; rejected } ->
      Printf.sprintf "task %s: no candidate (%s)" task
        (String.concat "; "
           (List.map (fun (id, why) -> id ^ ": " ^ why) rejected))
  | Duty_unsatisfiable { duty; detail } ->
      Printf.sprintf "%s duty over %s: %s"
        (match duty with W.Separation _ -> "separation" | W.Binding _ -> "binding")
        (String.concat "," (duty_names duty))
        detail
  | Exhausted { task; attempts } ->
      Printf.sprintf "search exhausted at task %s (%s)" task
        (String.concat "; "
           (List.map (fun (id, why) -> id ^ ": " ^ why) attempts))

let verdict_name = function Complete _ -> "sat" | Impossible _ -> "unsat"

let pp_verdict ppf = function
  | Complete asg -> Format.fprintf ppf "sat: %s" (render_assignment asg)
  | Impossible imp -> Format.fprintf ppf "unsat: %s" (explain imp)

let against_brute_force ?mode wf =
  match (check ?mode wf, brute_force ?mode wf) with
  | Complete w, Some w' when w = w' ->
      if (W.run ?mode wf w).W.completed then Agree_sat w
      else Divergent ("witness does not replay: " ^ render_assignment w)
  | Complete w, Some w' ->
      Divergent
        (Printf.sprintf "witness mismatch: checker %s, brute force %s"
           (render_assignment w) (render_assignment w'))
  | Complete w, None ->
      Divergent ("checker sat (" ^ render_assignment w ^ "), brute force unsat")
  | Impossible imp, None -> Agree_unsat imp
  | Impossible imp, Some w ->
      Divergent
        (Printf.sprintf "checker unsat (%s), brute force found %s" (explain imp)
           (render_assignment w))

(* Deterministic JSONL, in lib/obs/export.ml's style: fixed key order,
   canonical escaping, ℚ rendered as num/den strings — so two runs of
   the same corpus byte-compare. *)
let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let field b ~first name value =
  if not first then Buffer.add_char b ',';
  Buffer.add_char b '"';
  Buffer.add_string b name;
  Buffer.add_string b "\":";
  Buffer.add_string b value

let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"';
  Buffer.contents b

let report_line ~index ~family (wf : W.t) =
  let verdict = check wf in
  let brute = brute_force wf in
  let agree =
    match (verdict, brute) with
    | Complete w, Some w' -> w = w'
    | Impossible _, None -> true
    | _ -> false
  in
  let replay =
    match verdict with
    | Impossible _ -> "n/a"
    | Complete w -> if (W.run wf w).W.completed then "completed" else "FAILED"
  in
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  field b ~first:true "index" (string_of_int index);
  field b ~first:false "family" (jstr (W.family_name family));
  field b ~first:false "tasks" (string_of_int (List.length wf.W.tasks));
  field b ~first:false "performers"
    (string_of_int (List.length wf.W.performers));
  field b ~first:false "duties" (string_of_int (List.length wf.W.duties));
  field b ~first:false "faults"
    (match wf.W.plan with None -> "false" | Some _ -> "true");
  field b ~first:false "verdict" (jstr (verdict_name verdict));
  (match verdict with
  | Complete w -> field b ~first:false "witness" (jstr (render_assignment w))
  | Impossible imp -> field b ~first:false "impossible" (jstr (explain imp)));
  field b ~first:false "brute"
    (jstr (match brute with Some _ -> "sat" | None -> "unsat"));
  field b ~first:false "agree" (if agree then "true" else "false");
  field b ~first:false "replay" (jstr replay);
  Buffer.add_char b '}';
  Buffer.contents b
