(** The introduction's coordination example: "if a mobile device
    accesses a resource r (e.g. a licensed software package or its
    trial version) on site s₁ for too many times during a certain time
    period, it is not allowed to access the resource on site s₂
    forever" — plus Example 3.5's [#(0, 5, σ_RSW(A))] cardinality
    bound.

    Site s₁ is permissive (it hosts the trial and imposes no local
    bound); the *coordination* is that s₂'s permission carries the
    history-scoped constraint [#(0, limit, σ(rsw ∧ s₁))]: the execution
    proofs collected at s₁ travel with the object, and once they show
    overuse, s₂ denies forever.  An optional [global_limit] adds
    Example 3.5's everywhere-bound [#(0, n, σ_RSW)] on all servers, and
    an optional [period] time-boxes the trial (validity duration). *)

type outcome = {
  attempts : int;
  granted_s1 : int;
  granted_s2 : int;
  denied : int;
  s2_locked_out : bool;
      (** every s₂ attempt denied (after s₁ overuse) *)
}

val run :
  ?s1_uses:int ->
  ?s2_uses:int ->
  ?limit:int ->
  ?global_limit:int ->
  ?period:Temporal.Q.t ->
  unit ->
  outcome
(** A mobile object executes the RSW package [s1_uses] times at s₁,
    then [s2_uses] times at s₂ (defaults 7 and 3, limit 5).  With the
    defaults all 7 s₁ uses are granted — and s₂ is locked out forever.
    With [s1_uses <= limit], s₂ grants. *)

val rsw_access : at:string -> Sral.Access.t
