module Q = Temporal.Q

type outcome = {
  scout_reads : int;
  courier_commits : int;
  courier_denied : int;
  team_succeeded : bool;
}

let run ?(share_proofs = true) () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "lead";
  Rbac.Policy.add_role policy "surveyor";
  Rbac.Policy.assign_user policy "lead" "surveyor";
  Rbac.Policy.grant policy "surveyor"
    (Rbac.Perm.make ~operation:"*" ~target:"*@*");
  let control = Coordinated.System.create policy in
  let manifest = Sral.Access.read "manifest" ~at:"s1" in
  let vault = Sral.Access.write "vault" ~at:"s2" in
  Coordinated.System.add_binding control
    (Coordinated.Perm_binding.make
       ~spatial:(Srac.Formula.Ordered (manifest, vault))
       ~spatial_scope:Coordinated.Perm_binding.Performed
       ~proof_scope:
         (if share_proofs then Coordinated.Perm_binding.Team
          else Coordinated.Perm_binding.Own)
       (Rbac.Perm.make ~operation:"write" ~target:"vault@s2"));
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s1"; "s2" ];
  Naplet.World.spawn world ~team:"survey" ~id:"scout" ~owner:"lead"
    ~roles:[ "surveyor" ] ~home:"s1"
    (Sral.Parser.program "read manifest @ s1; signal(manifest_read)");
  Naplet.World.spawn world ~team:"survey" ~id:"courier" ~owner:"lead"
    ~roles:[ "surveyor" ] ~home:"s2"
    (Sral.Parser.program "wait(manifest_read); write vault @ s2");
  let _metrics = Naplet.World.run world in
  let log = Coordinated.System.log control in
  let by obj pred =
    List.length
      (List.filter
         (fun (e : Coordinated.Audit_log.entry) ->
           String.equal e.Coordinated.Audit_log.object_id obj
           && pred (Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict))
         (Coordinated.Audit_log.entries log))
  in
  {
    scout_reads = by "scout" Fun.id;
    courier_commits = by "courier" Fun.id;
    courier_denied = by "courier" not;
    team_succeeded = by "courier" Fun.id > 0;
  }
