module Q = Temporal.Q
module Scenario = Parallel.Scenario

type task = {
  name : string;
  access : Sral.Access.t;
  window : Temporal.Interval.t option;
  after : string list;
}

type duty = Separation of string list | Binding of string list
type performer = { id : string; owner : string; roles : string list }

type t = {
  users : string list;
  roles : string list;
  grants : (string * Rbac.Perm.t) list;
  assignments : (string * string) list;
  bindings : Coordinated.Perm_binding.t list;
  performers : performer list;
  tasks : task list;
  duties : duty list;
  plan : Fault.Plan.t option;
}

let invalid fmt = Format.kasprintf invalid_arg ("Workflow_family.make: " ^^ fmt)

(* Kahn's algorithm; among ready tasks the least declaration index goes
   first, so the canonical order is total and deterministic. *)
let canonical_order tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let index = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i tk ->
      if Hashtbl.mem index tk.name then invalid "duplicate task %S" tk.name;
      Hashtbl.add index tk.name i)
    arr;
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iteri
    (fun i tk ->
      List.iter
        (fun pre ->
          match Hashtbl.find_opt index pre with
          | None -> invalid "task %S: unknown prerequisite %S" tk.name pre
          | Some j ->
              succs.(j) <- i :: succs.(j);
              indeg.(i) <- indeg.(i) + 1)
        (List.sort_uniq String.compare tk.after))
    arr;
  let out = ref [] and placed = ref 0 in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if indeg.(i) = 0 then ready := i :: !ready
  done;
  while !ready <> [] do
    let i = List.fold_left min (List.hd !ready) !ready in
    ready := List.filter (fun j -> j <> i) !ready;
    out := arr.(i) :: !out;
    incr placed;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then ready := s :: !ready)
      succs.(i)
  done;
  if !placed <> n then invalid "task graph has a cycle";
  List.rev !out

let policy_of t =
  let p = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user p) t.users;
  List.iter (Rbac.Policy.add_role p) t.roles;
  List.iter (fun (r, perm) -> Rbac.Policy.grant p r perm) t.grants;
  List.iter (fun (u, r) -> Rbac.Policy.assign_user p u r) t.assignments;
  p

let make ?(users = []) ?(roles = []) ?(grants = []) ?(assignments = [])
    ?(bindings = []) ?(duties = []) ?plan ~performers ~tasks () =
  let tasks = canonical_order tasks in
  let known name = List.exists (fun tk -> String.equal tk.name name) tasks in
  List.iter
    (fun duty ->
      let names =
        match duty with Separation ns -> ns | Binding ns -> ns
      in
      if List.length names < 2 then invalid "duty needs at least 2 tasks";
      if List.length (List.sort_uniq String.compare names) <> List.length names
      then invalid "duty names a task twice";
      List.iter
        (fun name -> if not (known name) then invalid "duty over unknown task %S" name)
        names)
    duties;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.id then invalid "duplicate performer %S" p.id;
      Hashtbl.add seen p.id ();
      if not (List.mem p.owner users) then
        invalid "performer %S: owner %S is not a declared user" p.id p.owner)
    performers;
  let t =
    { users; roles; grants; assignments; bindings; performers; tasks; duties;
      plan }
  in
  (* materialize the policy once so ill-formed RBAC fields fail here,
     not in the middle of a run *)
  (try ignore (policy_of t) with
  | Rbac.Policy.Unknown (kind, name) -> invalid "unknown %s %S" kind name
  | Rbac.Policy.Ssd_violation (sod, u, r) ->
      invalid "assignment %S -> %S violates ssd %S" u r sod.Rbac.Sod.name);
  t

(* Task k's arrival is event 2k, its check event 2k+1; Scenario's clock
   runs event i at time i+1, so the decision lands at 2k+2. *)
let slot k = Q.of_int ((2 * k) + 2)

let position t name =
  let rec go k = function
    | [] -> raise Not_found
    | tk :: _ when String.equal tk.name name -> k
    | _ :: rest -> go (k + 1) rest
  in
  go 0 t.tasks

let task_slot t name = slot (position t name)

let in_window t k =
  match (List.nth t.tasks k).window with
  | None -> true
  | Some w -> Temporal.Interval.contains w (slot k)

let windows_ok t = List.for_all (fun k -> in_window t k) (List.init (List.length t.tasks) Fun.id)

let script t = Sral.Ast.seq (List.map (fun tk -> Sral.Ast.access tk.access) t.tasks)

type assignment = (string * string) list

let duties_ok t asg =
  let lookup name = List.assoc_opt name asg in
  List.for_all
    (function
      | Separation names ->
          let ps = List.filter_map lookup names in
          List.length ps = List.length (List.sort_uniq String.compare ps)
      | Binding names -> (
          match List.filter_map lookup names with
          | [] -> true
          | p :: rest -> List.for_all (String.equal p) rest))
    t.duties

let to_scenario t asg =
  let rec zip tasks asg acc =
    match (tasks, asg) with
    | _, [] -> List.rev acc
    | [], _ :: _ -> invalid_arg "Workflow_family.to_scenario: assignment too long"
    | tk :: ts, (name, pid) :: rest ->
        if not (String.equal tk.name name) then
          invalid_arg
            (Printf.sprintf
               "Workflow_family.to_scenario: assignment is not a canonical \
                prefix (expected task %S, got %S)"
               tk.name name);
        if not (List.exists (fun p -> String.equal p.id pid) t.performers) then
          invalid_arg
            (Printf.sprintf "Workflow_family.to_scenario: unknown performer %S"
               pid);
        zip ts rest ((tk, pid) :: acc)
  in
  let covered = zip t.tasks asg [] in
  let prog = script t in
  {
    Scenario.users = t.users;
    roles = t.roles;
    grants = t.grants;
    assignments = t.assignments;
    bindings = t.bindings;
    objects =
      List.map
        (fun p -> { Scenario.id = p.id; owner = p.owner; roles = p.roles; program = prog })
        t.performers;
    events =
      List.concat_map
        (fun (tk, pid) ->
          [
            Scenario.Arrive (pid, tk.access.Sral.Access.server);
            Scenario.Check (pid, tk.access);
          ])
        covered;
    plan = t.plan;
  }

type task_result = {
  task : string;
  performer : string;
  verdict : Coordinated.Decision.verdict;
  in_window : bool;
}

type outcome = {
  results : task_result list;
  completed : bool;
  raw : Scenario.outcome;
}

let run ?mode t asg =
  let raw = Scenario.run ?mode (to_scenario t asg) in
  let decision_at time =
    List.find_map
      (function
        | Obs.Trace.Decision d when Q.equal d.time time -> Some d.verdict
        | _ -> None)
      raw.Scenario.trace
  in
  let results =
    List.mapi
      (fun k (name, pid) ->
        let verdict =
          match decision_at (slot k) with
          | Some v -> v
          | None ->
              (* every Check emits exactly one Decision event (the
                 fail-closed path mints its own), so this is a harness
                 bug, not a workflow outcome *)
              failwith
                (Printf.sprintf
                   "Workflow_family.run: no decision recorded for task %S" name)
        in
        { task = name; performer = pid; verdict; in_window = in_window t k })
      asg
  in
  let completed =
    List.length asg = List.length t.tasks
    && duties_ok t asg
    && List.for_all
         (fun r -> r.in_window && Coordinated.Decision.is_granted r.verdict)
         results
  in
  { results; completed; raw }

(* ------------------------------------------------------------------ *)
(* Seeded generator families                                           *)
(* ------------------------------------------------------------------ *)

type family = Satisfiable | Unsatisfiable | Adversarial

let family_name = function
  | Satisfiable -> "satisfiable"
  | Unsatisfiable -> "unsatisfiable"
  | Adversarial -> "adversarial"

let family_of_name = function
  | "satisfiable" -> Some Satisfiable
  | "unsatisfiable" -> Some Unsatisfiable
  | "adversarial" -> Some Adversarial
  | _ -> None

let pick = Parallel.Workload.pick
let gen_servers = [ "s1"; "s2" ]
let gen_resources = [ "r1"; "r2"; "r3" ]

let gen_access rng =
  Sral.Access.make
    ~op:(pick rng [ Sral.Access.Read; Sral.Access.Write; Sral.Access.Execute ])
    ~resource:(pick rng gen_resources)
    ~server:(pick rng gen_servers)

(* Random forward-edge DAG over t1..tn: prerequisites point at earlier
   declarations only, so the canonical order is the declaration order
   and slot positions are known while generating. *)
let gen_tasks rng n =
  List.init n (fun k ->
      let name = Printf.sprintf "t%d" (k + 1) in
      let after =
        List.filteri
          (fun _ _ -> Random.State.int rng 4 = 0)
          (List.init k (fun j -> Printf.sprintf "t%d" (j + 1)))
      in
      let after = List.filteri (fun i _ -> i < 2) after in
      { name; access = gen_access rng; window = None; after })

let target_of (a : Sral.Access.t) = a.Sral.Access.resource ^ "@" ^ a.Sral.Access.server

let perm_of (a : Sral.Access.t) =
  Rbac.Perm.make
    ~operation:(Sral.Access.operation_name a.Sral.Access.op)
    ~target:(target_of a)

let covers perm (a : Sral.Access.t) =
  Rbac.Perm.matches perm
    ~operation:(Sral.Access.operation_name a.Sral.Access.op)
    ~target:(target_of a)

let satisfiable ?tasks:n_tasks ?performers:n_perf rng =
  let n = match n_tasks with Some n -> n | None -> 2 + Random.State.int rng 4 in
  let m = match n_perf with Some m -> m | None -> 2 + Random.State.int rng 2 in
  let users = Parallel.Workload.users in
  let roles = Parallel.Workload.roles in
  let assignments =
    [ ("u1", "ra"); ("u2", "rb") ]
    @ List.concat_map
        (fun u ->
          if Random.State.int rng 4 = 0 then [ (u, "rc") ] else [])
        users
  in
  let roles_of owner =
    List.filter_map
      (fun (u, r) -> if String.equal u owner then Some r else None)
      assignments
  in
  let performers =
    List.init m (fun i ->
        let owner = pick rng users in
        { id = Printf.sprintf "p%d" (i + 1); owner; roles = roles_of owner })
  in
  let tasks = gen_tasks rng n in
  let planted = List.map (fun tk -> (tk.name, pick rng performers)) tasks in
  let grants =
    List.map2
      (fun tk ((_, p) : string * performer) -> (List.hd p.roles, perm_of tk.access))
      tasks planted
  in
  let tasks =
    List.mapi
      (fun k tk ->
        let s = slot k in
        let window =
          match Random.State.int rng 4 with
          | 0 | 1 -> None
          | 2 ->
              Some
                (Temporal.Interval.make
                   (Q.sub s (Q.make 1 2))
                   (Q.add s (Q.of_int (1 + Random.State.int rng 3))))
          | _ -> Some (Temporal.Interval.make s s) (* point window on the slot *)
        in
        { tk with window })
      tasks
  in
  let performer_at name =
    snd (List.find (fun (n', _) -> String.equal n' name) planted)
  in
  let distinct_pair =
    List.find_opt
      (fun (a, b) -> not (String.equal (performer_at a).id (performer_at b).id))
      (List.concat_map
         (fun a -> List.filter_map (fun b ->
              if String.equal a.name b.name then None else Some (a.name, b.name)) tasks)
         tasks)
  in
  let same_pair =
    List.find_opt
      (fun (a, b) -> String.equal (performer_at a).id (performer_at b).id)
      (List.concat_map
         (fun a -> List.filter_map (fun b ->
              if a.name >= b.name then None else Some (a.name, b.name)) tasks)
         tasks)
  in
  let duties =
    (match distinct_pair with
    | Some (a, b) when Random.State.bool rng -> [ Separation [ a; b ] ]
    | _ -> [])
    @
    match same_pair with
    | Some (a, b) when Random.State.bool rng -> [ Binding [ a; b ] ]
    | _ -> []
  in
  (* a harmless temporal binding: it constrains one planted permission
     with a validity duration far beyond the run's horizon, so it is
     active (the grant covers its pattern) and never expires *)
  let bindings =
    if Random.State.bool rng then
      [
        Coordinated.Perm_binding.make
          ~dur:(Q.of_int (100 + Random.State.int rng 100))
          (perm_of (List.hd tasks).access);
      ]
    else []
  in
  let wf =
    make ~users ~roles ~grants ~assignments ~bindings ~duties ~performers
      ~tasks ()
  in
  (wf, List.map (fun (name, p) -> (name, p.id)) planted)

let unsatisfiable ?tasks:n_tasks ?performers:n_perf rng =
  let wf, _ = satisfiable ?tasks:n_tasks ?performers:n_perf rng in
  let rebuild ?(grants = wf.grants) ?(assignments = wf.assignments)
      ?(performers = wf.performers) ?(tasks = wf.tasks) ?(duties = wf.duties)
      () =
    make ~users:wf.users ~roles:wf.roles ~grants ~assignments
      ~bindings:wf.bindings ~duties ~performers ~tasks ()
  in
  let n = List.length wf.tasks and m = List.length wf.performers in
  let revoke_all_for k =
    let victim = List.nth wf.tasks k in
    rebuild
      ~grants:
        (List.filter (fun (_, perm) -> not (covers perm victim.access)) wf.grants)
      ()
  in
  match Random.State.int rng 4 with
  | 0 -> revoke_all_for (Random.State.int rng n)
  | 1 ->
      (* move one window strictly past its slot (rational endpoints) *)
      let k = Random.State.int rng n in
      let s = slot k in
      let tasks =
        List.mapi
          (fun i tk ->
            if i = k then
              { tk with
                window =
                  Some
                    (Temporal.Interval.make
                       (Q.add s (Q.make 1 2))
                       (Q.add s (Q.make 3 2)));
              }
            else tk)
          wf.tasks
      in
      rebuild ~tasks ()
  | 2 when n > m ->
      (* pigeonhole: more mutually-separated tasks than performers *)
      let names = List.filteri (fun i _ -> i <= m) (List.map (fun tk -> tk.name) wf.tasks) in
      rebuild ~duties:(Separation names :: wf.duties) ()
  | 3 -> (
      (* binding-of-duty over two tasks whose permissions no single
         performer can hold together: each user keeps exactly one role,
         and each of the two permissions is granted to only one of them *)
      let pairs =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                if a.name < b.name && not (Sral.Access.equal a.access b.access)
                then Some (a, b)
                else None)
              wf.tasks)
          wf.tasks
      in
      match pairs with
      | [] -> revoke_all_for (Random.State.int rng n)
      | _ ->
          let ta, tb = pick rng pairs in
          let assignments = [ ("u1", "ra"); ("u2", "rb") ] in
          let roles_of owner = if String.equal owner "u1" then [ "ra" ] else [ "rb" ] in
          let performers =
            List.map
              (fun (p : performer) -> { p with roles = roles_of p.owner })
              wf.performers
          in
          let grants =
            List.filter
              (fun (_, perm) ->
                not (covers perm ta.access || covers perm tb.access))
              wf.grants
            @ [ ("ra", perm_of ta.access); ("rb", perm_of tb.access) ]
          in
          rebuild ~assignments ~performers ~grants
            ~duties:(Binding [ ta.name; tb.name ] :: wf.duties)
            ())
  | _ -> revoke_all_for (Random.State.int rng n)

let adversarial ?tasks:n_tasks ?performers:n_perf ?faults rng =
  let n = match n_tasks with Some n -> n | None -> 2 + Random.State.int rng 3 in
  let m = match n_perf with Some m -> m | None -> 2 + Random.State.int rng 2 in
  let users = Parallel.Workload.users in
  let roles = Parallel.Workload.roles in
  let grants = Parallel.Workload.grants ~resources:gen_resources ~servers:gen_servers rng in
  let assignments = Parallel.Workload.assignments rng in
  let performers =
    List.init m (fun i ->
        {
          id = Printf.sprintf "p%d" (i + 1);
          owner = pick rng users;
          roles = List.filter (fun _ -> Random.State.bool rng) roles;
        })
  in
  let tasks =
    List.mapi
      (fun k tk ->
        let s = slot k in
        let window =
          match Random.State.int rng 7 with
          | 0 | 1 -> None
          | 2 -> Some (Temporal.Interval.make (Q.sub s Q.one) (Q.add s Q.one))
          | 3 -> Some (Temporal.Interval.make s (Q.add s (Q.of_int 2)))
              (* touching at the slot from below *)
          | 4 -> Some (Temporal.Interval.make (Q.max Q.zero (Q.sub s (Q.of_int 2))) s)
              (* touching at the slot from above *)
          | 5 -> Some (Temporal.Interval.make s s) (* point on the slot *)
          | _ ->
              (* rational-endpoint window missing the slot *)
              Some
                (Temporal.Interval.make (Q.add s (Q.make 1 3)) (Q.add s (Q.make 4 3)))
        in
        { tk with window })
      (gen_tasks rng n)
  in
  let duties =
    if n < 2 || Random.State.bool rng then []
    else
      let size = Stdlib.min n (2 + Random.State.int rng 2) in
      let names = List.filteri (fun i _ -> i < size) (List.map (fun tk -> tk.name) tasks) in
      [ (if Random.State.bool rng then Separation names else Binding names) ]
  in
  let bindings = Parallel.Workload.bindings ~resources:gen_resources rng in
  let with_plan =
    match faults with Some b -> b | None -> Random.State.int rng 3 = 0
  in
  let plan =
    if not with_plan then None
    else
      Some
        (Fault.Plan.of_name
           (pick rng [ "light"; "moderate"; "heavy" ])
           ~seed:(Random.State.int rng 1_000_000)
           ~servers:gen_servers
           ~horizon:((2 * n) + 4))
  in
  make ~users ~roles ~grants ~assignments ~bindings ~duties ?plan ~performers
    ~tasks ()

let generate ?tasks ?performers family rng =
  match family with
  | Satisfiable -> fst (satisfiable ?tasks ?performers rng)
  | Unsatisfiable -> unsatisfiable ?tasks ?performers rng
  | Adversarial -> adversarial ?tasks ?performers rng

let workflows ?tasks ?performers family ~salt ~count seed =
  Array.init count (fun i ->
      generate ?tasks ?performers family (Random.State.make [| salt; seed; i |]))

let pp_task ppf tk =
  Format.fprintf ppf "%s: %a%a%s" tk.name Sral.Access.pp tk.access
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf " in %a" Temporal.Interval.pp w)
    tk.window
    (match tk.after with
    | [] -> ""
    | deps -> " after " ^ String.concat "," deps)

let pp ppf t =
  Format.fprintf ppf "workflow: %d task(s), %d performer(s), %d duty(ies)%s@."
    (List.length t.tasks)
    (List.length t.performers)
    (List.length t.duties)
    (match t.plan with
    | None -> ""
    | Some p -> Printf.sprintf ", fault plan %s" p.Fault.Plan.name);
  List.iter (fun tk -> Format.fprintf ppf "  %a@." pp_task tk) t.tasks;
  List.iter
    (fun d ->
      match d with
      | Separation names ->
          Format.fprintf ppf "  sod: %s@." (String.concat "," names)
      | Binding names ->
          Format.fprintf ppf "  bod: %s@." (String.concat "," names))
    t.duties
