module Q = Temporal.Q

(* Figure 1: 11 modules; x -> y means x depends on y. *)
let dependency_edges =
  [
    ("a", "d");
    ("a", "e");
    ("b", "d");
    ("c", "f");
    ("d", "g");
    ("e", "h");
    ("f", "g");
    ("f", "i");
    ("g", "j");
    ("h", "k");
    ("i", "k");
    ("j", "k");
  ]

let module_graph () = Digraph.of_edges dependency_edges

let placement =
  [
    ("a", "s1");
    ("b", "s1");
    ("c", "s1");
    ("d", "s1");
    ("e", "s2");
    ("f", "s2");
    ("g", "s2");
    ("h", "s3");
    ("i", "s3");
    ("j", "s3");
    ("k", "s3");
  ]

let server_of m =
  match List.assoc_opt m placement with
  | Some s -> s
  | None -> invalid_arg ("Integrity_audit: unknown module " ^ m)

let hash_access m = Sral.Access.custom "hash" m ~at:(server_of m)

let pristine_contents m =
  Printf.sprintf "module %s v1.0 — licensed component of the suite\n" m

let modules () = List.map fst placement

(* dependencies-first order: reverse of a topological order of the
   dependency digraph (which points from dependent to dependency) *)
let audit_order () =
  match Digraph.topological_sort (module_graph ()) with
  | Some order -> List.rev order
  | None -> invalid_arg "Integrity_audit: dependency graph has a cycle"

let audit_program () =
  Sral.Ast.seq (List.map (fun m -> Sral.Ast.Access (hash_access m)) (audit_order ()))

let tampered_program () =
  (* hash dependents before dependencies: plain topological order, so
     e.g. [a] is hashed before [d] and [e] *)
  match Digraph.topological_sort (module_graph ()) with
  | Some order ->
      Sral.Ast.seq (List.map (fun m -> Sral.Ast.Access (hash_access m)) order)
  | None -> assert false

let dependency_constraints () =
  let g = module_graph () in
  List.filter_map
    (fun m ->
      match Digraph.successors g m with
      | [] -> None
      | deps ->
          let conjuncts =
            List.map
              (fun d -> Srac.Formula.Ordered (hash_access d, hash_access m))
              deps
          in
          let formula =
            List.fold_left
              (fun acc c -> Srac.Formula.And (acc, c))
              (List.hd conjuncts) (List.tl conjuncts)
          in
          Some (m, formula))
    (modules ())

type report = {
  metrics : Naplet.Metrics.t;
  hashes : (string * string) list;
  granted : int;
  denied : int;
  all_verified : bool;
  deadline_hit : bool;
  trace : Obs.Trace.event list;
}

let expected_hashes () =
  List.map (fun m -> (m, Crypto.Sha1.hex_of_string (pristine_contents m))) (modules ())

let build_control ~deadline =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "auditor";
  Rbac.Policy.add_role policy "system_auditor";
  Rbac.Policy.assign_user policy "auditor" "system_auditor";
  Rbac.Policy.grant policy "system_auditor"
    (Rbac.Perm.make ~operation:"hash" ~target:"*@*");
  let control = Coordinated.System.create policy in
  (* one binding per module with dependencies: every dependency must be
     hashed (with proof) before the module itself — history scope *)
  List.iter
    (fun (m, formula) ->
      Coordinated.System.add_binding control
        (Coordinated.Perm_binding.make ~spatial:formula
           ~spatial_scope:Coordinated.Perm_binding.Performed
           ?dur:deadline
           ~scheme:Temporal.Validity.Whole_journey
           (Rbac.Perm.make ~operation:"hash" ~target:(m ^ "@" ^ server_of m))))
    (dependency_constraints ());
  (* modules without dependencies still get the deadline *)
  (match deadline with
  | Some _ ->
      List.iter
        (fun m ->
          if not (List.mem_assoc m (dependency_constraints ())) then
            Coordinated.System.add_binding control
              (Coordinated.Perm_binding.make ?dur:deadline
                 ~scheme:Temporal.Validity.Whole_journey
                 (Rbac.Perm.make ~operation:"hash"
                    ~target:(m ^ "@" ^ server_of m))))
        (modules ())
  | None -> ());
  control

type parallel_report = {
  base : report;
  clones_used : int;
  reports_collected : int;
}

let install_contents world =
  List.iter
    (fun (m, s) ->
      match Naplet.World.server world s with
      | Some srv ->
          Naplet.Server.put_resource srv ~name:m ~contents:(pristine_contents m)
      | None -> assert false)
    placement

let report_of world control metrics trace =
  let log = Coordinated.System.log control in
  let granted_accesses =
    List.map
      (fun (e : Coordinated.Audit_log.entry) -> e.Coordinated.Audit_log.access)
      (Coordinated.Audit_log.granted log)
  in
  let hashes =
    List.filter_map
      (fun (a : Sral.Access.t) ->
        match Naplet.World.server world a.Sral.Access.server with
        | Some srv -> (
            match Naplet.Server.get_resource srv ~name:a.Sral.Access.resource with
            | Some contents ->
                Some (a.Sral.Access.resource, Crypto.Sha1.hex_of_string contents)
            | None -> None)
        | None -> None)
      granted_accesses
  in
  let deadline_hit =
    List.exists
      (fun (e : Coordinated.Audit_log.entry) ->
        match e.Coordinated.Audit_log.verdict with
        | Coordinated.Decision.Denied (Coordinated.Decision.Temporal_expired _)
          ->
            true
        | _ -> false)
      (Coordinated.Audit_log.entries log)
  in
  {
    metrics;
    hashes;
    granted = metrics.Naplet.Metrics.granted;
    denied = metrics.Naplet.Metrics.denied;
    all_verified = List.for_all (fun m -> List.mem_assoc m hashes) (modules ());
    deadline_hit;
    trace = trace ();
  }

let run_parallel ?deadline ~clones () =
  if clones < 1 then invalid_arg "Integrity_audit.run_parallel: clones < 1";
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "auditor";
  Rbac.Policy.add_role policy "system_auditor";
  Rbac.Policy.assign_user policy "auditor" "system_auditor";
  Rbac.Policy.grant policy "system_auditor"
    (Rbac.Perm.make ~operation:"hash" ~target:"*@*");
  let control = Coordinated.System.create policy in
  (match deadline with
  | Some _ ->
      Coordinated.System.add_binding control
        (Coordinated.Perm_binding.make ?dur:deadline
           ~scheme:Temporal.Validity.Whole_journey
           (Rbac.Perm.make ~operation:"hash" ~target:"*@*"))
  | None -> ());
  let capture, trace = Obs.Sink.memory () in
  Obs.Bus.subscribe (Coordinated.System.bus control) capture;
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s1"; "s2"; "s3" ];
  install_contents world;
  let accesses = List.map hash_access (audit_order ()) in
  let clone_plans = Naplet.Clone.plan ~team:"audit" ~clones accesses in
  Naplet.Clone.spawn_all world ~owner:"auditor" ~roles:[ "system_auditor" ]
    ~home:"s1" clone_plans;
  Naplet.World.spawn world ~team:"audit" ~id:"audit-home" ~owner:"auditor"
    ~roles:[] ~home:"s1"
    (Naplet.Clone.collector_program ~team:"audit" (List.length clone_plans));
  let metrics = Naplet.World.run world in
  let reports_collected =
    match Naplet.World.agent world "audit-home" with
    | Some agent -> (
        match Naplet.Machine.env_value agent.Naplet.Agent.machine "total" with
        | Some (Sral.Value.Int _) -> List.length clone_plans
        | _ -> 0)
    | None -> 0
  in
  {
    base = report_of world control metrics trace;
    clones_used = List.length clone_plans;
    reports_collected;
  }

let run ?deadline ?(respect_order = true) ?(tamper_contents = []) () =
  let control = build_control ~deadline in
  let capture, trace = Obs.Sink.memory () in
  Obs.Bus.subscribe (Coordinated.System.bus control) capture;
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s1"; "s2"; "s3" ];
  (* install module contents on their servers *)
  List.iter
    (fun (m, s) ->
      match Naplet.World.server world s with
      | Some srv ->
          let contents =
            if List.mem m tamper_contents then
              pristine_contents m ^ "INJECTED PAYLOAD\n"
            else pristine_contents m
          in
          Naplet.Server.put_resource srv ~name:m ~contents
      | None -> assert false)
    placement;
  let program = if respect_order then audit_program () else tampered_program () in
  Naplet.World.spawn world ~id:"audit-naplet" ~owner:"auditor"
    ~roles:[ "system_auditor" ] ~home:"s1" program;
  let metrics = Naplet.World.run world in
  (* hash every module whose access was granted, reading contents from
     its server — the mobile code's computation, replayed *)
  let log = Coordinated.System.log control in
  let granted_accesses =
    List.map
      (fun (e : Coordinated.Audit_log.entry) -> e.Coordinated.Audit_log.access)
      (Coordinated.Audit_log.granted log)
  in
  let hashes =
    List.filter_map
      (fun (a : Sral.Access.t) ->
        match Naplet.World.server world a.Sral.Access.server with
        | Some srv -> (
            match Naplet.Server.get_resource srv ~name:a.Sral.Access.resource with
            | Some contents ->
                Some (a.Sral.Access.resource, Crypto.Sha1.hex_of_string contents)
            | None -> None)
        | None -> None)
      granted_accesses
  in
  let deadline_hit =
    List.exists
      (fun (e : Coordinated.Audit_log.entry) ->
        match e.Coordinated.Audit_log.verdict with
        | Coordinated.Decision.Denied (Coordinated.Decision.Temporal_expired _)
          ->
            true
        | _ -> false)
      (Coordinated.Audit_log.entries log)
  in
  let all_verified =
    List.for_all (fun m -> List.mem_assoc m hashes) (modules ())
  in
  {
    metrics;
    hashes;
    granted = metrics.Naplet.Metrics.granted;
    denied = metrics.Naplet.Metrics.denied;
    all_verified;
    deadline_hit;
    trace = trace ();
  }
