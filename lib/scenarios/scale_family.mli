(** Million-object coalitions: the E19 scaling builds and the
    SoA-vs-legacy differential harness.

    {!Drive} is a functor over the world signature so the exact same
    coalition-building code drives both {!Naplet.World} (the rebuilt
    struct-of-arrays engine) and {!Naplet.World_legacy} (the pre-SoA
    oracle kept until the new engine has soaked).  [random_trace]
    builds, runs and exports one seeded randomized coalition — agents
    with channel/signal programs, teams, fault plans, a mid-run admin
    action — and {!divergences} byte-compares the two engines' exports
    over a span of seeds.  [build_big] makes the uniform big coalition
    the E19 benchmark times (build phase vs run phase) at 10^3..10^6
    objects. *)

module Drive (W : Naplet.World_intf.S) : sig
  val random_trace : ?faults:bool -> salt:int -> seed:int -> unit -> string
  (** Build and run one randomized coalition from [(salt, seed)];
      returns the full bus trace as deterministic JSONL
      ({!Obs.Export.to_string}).  [faults] (default [true]) allows a
      seeded fault plan (2 in 3 coalitions get one). *)

  val build_big :
    ?config:W.config -> objects:int -> servers:int -> unit -> W.t
  (** The uniform scaling coalition, built but not yet run: [objects]
      agents over [servers] capacity-4 servers under a permissive
      one-role policy, programs shared per-server (two local reads;
      every 100th agent migrates once).  Caller times [W.run]. *)
end

module Soa : sig
  val random_trace : ?faults:bool -> salt:int -> seed:int -> unit -> string

  val build_big :
    ?config:Naplet.World.config ->
    objects:int ->
    servers:int ->
    unit ->
    Naplet.World.t
end

module Legacy : sig
  val random_trace : ?faults:bool -> salt:int -> seed:int -> unit -> string

  val build_big :
    ?config:Naplet.World_legacy.config ->
    objects:int ->
    servers:int ->
    unit ->
    Naplet.World_legacy.t
end

val divergences : ?salt:int -> runs:int -> int -> int list
(** [divergences ~runs offset] replays seeds
    [offset .. offset + runs - 1] through both engines and returns the
    seeds whose exported traces were not byte-identical (empty list =
    conformant). *)
