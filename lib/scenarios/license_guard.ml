module Q = Temporal.Q

let rsw_access ~at = Sral.Access.execute "rsw" ~at

type outcome = {
  attempts : int;
  granted_s1 : int;
  granted_s2 : int;
  denied : int;
  s2_locked_out : bool;
}

let repeat n access =
  Sral.Ast.seq (List.init n (fun _ -> Sral.Ast.Access access))

let run ?(s1_uses = 7) ?(s2_uses = 3) ?(limit = 5) ?global_limit ?period () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "guest";
  Rbac.Policy.add_role policy "trial_user";
  Rbac.Policy.assign_user policy "guest" "trial_user";
  Rbac.Policy.grant policy "trial_user"
    (Rbac.Perm.make ~operation:"execute" ~target:"rsw@*");
  let control = Coordinated.System.create policy in
  let sel_rsw = Srac.Selector.Resource "rsw" in
  let sel_rsw_s1 = Srac.Selector.And (sel_rsw, Srac.Selector.Server "s1") in
  (* the coordination rule: s2 consults the execution proofs from s1 *)
  Coordinated.System.add_binding control
    (Coordinated.Perm_binding.make
       ~spatial:(Srac.Formula.at_most limit sel_rsw_s1)
       ~spatial_scope:Coordinated.Perm_binding.Performed
       (Rbac.Perm.make ~operation:"execute" ~target:"rsw@s2"));
  (* Example 3.5's everywhere-bound, when requested *)
  (match global_limit with
  | Some n ->
      Coordinated.System.add_binding control
        (Coordinated.Perm_binding.make
           ~spatial:(Srac.Formula.at_most n sel_rsw)
           ~spatial_scope:Coordinated.Perm_binding.Performed ?dur:period
           ~scheme:Temporal.Validity.Whole_journey
           (Rbac.Perm.make ~operation:"execute" ~target:"rsw@*"))
  | None -> ());
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s1"; "s2" ];
  let program =
    Sral.Ast.Seq
      ( repeat s1_uses (rsw_access ~at:"s1"),
        repeat s2_uses (rsw_access ~at:"s2") )
  in
  Naplet.World.spawn world ~id:"trial-naplet" ~owner:"guest"
    ~roles:[ "trial_user" ] ~home:"s1" program;
  let _metrics = Naplet.World.run world in
  let log = Coordinated.System.log control in
  let granted_at s =
    List.length
      (List.filter
         (fun (e : Coordinated.Audit_log.entry) ->
           String.equal e.Coordinated.Audit_log.access.Sral.Access.server s)
         (Coordinated.Audit_log.granted log))
  in
  let s2_attempts =
    List.filter
      (fun (e : Coordinated.Audit_log.entry) ->
        String.equal e.Coordinated.Audit_log.access.Sral.Access.server "s2")
      (Coordinated.Audit_log.entries log)
  in
  {
    attempts = Coordinated.Audit_log.size log;
    granted_s1 = granted_at "s1";
    granted_s2 = granted_at "s2";
    denied = List.length (Coordinated.Audit_log.denied log);
    s2_locked_out =
      s2_attempts <> []
      && List.for_all
           (fun (e : Coordinated.Audit_log.entry) ->
             not
               (Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict))
           s2_attempts;
  }
