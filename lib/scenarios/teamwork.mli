(** Coordinated teamwork — the introduction's "permissions may be
    granted based not only on the requesting subject, but also on the
    previous access actions of the device and even of its companions".

    A two-naplet survey team: a scout reads the manifest at s₁ and
    raises a signal; a courier waits for the signal and then commits
    results to the vault at s₂.  The vault permission carries the
    spatial constraint [seq(read manifest @ s1, write vault @ s2)] with
    history scope — satisfiable only through the *scout's* execution
    proof, i.e. only when the binding's proof scope is [Team].

    With [Own] proofs the courier is denied (it never read the
    manifest itself); with [Team] proofs it is granted.  The
    signal/wait pair makes the cross-agent ordering deterministic. *)

type outcome = {
  scout_reads : int;
  courier_commits : int;
  courier_denied : int;
  team_succeeded : bool;  (** the vault write was granted *)
}

val run : ?share_proofs:bool -> unit -> outcome
(** [share_proofs] (default [true]) selects [Team] vs [Own] proof scope
    on the vault binding. *)
