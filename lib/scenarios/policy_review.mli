(** Policy review scenario: the static analyzer pointed at the
    Figure 1 coalition.

    Two policies, both also committed verbatim as fixtures under
    [examples/policies/] (tests assert the fixture files match these
    generators, CI runs [stacc analyze] over them):

    - {b fig1}: the integrity-audit policy of Section 6 as a policy
      file — one [Performed]-scope binding per module with
      dependencies, requiring every dependency hashed first.  Healthy:
      the analyzer must report {e zero} findings on it.
    - {b defective}: six bindings seeding one specimen of every
      analyzer finding — a clean control, a semantically unsatisfiable
      constraint, a vacuous one, a shadowed binding, a binding whose
      constraint mentions a server the coalition does not deploy
      (unexercisable), and a duration too short for the shortest
      satisfying walk (temporally excluded). *)

val fig1 : unit -> Coordinated.Policy_lang.t
(** Same RBAC store and bindings as
    {!Integrity_audit.build_control} (no deadline). *)

val fig1_text : unit -> string
(** {!fig1} rendered as a parseable policy file. *)

val fig1_world : unit -> Analysis.World.t
(** The world {!fig1} implies: servers s1–s3, complete topology, the
    eleven hash accesses. *)

val defective : unit -> Coordinated.Policy_lang.t
val defective_text : unit -> string
val defective_world : unit -> Analysis.World.t

val defective_expected : unit -> Analysis.Analyzer.finding list
(** The exact findings the analyzer must produce on {!defective}, in
    report order: unsatisfiable #1, vacuous #2, shadowed #3 (by #0),
    unexercisable #4, temporally excluded #5. *)
