module Q = Temporal.Q

type outcome = {
  edits_attempted : int;
  edits_granted : int;
  edits_denied : int;
  last_granted_at : Temporal.Q.t option;
  first_denied_at : Temporal.Q.t option;
}

let deadline_hour = Q.of_int 27 (* 3am, next day *)

let run ?(session_start = Q.of_int 22) ?(edits = 8) ?(edit_hours = Q.one)
    ?(scheme = Temporal.Validity.Whole_journey) ?(migrate_midway = true) () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "editor";
  Rbac.Policy.add_role policy "issue_editor";
  Rbac.Policy.assign_user policy "editor" "issue_editor";
  Rbac.Policy.grant policy "issue_editor"
    (Rbac.Perm.make ~operation:"write" ~target:"issue@*");
  let control = Coordinated.System.create policy in
  let dur = Q.sub deadline_hour session_start in
  Coordinated.System.add_binding control
    (Coordinated.Perm_binding.make ~dur ~scheme
       (Rbac.Perm.make ~operation:"write" ~target:"issue@*"));
  let config =
    {
      Naplet.World.default_config with
      Naplet.World.migration_latency = Q.make 1 4 (* 15 minutes *);
      Naplet.World.step_cost = Q.zero;
    }
  in
  let world = Naplet.World.create ~config control in
  List.iter
    (fun s ->
      Naplet.World.add_server world
        (Naplet.Server.create ~access_duration:edit_hours s))
    [ "press1"; "press2" ];
  let edit_at s = Sral.Ast.Access (Sral.Access.write "issue" ~at:s) in
  let first_half = edits / 2 in
  let program =
    if migrate_midway then
      Sral.Ast.seq
        (List.init edits (fun i ->
             edit_at (if i < first_half then "press1" else "press2")))
    else Sral.Ast.seq (List.init edits (fun _ -> edit_at "press1"))
  in
  Naplet.World.spawn world ~id:"editor-naplet" ~owner:"editor"
    ~roles:[ "issue_editor" ] ~home:"press1" program;
  let _ = Naplet.World.run world in
  let log = Coordinated.System.log control in
  let entries = Coordinated.Audit_log.entries log in
  (* shift times: the world clock starts at 0 = session_start *)
  let hour_of (e : Coordinated.Audit_log.entry) =
    Q.add session_start e.Coordinated.Audit_log.time
  in
  let granted =
    List.filter
      (fun (e : Coordinated.Audit_log.entry) ->
        Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict)
      entries
  in
  let denied =
    List.filter
      (fun (e : Coordinated.Audit_log.entry) ->
        not (Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict))
      entries
  in
  let last l = match List.rev l with [] -> None | e :: _ -> Some (hour_of e) in
  let first l = match l with [] -> None | e :: _ -> Some (hour_of e) in
  {
    edits_attempted = List.length entries;
    edits_granted = List.length granted;
    edits_denied = List.length denied;
    last_granted_at = last granted;
    first_denied_at = first denied;
  }
