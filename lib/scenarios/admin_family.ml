module Q = Temporal.Q
module Admin = Analysis.Admin
module Pb = Coordinated.Perm_binding

type family = Reachable | Sabotaged | Adversarial

let family_name = function
  | Reachable -> "reachable"
  | Sabotaged -> "sabotaged"
  | Adversarial -> "adversarial"

let family_of_name = function
  | "reachable" -> Some Reachable
  | "sabotaged" -> Some Sabotaged
  | "adversarial" -> Some Adversarial
  | _ -> None

let servers = [ "s1"; "s2" ]
let resources = [ "db"; "log" ]
let operations = [ "read"; "write" ]

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let universe =
  List.concat_map
    (fun op ->
      List.concat_map
        (fun res ->
          List.map
            (fun srv ->
              Sral.Access.make
                ~op:(Sral.Access.operation_of_name op)
                ~resource:res ~server:srv)
            servers)
        resources)
    operations

let world = Analysis.World.make ~servers ~universe ()

(* The goal is always (u1, read:db@s1, s1); families differ in whether
   the pool can reach a deployment granting it. *)
let goal_user = "u1"
let goal_perm = Rbac.Perm.make ~operation:"read" ~target:"db@s1"
let goal_server = "s1"

let base_policy rng ~users ~roles ~assigns ~grants =
  let text = Buffer.create 128 in
  List.iter (fun u -> Buffer.add_string text ("user " ^ u ^ "\n")) users;
  List.iter (fun r -> Buffer.add_string text ("role " ^ r ^ "\n")) roles;
  List.iter
    (fun (u, r) -> Buffer.add_string text (Printf.sprintf "assign %s %s\n" u r))
    assigns;
  List.iter
    (fun (r, p) ->
      Buffer.add_string text
        (Printf.sprintf "grant %s %s\n" r (Rbac.Perm.to_string p)))
    grants;
  ignore rng;
  Coordinated.Policy_lang.parse (Buffer.contents text)

let random_perm rng =
  let target =
    match Random.State.int rng 3 with
    | 0 -> pick rng resources ^ "@*"
    | 1 -> pick rng resources ^ "@" ^ pick rng servers
    | _ -> "*@*"
  in
  Rbac.Perm.make ~operation:(pick rng operations) ~target

(* A harmless permission: never matches the goal access (concrete
   resource different from the goal's). *)
let harmless_perm rng =
  Rbac.Perm.make ~operation:(pick rng operations)
    ~target:("log@" ^ pick rng servers)

let random_binding rng =
  let perm = if Random.State.bool rng then goal_perm else random_perm rng in
  if Random.State.bool rng then
    Pb.make ~dur:(Q.of_int (2 + Random.State.int rng 8)) perm
  else
    Pb.make
      ~spatial:
        (Srac.Formula.at_most
           (1 + Random.State.int rng 3)
           (Srac.Selector.Resource (pick rng resources)))
      ~spatial_scope:Pb.Performed perm

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let distractors rng ~users ~roles n =
  List.init n (fun _ ->
      match Random.State.int rng 6 with
      | 0 -> Admin.Assign (pick rng users, pick rng roles)
      | 1 -> Admin.Deassign (pick rng users, pick rng roles)
      | 2 -> Admin.Grant (pick rng roles, harmless_perm rng)
      | 3 -> Admin.Revoke (pick rng roles, harmless_perm rng)
      | 4 -> Admin.Add_binding (random_binding rng)
      | _ -> Admin.Leave)

let reachable rng =
  let users = [ "u1"; "u2" ] in
  let roles = [ "r1"; "r2" ] in
  let base = base_policy rng ~users ~roles ~assigns:[] ~grants:[] in
  let start_outside = Random.State.bool rng in
  let planted =
    (if start_outside then [ Admin.Join ] else [])
    @ [
        Admin.Assign (goal_user, "r1");
        Admin.Grant
          ( "r1",
            if Random.State.bool rng then goal_perm
            else Rbac.Perm.make ~operation:"read" ~target:"db@*" );
      ]
  in
  (* distractors must not make the leak unreachable: none may undo a
     planted op, and Leave is excluded when the walk starts outside
     (the planted Join must not be consumable twice) *)
  let noise =
    List.filter
      (function
        | Admin.Deassign (u, r) -> not (u = goal_user && r = "r1")
        | Admin.Leave -> not start_outside
        | _ -> true)
      (distractors rng ~users ~roles:[ "r2" ] (Random.State.int rng 3))
  in
  let budget = List.length planted in
  Admin.make ~base ~world
    ~schedule:
      {
        pool = shuffle rng (planted @ noise);
        budget;
        team = "alpha";
        joined = not start_outside;
      }
    ~user:goal_user ~perm:goal_perm ~server:goal_server

let sabotaged rng =
  let users = [ "u1"; "u2" ] in
  let roles = [ "r1"; "r2" ] in
  match Random.State.int rng 3 with
  | 0 ->
      (* nothing ever grants the goal: base and pool grants are all on
         a different concrete resource *)
      let base =
        base_policy rng ~users ~roles
          ~assigns:[ (goal_user, pick rng roles) ]
          ~grants:[ (pick rng roles, harmless_perm rng) ]
      in
      let pool =
        shuffle rng
          (Admin.Assign (goal_user, "r1")
          :: Admin.Grant ("r2", harmless_perm rng)
          :: distractors rng ~users ~roles (1 + Random.State.int rng 3))
      in
      Admin.make ~base ~world
        ~schedule:
          { pool; budget = 1 + Random.State.int rng 3; team = "alpha";
            joined = true }
        ~user:goal_user ~perm:goal_perm ~server:goal_server
  | 1 ->
      (* the only granting role is SSD-blocked: u1 holds r2, {r1,r2}
         is exclusive, and the pool cannot deassign r2 *)
      let text =
        "user u1\nuser u2\nrole r1\nrole r2\n"
        ^ "assign u1 r2\n"
        ^ Printf.sprintf "grant r1 %s\n" (Rbac.Perm.to_string goal_perm)
        ^ "ssd exclusive r1 r2 max 1\n"
      in
      let base = Coordinated.Policy_lang.parse text in
      let pool =
        shuffle rng
          [
            Admin.Assign ("u1", "r1");
            Admin.Assign ("u2", "r1");
            Admin.Grant ("r2", harmless_perm rng);
          ]
      in
      Admin.make ~base ~world
        ~schedule:
          { pool; budget = 2 + Random.State.int rng 2; team = "alpha";
            joined = true }
        ~user:goal_user ~perm:goal_perm ~server:goal_server
  | _ ->
      (* outside the coalition with no way back in *)
      let base =
        base_policy rng ~users ~roles
          ~assigns:[ (goal_user, "r1") ]
          ~grants:[ ("r1", goal_perm) ]
      in
      let pool =
        List.filter
          (function Admin.Leave -> false | _ -> true)
          (distractors rng ~users ~roles (1 + Random.State.int rng 3))
      in
      Admin.make ~base ~world
        ~schedule:
          { pool; budget = 1 + Random.State.int rng 3; team = "alpha";
            joined = false }
        ~user:goal_user ~perm:goal_perm ~server:goal_server

let random_sod rng ~roles name =
  let k = 1 + Random.State.int rng 1 in
  Rbac.Sod.make ~name ~roles ~max_roles:k

let adversarial rng =
  let users = [ "u1"; "u2" ] in
  let roles = [ "r1"; "r2"; "r3" ] in
  let assigns =
    List.filter (fun _ -> Random.State.int rng 4 = 0)
      (List.concat_map (fun u -> List.map (fun r -> (u, r)) roles) users)
  in
  let grants =
    List.filter_map
      (fun r ->
        if Random.State.int rng 3 = 0 then Some (r, random_perm rng) else None)
      roles
  in
  let base = base_policy rng ~users ~roles ~assigns ~grants in
  let n_ops = 2 + Random.State.int rng 4 in
  let pool =
    List.init n_ops (fun i ->
        match Random.State.int rng 9 with
        | 0 -> Admin.Assign (pick rng users, pick rng roles)
        | 1 -> Admin.Deassign (pick rng users, pick rng roles)
        | 2 ->
            Admin.Grant
              ( pick rng roles,
                if Random.State.bool rng then goal_perm else random_perm rng )
        | 3 -> Admin.Revoke (pick rng roles, random_perm rng)
        | 4 ->
            Admin.Add_ssd
              (random_sod rng ~roles:[ "r1"; "r2" ]
                 (Printf.sprintf "ssd%d" i))
        | 5 ->
            Admin.Add_dsd
              (random_sod rng ~roles:[ "r2"; "r3" ]
                 (Printf.sprintf "dsd%d" i))
        | 6 -> Admin.Add_binding (random_binding rng)
        | 7 -> Admin.Join
        | _ -> Admin.Leave)
  in
  Admin.make ~base ~world
    ~schedule:
      {
        pool;
        budget = Random.State.int rng 5;
        team = "alpha";
        joined = Random.State.bool rng;
      }
    ~user:goal_user ~perm:goal_perm ~server:goal_server

let generate = function
  | Reachable -> reachable
  | Sabotaged -> sabotaged
  | Adversarial -> adversarial
