(** The introduction's temporal example: "the editing deadline for an
    issue of a daily newspaper is by 3am".

    Time is modelled in hours.  An editing session opens at
    [session_start] (e.g. 22 = 10pm); the [write] permission on the
    issue carries a validity duration of [3am − session_start] hours
    (whole-journey scheme), so edits are granted until 3am and denied
    after — however many servers the editor's mobile object roams
    across, because the paper's continuous per-object timeline does not
    reset on migration under the whole-journey scheme.  A per-server
    variant is included to contrast the two base-time schemes of
    Section 4 (it *does* reset on migration, extending the effective
    editing window — usually not what a newspaper wants). *)

type outcome = {
  edits_attempted : int;
  edits_granted : int;
  edits_denied : int;
  last_granted_at : Temporal.Q.t option;  (** in hours *)
  first_denied_at : Temporal.Q.t option;
}

val run :
  ?session_start:Temporal.Q.t ->
  ?edits:int ->
  ?edit_hours:Temporal.Q.t ->
  ?scheme:Temporal.Validity.scheme ->
  ?migrate_midway:bool ->
  unit ->
  outcome
(** Defaults: session starts at hour 22, 8 edits of 1 hour each,
    whole-journey scheme, with a migration to a second press server
    halfway through.  Deadline is fixed at hour 27 (= 3am). *)
