module Q = Temporal.Q

type outcome = {
  drafted : bool;
  reviewed : bool;
  published : bool;
  denied : int;
  all_completed : bool;
}

let draft = Sral.Access.write "draft" ~at:"desk"
let review = Sral.Access.custom "review" "draft" ~at:"press"
let publish = Sral.Access.custom "publish" "issue" ~at:"press"

let build_policy () =
  let policy = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user policy) [ "writer"; "editor"; "chief" ];
  List.iter (Rbac.Policy.add_role policy) [ "author"; "reviewer"; "publisher" ];
  Rbac.Policy.grant policy "author"
    (Rbac.Perm.make ~operation:"write" ~target:"draft@desk");
  Rbac.Policy.grant policy "reviewer"
    (Rbac.Perm.make ~operation:"review" ~target:"draft@press");
  Rbac.Policy.grant policy "publisher"
    (Rbac.Perm.make ~operation:"publish" ~target:"issue@press");
  Rbac.Policy.assign_user policy "writer" "author";
  Rbac.Policy.assign_user policy "editor" "reviewer";
  (* the editor *is* assigned the publisher role; DSD stops them from
     using both in one session *)
  Rbac.Policy.assign_user policy "editor" "publisher";
  Rbac.Policy.assign_user policy "chief" "publisher";
  Rbac.Policy.add_dsd policy
    (Rbac.Sod.make ~name:"review-vs-publish"
       ~roles:[ "reviewer"; "publisher" ] ~max_roles:1);
  policy

let build_control ~deadline =
  let control = Coordinated.System.create (build_policy ()) in
  Coordinated.System.add_binding control
    (Coordinated.Perm_binding.make
       ~spatial:(Srac.Formula.Ordered (draft, review))
       ~spatial_scope:Coordinated.Perm_binding.Performed
       ~proof_scope:Coordinated.Perm_binding.Team
       (Rbac.Perm.make ~operation:"review" ~target:"draft@press"));
  Coordinated.System.add_binding control
    (Coordinated.Perm_binding.make
       ~spatial:(Srac.Formula.Ordered (review, publish))
       ~spatial_scope:Coordinated.Perm_binding.Performed
       ~proof_scope:Coordinated.Perm_binding.Team ?dur:deadline
       ~scheme:Temporal.Validity.Whole_journey
       (Rbac.Perm.make ~operation:"publish" ~target:"issue@press"));
  control

let run ?(cheat = false) ?deadline () =
  let control = build_control ~deadline in
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "desk"; "press" ];
  Naplet.World.spawn world ~team:"issue42" ~id:"author-naplet" ~owner:"writer"
    ~roles:[ "author" ] ~home:"desk"
    (Sral.Parser.program "write draft @ desk; signal(drafted)");
  (* In the cheating run, one session carries both stage-2 and stage-3:
     the reviewer's roles request includes publisher, which DSD blocks,
     so the publish access lacks an active role. *)
  if cheat then
    Naplet.World.spawn world ~team:"issue42" ~id:"editor-naplet"
      ~owner:"editor"
      ~roles:[ "reviewer"; "publisher" ]
      ~home:"press"
      (Sral.Parser.program
         "wait(drafted); op(review) draft @ press; signal(reviewed); \
          op(publish) issue @ press")
  else begin
    Naplet.World.spawn world ~team:"issue42" ~id:"reviewer-naplet"
      ~owner:"editor" ~roles:[ "reviewer" ] ~home:"press"
      (Sral.Parser.program
         "wait(drafted); op(review) draft @ press; signal(reviewed)");
    Naplet.World.spawn world ~team:"issue42" ~id:"publisher-naplet"
      ~owner:"chief" ~roles:[ "publisher" ] ~home:"press"
      (Sral.Parser.program "wait(reviewed); op(publish) issue @ press")
  end;
  let metrics = Naplet.World.run world in
  let log = Coordinated.System.log control in
  let granted a =
    List.exists
      (fun (e : Coordinated.Audit_log.entry) ->
        Sral.Access.equal e.Coordinated.Audit_log.access a
        && Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict)
      (Coordinated.Audit_log.entries log)
  in
  {
    drafted = granted draft;
    reviewed = granted review;
    published = granted publish;
    denied = List.length (Coordinated.Audit_log.denied log);
    all_completed =
      metrics.Naplet.Metrics.completed_agents
      = (if cheat then 2 else 3)
      && metrics.Naplet.Metrics.deadlocked_agents = 0;
  }
