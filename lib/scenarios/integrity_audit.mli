(** The Section 6 coalition example — reproduction of Figure 1.

    An application's software modules are distributed over the servers
    of an enterprise coalition; modules depend on each other (a
    digraph); an auditor dispatches a mobile code that SHA-1-hashes
    every module, and "a module is verified as correct if and only if
    all of its depended modules and itself are correct" — a spatial
    ordering requirement expressed in SRAC, enforced by the coordinated
    model, under a temporal verification deadline. *)

val module_graph : unit -> Digraph.t
(** The Figure 1 dependency digraph: 11 modules [a]–[k]; an edge
    [x -> y] means module [x] depends on module [y]. *)

val placement : (string * string) list
(** Module → hosting server (the dotted groupings of Figure 1):
    [a]–[d] on [s1], [e]–[g] on [s2], [h]–[k] on [s3]. *)

val hash_access : string -> Sral.Access.t
(** The [op(hash) m @ s] access verifying module [m] at its server. *)

val audit_program : unit -> Sral.Ast.t
(** The auditing mobile code: hash every module in dependency order
    (dependencies first). *)

val tampered_program : unit -> Sral.Ast.t
(** A buggy/malicious variant that hashes some modules before their
    dependencies — the runs the constraints must reject. *)

val dependency_constraints : unit -> (string * Srac.Formula.t) list
(** Per-module SRAC constraint: for module [m] with dependencies
    [d₁..dₖ], [⋀ᵢ seq(hash dᵢ @ sᵢ, hash m @ sₘ)] — every dependency
    hashed before [m]. Paired with the module name. *)

type report = {
  metrics : Naplet.Metrics.t;
  hashes : (string * string) list;
      (** module → SHA-1 hex of its (server-stored) contents, for the
          modules whose hash access was granted, in audit order *)
  granted : int;
  denied : int;
  all_verified : bool;
      (** every module hashed, in an order respecting dependencies *)
  deadline_hit : bool;  (** some hash was denied for temporal expiry *)
  trace : Obs.Trace.event list;
      (** the run's full end-to-end trace, in emission order: lifecycle
          events, per-stage decision spans, cache probes and verdicts —
          export it with {!Obs.Export.to_string} *)
}

val run :
  ?deadline:Temporal.Q.t ->
  ?respect_order:bool ->
  ?tamper_contents:string list ->
  unit ->
  report
(** Run the audit end-to-end in the Naplet emulation.
    [deadline]: validity duration of the hash permission (default: none);
    [respect_order]: use {!audit_program} (default) or
    {!tampered_program}; [tamper_contents]: modules whose stored
    contents are corrupted before the run (their hashes will differ
    from {!expected_hashes}). *)

val expected_hashes : unit -> (string * string) list
(** Reference hashes of the pristine module contents. *)

type parallel_report = {
  base : report;
  clones_used : int;
  reports_collected : int;
      (** clone completion reports received by the home collector *)
}

val run_parallel : ?deadline:Temporal.Q.t -> clones:int -> unit -> parallel_report
(** The Section 5.2 [ApplAgentProg] pattern applied to the audit: [k]
    cloned naplets each hash an equal share of the modules concurrently
    and report their completed-access counts home over a channel.  The
    clones share one naplet team.  Dependency-order constraints are
    omitted (shares race past each other); this is the load-balancing /
    deadline-meeting configuration the paper motivates with "balance
    the usage requests from sharing users" — contrast with {!run}
    under the same [deadline]. *)
