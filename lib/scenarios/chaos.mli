(** The Figure-1 coalition under deterministic chaos.

    Reuses the integrity-audit topology (servers [s1]–[s3], the
    11-module audit itinerary) and adds the workloads the fault
    subsystem exercises: courier agents routed around crashed servers
    ({!Naplet.Itinerary.linearize_avoiding}), and a producer/consumer
    pair whose channel traffic is exposed to drop/delay/duplicate
    faults (the consumer survives drops via the receive-timeout
    policy).

    Everything is keyed by [(plan name, seed)]: two runs with the same
    pair produce byte-identical trace exports — [stacc chaos] and the
    CI smoke job assert exactly that. *)

type report = {
  plan : Fault.Plan.t;
  seed : int;
  mode : Coordinated.System.decision_mode;
  metrics : Naplet.Metrics.t;
  trace : Obs.Trace.event list;
  violations : Fault.Invariant.violation list;
      (** fail-closed / retry-resolution violations — expected empty *)
  routes : (string * string list) list;
      (** each courier's rerouted visiting order (couriers whose [Alt]
          branch was down at dispatch take the detour) *)
}

val run :
  ?mode:Coordinated.System.decision_mode ->
  ?plan_name:string ->
  ?seed:int ->
  ?couriers:int ->
  ?messages:int ->
  unit ->
  report
(** Defaults: indexed mode, plan ["moderate"], seed 42, 4 couriers, 4
    messages.  [plan_name] is one of {!Fault.Plan.intensity_names}.
    @raise Invalid_argument on an unknown plan name. *)

val export : report -> string
(** The run's trace as deterministic JSONL ({!Obs.Export.to_string}). *)
