module Q = Temporal.Q

type t = { seed : int; plan : Plan.t }

let create ~seed plan = { seed; plan }
let plan t = t.plan
let seed t = t.seed
let roll t key = Prng.uniform ~seed:t.seed key
let server_down t ~server ~time = Plan.server_down t.plan ~server ~time
let recovery t ~server ~time = Plan.recovery t.plan ~server ~time

let migration_fails t ~agent ~dest ~attempt ~time =
  t.plan.Plan.migration_failure > 0.0
  && roll t
       (Printf.sprintf "mig|%s|%s|%d|%s" agent dest attempt (Q.to_string time))
     < t.plan.Plan.migration_failure

type fate = Deliver | Drop | Delay of Q.t | Duplicate

let channel_fate t ~agent ~chan ~time =
  let p = t.plan in
  if p.Plan.channel_drop +. p.Plan.channel_delay +. p.Plan.channel_duplicate
     <= 0.0
  then Deliver
  else
    let x =
      roll t (Printf.sprintf "chan|%s|%s|%s" chan agent (Q.to_string time))
    in
    if x < p.Plan.channel_drop then Drop
    else if x < p.Plan.channel_drop +. p.Plan.channel_delay then
      Delay p.Plan.delay_by
    else if
      x
      < p.Plan.channel_drop +. p.Plan.channel_delay +. p.Plan.channel_duplicate
    then Duplicate
    else Deliver

let signal_lost t ~agent ~signal ~time =
  t.plan.Plan.signal_loss > 0.0
  && roll t (Printf.sprintf "sig|%s|%s|%s" signal agent (Q.to_string time))
     < t.plan.Plan.signal_loss

let backoff t (r : Resilience.t) ~agent ~attempt =
  let rec pow b n = if n <= 0 then Q.one else Q.mul b (pow b (n - 1)) in
  let raw =
    Q.mul r.Resilience.base_backoff
      (pow (Q.of_int r.Resilience.backoff_factor) (attempt - 1))
  in
  let capped = Q.min raw r.Resilience.max_backoff in
  if not r.Resilience.jitter then capped
  else
    (* jitter in [0, capped/2), quantized to thousandths so it stays an
       exact rational derived from the keyed hash *)
    let frac = roll t (Printf.sprintf "jit|%s|%d" agent attempt) in
    let thousandths = int_of_float (frac *. 1000.0) in
    Q.add capped (Q.mul capped (Q.make thousandths 2000))
