(** Deterministic pseudo-randomness for fault injection.

    A splitmix64 generator: one 64-bit state, advanced by a fixed odd
    constant and finalized by an avalanche mixer.  Identical seeds
    yield identical streams on every platform (the implementation uses
    only [Int64] operations, never the OCaml [Random] module), which is
    what makes whole chaos runs bit-reproducible.

    Besides the sequential stream there is a {e stateless} keyed hash
    ({!uniform}): a fault decision derived from [(seed, key)] alone
    does not depend on how many other decisions were drawn before it,
    so reordering unrelated queries cannot perturb an injection
    schedule. *)

type t

val of_seed : int -> t
(** A fresh generator from an integer seed. *)

val of_key : seed:int -> string -> t
(** An independent substream, keyed by a string — e.g. one stream per
    server when generating crash windows, so adding a server never
    shifts another server's windows. *)

val next : t -> int64
(** The next 64-bit output. *)

val float : t -> float
(** The next draw as a float in [[0, 1)] (53 bits of the output). *)

val int : t -> bound:int -> int
(** The next draw in [[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val hash : seed:int -> string -> int64
(** Stateless keyed hash (FNV-1a folded through the splitmix mixer). *)

val uniform : seed:int -> string -> float
(** [hash] mapped to [[0, 1)] — the order-independent coin used for
    per-event fault decisions. *)
