(** A fault schedule as data.

    A plan fixes, before the run starts, everything that can go wrong:
    per-server crash windows (half-open ℚ intervals during which the
    server is down) and per-event fault probabilities (migration
    failure, channel drop/delay/duplicate, signal loss).  Because the
    plan is plain data and the per-event coins are keyed hashes of the
    injector seed (see {!Injector}), a [(plan, seed)] pair determines
    the whole injection schedule — two runs with the same pair are
    bit-identical.

    Named intensities ({!of_name}) derive complete plans
    deterministically from a seed: ["none"], ["light"], ["moderate"]
    and ["heavy"]. *)

type window = { from_ : Temporal.Q.t; until : Temporal.Q.t }
(** A server is down on the half-open interval [[from_, until)]. *)

type t = private {
  name : string;
  crashes : (string * window list) list;
      (** per server, disjoint windows sorted by start *)
  migration_failure : float;  (** transient migration-failure rate *)
  channel_drop : float;
  channel_delay : float;
  delay_by : Temporal.Q.t;  (** latency added to a delayed delivery *)
  channel_duplicate : float;
  signal_loss : float;
}

val none : t
(** The empty plan: no crashes, all probabilities zero. *)

val make :
  ?name:string ->
  ?crashes:(string * window list) list ->
  ?migration_failure:float ->
  ?channel_drop:float ->
  ?channel_delay:float ->
  ?delay_by:Temporal.Q.t ->
  ?channel_duplicate:float ->
  ?signal_loss:float ->
  unit ->
  t
(** Build a plan by hand.  Windows are sorted; overlapping or empty
    windows, probabilities outside [[0, 1]], or drop+delay+duplicate
    exceeding 1 raise.
    @raise Invalid_argument on an ill-formed plan. *)

val intensity_names : string list
(** [["none"; "light"; "moderate"; "heavy"]]. *)

val of_name :
  string -> seed:int -> servers:string list -> horizon:int -> t
(** A complete plan at a named intensity.  Crash windows are generated
    per server from an independent keyed PRNG substream over
    [[0, horizon]], so the same [(name, seed, servers, horizon)]
    quadruple always yields the same plan and adding a server never
    moves another server's windows.
    @raise Invalid_argument on an unknown name. *)

val server_down : t -> server:string -> time:Temporal.Q.t -> bool
(** Is the server inside one of its crash windows at [time]?  Windows
    are half-open: down at exactly [from_], back up at exactly
    [until]. *)

val window_at : t -> server:string -> time:Temporal.Q.t -> window option
(** The crash window containing [time], if any — the exact-endpoint
    form of {!server_down} the boundary tests and the sharded decision
    engine consult. *)

val recovery : t -> server:string -> time:Temporal.Q.t -> Temporal.Q.t option
(** End of the crash window containing [time], if any. *)

val restrict : t -> servers:string list -> t
(** The plan projected onto a subset of servers: crash windows for
    other servers are dropped, event probabilities kept.  Because
    windows are generated from independent per-server substreams
    ({!of_name}), restriction never moves a kept window — a shard that
    only ever consults its own servers decides identically under the
    full plan and the restricted one (property-tested in
    [test/test_parallel.ml]). *)

val pp : Format.formatter -> t -> unit
