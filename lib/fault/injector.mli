(** The injector: a {!Plan} plus a seed, queried by the world at each
    fault point.

    Every probabilistic decision is an {e order-independent} coin: the
    outcome is a keyed hash of [(seed, decision key)], where the key
    names the event (agent, target, attempt number, simulated time).
    Two consequences:

    - the same [(plan, seed)] pair always produces the same injection
      schedule, byte for byte — the determinism the {!Invariant}
      checker and the CI chaos smoke test enforce;
    - asking the injector about event A never perturbs the answer for
      event B, so refactoring the world's evaluation order cannot
      silently change a chaos run. *)

type t

val create : seed:int -> Plan.t -> t
val plan : t -> Plan.t
val seed : t -> int

val server_down : t -> server:string -> time:Temporal.Q.t -> bool
(** Schedule-driven (no coin): is the server inside a crash window? *)

val recovery : t -> server:string -> time:Temporal.Q.t -> Temporal.Q.t option
(** End of the crash window containing [time], if any. *)

val migration_fails :
  t -> agent:string -> dest:string -> attempt:int -> time:Temporal.Q.t -> bool
(** Transient migration failure.  Keyed per attempt, so retries of the
    same hop are independent coins. *)

type fate = Deliver | Drop | Delay of Temporal.Q.t | Duplicate

val channel_fate :
  t -> agent:string -> chan:string -> time:Temporal.Q.t -> fate
(** What happens to one channel send. *)

val signal_lost :
  t -> agent:string -> signal:string -> time:Temporal.Q.t -> bool

val backoff : t -> Resilience.t -> agent:string -> attempt:int -> Temporal.Q.t
(** Delay before retry number [attempt]: capped exponential backoff
    plus (when the policy asks for it) deterministic jitter of up to
    half the backoff, keyed by agent and attempt. *)
