module Q = Temporal.Q

type violation = { time : Q.t; subject : string; what : string }

let fail_closed ~plan events =
  List.filter_map
    (fun ev ->
      match ev with
      | Obs.Trace.Decision
          { time; object_id; access; verdict = Obs.Verdict.Granted } ->
          let server = access.Sral.Access.server in
          if Plan.server_down plan ~server ~time then
            Some
              {
                time;
                subject = object_id;
                what =
                  Printf.sprintf
                    "access granted on %s inside its crash window" server;
              }
          else None
      | _ -> None)
    events

(* One forward pass keeping, per agent, the last fault-protocol event:
   a retry still pending at the end of the trace never ran. *)
let retries_resolve events =
  let last = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Obs.Trace.Retry_scheduled { time; agent; _ } ->
          Hashtbl.replace last agent (`Pending time)
      | Obs.Trace.Migrated { agent; _ }
      | Obs.Trace.Gave_up { agent; _ }
      | Obs.Trace.Completed { agent; _ }
      | Obs.Trace.Aborted { agent; _ }
      | Obs.Trace.Deadlocked { agent; _ } ->
          if Hashtbl.mem last agent then Hashtbl.replace last agent `Resolved
      | _ -> ())
    events;
  Hashtbl.fold
    (fun agent state acc ->
      match state with
      | `Resolved -> acc
      | `Pending time ->
          { time; subject = agent; what = "scheduled retry never resolved" }
          :: acc)
    last []
  |> List.sort (fun v1 v2 ->
         match Q.compare v1.time v2.time with
         | 0 -> String.compare v1.subject v2.subject
         | c -> c)

let check ~plan events = fail_closed ~plan events @ retries_resolve events

let determinism a b =
  if String.equal a b then Ok ()
  else begin
    let la = String.split_on_char '\n' a
    and lb = String.split_on_char '\n' b in
    let rec first_diff n = function
      | x :: xs, y :: ys ->
          if String.equal x y then first_diff (n + 1) (xs, ys) else n
      | [], [] -> n (* unreachable: strings differ *)
      | _ -> n
    in
    Error
      (Printf.sprintf "exports differ at line %d" (first_diff 1 (la, lb)))
  end

let pp_violation ppf v =
  Format.fprintf ppf "[%a] %s: %s" Q.pp v.time v.subject v.what
