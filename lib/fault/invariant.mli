(** Trace-level safety checker for chaos runs.

    Consumes the {!Obs.Trace} event list a run produced (e.g. captured
    by [Obs.Sink.memory]) and checks the two properties the fault
    subsystem promises:

    - {b fail-closed}: no access is ever {e granted} against a server
      inside one of its crash windows — a down server yields an
      auditable denial ([Server_unavailable]), a retry, or nothing,
      never a grant;
    - {b retries resolve}: an agent whose last fault-protocol event is
      [Retry_scheduled] — a retry that never ran — indicates a lost
      wakeup (or an exhausted event budget), which would silently
      strand an agent.

    Determinism (same seed ⇒ byte-identical export) is checked
    separately on serialized traces by {!determinism}. *)

type violation = {
  time : Temporal.Q.t;
  subject : string;  (** agent / object id, or server for plan checks *)
  what : string;
}

val fail_closed : plan:Plan.t -> Obs.Trace.event list -> violation list
(** Granted decisions targeting a server inside a crash window of
    [plan], in trace order. *)

val retries_resolve : Obs.Trace.event list -> violation list
(** Agents left with a scheduled retry that never resolved (no
    subsequent migration, grant, give-up or termination), sorted by
    (time, agent). *)

val check : plan:Plan.t -> Obs.Trace.event list -> violation list
(** Both checks, concatenated. *)

val determinism : string -> string -> (unit, string) result
(** Byte-compare two serialized exports ({!Obs.Export.to_string}); on
    mismatch the error names the first differing line. *)

val pp_violation : Format.formatter -> violation -> unit
