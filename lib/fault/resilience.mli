(** Resilience policy: how the world reacts to injected faults.

    Consumed by [Naplet.World] when an injector is installed:

    - a failed migration is retried up to [max_retries] times with
      capped exponential backoff ([base_backoff · backoff_factorⁿ],
      clamped to [max_backoff]) plus deterministic jitter (a keyed-hash
      fraction of the backoff — see {!Injector.backoff});
    - when the budget is exhausted the agent {e gives up}: the access
      is denied {b fail-closed} through the security manager (an
      auditable [Server_unavailable] decision), never skipped silently;
    - a blocked receive is abandoned after [recv_timeout], if set, so a
      consumer whose producer's messages were dropped does not hang the
      run. *)

type t = {
  max_retries : int;  (** retries after the first failed attempt *)
  base_backoff : Temporal.Q.t;
  backoff_factor : int;
  max_backoff : Temporal.Q.t;
  jitter : bool;  (** add deterministic jitter to each backoff *)
  recv_timeout : Temporal.Q.t option;
      (** abandon a blocked receive after this long ([None]: wait
          forever, the pre-fault behaviour) *)
}

val default : t
(** 3 retries, backoff 2·2ⁿ capped at 16, jitter on, no receive
    timeout. *)

val make :
  ?max_retries:int ->
  ?base_backoff:Temporal.Q.t ->
  ?backoff_factor:int ->
  ?max_backoff:Temporal.Q.t ->
  ?jitter:bool ->
  ?recv_timeout:Temporal.Q.t ->
  unit ->
  t
(** @raise Invalid_argument on a negative retry budget or non-positive
    backoff parameters. *)
