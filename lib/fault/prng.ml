type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer (Steele, Lea & Flood): full-avalanche mix of a
   64-bit word. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

(* 53 high bits of the output, scaled to [0,1) — every float here is
   exactly representable, so the mapping is platform-independent. *)
let to_unit bits53 = Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)
let float t = to_unit (Int64.shift_right_logical (next t) 11)

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  Int64.to_int
    (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let hash ~seed key =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    key;
  mix64 (Int64.add !h (Int64.mul golden (Int64.of_int seed)))

let uniform ~seed key = to_unit (Int64.shift_right_logical (hash ~seed key) 11)
let of_key ~seed key = { state = hash ~seed key }
