module Q = Temporal.Q

type t = {
  max_retries : int;
  base_backoff : Q.t;
  backoff_factor : int;
  max_backoff : Q.t;
  jitter : bool;
  recv_timeout : Q.t option;
}

let default =
  {
    max_retries = 3;
    base_backoff = Q.of_int 2;
    backoff_factor = 2;
    max_backoff = Q.of_int 16;
    jitter = true;
    recv_timeout = None;
  }

let make ?(max_retries = default.max_retries)
    ?(base_backoff = default.base_backoff)
    ?(backoff_factor = default.backoff_factor)
    ?(max_backoff = default.max_backoff) ?(jitter = default.jitter)
    ?recv_timeout () =
  if max_retries < 0 then invalid_arg "Resilience.make: max_retries < 0";
  if Q.sign base_backoff <= 0 then
    invalid_arg "Resilience.make: base_backoff <= 0";
  if backoff_factor < 1 then invalid_arg "Resilience.make: backoff_factor < 1";
  if Q.sign max_backoff <= 0 then
    invalid_arg "Resilience.make: max_backoff <= 0";
  (match recv_timeout with
  | Some d when Q.sign d <= 0 ->
      invalid_arg "Resilience.make: recv_timeout <= 0"
  | _ -> ());
  { max_retries; base_backoff; backoff_factor; max_backoff; jitter;
    recv_timeout }
