module Q = Temporal.Q

type window = { from_ : Q.t; until : Q.t }

type t = {
  name : string;
  crashes : (string * window list) list;
  migration_failure : float;
  channel_drop : float;
  channel_delay : float;
  delay_by : Q.t;
  channel_duplicate : float;
  signal_loss : float;
}

let none =
  {
    name = "none";
    crashes = [];
    migration_failure = 0.0;
    channel_drop = 0.0;
    channel_delay = 0.0;
    delay_by = Q.of_int 3;
    channel_duplicate = 0.0;
    signal_loss = 0.0;
  }

let check_probability what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Plan.make: %s = %g not in [0,1]" what p)

let normalize_windows server ws =
  let ws =
    List.sort (fun w1 w2 -> Q.compare w1.from_ w2.from_) ws
  in
  List.iteri
    (fun i w ->
      if Q.ge w.from_ w.until then
        invalid_arg
          (Printf.sprintf "Plan.make: empty crash window for %s" server);
      if i > 0 && Q.lt w.from_ (List.nth ws (i - 1)).until then
        invalid_arg
          (Printf.sprintf "Plan.make: overlapping crash windows for %s" server))
    ws;
  ws

let make ?(name = "custom") ?(crashes = []) ?(migration_failure = 0.0)
    ?(channel_drop = 0.0) ?(channel_delay = 0.0) ?(delay_by = Q.of_int 3)
    ?(channel_duplicate = 0.0) ?(signal_loss = 0.0) () =
  check_probability "migration_failure" migration_failure;
  check_probability "channel_drop" channel_drop;
  check_probability "channel_delay" channel_delay;
  check_probability "channel_duplicate" channel_duplicate;
  check_probability "signal_loss" signal_loss;
  if channel_drop +. channel_delay +. channel_duplicate > 1.0 then
    invalid_arg "Plan.make: drop + delay + duplicate > 1";
  if Q.sign delay_by < 0 then invalid_arg "Plan.make: negative delay_by";
  let crashes =
    List.map (fun (s, ws) -> (s, normalize_windows s ws)) crashes
  in
  {
    name;
    crashes;
    migration_failure;
    channel_drop;
    channel_delay;
    delay_by;
    channel_duplicate;
    signal_loss;
  }

let intensity_names = [ "none"; "light"; "moderate"; "heavy" ]

let intensity_of_name = function
  | "none" -> Some 0.0
  | "light" -> Some 0.05
  | "moderate" -> Some 0.15
  | "heavy" -> Some 0.35
  | _ -> None

(* Crash windows for one server: an independent keyed substream walks
   the horizon alternating up-time and down-time, so the windows depend
   only on (seed, server, horizon, intensity). *)
let windows_for ~seed ~horizon ~intensity server =
  if intensity <= 0.0 then []
  else begin
    let rng = Prng.of_key ~seed ("plan|" ^ server) in
    let crash_chance = min 0.9 (intensity *. 2.5) in
    if Prng.float rng >= crash_chance then []
    else begin
      let third = max 1 (horizon / 3) in
      let quarter = max 1 (horizon / 4) in
      let rec build cursor acc =
        let up = 1 + Prng.int rng ~bound:third in
        let start = cursor + up in
        if start >= horizon then List.rev acc
        else
          let down = 1 + Prng.int rng ~bound:quarter in
          let w = { from_ = Q.of_int start; until = Q.of_int (start + down) } in
          build (start + down) (w :: acc)
      in
      build 0 []
    end
  end

let of_name name ~seed ~servers ~horizon =
  match intensity_of_name name with
  | None ->
      invalid_arg
        ("Plan.of_name: unknown intensity " ^ name ^ " (expected "
        ^ String.concat "/" intensity_names ^ ")")
  | Some intensity ->
      let crashes =
        List.filter_map
          (fun s ->
            match windows_for ~seed ~horizon ~intensity s with
            | [] -> None
            | ws -> Some (s, ws))
          (List.sort_uniq String.compare servers)
      in
      make ~name ~crashes
        ~migration_failure:(intensity *. 0.5)
        ~channel_drop:(intensity *. 0.4)
        ~channel_delay:(intensity *. 0.4)
        ~channel_duplicate:(intensity *. 0.2)
        ~signal_loss:(intensity *. 0.3)
        ()

let in_window w time = Q.le w.from_ time && Q.lt time w.until

let window_at t ~server ~time =
  match List.assoc_opt server t.crashes with
  | None -> None
  | Some ws -> List.find_opt (fun w -> in_window w time) ws

let server_down t ~server ~time = Option.is_some (window_at t ~server ~time)

let recovery t ~server ~time =
  Option.map (fun w -> w.until) (window_at t ~server ~time)

let restrict t ~servers =
  {
    t with
    crashes = List.filter (fun (s, _) -> List.mem s servers) t.crashes;
  }

let pp_window ppf w =
  Format.fprintf ppf "[%a, %a)" Q.pp w.from_ Q.pp w.until

let pp ppf t =
  Format.fprintf ppf
    "@[<v>plan %s: migration failure %.2f; channel drop %.2f, delay %.2f \
     (+%a), duplicate %.2f; signal loss %.2f%a@]"
    t.name t.migration_failure t.channel_drop t.channel_delay Q.pp t.delay_by
    t.channel_duplicate t.signal_loss
    (fun ppf crashes ->
      List.iter
        (fun (s, ws) ->
          Format.fprintf ppf "@,%s down: %a" s
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
               pp_window)
            ws)
        crashes)
    t.crashes
