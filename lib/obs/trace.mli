(** The event taxonomy of the trace bus.

    One variant per observable fact in the system, spanning all layers:

    - {b decision spans}: [Stage_start]/[Stage_end] bracket each stage
      of the coordinated decision pipeline (RBAC, then spatial, then
      temporal — the Eq. 3.1 ∧ Eq. 4.1 conjunction in evaluation
      order), and [Cache_probe] records verdict-cache hits/misses on
      the indexed fast path;
    - {b decisions}: one [Decision] per {!Coordinated.System.check},
      carrying the access and the full verdict (the audit log's unit of
      record);
    - {b agent lifecycle}: [Spawned], [Migrated], [Completed],
      [Aborted], [Deadlocked], plus [Arrival] (the monitor-level
      arrival record) and [Role_rejected] (role activation refused at
      authentication);
    - {b coordination traffic}: [Message_sent]/[Message_received] on
      channels, [Signal_raised];
    - {b faults and resilience}: [Fault_injected] (a fault-plan event
      fired by {e Fault.Injector} — migration failure, channel
      drop/delay/duplicate, signal loss, receive timeout),
      [Server_down]/[Server_up] (crash-window boundaries),
      [Retry_scheduled] (a failed migration rescheduled with backoff)
      and [Gave_up] (retry budget exhausted; the access is then denied
      fail-closed);
    - {b administration}: [Policy_changed] records an administrative
      mutation of the RBAC policy (assign/deassign, grant/revoke,
      SoD-constraint or binding addition, team join/leave) with the
      rendered op and the {!Rbac.Policy.version} stamp after it;
    - {b run bookkeeping}: [Run_finished] closes a simulation run.

    All events are timestamped with the simulator's exact ℚ clock, so a
    trace is replayable and two identical runs produce identical
    traces.  [Stage_end.elapsed_ns] is the only wall-clock-derived
    field; under the default (null) bus clock it is [0] and traces stay
    deterministic. *)

type stage = Rbac | Spatial | Temporal

type fault =
  | Server_unreachable  (** migration targeted a crashed server *)
  | Migration_failure  (** transient transport failure (retryable) *)
  | Channel_drop
  | Channel_delay
  | Channel_duplicate
  | Signal_loss
  | Recv_timeout  (** a blocked receive abandoned by the timeout policy *)

type event =
  | Stage_start of { time : Temporal.Q.t; object_id : string; stage : stage }
  | Stage_end of {
      time : Temporal.Q.t;
      object_id : string;
      stage : stage;
      ok : bool;  (** did the stage pass for every applicable binding? *)
      elapsed_ns : int64;
          (** host-clock nanoseconds spent in the stage; [0] under the
              null clock *)
    }
  | Cache_probe of { time : Temporal.Q.t; object_id : string; hit : bool }
  | Decision of {
      time : Temporal.Q.t;
      object_id : string;
      access : Sral.Access.t;
      verdict : Verdict.t;
    }
  | Arrival of { time : Temporal.Q.t; object_id : string; server : string }
  | Role_rejected of {
      time : Temporal.Q.t;
      object_id : string;
      role : string;
      reason : string;
    }
  | Spawned of { time : Temporal.Q.t; agent : string; home : string }
  | Migrated of {
      time : Temporal.Q.t;
      agent : string;
      from_ : string;
      to_ : string;
    }
  | Message_sent of { time : Temporal.Q.t; agent : string; channel : string }
  | Message_received of {
      time : Temporal.Q.t;
      agent : string;
      channel : string;
    }
  | Signal_raised of { time : Temporal.Q.t; agent : string; signal : string }
  | Completed of { time : Temporal.Q.t; agent : string }
  | Aborted of { time : Temporal.Q.t; agent : string; reason : string }
  | Deadlocked of { time : Temporal.Q.t; agent : string }
  | Fault_injected of {
      time : Temporal.Q.t;
      agent : string;
      fault : fault;
      target : string;
          (** what the fault hit: a server, channel or signal name *)
    }
  | Server_down of { time : Temporal.Q.t; server : string }
  | Server_up of { time : Temporal.Q.t; server : string }
  | Retry_scheduled of {
      time : Temporal.Q.t;
      agent : string;
      attempt : int;  (** 1-based failed-attempt counter *)
      at : Temporal.Q.t;  (** when the retry will run (backoff applied) *)
    }
  | Gave_up of { time : Temporal.Q.t; agent : string; attempts : int }
  | Policy_changed of {
      time : Temporal.Q.t;
      op : string;
          (** rendered admin op, e.g. ["assign u1 doctor"] — the same
              line syntax {e Analysis.Admin.op_of_string} accepts *)
      version : int;  (** {!Rbac.Policy.version} after the mutation *)
    }
  | Run_finished of { time : Temporal.Q.t }

val time : event -> Temporal.Q.t
(** The event's simulated timestamp. *)

val subject : event -> string option
(** The mobile object / agent the event concerns ([None] for
    [Server_down], [Server_up], [Policy_changed] and [Run_finished]). *)

val stage_name : stage -> string
(** ["rbac"], ["spatial"] or ["temporal"]. *)

val stage_of_name : string -> stage option
(** Inverse of {!stage_name}. *)

val fault_name : fault -> string
(** ["server_unreachable"], ["channel_drop"], … *)

val fault_of_name : string -> fault option
(** Inverse of {!fault_name}. *)

val equal : event -> event -> bool

val pp : Format.formatter -> event -> unit
(** One human-readable line per event. *)
