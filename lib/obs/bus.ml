type t = {
  clock : unit -> int64;
  mutable sinks : Sink.t list;  (* subscription order *)
  mutable emitted : int;
}

let null_clock () = 0L
let create ?(clock = null_clock) () = { clock; sinks = []; emitted = 0 }

(* Appending keeps [sinks] in subscription order; subscription is rare
   and the list short, emission is the hot operation. *)
let subscribe t sink = t.sinks <- t.sinks @ [ sink ]

let emit t ev =
  t.emitted <- t.emitted + 1;
  List.iter (fun s -> Sink.handle s ev) t.sinks

let now_ns t = t.clock ()
let emitted t = t.emitted
let sinks t = List.map Sink.name t.sinks
