type t = { name : string; handle : Trace.event -> unit }

let make ~name handle = { name; handle }
let name t = t.name
let handle t ev = t.handle ev

let memory () =
  let acc = ref [] in
  ( make ~name:"memory" (fun ev -> acc := ev :: !acc),
    fun () -> List.rev !acc )
