(** O(1) streaming statistics over a trace.

    A {!sink} that keeps decision/cache counters and one latency
    histogram per decision stage (rbac, spatial, temporal), fed by
    {!Trace.Stage_end.elapsed_ns} spans.  Histograms use 64 log₂
    buckets, so every update is O(1) and percentile queries are a
    64-bucket walk — percentile estimates are bucket upper bounds
    (factor-2 resolution).

    Under the default null bus clock every span is 0ns; attach the
    stats sink to a bus created with a monotonic clock (as the E14
    bench group does) to measure real per-stage latency. *)

type t

type histogram

val create : unit -> t

val sink : t -> Sink.t
(** The accumulator as a bus subscriber.  Consumes [Stage_end],
    [Cache_probe] and [Decision] events; ignores the rest. *)

val of_trace : Trace.event list -> t
(** Fold a captured trace through a fresh accumulator — how per-shard
    statistics are recovered from the chunks a sharded run collected. *)

val add : t -> t -> unit
(** [add acc t] accumulates [t]'s counters and histograms into [acc]
    (bucket-wise for the histograms).  The merge step for per-shard
    statistics: folding every shard's {!of_trace} into one accumulator
    yields exactly the statistics of the sequential run. *)

val decisions : t -> int
val granted : t -> int
val denied : t -> int
val cache_hits : t -> int
val cache_misses : t -> int

val stage_failures : t -> int
(** Stages that reported [ok = false]. *)

val faults : t -> int
(** [Fault_injected] events observed. *)

val retries : t -> int
(** [Retry_scheduled] events observed. *)

val gave_up : t -> int
(** [Gave_up] events observed (retry budgets exhausted). *)

val stage_count : t -> Trace.stage -> int
(** Spans observed for the stage. *)

val stage_histogram : t -> Trace.stage -> histogram

val histogram : unit -> histogram
(** A fresh standalone histogram — for consumers that time something
    other than decision stages (e.g. the [stacc load] per-request
    latency recorder) but want the same accumulation and percentile
    machinery. *)

val observe : histogram -> int64 -> unit
(** Record one sample (nanoseconds; negative values clamp to [0]). *)

val hist_count : histogram -> int
val hist_mean_ns : histogram -> float
val hist_max_ns : histogram -> int64

val hist_percentile_ns : histogram -> float -> float
(** [hist_percentile_ns h 0.99] — upper bound of the bucket holding the
    given quantile ([0] on an empty histogram). *)

val percentile : histogram -> float -> float
(** Like {!hist_percentile_ns} but {e exact} (nearest-rank over the
    retained raw samples) while the histogram holds at most 512
    observations and was never merged past that; beyond the raw-sample
    buffer it falls back to the factor-2 bucket upper bound.  This is
    the estimator reports should quote — p50/p95/p99 of small runs come
    out exact, huge runs degrade gracefully. *)

val pp : Format.formatter -> t -> unit
(** Counter summary plus one histogram line per stage. *)
