module Q = Temporal.Q

(* ------------------------------------------------------------------ *)
(* Writer.  One JSON object per line, fields in a fixed order, strings
   escaped canonically, ℚ timestamps as exact "num/den" strings — so
   identical traces export to identical bytes. *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let quoted buf s =
  Buffer.add_char buf '"';
  escape_into buf s;
  Buffer.add_char buf '"'

let obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, write_value) ->
      if i > 0 then Buffer.add_char buf ',';
      quoted buf k;
      Buffer.add_char buf ':';
      write_value buf)
    fields;
  Buffer.add_char buf '}'

let jstr s buf = quoted buf s
let jbool b buf = Buffer.add_string buf (if b then "true" else "false")
let jint64 n buf = Buffer.add_string buf (Int64.to_string n)
let jint n buf = Buffer.add_string buf (string_of_int n)
let jq q buf = quoted buf (Q.to_string q)
let jobj fields buf = obj buf fields

let access_fields (a : Sral.Access.t) =
  [
    ("op", jstr (Sral.Access.operation_name a.Sral.Access.op));
    ("r", jstr a.Sral.Access.resource);
    ("s", jstr a.Sral.Access.server);
  ]

let verdict_fields = function
  | Verdict.Granted -> [ ("v", jstr "granted") ]
  | Verdict.Denied reason ->
      let reason_fields =
        match reason with
        | Verdict.Rbac_denied msg ->
            [ ("kind", jstr "rbac"); ("msg", jstr msg) ]
        | Verdict.Spatial_violation { binding; detail } ->
            [
              ("kind", jstr "spatial");
              ("binding", jstr binding);
              ("detail", jstr detail);
            ]
        | Verdict.Temporal_expired { binding; spent } ->
            [
              ("kind", jstr "temporal");
              ("binding", jstr binding);
              ("spent", jq spent);
            ]
        | Verdict.Not_active binding ->
            [ ("kind", jstr "not_active"); ("binding", jstr binding) ]
        | Verdict.Not_arrived -> [ ("kind", jstr "not_arrived") ]
        | Verdict.Server_unavailable server ->
            [ ("kind", jstr "server_unavailable"); ("server", jstr server) ]
      in
      [ ("v", jstr "denied"); ("reason", jobj reason_fields) ]

let fields_of_event ev =
  let tag name = ("ev", jstr name) in
  let t time = ("t", jq time) in
  match ev with
  | Trace.Stage_start { time; object_id; stage } ->
      [
        tag "stage_start";
        t time;
        ("obj", jstr object_id);
        ("stage", jstr (Trace.stage_name stage));
      ]
  | Trace.Stage_end { time; object_id; stage; ok; elapsed_ns } ->
      [
        tag "stage_end";
        t time;
        ("obj", jstr object_id);
        ("stage", jstr (Trace.stage_name stage));
        ("ok", jbool ok);
        ("ns", jint64 elapsed_ns);
      ]
  | Trace.Cache_probe { time; object_id; hit } ->
      [ tag "cache_probe"; t time; ("obj", jstr object_id); ("hit", jbool hit) ]
  | Trace.Decision { time; object_id; access; verdict } ->
      [
        tag "decision";
        t time;
        ("obj", jstr object_id);
        ("access", jobj (access_fields access));
        ("verdict", jobj (verdict_fields verdict));
      ]
  | Trace.Arrival { time; object_id; server } ->
      [ tag "arrival"; t time; ("obj", jstr object_id); ("server", jstr server) ]
  | Trace.Role_rejected { time; object_id; role; reason } ->
      [
        tag "role_rejected";
        t time;
        ("obj", jstr object_id);
        ("role", jstr role);
        ("reason", jstr reason);
      ]
  | Trace.Spawned { time; agent; home } ->
      [ tag "spawned"; t time; ("agent", jstr agent); ("home", jstr home) ]
  | Trace.Migrated { time; agent; from_; to_ } ->
      [
        tag "migrated";
        t time;
        ("agent", jstr agent);
        ("from", jstr from_);
        ("to", jstr to_);
      ]
  | Trace.Message_sent { time; agent; channel } ->
      [
        tag "message_sent";
        t time;
        ("agent", jstr agent);
        ("channel", jstr channel);
      ]
  | Trace.Message_received { time; agent; channel } ->
      [
        tag "message_received";
        t time;
        ("agent", jstr agent);
        ("channel", jstr channel);
      ]
  | Trace.Signal_raised { time; agent; signal } ->
      [
        tag "signal_raised";
        t time;
        ("agent", jstr agent);
        ("signal", jstr signal);
      ]
  | Trace.Completed { time; agent } ->
      [ tag "completed"; t time; ("agent", jstr agent) ]
  | Trace.Aborted { time; agent; reason } ->
      [ tag "aborted"; t time; ("agent", jstr agent); ("reason", jstr reason) ]
  | Trace.Deadlocked { time; agent } ->
      [ tag "deadlocked"; t time; ("agent", jstr agent) ]
  | Trace.Fault_injected { time; agent; fault; target } ->
      [
        tag "fault_injected";
        t time;
        ("agent", jstr agent);
        ("fault", jstr (Trace.fault_name fault));
        ("target", jstr target);
      ]
  | Trace.Server_down { time; server } ->
      [ tag "server_down"; t time; ("server", jstr server) ]
  | Trace.Server_up { time; server } ->
      [ tag "server_up"; t time; ("server", jstr server) ]
  | Trace.Retry_scheduled { time; agent; attempt; at } ->
      [
        tag "retry_scheduled";
        t time;
        ("agent", jstr agent);
        ("attempt", jint attempt);
        ("at", jq at);
      ]
  | Trace.Gave_up { time; agent; attempts } ->
      [ tag "gave_up"; t time; ("agent", jstr agent); ("attempts", jint attempts) ]
  | Trace.Policy_changed { time; op; version } ->
      [ tag "policy_changed"; t time; ("op", jstr op); ("version", jint version) ]
  | Trace.Run_finished { time } -> [ tag "run_finished"; t time ]

let to_line ev =
  let buf = Buffer.create 128 in
  obj buf (fields_of_event ev);
  Buffer.contents buf

let verdict_to_json v =
  let buf = Buffer.create 64 in
  obj buf (verdict_fields v);
  Buffer.contents buf

let to_string events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      obj buf (fields_of_event ev);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let to_channel oc events =
  List.iter
    (fun ev ->
      output_string oc (to_line ev);
      output_char oc '\n')
    events

(* ------------------------------------------------------------------ *)
(* Reader.  A minimal recursive-descent JSON parser (no dependency);
   numbers are kept as raw strings so int64 spans survive exactly. *)

type json =
  | Jobj of (string * json) list
  | Jarr of json list
  | Jstr of string
  | Jnum of string
  | Jbool of bool
  | Jnull

(* Parse errors carry the byte offset of the offending input within the
   line being parsed; [of_string]/[read] rebase it to an absolute
   offset in the whole document.  Structural errors discovered after
   parsing (missing field, unknown tag) report offset 0 — the start of
   the line. *)
exception Parse_error of int * string

let fail_at off msg = raise (Parse_error (off, msg))
let fail msg = fail_at 0 msg

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = fail_at !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' ->
              Buffer.add_char buf '"';
              advance ()
          | '\\' ->
              Buffer.add_char buf '\\';
              advance ()
          | '/' ->
              Buffer.add_char buf '/';
              advance ()
          | 'b' ->
              Buffer.add_char buf '\b';
              advance ()
          | 'f' ->
              Buffer.add_char buf '\012';
              advance ()
          | 'n' ->
              Buffer.add_char buf '\n';
              advance ()
          | 'r' ->
              Buffer.add_char buf '\r';
              advance ()
          | 't' ->
              Buffer.add_char buf '\t';
              advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    Jnum (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> parse_literal "true" (Jbool true)
    | Some 'f' -> parse_literal "false" (Jbool false)
    | Some 'n' -> parse_literal "null" Jnull
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "unexpected input"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Jobj []
    end
    else
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
        | _ -> fail "expected , or } in object"
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Jarr []
    end
    else
      let rec elements acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elements (v :: acc)
        | Some ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
        | _ -> fail "expected , or ] in array"
      in
      elements []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

(* ---------- JSON -> event ---------- *)

let get fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> fail ("missing field " ^ k)

let get_str fields k =
  match get fields k with
  | Jstr s -> s
  | _ -> fail ("field " ^ k ^ " must be a string")

let get_bool fields k =
  match get fields k with
  | Jbool b -> b
  | _ -> fail ("field " ^ k ^ " must be a boolean")

let get_obj fields k =
  match get fields k with
  | Jobj o -> o
  | _ -> fail ("field " ^ k ^ " must be an object")

let get_int fields k =
  match get fields k with
  | Jnum raw -> (
      try int_of_string raw
      with _ -> fail ("field " ^ k ^ " must be an integer"))
  | _ -> fail ("field " ^ k ^ " must be a number")

let get_int64 fields k =
  match get fields k with
  | Jnum raw -> (
      try Int64.of_string raw
      with _ -> fail ("field " ^ k ^ " must be an integer"))
  | _ -> fail ("field " ^ k ^ " must be a number")

let get_q fields k =
  let s = get_str fields k in
  try Q.of_string s
  with Invalid_argument _ -> fail ("field " ^ k ^ " is not a rational")

let get_stage fields k =
  match Trace.stage_of_name (get_str fields k) with
  | Some stage -> stage
  | None -> fail ("field " ^ k ^ " is not a stage name")

let access_of fields =
  Sral.Access.make
    ~op:(Sral.Access.operation_of_name (get_str fields "op"))
    ~resource:(get_str fields "r") ~server:(get_str fields "s")

let verdict_of fields =
  match get_str fields "v" with
  | "granted" -> Verdict.Granted
  | "denied" ->
      let r = get_obj fields "reason" in
      let reason =
        match get_str r "kind" with
        | "rbac" -> Verdict.Rbac_denied (get_str r "msg")
        | "spatial" ->
            Verdict.Spatial_violation
              { binding = get_str r "binding"; detail = get_str r "detail" }
        | "temporal" ->
            Verdict.Temporal_expired
              { binding = get_str r "binding"; spent = get_q r "spent" }
        | "not_active" -> Verdict.Not_active (get_str r "binding")
        | "not_arrived" -> Verdict.Not_arrived
        | "server_unavailable" ->
            Verdict.Server_unavailable (get_str r "server")
        | k -> fail ("unknown denial kind " ^ k)
      in
      Verdict.Denied reason
  | v -> fail ("unknown verdict " ^ v)

let event_of_fields fields =
  let time = get_q fields "t" in
  match get_str fields "ev" with
  | "stage_start" ->
      Trace.Stage_start
        {
          time;
          object_id = get_str fields "obj";
          stage = get_stage fields "stage";
        }
  | "stage_end" ->
      Trace.Stage_end
        {
          time;
          object_id = get_str fields "obj";
          stage = get_stage fields "stage";
          ok = get_bool fields "ok";
          elapsed_ns = get_int64 fields "ns";
        }
  | "cache_probe" ->
      Trace.Cache_probe
        { time; object_id = get_str fields "obj"; hit = get_bool fields "hit" }
  | "decision" ->
      Trace.Decision
        {
          time;
          object_id = get_str fields "obj";
          access = access_of (get_obj fields "access");
          verdict = verdict_of (get_obj fields "verdict");
        }
  | "arrival" ->
      Trace.Arrival
        {
          time;
          object_id = get_str fields "obj";
          server = get_str fields "server";
        }
  | "role_rejected" ->
      Trace.Role_rejected
        {
          time;
          object_id = get_str fields "obj";
          role = get_str fields "role";
          reason = get_str fields "reason";
        }
  | "spawned" ->
      Trace.Spawned
        { time; agent = get_str fields "agent"; home = get_str fields "home" }
  | "migrated" ->
      Trace.Migrated
        {
          time;
          agent = get_str fields "agent";
          from_ = get_str fields "from";
          to_ = get_str fields "to";
        }
  | "message_sent" ->
      Trace.Message_sent
        {
          time;
          agent = get_str fields "agent";
          channel = get_str fields "channel";
        }
  | "message_received" ->
      Trace.Message_received
        {
          time;
          agent = get_str fields "agent";
          channel = get_str fields "channel";
        }
  | "signal_raised" ->
      Trace.Signal_raised
        {
          time;
          agent = get_str fields "agent";
          signal = get_str fields "signal";
        }
  | "completed" -> Trace.Completed { time; agent = get_str fields "agent" }
  | "aborted" ->
      Trace.Aborted
        {
          time;
          agent = get_str fields "agent";
          reason = get_str fields "reason";
        }
  | "deadlocked" -> Trace.Deadlocked { time; agent = get_str fields "agent" }
  | "fault_injected" ->
      let name = get_str fields "fault" in
      let fault =
        match Trace.fault_of_name name with
        | Some f -> f
        | None -> fail ("unknown fault kind " ^ name)
      in
      Trace.Fault_injected
        { time; agent = get_str fields "agent"; fault; target = get_str fields "target" }
  | "server_down" -> Trace.Server_down { time; server = get_str fields "server" }
  | "server_up" -> Trace.Server_up { time; server = get_str fields "server" }
  | "retry_scheduled" ->
      Trace.Retry_scheduled
        {
          time;
          agent = get_str fields "agent";
          attempt = get_int fields "attempt";
          at = get_q fields "at";
        }
  | "gave_up" ->
      Trace.Gave_up
        {
          time;
          agent = get_str fields "agent";
          attempts = get_int fields "attempts";
        }
  | "policy_changed" ->
      Trace.Policy_changed
        { time; op = get_str fields "op"; version = get_int fields "version" }
  | "run_finished" -> Trace.Run_finished { time }
  | ev -> fail ("unknown event tag " ^ ev)

(* Per-line parse, error as [(byte offset within line, message)] so
   document-level readers can rebase to absolute offsets. *)
let of_line_at line =
  match parse_json line with
  | exception Parse_error (off, msg) -> Error (off, msg)
  | Jobj fields -> (
      match event_of_fields fields with
      | ev -> Ok ev
      | exception Parse_error (off, msg) -> Error (off, msg))
  | _ -> Error (0, "expected a JSON object")

let of_line line =
  match of_line_at line with
  | Ok ev -> Ok ev
  | Error (off, msg) -> Error (Printf.sprintf "byte %d: %s" off msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno start acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (lineno + 1) (start + 1) acc rest
    | line :: rest -> (
        match of_line_at line with
        | Ok ev ->
            go (lineno + 1) (start + String.length line + 1) (ev :: acc) rest
        | Error (off, msg) ->
            Error
              (Printf.sprintf "line %d: byte %d: %s" lineno (start + off) msg))
  in
  go 1 0 [] lines

(* Streaming variant of [of_string]: events are parsed line by line as
   they are read, so a malformed (e.g. truncated) line is reported with
   its 1-based line number and absolute byte offset instead of surfacing
   as a bare exception from the parser. *)
let read ic =
  let rec go lineno start acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | "" -> go (lineno + 1) (start + 1) acc
    | line -> (
        match of_line_at line with
        | Ok ev -> go (lineno + 1) (start + String.length line + 1) (ev :: acc)
        | Error (off, msg) ->
            Error
              (Printf.sprintf "line %d: byte %d: %s" lineno (start + off) msg))
  in
  go 1 0 []
