(* Deterministic reassembly of per-shard traces into the canonical
   sequential order.  No clocks, no heuristics: every chunk carries the
   global index of the step that emitted it, so merging is a pure sort
   by (index, source) — two runs of the same partitioned workload can
   never merge differently. *)

let concat traces = List.concat (Array.to_list traces)

let by_index sources =
  (* Each source is ascending in step index already (a shard replays
     the stream in order), so a k-way merge would do; but shard counts
     are tiny and chunks short, so a stable sort on the tagged list is
     simpler and just as deterministic. *)
  let tagged =
    List.concat
      (List.mapi
         (fun source chunks ->
           List.map (fun (index, events) -> ((index, source), events)) chunks)
         (Array.to_list sources))
  in
  let sorted =
    List.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) tagged
  in
  List.concat_map snd sorted

let monotone_indices chunks =
  let rec go last = function
    | [] -> true
    | (i, _) :: rest -> i > last && go i rest
  in
  go (-1) chunks
