module Q = Temporal.Q

type reason =
  | Rbac_denied of string
  | Spatial_violation of { binding : string; detail : string }
  | Temporal_expired of { binding : string; spent : Temporal.Q.t }
  | Not_active of string
  | Not_arrived
  | Server_unavailable of string

type t = Granted | Denied of reason

let is_granted = function Granted -> true | Denied _ -> false

let pp_reason ppf = function
  | Rbac_denied msg -> Format.fprintf ppf "rbac: %s" msg
  | Spatial_violation { binding; detail } ->
      Format.fprintf ppf "spatial constraint of %s: %s" binding detail
  | Temporal_expired { binding; spent } ->
      Format.fprintf ppf "validity of %s exhausted (spent %a)" binding Q.pp
        spent
  | Not_active binding ->
      Format.fprintf ppf "permission %s is not active" binding
  | Not_arrived -> Format.pp_print_string ppf "object has not arrived anywhere"
  | Server_unavailable server ->
      Format.fprintf ppf "server %s unavailable (fail-closed)" server

let pp ppf = function
  | Granted -> Format.pp_print_string ppf "granted"
  | Denied r -> Format.fprintf ppf "denied: %a" pp_reason r
