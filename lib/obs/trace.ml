module Q = Temporal.Q

type stage = Rbac | Spatial | Temporal

type fault =
  | Server_unreachable
  | Migration_failure
  | Channel_drop
  | Channel_delay
  | Channel_duplicate
  | Signal_loss
  | Recv_timeout

type event =
  | Stage_start of { time : Q.t; object_id : string; stage : stage }
  | Stage_end of {
      time : Q.t;
      object_id : string;
      stage : stage;
      ok : bool;
      elapsed_ns : int64;
    }
  | Cache_probe of { time : Q.t; object_id : string; hit : bool }
  | Decision of {
      time : Q.t;
      object_id : string;
      access : Sral.Access.t;
      verdict : Verdict.t;
    }
  | Arrival of { time : Q.t; object_id : string; server : string }
  | Role_rejected of {
      time : Q.t;
      object_id : string;
      role : string;
      reason : string;
    }
  | Spawned of { time : Q.t; agent : string; home : string }
  | Migrated of { time : Q.t; agent : string; from_ : string; to_ : string }
  | Message_sent of { time : Q.t; agent : string; channel : string }
  | Message_received of { time : Q.t; agent : string; channel : string }
  | Signal_raised of { time : Q.t; agent : string; signal : string }
  | Completed of { time : Q.t; agent : string }
  | Aborted of { time : Q.t; agent : string; reason : string }
  | Deadlocked of { time : Q.t; agent : string }
  | Fault_injected of {
      time : Q.t;
      agent : string;
      fault : fault;
      target : string;
    }
  | Server_down of { time : Q.t; server : string }
  | Server_up of { time : Q.t; server : string }
  | Retry_scheduled of { time : Q.t; agent : string; attempt : int; at : Q.t }
  | Gave_up of { time : Q.t; agent : string; attempts : int }
  | Policy_changed of { time : Q.t; op : string; version : int }
  | Run_finished of { time : Q.t }

let time = function
  | Stage_start { time; _ }
  | Stage_end { time; _ }
  | Cache_probe { time; _ }
  | Decision { time; _ }
  | Arrival { time; _ }
  | Role_rejected { time; _ }
  | Spawned { time; _ }
  | Migrated { time; _ }
  | Message_sent { time; _ }
  | Message_received { time; _ }
  | Signal_raised { time; _ }
  | Completed { time; _ }
  | Aborted { time; _ }
  | Deadlocked { time; _ }
  | Fault_injected { time; _ }
  | Server_down { time; _ }
  | Server_up { time; _ }
  | Retry_scheduled { time; _ }
  | Gave_up { time; _ }
  | Policy_changed { time; _ }
  | Run_finished { time } ->
      time

let subject = function
  | Stage_start { object_id; _ }
  | Stage_end { object_id; _ }
  | Cache_probe { object_id; _ }
  | Decision { object_id; _ }
  | Arrival { object_id; _ }
  | Role_rejected { object_id; _ } ->
      Some object_id
  | Spawned { agent; _ }
  | Migrated { agent; _ }
  | Message_sent { agent; _ }
  | Message_received { agent; _ }
  | Signal_raised { agent; _ }
  | Completed { agent; _ }
  | Aborted { agent; _ }
  | Deadlocked { agent; _ }
  | Fault_injected { agent; _ }
  | Retry_scheduled { agent; _ }
  | Gave_up { agent; _ } ->
      Some agent
  | Server_down _ | Server_up _ | Policy_changed _ | Run_finished _ -> None

let stage_name = function
  | Rbac -> "rbac"
  | Spatial -> "spatial"
  | Temporal -> "temporal"

let stage_of_name = function
  | "rbac" -> Some Rbac
  | "spatial" -> Some Spatial
  | "temporal" -> Some Temporal
  | _ -> None

let fault_name = function
  | Server_unreachable -> "server_unreachable"
  | Migration_failure -> "migration_failure"
  | Channel_drop -> "channel_drop"
  | Channel_delay -> "channel_delay"
  | Channel_duplicate -> "channel_duplicate"
  | Signal_loss -> "signal_loss"
  | Recv_timeout -> "recv_timeout"

let fault_of_name = function
  | "server_unreachable" -> Some Server_unreachable
  | "migration_failure" -> Some Migration_failure
  | "channel_drop" -> Some Channel_drop
  | "channel_delay" -> Some Channel_delay
  | "channel_duplicate" -> Some Channel_duplicate
  | "signal_loss" -> Some Signal_loss
  | "recv_timeout" -> Some Recv_timeout
  | _ -> None

(* Every payload is immutable structural data (strings, ints, ℚ values,
   accesses, verdicts), so polymorphic equality is exact. *)
let equal (a : event) (b : event) = a = b

let pp ppf ev =
  let t = time ev in
  match ev with
  | Stage_start { object_id; stage; _ } ->
      Format.fprintf ppf "[%a] %s: %s stage begins" Q.pp t object_id
        (stage_name stage)
  | Stage_end { object_id; stage; ok; elapsed_ns; _ } ->
      Format.fprintf ppf "[%a] %s: %s stage %s (%Ldns)" Q.pp t object_id
        (stage_name stage)
        (if ok then "passed" else "failed")
        elapsed_ns
  | Cache_probe { object_id; hit; _ } ->
      Format.fprintf ppf "[%a] %s: verdict cache %s" Q.pp t object_id
        (if hit then "hit" else "miss")
  | Decision { object_id; access; verdict; _ } ->
      Format.fprintf ppf "[%a] %s: %a -> %a" Q.pp t object_id Sral.Access.pp
        access Verdict.pp verdict
  | Arrival { object_id; server; _ } ->
      Format.fprintf ppf "[%a] %s: arrived at %s" Q.pp t object_id server
  | Role_rejected { object_id; role; reason; _ } ->
      Format.fprintf ppf "[%a] %s: role %s rejected (%s)" Q.pp t object_id
        role reason
  | Spawned { agent; home; _ } ->
      Format.fprintf ppf "[%a] %s: spawned at %s" Q.pp t agent home
  | Migrated { agent; from_; to_; _ } ->
      Format.fprintf ppf "[%a] %s: migrated %s -> %s" Q.pp t agent from_ to_
  | Message_sent { agent; channel; _ } ->
      Format.fprintf ppf "[%a] %s: sent on %s" Q.pp t agent channel
  | Message_received { agent; channel; _ } ->
      Format.fprintf ppf "[%a] %s: received on %s" Q.pp t agent channel
  | Signal_raised { agent; signal; _ } ->
      Format.fprintf ppf "[%a] %s: raised %s" Q.pp t agent signal
  | Completed { agent; _ } ->
      Format.fprintf ppf "[%a] %s: completed" Q.pp t agent
  | Aborted { agent; reason; _ } ->
      Format.fprintf ppf "[%a] %s: aborted (%s)" Q.pp t agent reason
  | Deadlocked { agent; _ } ->
      Format.fprintf ppf "[%a] %s: deadlocked" Q.pp t agent
  | Fault_injected { agent; fault; target; _ } ->
      Format.fprintf ppf "[%a] %s: fault %s on %s" Q.pp t agent
        (fault_name fault) target
  | Server_down { server; _ } ->
      Format.fprintf ppf "[%a] server %s down" Q.pp t server
  | Server_up { server; _ } ->
      Format.fprintf ppf "[%a] server %s up" Q.pp t server
  | Retry_scheduled { agent; attempt; at; _ } ->
      Format.fprintf ppf "[%a] %s: retry %d scheduled for %a" Q.pp t agent
        attempt Q.pp at
  | Gave_up { agent; attempts; _ } ->
      Format.fprintf ppf "[%a] %s: gave up after %d attempts" Q.pp t agent
        attempts
  | Policy_changed { op; version; _ } ->
      Format.fprintf ppf "[%a] policy changed: %s (version %d)" Q.pp t op
        version
  | Run_finished _ -> Format.fprintf ppf "[%a] run finished" Q.pp t
