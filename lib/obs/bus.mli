(** The trace bus: a synchronous, typed fan-out point.

    Emitters ({!Coordinated.System}, {!Coordinated.Decision},
    {!Naplet.World}, …) publish {!Trace.event}s; sinks (the audit log,
    the event log, the metrics accumulator, {!Stats}, a memory capture)
    receive every event in subscription order.  Emission is synchronous
    and deterministic: no queue, no thread, no reordering — emitting is
    exactly a fold over the subscribed handlers.

    The [clock] supplies host-time nanoseconds for
    {!Trace.Stage_end.elapsed_ns} spans.  It defaults to the null clock
    (always [0]) so that traces are bit-reproducible by default;
    benchmarks inject a monotonic clock to measure real per-stage
    latency. *)

type t

val create : ?clock:(unit -> int64) -> unit -> t
(** [clock] defaults to {!null_clock}. *)

val null_clock : unit -> int64
(** Always [0L] — keeps span durations, and therefore whole traces,
    deterministic. *)

val subscribe : t -> Sink.t -> unit
(** Append a sink; it receives every subsequently emitted event. *)

val emit : t -> Trace.event -> unit
(** Deliver the event to every sink, in subscription order. *)

val now_ns : t -> int64
(** Read the bus clock (for span measurement by emitters). *)

val emitted : t -> int
(** Lifetime number of emitted events. *)

val sinks : t -> string list
(** Names of the subscribed sinks, in subscription order. *)
