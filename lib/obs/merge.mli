(** Deterministic merge of per-shard traces.

    A sharded run captures, per shard, the trace chunks its own steps
    emitted, each tagged with the step's index in the original
    (sequential) stream.  Merging is purely structural — sort the
    chunks by [(step index, shard index)] and concatenate — so the
    merged trace of a partitioned run is byte-identical to the
    sequential trace whenever the partition was sound (every step
    executed by exactly one emitting shard).  The parallel conformance
    harness ([test/test_parallel.ml]) checks exactly that property. *)

val concat : Trace.event list array -> Trace.event list
(** Concatenate per-source traces in source order — the merge step for
    coalition-level sharding, where source [i] holds the complete trace
    of coalition [i]. *)

val by_index : (int * Trace.event list) list array -> Trace.event list
(** [by_index sources] interleaves per-shard chunk lists into global
    step order.  [sources.(s)] is shard [s]'s list of
    [(step_index, events)] chunks, ascending in [step_index]; the
    result orders chunks by step index (ties — only possible for
    non-emitting global steps — break by shard index, which cannot
    affect the event sequence). *)

val monotone_indices : (int * Trace.event list) list -> bool
(** Are the chunk indices strictly increasing?  (Sanity check on a
    shard's slice before merging.) *)
