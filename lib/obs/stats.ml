type histogram = {
  buckets : int array;  (* buckets.(i): samples with 2^i <= ns < 2^(i+1) *)
  mutable count : int;
  mutable sum_ns : int64;
  mutable max_ns : int64;
  (* the first [sample_cap] raw observations, kept so small histograms
     answer percentile queries exactly; once [count] outgrows the
     buffer (or a merge makes it non-exhaustive) queries fall back to
     the factor-2 bucket estimate *)
  mutable samples : int64 array;
  mutable n_samples : int;
}

let buckets = 64
let sample_cap = 512

let make_histogram () =
  {
    buckets = Array.make buckets 0;
    count = 0;
    sum_ns = 0L;
    max_ns = 0L;
    samples = [||];
    n_samples = 0;
  }

(* floor(log2 ns), with everything <= 1ns in bucket 0 — an O(1) update
   (the loop runs at most 63 times and in practice ~a dozen). *)
let bucket_of ns =
  if Int64.compare ns 1L <= 0 then 0
  else begin
    let b = ref 0 and v = ref ns in
    while Int64.compare !v 1L > 0 do
      incr b;
      v := Int64.shift_right_logical !v 1
    done;
    min !b (buckets - 1)
  end

let observe h ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  h.buckets.(bucket_of ns) <- h.buckets.(bucket_of ns) + 1;
  (* record the raw sample only while the buffer is still exhaustive —
     [n_samples = count] — so exactness is a simple equality check *)
  if h.n_samples = h.count && h.n_samples < sample_cap then begin
    if h.n_samples = Array.length h.samples then begin
      let cap = max 16 (min sample_cap (2 * Array.length h.samples)) in
      let bigger = Array.make cap 0L in
      Array.blit h.samples 0 bigger 0 h.n_samples;
      h.samples <- bigger
    end;
    h.samples.(h.n_samples) <- ns;
    h.n_samples <- h.n_samples + 1
  end;
  h.count <- h.count + 1;
  h.sum_ns <- Int64.add h.sum_ns ns;
  if Int64.compare ns h.max_ns > 0 then h.max_ns <- ns

let hist_count h = h.count
let hist_max_ns h = h.max_ns

let hist_mean_ns h =
  if h.count = 0 then 0.0 else Int64.to_float h.sum_ns /. float_of_int h.count

(* Upper bound of the bucket holding the p-quantile sample — a
   conservative estimate with factor-2 resolution, which is all a
   log2-bucketed histogram can promise. *)
let rank_of h p =
  let rank = int_of_float (ceil (p *. float_of_int h.count)) in
  max 1 (min rank h.count)

let hist_percentile_ns h p =
  if h.count = 0 then 0.0
  else begin
    let rank = rank_of h p in
    let cum = ref 0 and result = ref 0.0 and found = ref false in
    Array.iteri
      (fun i n ->
        if not !found then begin
          cum := !cum + n;
          if !cum >= rank then begin
            result := ldexp 1.0 (i + 1) -. 1.0;
            found := true
          end
        end)
      h.buckets;
    !result
  end

(* Exact nearest-rank percentile while the raw-sample buffer is still
   exhaustive (count <= sample_cap and never merged past it); the
   log2-bucket upper bound otherwise. *)
let percentile h p =
  if h.count = 0 then 0.0
  else if h.n_samples = h.count then begin
    let sorted = Array.sub h.samples 0 h.n_samples in
    Array.sort Int64.compare sorted;
    Int64.to_float sorted.(rank_of h p - 1)
  end
  else hist_percentile_ns h p

type t = {
  mutable decisions : int;
  mutable granted : int;
  mutable denied : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable stage_failures : int;
  mutable faults : int;
  mutable retries : int;
  mutable gave_up : int;
  rbac : histogram;
  spatial : histogram;
  temporal : histogram;
}

let create () =
  {
    decisions = 0;
    granted = 0;
    denied = 0;
    cache_hits = 0;
    cache_misses = 0;
    stage_failures = 0;
    faults = 0;
    retries = 0;
    gave_up = 0;
    rbac = make_histogram ();
    spatial = make_histogram ();
    temporal = make_histogram ();
  }

let histogram = make_histogram

let stage_histogram t = function
  | Trace.Rbac -> t.rbac
  | Trace.Spatial -> t.spatial
  | Trace.Temporal -> t.temporal

let decisions t = t.decisions
let granted t = t.granted
let denied t = t.denied
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let stage_failures t = t.stage_failures
let faults t = t.faults
let retries t = t.retries
let gave_up t = t.gave_up
let stage_count t stage = (stage_histogram t stage).count

let sink t =
  Sink.make ~name:"stats" (function
    | Trace.Stage_end { stage; ok; elapsed_ns; _ } ->
        observe (stage_histogram t stage) elapsed_ns;
        if not ok then t.stage_failures <- t.stage_failures + 1
    | Trace.Cache_probe { hit; _ } ->
        if hit then t.cache_hits <- t.cache_hits + 1
        else t.cache_misses <- t.cache_misses + 1
    | Trace.Decision { verdict; _ } ->
        t.decisions <- t.decisions + 1;
        if Verdict.is_granted verdict then t.granted <- t.granted + 1
        else t.denied <- t.denied + 1
    | Trace.Fault_injected _ -> t.faults <- t.faults + 1
    | Trace.Retry_scheduled _ -> t.retries <- t.retries + 1
    | Trace.Gave_up _ -> t.gave_up <- t.gave_up + 1
    | _ -> ())

let of_trace events =
  let t = create () in
  let s = sink t in
  List.iter (Sink.handle s) events;
  t

let add_histogram acc h =
  Array.iteri (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n) h.buckets;
  (* raw samples stay exhaustive only when both sides were and the
     union still fits the cap; otherwise later queries use buckets *)
  if acc.n_samples = acc.count && h.n_samples = h.count
     && acc.n_samples + h.n_samples <= sample_cap
  then begin
    let merged = Array.make (max 16 (acc.n_samples + h.n_samples)) 0L in
    Array.blit acc.samples 0 merged 0 acc.n_samples;
    Array.blit h.samples 0 merged acc.n_samples h.n_samples;
    acc.samples <- merged;
    acc.n_samples <- acc.n_samples + h.n_samples
  end;
  acc.count <- acc.count + h.count;
  acc.sum_ns <- Int64.add acc.sum_ns h.sum_ns;
  if Int64.compare h.max_ns acc.max_ns > 0 then acc.max_ns <- h.max_ns

let add acc t =
  acc.decisions <- acc.decisions + t.decisions;
  acc.granted <- acc.granted + t.granted;
  acc.denied <- acc.denied + t.denied;
  acc.cache_hits <- acc.cache_hits + t.cache_hits;
  acc.cache_misses <- acc.cache_misses + t.cache_misses;
  acc.stage_failures <- acc.stage_failures + t.stage_failures;
  acc.faults <- acc.faults + t.faults;
  acc.retries <- acc.retries + t.retries;
  acc.gave_up <- acc.gave_up + t.gave_up;
  add_histogram acc.rbac t.rbac;
  add_histogram acc.spatial t.spatial;
  add_histogram acc.temporal t.temporal

let pp_stage ppf (name, h) =
  if h.count = 0 then Format.fprintf ppf "%-8s (no samples)" name
  else
    Format.fprintf ppf
      "%-8s n=%-7d mean %8.1fns  p50 %8.0fns  p90 %8.0fns  p99 %8.0fns  max \
       %Ldns"
      name h.count (hist_mean_ns h)
      (percentile h 0.50)
      (percentile h 0.90)
      (percentile h 0.99)
      h.max_ns

let pp ppf t =
  Format.fprintf ppf
    "@[<v>decisions: %d (%d granted, %d denied); cache: %d hit / %d miss; \
     stage failures: %d@,\
     faults: %d injected, %d retries, %d gave up@,\
     %a@,%a@,%a@]"
    t.decisions t.granted t.denied t.cache_hits t.cache_misses
    t.stage_failures t.faults t.retries t.gave_up pp_stage ("rbac", t.rbac)
    pp_stage ("spatial", t.spatial) pp_stage ("temporal", t.temporal)
