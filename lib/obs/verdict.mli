(** Decision outcomes.

    The verdict type lives in the observability layer — below both the
    decision procedure and every event consumer — because it appears in
    {!Trace.event}s and must be shareable by all of them without a
    dependency cycle.  [Coordinated.Verdict] and [Coordinated.Decision]
    re-export these constructors under their historical names
    ([Decision.reason], [Decision.verdict]); any spelling works. *)

type reason =
  | Rbac_denied of string
  | Spatial_violation of { binding : string; detail : string }
  | Temporal_expired of { binding : string; spent : Temporal.Q.t }
  | Not_active of string
      (** the permission is not in the active state at decision time
          (Eq. 3.1's conjunction failed earlier on this timeline) *)
  | Not_arrived  (** no arrival recorded — object not on any server *)
  | Server_unavailable of string
      (** the target server is crashed (or its policy replica is
          stale): the coalition fails {e closed} — the access is
          denied on the record rather than silently skipped *)

type t = Granted | Denied of reason

val is_granted : t -> bool
val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> t -> unit
