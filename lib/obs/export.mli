(** Deterministic JSONL serialization of traces.

    One event per line, keys in a fixed order, ℚ timestamps written
    exactly ({!Temporal.Q.to_string}, e.g. ["3/2"]) — so two identical
    runs export byte-identical files, and an exported trace can be
    re-imported for replay assertions.

    The reader inverts the writer: [of_string ∘ to_string] is the
    identity on event lists, and [to_string ∘ of_string ∘ to_string =
    to_string] (export → import → re-export is a fixed point; both
    properties are tested in [test/test_obs.ml]).  The only lossy spot
    is an access written with a {e standard} operation name under
    [Custom] (e.g. [Custom "read"]), which reads back as the standard
    constructor — no emitter in this repo produces such accesses. *)

val to_line : Trace.event -> string
(** One JSON object, no trailing newline. *)

val of_line : string -> (Trace.event, string) result
(** Errors are ["byte N: …"] with the 0-based offset of the offending
    byte within the line (offset 0 for structural errors discovered
    after parsing, e.g. a missing field). *)

val verdict_to_json : Verdict.t -> string
(** Just the verdict, as the same JSON object a [Decision] event embeds
    under its ["verdict"] key — for codecs (the service wire protocol's
    JSONL debug form) that ship verdicts outside a trace event. *)

val to_string : Trace.event list -> string
(** Newline-terminated lines, concatenated. *)

val of_string : string -> (Trace.event list, string) result
(** Parses a JSONL document; blank lines are skipped; the error is
    ["line N: byte M: …"] naming the offending 1-based line and the
    absolute 0-based byte offset within the document. *)

val to_channel : out_channel -> Trace.event list -> unit

val read : in_channel -> (Trace.event list, string) result
(** Streaming counterpart of {!of_string}: parses JSONL from a channel
    until end of file.  A malformed line — truncated JSON, an unknown
    tag, a missing field — yields [Error "line N: byte M: …"] with the
    1-based line number and absolute byte offset instead of raising;
    blank lines are skipped. *)
