(** Deterministic JSONL serialization of traces.

    One event per line, keys in a fixed order, ℚ timestamps written
    exactly ({!Temporal.Q.to_string}, e.g. ["3/2"]) — so two identical
    runs export byte-identical files, and an exported trace can be
    re-imported for replay assertions.

    The reader inverts the writer: [of_string ∘ to_string] is the
    identity on event lists, and [to_string ∘ of_string ∘ to_string =
    to_string] (export → import → re-export is a fixed point; both
    properties are tested in [test/test_obs.ml]).  The only lossy spot
    is an access written with a {e standard} operation name under
    [Custom] (e.g. [Custom "read"]), which reads back as the standard
    constructor — no emitter in this repo produces such accesses. *)

val to_line : Trace.event -> string
(** One JSON object, no trailing newline. *)

val of_line : string -> (Trace.event, string) result

val to_string : Trace.event list -> string
(** Newline-terminated lines, concatenated. *)

val of_string : string -> (Trace.event list, string) result
(** Parses a JSONL document; blank lines are skipped; the error names
    the offending line. *)

val to_channel : out_channel -> Trace.event list -> unit

val read : in_channel -> (Trace.event list, string) result
(** Streaming counterpart of {!of_string}: parses JSONL from a channel
    until end of file.  A malformed line — truncated JSON, an unknown
    tag, a missing field — yields [Error "line N: …"] with the 1-based
    line number instead of raising; blank lines are skipped. *)
