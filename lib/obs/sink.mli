(** Subscribers of the trace bus.

    The sink contract: [handle] is called synchronously, in subscription
    order, for {e every} event emitted on the bus it is subscribed to.
    A sink interested in a subset of the taxonomy pattern-matches and
    ignores the rest (a wildcard arm, not an error).  Handlers must not
    emit on the same bus (no reentrancy) and should be O(1) per event —
    the emitter runs on the decision hot path. *)

type t

val make : name:string -> (Trace.event -> unit) -> t
(** [name] identifies the sink in diagnostics ({!Bus.sinks}). *)

val name : t -> string

val handle : t -> Trace.event -> unit
(** Feed one event to the sink — used by {!Bus.emit} and by offline
    replays of an exported trace. *)

val memory : unit -> t * (unit -> Trace.event list)
(** A sink that retains every event; the second component returns the
    capture so far, in emission order.  The capture basis for trace
    exports and replay assertions. *)
