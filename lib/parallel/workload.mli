(** Seeded random-coalition generator.

    One generator for every consumer that needs randomized coalitions —
    the differential fuzz suites ([test/gen.ml] re-exports it), the
    parallel conformance harness, the E17 benchmark and the
    [stacc bench-parallel] subcommand — so "a random coalition" means
    the same thing everywhere.  All sampling is driven by the caller's
    [Random.State.t]; the same state always yields the same scenario. *)

val pick : Random.State.t -> 'a list -> 'a

val users : string list
(** The fixed two-user population every scenario draws owners from. *)

val roles : string list

val team_names : string list
(** The fixed team pool [Join] events and team-scoped coalitions draw
    from. *)

val grants :
  resources:string list ->
  servers:string list ->
  Random.State.t ->
  (string * Rbac.Perm.t) list
(** Random role → permission grants (wildcard, per-resource and
    per-server targets). *)

val assignments : Random.State.t -> (string * string) list
(** Random user → role assignments. *)

val bindings :
  resources:string list -> Random.State.t -> Coordinated.Perm_binding.t list
(** The full binding mix: Performed/Program/Both spatial scopes, Own
    and Team proof scopes, durations under both base-time schemes. *)

val scenario :
  ?servers:string list ->
  ?resources:string list ->
  ?objects:int ->
  ?events:int ->
  ?teams:bool ->
  ?faults:bool ->
  Random.State.t ->
  Scenario.t
(** One random coalition.  [objects] fixes the population (default
    2–4), [events] the stream length after the initial arrivals
    (default 15–39).  [teams = false] suppresses [Join] events —
    every object becomes its own partition component, the
    embarrassingly-parallel shape object-level sharding scales on.
    [faults = true] attaches a random named fault plan whose crash
    windows the interpreter applies fail-closed. *)

val big_coalition :
  ?servers:string list ->
  ?resources:string list ->
  ?block:int ->
  ?checks_per_object:int ->
  objects:int ->
  Random.State.t ->
  Scenario.t
(** One very large coalition for object-sharded scaling runs: [objects]
    mobile objects in team-closed blocks of [block] (default 8) — each
    block joins its own team, so partitioning yields [objects / block]
    independently schedulable components — with [checks_per_object]
    (default 2) access checks per object interleaved across the
    population.  Programs are drawn from a small shared pool, and no
    fault plan is attached. *)

val coalitions :
  ?servers:string list ->
  ?resources:string list ->
  ?objects:int ->
  ?events:int ->
  ?teams:bool ->
  ?faults:bool ->
  salt:int ->
  count:int ->
  int ->
  Scenario.t array
(** [coalitions ~salt ~count seed] — [count] independent coalitions;
    coalition [i] is generated from [Random.State.make [|salt; seed;
    i|]], so a workload is reproducible from [(salt, seed, count)] and
    growing [count] never changes existing coalitions. *)
