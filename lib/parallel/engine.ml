let sequential ?mode scenarios = Array.map (Scenario.run ?mode) scenarios

(* Round-robin coalitions across shards.  Each coalition is a closed
   world (own policy, own system), so any fixed assignment is sound;
   round-robin is deterministic and keeps the merge trivial — results
   land back in coalition order, so the concatenation of traces is
   byte-identical to the sequential run's. *)
let sharded ?mode ~shards scenarios =
  if shards < 1 then invalid_arg "Engine.sharded: shards must be >= 1";
  let n = Array.length scenarios in
  if n = 0 then [||]
  else begin
    let shard_count = min shards n in
    let buckets = Array.make shard_count [] in
    for i = n - 1 downto 0 do
      buckets.(i mod shard_count) <- i :: buckets.(i mod shard_count)
    done;
    let tasks =
      Array.map
        (fun indices () ->
          List.map (fun i -> (i, Scenario.run ?mode scenarios.(i))) indices)
        buckets
    in
    let results = Backend.parallel tasks in
    let out = Array.make n None in
    Array.iter (List.iter (fun (i, o) -> out.(i) <- Some o)) results;
    Array.map (function Some o -> o | None -> assert false) out
  end

let object_sharded ?mode ~shards sc =
  if shards < 1 then invalid_arg "Engine.object_sharded: shards must be >= 1";
  let partition = Partition.assign ~shards sc in
  let base = Scenario.system ?mode sc in
  (* replicas are built on the calling domain; spawned domains only ever
     touch their own replica (plus read-only scenario data) *)
  let replicas = Array.init shards (fun _ -> Coordinated.System.clone base) in
  let tasks =
    Array.init shards (fun s () ->
        Scenario.replay ~control:replicas.(s)
          ~owns:(fun id -> Partition.shard_of partition id = s)
          sc)
  in
  let slices = Backend.parallel tasks in
  let trace =
    Obs.Merge.by_index
      (Array.map
         (fun (sl : Scenario.slice) ->
           List.map (fun (st : Scenario.step) -> (st.index, st.trace)) sl.steps)
         slices)
  in
  let verdicts =
    Array.to_list slices
    |> List.concat_map (fun (sl : Scenario.slice) ->
           List.filter_map
             (fun (st : Scenario.step) ->
               Option.map (fun v -> (st.index, v)) st.verdict)
             sl.steps)
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> List.map snd
  in
  (* The canonical audit log is rebuilt by replaying the merged trace
     through a fresh log sink — same mechanism the live system uses, so
     rendering and lifetime counters come out byte-identical to the
     sequential run's. *)
  let log = Coordinated.Audit_log.create () in
  let sink = Coordinated.Audit_log.sink log in
  List.iter (Obs.Sink.handle sink) trace;
  {
    Scenario.verdicts;
    granted = Coordinated.Audit_log.granted_count log;
    denied = Coordinated.Audit_log.denied_count log;
    log = Format.asprintf "%a" Coordinated.Audit_log.pp log;
    trace;
  }

let first_list_diff expected actual =
  let rec go i = function
    | [], [] -> None
    | e :: _, [] -> Some (Printf.sprintf "index %d: %S vs <missing>" i e)
    | [], a :: _ -> Some (Printf.sprintf "index %d: <missing> vs %S" i a)
    | e :: es, a :: as_ ->
        if String.equal e a then go (i + 1) (es, as_)
        else Some (Printf.sprintf "index %d: %S vs %S" i e a)
  in
  go 0 (expected, actual)

let diff ~(expected : Scenario.outcome) ~(actual : Scenario.outcome) =
  if expected.verdicts <> actual.verdicts then
    let detail =
      match first_list_diff expected.verdicts actual.verdicts with
      | Some d -> d
      | None -> "order"
    in
    Some (Printf.sprintf "verdicts: %s" detail)
  else if expected.granted <> actual.granted then
    Some
      (Printf.sprintf "granted counter: %d vs %d" expected.granted
         actual.granted)
  else if expected.denied <> actual.denied then
    Some
      (Printf.sprintf "denied counter: %d vs %d" expected.denied actual.denied)
  else if not (String.equal expected.log actual.log) then
    Some "audit log rendering"
  else if
    not
      (String.equal
         (Obs.Export.to_string expected.trace)
         (Obs.Export.to_string actual.trace))
  then Some "merged trace bytes"
  else None

type report = {
  coalitions : int;
  checks : int;
  shards : int;
  domains : bool;
  divergences : (int * string) list;
}

let pp_report ppf r =
  Format.fprintf ppf
    "conformance: %d coalition%s, %d checks, %d shard%s (%s backend): %s"
    r.coalitions
    (if r.coalitions = 1 then "" else "s")
    r.checks r.shards
    (if r.shards = 1 then "" else "s")
    (if r.domains then "domains" else "single")
    (match r.divergences with
    | [] -> "OK"
    | ds ->
        String.concat "; "
          (List.map
             (fun (i, d) -> Printf.sprintf "coalition %d diverged on %s" i d)
             ds))

let verify ?mode ~shards scenarios =
  let oracle = sequential ?mode scenarios in
  let coalition_level = sharded ?mode ~shards scenarios in
  let divergences = ref [] in
  Array.iteri
    (fun i expected ->
      (match diff ~expected ~actual:coalition_level.(i) with
      | Some d -> divergences := (i, "coalition-sharded " ^ d) :: !divergences
      | None -> ());
      match
        diff ~expected ~actual:(object_sharded ?mode ~shards scenarios.(i))
      with
      | Some d -> divergences := (i, "object-sharded " ^ d) :: !divergences
      | None -> ())
    oracle;
  {
    coalitions = Array.length scenarios;
    checks = Array.fold_left (fun acc sc -> acc + Scenario.checks sc) 0 scenarios;
    shards;
    domains = Backend.domains;
    divergences = List.rev !divergences;
  }
