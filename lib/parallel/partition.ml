(* Team-closed partitioning of one coalition's objects.

   Two objects may be decided on different shards only if no decision
   about one can ever read the other's state.  The only cross-object
   coupling in the model is team membership (Team-scope bindings read
   companions' proof stores, and cache stamps read teammates' history
   epochs), so the sound unit of distribution is the connected
   component of the "ever shares a team" relation over the event
   stream.  Everything here is deterministic: component identity comes
   from union-find over the scenario data, component order from first
   object appearance, and shard assignment from a greedy
   size-descending bin pack with lowest-index tie-breaks. *)

let find parent x =
  let rec go x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p ->
        let root = go p in
        if not (String.equal root p) then Hashtbl.replace parent x root;
        root
  in
  go x

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if not (String.equal ra rb) then Hashtbl.replace parent ra rb

(* team nodes live in a namespace no object id can collide with *)
let team_node team = "\x00team:" ^ team

let components (sc : Scenario.t) =
  let parent = Hashtbl.create 16 in
  List.iter
    (function
      | Scenario.Join (id, team) -> union parent id (team_node team)
      | _ -> ())
    sc.events;
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (o : Scenario.obj) ->
      let root = find parent o.id in
      (match Hashtbl.find_opt groups root with
      | None ->
          order := root :: !order;
          Hashtbl.replace groups root [ o.id ]
      | Some members -> Hashtbl.replace groups root (o.id :: members)))
    sc.objects;
  List.rev_map (fun root -> List.rev (Hashtbl.find groups root)) !order

type t = { shard_of : (string, int) Hashtbl.t; shards : int; loads : int array }

let shards t = t.shards
let loads t = Array.copy t.loads

let shard_of t id =
  match Hashtbl.find_opt t.shard_of id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Partition.shard_of: unknown object %S" id)

let assign ~shards sc =
  if shards < 1 then invalid_arg "Partition.assign: shards must be >= 1";
  let comps = components sc in
  (* largest first; stable sort keeps first-appearance order on ties *)
  let sized = List.stable_sort
      (fun a b -> compare (List.length b) (List.length a))
      comps
  in
  let loads = Array.make shards 0 in
  let shard_of = Hashtbl.create 16 in
  List.iter
    (fun members ->
      let target = ref 0 in
      Array.iteri (fun s load -> if load < loads.(!target) then target := s) loads;
      let s = !target in
      loads.(s) <- loads.(s) + List.length members;
      List.iter (fun id -> Hashtbl.replace shard_of id s) members)
    sized;
  { shard_of; shards; loads }
