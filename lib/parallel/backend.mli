(** Execution backend for shard fan-out.

    Two build-time implementations share this interface (selected by a
    dune rule on the compiler version):

    - [backend_domains.ml5] — OCaml ≥ 5.0: each task runs on its own
      {!Domain}, giving real multicore parallelism;
    - [backend_single.ml414] — OCaml 4.14: tasks run sequentially on
      the calling thread (the single-shard fallback).

    The engine's partition and merge logic sits entirely above this
    module and treats [parallel] as a black box, so shard results —
    verdicts, audit statistics, merged traces — are identical under
    both backends; only wall-clock behaviour differs. *)

val domains : bool
(** [true] iff tasks really run on separate OCaml 5 domains. *)

val recommended : unit -> int
(** A sensible default shard count: the runtime's recommended domain
    count on OCaml 5, [1] under the sequential fallback. *)

val parallel : (unit -> 'a) array -> 'a array
(** Run every task and return their results in task order.  On the
    domains backend, task [i < n-1] runs on a fresh domain and the last
    task runs on the calling domain; every spawned domain is joined
    before the call returns, even when a task raises (the first
    exception, in task order, is then re-raised). *)
