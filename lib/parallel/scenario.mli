(** A coalition as pure data, and its deterministic interpreter.

    A scenario fixes everything a run needs — the RBAC population,
    grants and assignments, the binding store, the mobile objects with
    their SRAL programs, a timed event stream (event [i] executes at
    ℚ time [i+1]) and an optional fault plan — with no hidden state, so
    the same scenario can be interpreted on any shard of any engine and
    always produce the same verdicts, audit entries and trace.

    This is the unit of work of the parallel engine: coalition-level
    sharding distributes whole scenarios across domains; object-level
    sharding replays {e one} scenario on several domains, each owning a
    team-closed subset of the objects (see {!Partition} and
    {!Engine}). *)

type obj = {
  id : string;
  owner : string;
  roles : string list;  (** activated at session creation, best effort *)
  program : Sral.Ast.t;
}

type event =
  | Arrive of string * string  (** object, server *)
  | Check of string * Sral.Access.t
  | Activate of string * string  (** object, role *)
  | Deactivate of string * string
  | Join of string * string  (** object, team *)
  | Refresh of string
  | Add_binding of Coordinated.Perm_binding.t

type t = {
  users : string list;
  roles : string list;
  grants : (string * Rbac.Perm.t) list;  (** role, permission *)
  assignments : (string * string) list;  (** user, role *)
  bindings : Coordinated.Perm_binding.t list;
  objects : obj list;
  events : event list;
  plan : Fault.Plan.t option;
      (** crash windows applied fail-closed: a [Check] against a downed
          server is denied [Server_unavailable] (and audited), an
          [Arrive] at one is dropped with a [Fault_injected] trace
          event — all decided from plan data alone, so faulty runs
          replay identically under any sharding. *)
}

val subject : event -> string option
(** The object the event concerns ([None] for [Add_binding]). *)

val broadcast : event -> bool
(** Must every shard replay this event regardless of ownership?
    [true] for [Add_binding] (shared binding store) and [Join] (team
    rosters and the teams version that verdict-cache stamps read).
    Broadcast events emit nothing, so replaying them everywhere leaves
    the merged trace untouched. *)

val checks : t -> int
(** Number of [Check] events — the request count throughput is
    measured over. *)

val policy_of : t -> Rbac.Policy.t

val system : ?mode:Coordinated.System.decision_mode -> t -> Coordinated.System.t
(** A fresh system loaded with the scenario's policy and bindings (no
    events replayed yet).  Shards replica this via
    {!Coordinated.System.clone}. *)

type step = {
  index : int;  (** position in {!t.events} *)
  verdict : string option;  (** rendered verdict, for [Check] steps *)
  trace : Obs.Trace.event list;  (** bus events this step emitted *)
}

type slice = {
  steps : step list;  (** owned steps, ascending in [index] *)
  granted : int;  (** this replica's lifetime audit counters *)
  denied : int;
  log : string;  (** this replica's rendered audit log *)
}

val replay :
  control:Coordinated.System.t -> owns:(string -> bool) -> t -> slice
(** Replay the event stream against [control], executing only events
    whose {!subject} the shard [owns] (plus every {!broadcast} event),
    and capture each executed step's bus emissions as a chunk tagged
    with the step index.  With [owns = fun _ -> true] this is exactly
    the sequential run.  Soundness for partial ownership requires the
    ownership predicate to be team-closed — objects that ever share a
    team must have the same owner (see {!Partition.assign}). *)

type outcome = {
  verdicts : string list;  (** rendered, in event order *)
  granted : int;
  denied : int;
  log : string;  (** rendered audit log *)
  trace : Obs.Trace.event list;  (** full bus trace, in emission order *)
}

val run : ?mode:Coordinated.System.decision_mode -> t -> outcome
(** Interpret the whole scenario sequentially on a fresh system — the
    oracle every sharded run is compared against. *)
