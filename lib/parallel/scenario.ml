module Q = Temporal.Q

type obj = {
  id : string;
  owner : string;
  roles : string list;
  program : Sral.Ast.t;
}

type event =
  | Arrive of string * string
  | Check of string * Sral.Access.t
  | Activate of string * string
  | Deactivate of string * string
  | Join of string * string
  | Refresh of string
  | Add_binding of Coordinated.Perm_binding.t

type t = {
  users : string list;
  roles : string list;
  grants : (string * Rbac.Perm.t) list;
  assignments : (string * string) list;
  bindings : Coordinated.Perm_binding.t list;
  objects : obj list;
  events : event list;
  plan : Fault.Plan.t option;
}

let subject = function
  | Arrive (id, _)
  | Check (id, _)
  | Activate (id, _)
  | Deactivate (id, _)
  | Join (id, _)
  | Refresh id ->
      Some id
  | Add_binding _ -> None

(* Events every shard must replay regardless of ownership: they mutate
   state that decisions on *any* object may consult.  Add_binding grows
   the shared binding store; Join keeps the team rosters (and
   teams_version, which verdict-cache stamps read) identical on every
   shard.  Both emit nothing on the bus, so replaying them everywhere
   cannot perturb the merged trace. *)
let broadcast = function Add_binding _ | Join _ -> true | _ -> false

let checks t =
  List.length (List.filter (function Check _ -> true | _ -> false) t.events)

let policy_of t =
  let p = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user p) t.users;
  List.iter (Rbac.Policy.add_role p) t.roles;
  List.iter (fun (r, perm) -> Rbac.Policy.grant p r perm) t.grants;
  List.iter (fun (u, r) -> Rbac.Policy.assign_user p u r) t.assignments;
  p

let system ?mode t =
  Coordinated.System.create ?mode ~bindings:t.bindings (policy_of t)

type step = {
  index : int;
  verdict : string option;
  trace : Obs.Trace.event list;
}

type slice = { steps : step list; granted : int; denied : int; log : string }

(* First [n] elements of a head-reversed accumulator, back in emission
   order — the trace chunk one step produced. *)
let chunk_of n rev_acc =
  let rec go n acc = function
    | _ when n = 0 -> acc
    | e :: rest -> go (n - 1) (e :: acc) rest
    | [] -> acc
  in
  go n [] rev_acc

let replay ~control ~owns t =
  let bus = Coordinated.System.bus control in
  let captured = ref [] and captured_n = ref 0 in
  Obs.Bus.subscribe bus
    (Obs.Sink.make ~name:"shard-capture" (fun ev ->
         captured := ev :: !captured;
         incr captured_n));
  let sessions = Hashtbl.create 8 in
  (* indexed once per replay — big coalitions make the [List.find]
     this replaces quadratic over the event stream.  First binding
     wins, like [List.find] did, should an id ever repeat. *)
  let by_id = Hashtbl.create (List.length t.objects) in
  List.iter
    (fun o -> if not (Hashtbl.mem by_id o.id) then Hashtbl.add by_id o.id o)
    t.objects;
  let find_obj id = Hashtbl.find by_id id in
  let session_of id =
    match Hashtbl.find_opt sessions id with
    | Some s -> s
    | None ->
        let o = find_obj id in
        let s = Coordinated.System.new_session control ~user:o.owner in
        List.iter
          (fun r ->
            try Rbac.Session.activate s r with
            | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _ ->
                ())
          o.roles;
        Hashtbl.add sessions id s;
        s
  in
  let down server time =
    match t.plan with
    | None -> false
    | Some plan -> Fault.Plan.server_down plan ~server ~time
  in
  let steps = ref [] in
  List.iteri
    (fun index event ->
      let time = Q.of_int (index + 1) in
      let before = !captured_n in
      let verdict = ref None in
      let owned =
        match subject event with Some id -> owns id | None -> true
      in
      (match event with
      | Add_binding b -> Coordinated.System.add_binding control b
      | Join (id, team) ->
          Coordinated.System.join_team control ~object_id:id ~team
      | Arrive (id, server) when owned ->
          (* a crashed server never records the arrival; the trace
             carries the injected fault instead, deterministically *)
          if down server time then
            Obs.Bus.emit bus
              (Obs.Trace.Fault_injected
                 {
                   time;
                   agent = id;
                   fault = Obs.Trace.Server_unreachable;
                   target = server;
                 })
          else Coordinated.System.arrive control ~object_id:id ~server ~time
      | Activate (id, r) when owned -> (
          try Rbac.Session.activate (session_of id) r with
          | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _ -> ()
          )
      | Deactivate (id, r) when owned ->
          Rbac.Session.deactivate (session_of id) r
      | Refresh id when owned ->
          Coordinated.System.refresh control ~session:(session_of id)
            ~object_id:id ~program:(find_obj id).program ~time
      | Check (id, access) when owned ->
          let v =
            let server = access.Sral.Access.server in
            if down server time then begin
              (* fail closed, exactly as the Naplet security manager
                 does: mint the denial and publish it on the bus so the
                 audit log records it *)
              let v =
                Coordinated.Decision.Denied
                  (Coordinated.Decision.Server_unavailable server)
              in
              Obs.Bus.emit bus
                (Obs.Trace.Decision { time; object_id = id; access; verdict = v });
              v
            end
            else
              Coordinated.System.check control ~session:(session_of id)
                ~object_id:id ~program:(find_obj id).program ~time access
          in
          verdict :=
            Some (Format.asprintf "%a" Coordinated.Decision.pp_verdict v)
      | Arrive _ | Activate _ | Deactivate _ | Refresh _ | Check _ -> ());
      if owned then
        steps :=
          {
            index;
            verdict = !verdict;
            trace = chunk_of (!captured_n - before) !captured;
          }
          :: !steps)
    t.events;
  let log = Coordinated.System.log control in
  {
    steps = List.rev !steps;
    granted = Coordinated.Audit_log.granted_count log;
    denied = Coordinated.Audit_log.denied_count log;
    log = Format.asprintf "%a" Coordinated.Audit_log.pp log;
  }

type outcome = {
  verdicts : string list;
  granted : int;
  denied : int;
  log : string;
  trace : Obs.Trace.event list;
}

let run ?mode t =
  let control = system ?mode t in
  let slice = replay ~control ~owns:(fun _ -> true) t in
  {
    verdicts = List.filter_map (fun s -> s.verdict) slice.steps;
    granted = slice.granted;
    denied = slice.denied;
    log = slice.log;
    trace = List.concat_map (fun (s : step) -> s.trace) slice.steps;
  }
