(** The sharded decision engine, and the differential conformance
    harness that keeps it honest.

    Two sharding strategies over {!Backend.parallel} (OCaml 5 domains
    when available, sequential fallback on 4.14):

    - {!sharded} distributes whole coalitions round-robin — coalitions
      are closed worlds, so this is embarrassingly parallel and the
      merge is just coalition order;
    - {!object_sharded} splits {e one} coalition's mobile objects across
      replicas of its system, each shard owning a team-closed subset
      (see {!Partition}) and replaying broadcast events locally; the
      per-shard trace chunks are merged back into canonical sequential
      order by step index ({!Obs.Merge.by_index}) and the canonical
      audit log is rebuilt from the merged trace.

    Both must be {e observationally identical} to the sequential
    interpreter — same verdicts, same lifetime audit counters, same
    rendered audit log, byte-for-byte the same exported trace.  That is
    what {!verify} checks, and what [test/test_parallel.ml] enforces
    over hundreds of generated coalitions. *)

val sequential :
  ?mode:Coordinated.System.decision_mode ->
  Scenario.t array ->
  Scenario.outcome array
(** The oracle: each coalition interpreted by {!Scenario.run}. *)

val sharded :
  ?mode:Coordinated.System.decision_mode ->
  shards:int ->
  Scenario.t array ->
  Scenario.outcome array
(** Coalition-level sharding.  Outcomes are returned in coalition
    order, so they compare index-wise against {!sequential}'s.
    @raise Invalid_argument if [shards < 1]. *)

val object_sharded :
  ?mode:Coordinated.System.decision_mode ->
  shards:int ->
  Scenario.t ->
  Scenario.outcome
(** Object-level sharding of a single coalition.
    @raise Invalid_argument if [shards < 1]. *)

val diff :
  expected:Scenario.outcome -> actual:Scenario.outcome -> string option
(** First observable divergence between two outcomes ([None] when they
    are identical): verdict sequence, then lifetime granted/denied
    counters, then audit-log rendering, then exported trace bytes. *)

type report = {
  coalitions : int;
  checks : int;  (** total [Check] events across the workload *)
  shards : int;
  domains : bool;  (** whether the backend really runs domains *)
  divergences : (int * string) list;
      (** (coalition index, description); empty = conformant *)
}

val pp_report : Format.formatter -> report -> unit

val verify :
  ?mode:Coordinated.System.decision_mode ->
  shards:int ->
  Scenario.t array ->
  report
(** The differential conformance harness: runs the sequential oracle,
    the coalition-sharded engine over the whole workload {e and} the
    object-sharded engine over every coalition, and reports every
    divergence {!diff} finds. *)
