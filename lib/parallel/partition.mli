(** Team-closed partitioning of one coalition's objects across shards.

    Objects that ever share a team are coupled: Team-scope bindings
    fold over companions' proof stores, and the indexed path's cache
    stamps read teammates' history epochs.  Splitting such objects
    across shards would let a decision read state owned by another
    domain.  The partition therefore distributes whole {e connected
    components} of the "ever shares a team" relation (computed from the
    scenario's [Join] events by union-find), never individual objects.

    All of it is deterministic — same scenario and shard count, same
    assignment — which the byte-level conformance of merged traces
    depends on. *)

val components : Scenario.t -> string list list
(** Connected components of the share-a-team relation, each listed in
    object-declaration order; components ordered by their first
    object's appearance in {!Scenario.t.objects}. *)

type t

val assign : shards:int -> Scenario.t -> t
(** Greedy bin-pack: components sorted by size (descending, stable) are
    assigned to the least-loaded shard, lowest index on ties.
    @raise Invalid_argument if [shards < 1]. *)

val shard_of : t -> string -> int
(** The shard owning an object.
    @raise Invalid_argument on an object the scenario doesn't declare. *)

val shards : t -> int
val loads : t -> int array
(** Objects per shard. *)
