module Q = Temporal.Q

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let default_servers = [ "s1"; "s2" ]
let default_resources = [ "r1"; "r2"; "r3" ]
let users = [ "u1"; "u2" ]
let roles = [ "ra"; "rb"; "rc" ]
let team_names = [ "crew"; "b-team" ]

(* The seed repo's fuzz binding mix: a Performed-scope cardinality cap,
   two duration budgets under both base-time schemes, and a Team-scope
   execute cap. *)
let base_bindings ~resources rng =
  List.filteri
    (fun _ _ -> Random.State.bool rng)
    [
      Coordinated.Perm_binding.make
        ~spatial:
          (Srac.Formula.at_most
             (1 + Random.State.int rng 4)
             (Srac.Selector.Resource (pick rng resources)))
        ~spatial_scope:Coordinated.Perm_binding.Performed
        (Rbac.Perm.make ~operation:"*" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~dur:(Q.of_int (2 + Random.State.int rng 10))
        (Rbac.Perm.make ~operation:"read" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~dur:(Q.of_int (1 + Random.State.int rng 5))
        ~scheme:Temporal.Validity.Per_server
        (Rbac.Perm.make ~operation:"write" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~spatial:
          (Srac.Formula.at_most
             (2 + Random.State.int rng 4)
             (Srac.Selector.Op Sral.Access.Execute))
        ~spatial_scope:Coordinated.Perm_binding.Performed
        ~proof_scope:Coordinated.Perm_binding.Team
        (Rbac.Perm.make ~operation:"execute" ~target:"*@*");
    ]

(* plus program-scope and Both-scope shapes so the verdict cache's
   memo reuse and team stamps get exercised *)
let bindings ~resources rng =
  base_bindings ~resources rng
  @ List.filteri
      (fun _ _ -> Random.State.bool rng)
      [
        Coordinated.Perm_binding.make
          ~spatial:
            (Srac.Formula.at_most
               (1 + Random.State.int rng 3)
               (Srac.Selector.Resource (pick rng resources)))
          ~spatial_modality:
            (if Random.State.bool rng then Srac.Program_sat.Exists
             else Srac.Program_sat.Forall)
          ~spatial_scope:Coordinated.Perm_binding.Program
          (Rbac.Perm.make ~operation:"read" ~target:"*@*");
        Coordinated.Perm_binding.make
          ~spatial:
            (Srac.Formula.at_most
               (1 + Random.State.int rng 4)
               (Srac.Selector.Op Sral.Access.Write))
          ~spatial_scope:Coordinated.Perm_binding.Both
          ~proof_scope:Coordinated.Perm_binding.Team
          ~dur:(Q.of_int (3 + Random.State.int rng 8))
          (Rbac.Perm.make ~operation:"write" ~target:"*@*");
      ]

let access ~resources ~servers rng =
  Sral.Generate.access
    ~ops:[ Sral.Access.Read; Sral.Access.Write; Sral.Access.Execute ]
    ~resources ~servers rng

let grants ~resources ~servers rng =
  List.concat_map
    (fun role ->
      List.filter_map
        (fun op ->
          if Random.State.bool rng then
            let target =
              match Random.State.int rng 3 with
              | 0 -> "*@*"
              | 1 -> pick rng resources ^ "@*"
              | _ -> pick rng resources ^ "@" ^ pick rng servers
            in
            Some (role, Rbac.Perm.make ~operation:op ~target)
          else None)
        [ "read"; "write"; "execute" ])
    roles

let assignments rng =
  List.concat_map
    (fun u ->
      List.filter_map
        (fun r -> if Random.State.bool rng then Some (u, r) else None)
        roles)
    users

let objects ~count ~resources ~servers rng =
  List.init count (fun i ->
      {
        Scenario.id = Printf.sprintf "o%d" (i + 1);
        owner = pick rng users;
        roles = List.filter (fun _ -> Random.State.bool rng) roles;
        program =
          Sral.Generate.program ~allow_io:false ~resources ~servers
            ~size:(3 + Random.State.int rng 6)
            rng;
      })

let scenario ?(servers = default_servers) ?(resources = default_resources)
    ?objects:obj_count ?events:event_count ?(teams = true) ?(faults = false)
    rng =
  let obj_count =
    match obj_count with Some n -> n | None -> 2 + Random.State.int rng 3
  in
  let objs = objects ~count:obj_count ~resources ~servers rng in
  let extra = bindings ~resources rng in
  let obj () = (pick rng objs).Scenario.id in
  let event_count =
    match event_count with Some n -> n | None -> 15 + Random.State.int rng 25
  in
  let events =
    (* everyone arrives somewhere first, then a random event stream *)
    List.map
      (fun (o : Scenario.obj) -> Scenario.Arrive (o.id, pick rng servers))
      objs
    @ List.init event_count (fun _ ->
          match Random.State.int rng 12 with
          | 0 | 1 -> Scenario.Arrive (obj (), pick rng servers)
          | 2 when teams -> Scenario.Join (obj (), pick rng team_names)
          | 3 -> Scenario.Activate (obj (), pick rng roles)
          | 4 -> Scenario.Deactivate (obj (), pick rng roles)
          | 5 when extra <> [] -> Scenario.Add_binding (pick rng extra)
          | 2 | 6 -> Scenario.Refresh (obj ())
          | _ -> Scenario.Check (obj (), access ~resources ~servers rng))
  in
  let plan =
    if not faults then None
    else
      let name = pick rng [ "light"; "moderate"; "heavy" ] in
      let horizon = List.length events + 2 in
      Some
        (Fault.Plan.of_name name
           ~seed:(Random.State.int rng 1_000_000)
           ~servers ~horizon)
  in
  {
    Scenario.users;
    roles;
    grants = grants ~resources ~servers rng;
    assignments = assignments rng;
    bindings = bindings ~resources rng;
    objects = objs;
    events;
    plan;
  }

(* One very large coalition in team-closed blocks: object [i] joins
   team "blk<i/block>", so {!Partition.assign} recovers components of
   exactly [block] objects and object-level sharding has [objects /
   block] units to balance.  Programs come from a small shared pool
   (the verdict cache's memo path sees real reuse, and generation
   stays linear); every per-object lookup below is array-indexed, so
   building 10^4..10^5 objects is cheap. *)
let big_coalition ?(servers = default_servers)
    ?(resources = default_resources) ?(block = 8) ?(checks_per_object = 2)
    ~objects:count rng =
  let pool =
    Array.init 32 (fun _ ->
        Sral.Generate.program ~allow_io:false ~resources ~servers
          ~size:(3 + Random.State.int rng 6)
          rng)
  in
  let objs =
    Array.init count (fun i ->
        {
          Scenario.id = Printf.sprintf "o%d" (i + 1);
          owner = pick rng users;
          roles = List.filter (fun _ -> Random.State.bool rng) roles;
          program = pool.(Random.State.int rng (Array.length pool));
        })
  in
  let arrivals =
    List.init count (fun i ->
        Scenario.Arrive (objs.(i).Scenario.id, pick rng servers))
  in
  let joins =
    List.init count (fun i ->
        Scenario.Join
          (objs.(i).Scenario.id, Printf.sprintf "blk%d" (i / block)))
  in
  (* checks interleave across the population round by round, so no
     shard's work clusters at one end of the event stream *)
  let checks =
    List.concat
      (List.init checks_per_object (fun _ ->
           List.init count (fun i ->
               Scenario.Check
                 (objs.(i).Scenario.id, access ~resources ~servers rng))))
  in
  {
    Scenario.users;
    roles;
    grants = grants ~resources ~servers rng;
    assignments = assignments rng;
    bindings = bindings ~resources rng;
    objects = Array.to_list objs;
    events = arrivals @ joins @ checks;
    plan = None;
  }

let coalitions ?servers ?resources ?objects ?events ?teams ?faults ~salt ~count
    seed =
  Array.init count (fun i ->
      let rng = Random.State.make [| salt; seed; i |] in
      scenario ?servers ?resources ?objects ?events ?teams ?faults rng)
