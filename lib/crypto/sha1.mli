(** SHA-1 (FIPS 180-1), implemented from scratch.

    The Section 6 integrity-audit scenario has the mobile code hash
    software modules with "some hash algorithm, e.g. SHA-1"; this is
    that algorithm (verified against the FIPS test vectors in the
    suite).  SHA-1 is used here as the paper used it — an integrity
    fingerprint inside a trusted coalition — not as a
    collision-resistant primitive for new designs. *)

type digest
(** 20 bytes. *)

val digest_string : string -> digest
val digest_bytes : bytes -> digest

val to_hex : digest -> string
(** 40 lowercase hex characters. *)

val to_raw : digest -> string
(** The 20 raw bytes. *)

val equal : digest -> digest -> bool
val pp : Format.formatter -> digest -> unit

val hex_of_string : string -> string
(** [to_hex (digest_string s)]. *)
