type digest = string (* 20 raw bytes *)

(* 32-bit arithmetic on native ints, masked. *)
let mask = 0xFFFFFFFF
let ( &&& ) a b = a land b
let ( ||| ) a b = a lor b
let ( ^^^ ) a b = a lxor b
let add32 a b = (a + b) &&& mask
let not32 a = lnot a &&& mask
let rotl32 x n = ((x lsl n) ||| (x lsr (32 - n))) &&& mask

let digest_bytes msg =
  let len = Bytes.length msg in
  (* padding: 0x80, zeros, 64-bit big-endian bit length *)
  let bit_len = Int64.of_int (len * 8) in
  let padded_len =
    let rem = (len + 1 + 8) mod 64 in
    len + 1 + 8 + if rem = 0 then 0 else 64 - rem
  in
  let buf = Bytes.make padded_len '\000' in
  Bytes.blit msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  for i = 0 to 7 do
    Bytes.set buf
      (padded_len - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * i)) 0xFFL)))
  done;
  let h0 = ref 0x67452301
  and h1 = ref 0xEFCDAB89
  and h2 = ref 0x98BADCFE
  and h3 = ref 0x10325476
  and h4 = ref 0xC3D2E1F0 in
  let w = Array.make 80 0 in
  let blocks = padded_len / 64 in
  for block = 0 to blocks - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let b i = Char.code (Bytes.get buf (base + (4 * t) + i)) in
      w.(t) <- (b 0 lsl 24) ||| (b 1 lsl 16) ||| (b 2 lsl 8) ||| b 3
    done;
    for t = 16 to 79 do
      w.(t) <- rotl32 (w.(t - 3) ^^^ w.(t - 8) ^^^ w.(t - 14) ^^^ w.(t - 16)) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for t = 0 to 79 do
      let f, k =
        if t < 20 then ((!b &&& !c) ||| (not32 !b &&& !d), 0x5A827999)
        else if t < 40 then (!b ^^^ !c ^^^ !d, 0x6ED9EBA1)
        else if t < 60 then
          ((!b &&& !c) ||| (!b &&& !d) ||| (!c &&& !d), 0x8F1BBCDC)
        else (!b ^^^ !c ^^^ !d, 0xCA62C1D6)
      in
      let temp = add32 (add32 (add32 (add32 (rotl32 !a 5) f) !e) w.(t)) k in
      e := !d;
      d := !c;
      c := rotl32 !b 30;
      b := !a;
      a := temp
    done;
    h0 := add32 !h0 !a;
    h1 := add32 !h1 !b;
    h2 := add32 !h2 !c;
    h3 := add32 !h3 !d;
    h4 := add32 !h4 !e
  done;
  let out = Bytes.create 20 in
  let put i h =
    Bytes.set out (4 * i) (Char.chr ((h lsr 24) &&& 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((h lsr 16) &&& 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((h lsr 8) &&& 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (h &&& 0xFF))
  in
  put 0 !h0;
  put 1 !h1;
  put 2 !h2;
  put 3 !h3;
  put 4 !h4;
  Bytes.to_string out

let digest_string s = digest_bytes (Bytes.of_string s)

let to_hex d =
  let buf = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let to_raw d = d
let equal = String.equal
let pp ppf d = Format.pp_print_string ppf (to_hex d)
let hex_of_string s = to_hex (digest_string s)
