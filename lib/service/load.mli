(** The load harness: drive the server core at a controlled rate and
    measure what it actually sustains.

    Requests are pre-encoded [Check] frames (encoding cost is paid up
    front, not on the measured path) spread round-robin over several
    connections of an in-process {!Server} — no socket, so the numbers
    bound the decision service itself, not the kernel's.

    Two disciplines:
    - {e closed} loop: one request in flight; per-request service
      latency, the lower bound;
    - {e open} loop: request [i] is {e due} at [i/rate] seconds after
      start, due requests are fed in batches, and latency is measured
      from the {e due} time, not the send time — so queueing delay
      under saturation is charged to the server, the way an arrival
      process (and the coordinated-omission literature) demands.
      Requests beyond the server's per-feed capacity are shed and
      counted, never silently retried.

    Latencies land in an {!Obs.Stats.histogram}; quote them with
    {!Obs.Stats.percentile}. *)

type result = {
  offered : float;  (** requests/s asked for; [0.] means closed loop *)
  requests : int;  (** requests sent *)
  completed : int;  (** executed by the server (any non-shed reply) *)
  shed : int;
  elapsed_s : float;
  achieved : float;  (** completed / elapsed *)
  latency : Obs.Stats.histogram;  (** ns from due time to reply *)
}

val closed :
  ?conns:int ->
  ?seed:int ->
  base:Coordinated.System.t ->
  requests:int ->
  unit ->
  result

val open_loop :
  ?conns:int ->
  ?seed:int ->
  ?queue:int ->
  base:Coordinated.System.t ->
  requests:int ->
  rate:float ->
  unit ->
  result
(** [queue] is the server's per-feed execution capacity (default
    {!Server.default_config}). *)

val sweep :
  ?conns:int ->
  ?seed:int ->
  ?queue:int ->
  base:Coordinated.System.t ->
  requests:int ->
  rates:float list ->
  unit ->
  result list
(** One {!open_loop} run per offered rate, against a fresh server
    each — the saturation sweep E20 reports. *)

val pp_row : Format.formatter -> result -> unit
(** One aligned table row: offered, achieved, completed, shed,
    p50/p95/p99 in µs. *)

val pp_header : Format.formatter -> unit -> unit
