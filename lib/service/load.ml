type result = {
  offered : float;
  requests : int;
  completed : int;
  shed : int;
  elapsed_s : float;
  achieved : float;
  latency : Obs.Stats.histogram;
}

(* Pre-encoded Check frames round-robin over [conns] connections, plus
   the registration preamble each connection needs first. *)
let prepare ~conns ~seed ~requests server =
  let script = Script.generate ~conns ~requests:0 ~seed () in
  let ids = Array.init conns (fun _ -> Server.open_conn server) in
  List.iter
    (fun (e : Script.entry) ->
      ignore
        (Server.feed server ~conn:ids.(e.conn)
           (Frame.encode (Protocol.encode_request e.req))))
    script;
  let rng = Random.State.make [| 0x10ad; seed |] in
  let frames =
    Array.init requests (fun i ->
        let c = i mod conns in
        let object_id = Printf.sprintf "o%d_%d" c (Random.State.int rng 2) in
        let access =
          let r = Printf.sprintf "r%d" (1 + Random.State.int rng 3) in
          let s = Printf.sprintf "s%d" (1 + Random.State.int rng 3) in
          match Random.State.int rng 3 with
          | 0 -> Sral.Access.read r ~at:s
          | 1 -> Sral.Access.write r ~at:s
          | _ -> Sral.Access.execute r ~at:s
        in
        ( ids.(c),
          Frame.encode
            (Protocol.encode_request (Check { object_id; access })) ))
  in
  frames

(* Count a reply batch: executed (anything but Shed/Event) vs shed. *)
let count_replies bytes =
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec bytes;
  let completed = ref 0 and shed = ref 0 in
  let rec go () =
    match Frame.Decoder.next dec with
    | Ok (Some payload) ->
        (match Protocol.decode_reply payload with
        | Ok (Shed _) -> incr shed
        | Ok (Event _) -> ()
        | Ok _ -> incr completed
        | Error _ -> ());
        go ()
    | Ok None | Error _ -> ()
  in
  go ();
  (!completed, !shed)

let finish ~offered ~requests ~completed ~shed ~elapsed_s ~latency =
  {
    offered;
    requests;
    completed;
    shed;
    elapsed_s;
    achieved = (if elapsed_s > 0.0 then float_of_int completed /. elapsed_s else 0.0);
    latency;
  }

let closed ?(conns = 4) ?(seed = 1) ~base ~requests () =
  let server = Server.create ~base () in
  let frames = prepare ~conns ~seed ~requests server in
  let latency = Obs.Stats.histogram () in
  let completed = ref 0 and shed = ref 0 in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun (conn, frame) ->
      let s = Unix.gettimeofday () in
      let out = Server.feed server ~conn frame in
      let e = Unix.gettimeofday () in
      Obs.Stats.observe latency (Int64.of_float ((e -. s) *. 1e9));
      let c, d = count_replies out in
      completed := !completed + c;
      shed := !shed + d)
    frames;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  finish ~offered:0.0 ~requests ~completed:!completed ~shed:!shed ~elapsed_s
    ~latency

let open_loop ?(conns = 4) ?(seed = 1) ?queue ~base ~requests ~rate () =
  let config =
    match queue with
    | None -> Server.default_config
    | Some queue_capacity -> { Server.default_config with queue_capacity }
  in
  let server = Server.create ~config ~base () in
  let frames = prepare ~conns ~seed ~requests server in
  let latency = Obs.Stats.histogram () in
  let completed = ref 0 and shed = ref 0 in
  let t0 = Unix.gettimeofday () in
  let due i = t0 +. (float_of_int i /. rate) in
  let i = ref 0 in
  while !i < requests do
    let now = Unix.gettimeofday () in
    if due !i > now then
      (* nothing due yet: sleep up to the next arrival *)
      Unix.sleepf (min (due !i -. now) 0.01)
    else begin
      (* batch every due request, grouped per connection so shedding
         applies per feed exactly as a socket read burst would *)
      let first = !i in
      while !i < requests && due !i <= now do incr i done;
      let last = !i - 1 in
      let by_conn = Hashtbl.create conns in
      for j = first to last do
        let conn, frame = frames.(j) in
        let chunks, dues =
          match Hashtbl.find_opt by_conn conn with
          | Some entry -> entry
          | None ->
              let entry = (Buffer.create 256, ref []) in
              Hashtbl.replace by_conn conn entry;
              entry
        in
        Buffer.add_string chunks frame;
        dues := due j :: !dues
      done;
      let outs =
        Server.feed_batch server
          (Hashtbl.fold
             (fun conn (b, _) acc -> (conn, Buffer.contents b) :: acc)
             by_conn [])
      in
      let t_done = Unix.gettimeofday () in
      (* latency from *due* time: queueing under saturation is charged
         to the server (no coordinated omission).  Shed requests get no
         latency sample — they were never served; the server sheds the
         tail of each per-connection batch, so the first [c] due times
         of a batch are the executed ones. *)
      List.iter
        (fun (conn, out) ->
          let c, d = count_replies out in
          completed := !completed + c;
          shed := !shed + d;
          let _, dues = Hashtbl.find by_conn conn in
          List.iteri
            (fun k due_j ->
              if k < c then
                Obs.Stats.observe latency
                  (Int64.of_float ((t_done -. due_j) *. 1e9)))
            (List.rev !dues))
        outs
    end
  done;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  finish ~offered:rate ~requests ~completed:!completed ~shed:!shed ~elapsed_s
    ~latency

let sweep ?conns ?seed ?queue ~base ~requests ~rates () =
  List.map (fun rate -> open_loop ?conns ?seed ?queue ~base ~requests ~rate ()) rates

let us h p = Obs.Stats.percentile h p /. 1e3

let pp_header ppf () =
  Format.fprintf ppf "%12s %12s %10s %8s %10s %10s %10s" "offered/s" "achieved/s"
    "completed" "shed" "p50(us)" "p95(us)" "p99(us)"

let pp_row ppf r =
  let offered =
    if r.offered = 0.0 then "closed" else Printf.sprintf "%.0f" r.offered
  in
  Format.fprintf ppf "%12s %12.0f %10d %8d %10.1f %10.1f %10.1f" offered
    r.achieved r.completed r.shed (us r.latency 0.50) (us r.latency 0.95)
    (us r.latency 0.99)
