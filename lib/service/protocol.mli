(** The wire protocol: versioned request/reply payloads.

    One {!request} or {!reply} per {!Frame} payload.  The binary codec
    is deterministic (a value always encodes to the same bytes) and
    decoding is total: every byte string maps to [Ok v] or to a typed
    {!error} — never an exception — so a malicious peer can at worst be
    rejected.

    Encodings an operator can read instead live in the JSONL debug
    codec ({!request_to_line}/{!reply_to_line}), which reuses
    {!Obs.Export} for verdicts and trace events so service logs and
    trace exports share one JSON dialect.

    Caveat shared with {!Obs.Export}: an access whose operation is a
    {e standard} name under [Custom] (e.g. [Custom "read"]) decodes as
    the standard constructor.  No emitter in this repo produces such
    accesses. *)

val version : int
(** Wire version carried in every payload's first byte; currently 1. *)

type request =
  | Ping  (** liveness probe; answered with [Ack] *)
  | Register of {
      object_id : string;
      owner : string;
      roles : string list;  (** activated best-effort, like scenarios *)
      program : Sral.Ast.t;
    }
  | Arrive of { object_id : string; server : string }
  | Depart of { object_id : string }
      (** forget the object: its session is dropped and later requests
          naming it are rejected *)
  | Check of { object_id : string; access : Sral.Access.t }
  | Activate of { object_id : string; role : string }
  | Join of { object_id : string; team : string }
  | Subscribe
      (** stream this connection's trace events as [Event] replies *)

type reply =
  | Ack of { seq : int }
  | Verdict of { seq : int; verdict : Obs.Verdict.t }
  | Rejected of { seq : int; reason : string }
      (** the request was understood but refused (unknown object,
          unknown user, protocol violation); the connection may also
          have been closed — see {!Server} *)
  | Shed of { seq : int }
      (** dropped by overload control before execution *)
  | Event of Obs.Trace.event

type error =
  | Truncated  (** payload ended mid-field *)
  | Bad_version of int
  | Bad_tag of int
  | Malformed of string
      (** a field failed to parse (program text, ℚ, embedded JSON) or
          trailing bytes followed a complete payload *)

val describe : error -> string

val encode_request : request -> string
val decode_request : string -> (request, error) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, error) result

val request_to_line : request -> string
(** One JSON object (no newline) — the debug form. *)

val reply_to_line : reply -> string
(** One JSON object (no newline); verdicts embed
    {!Obs.Export.verdict_to_json}, events embed {!Obs.Export.to_line}. *)
