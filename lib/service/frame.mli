(** Length-prefixed framing for the wire protocol.

    A frame is a 4-byte big-endian unsigned length followed by exactly
    that many payload bytes.  Framing is the only part of the protocol
    that touches a byte stream; everything above it ({!Protocol}) works
    on complete payloads.

    The decoder is incremental and {e fail-closed}: feeding may be cut
    at any byte boundary (frames reassemble across feeds), but a length
    prefix above the configured ceiling poisons the decoder permanently
    — a malicious or corrupted peer cannot make the server allocate an
    attacker-chosen buffer, and no later bytes on that connection are
    trusted. *)

val max_frame_default : int
(** 1 MiB. *)

val encode : string -> string
(** The payload wrapped in a frame.
    @raise Invalid_argument beyond 2³²−1 bytes. *)

module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] defaults to {!max_frame_default}. *)

  val feed : t -> string -> unit
  (** Append raw bytes (any split; ignored once poisoned). *)

  val next : t -> (string option, string) result
  (** The next complete payload: [Ok (Some payload)], [Ok None] when
      more bytes are needed, or [Error msg] once poisoned (a length
      prefix exceeded [max_frame]; every later call returns the same
      error). *)

  val buffered : t -> int
  (** Unconsumed bytes currently held. *)
end
