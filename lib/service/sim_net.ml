module Q = Temporal.Q

type policy = {
  seed : int;
  base_delay : Q.t;
  jitter : Q.t;
  drop : float;
  duplicate : float;
}

let reliable =
  {
    seed = 0;
    base_delay = Q.make 1 100;
    jitter = Q.zero;
    drop = 0.0;
    duplicate = 0.0;
  }

let lossy ~seed =
  {
    seed;
    base_delay = Q.make 1 100;
    jitter = Q.make 1 2;
    drop = 0.05;
    duplicate = 0.05;
  }

type hop = To_server | To_client

type delivery = { conn : int; hop : hop; bytes : string }

type endpoint = {
  decoder : Frame.Decoder.t;
  raw : Buffer.t;
  mutable received : Protocol.reply list;  (* reversed *)
  mutable sent : int;  (* per-direction message counter, keys the PRNG *)
  mutable returned : int;
  mutable last_arrival_to_server : Q.t;  (* FIFO clamps, per direction *)
  mutable last_arrival_to_client : Q.t;
}

type t = {
  policy : policy;
  server : Server.t;
  sim : delivery Naplet.Sim.t;
  clients : (int, endpoint) Hashtbl.t;
  mutable clock : Q.t;
}

let create ?(policy = reliable) ~server () =
  {
    policy;
    server;
    sim = Naplet.Sim.create ();
    clients = Hashtbl.create 8;
    clock = Q.zero;
  }

let connect t =
  let conn = Server.open_conn t.server in
  Hashtbl.replace t.clients conn
    {
      decoder = Frame.Decoder.create ();
      raw = Buffer.create 256;
      received = [];
      sent = 0;
      returned = 0;
      last_arrival_to_server = Q.zero;
      last_arrival_to_client = Q.zero;
    };
  conn

let endpoint t conn =
  match Hashtbl.find_opt t.clients conn with
  | Some ep -> ep
  | None -> failwith (Printf.sprintf "Sim_net: unknown connection %d" conn)

let hop_name = function To_server -> ">" | To_client -> "<"

(* Delay, drop and duplication are all derived from (seed, key) where
   the key names the connection, direction and per-direction message
   index — reordering unrelated traffic cannot perturb any decision. *)
let key conn hop k what = Printf.sprintf "%s#c%d%s%d" what conn (hop_name hop) k

let delay_of t conn hop k =
  let u = Fault.Prng.uniform ~seed:t.policy.seed (key conn hop k "delay") in
  (* quantize so virtual times stay small exact rationals *)
  let frac = Q.make (int_of_float (u *. 1024.0)) 1024 in
  Q.add t.policy.base_delay (Q.mul t.policy.jitter frac)

let coin t conn hop k what p =
  p > 0.0 && Fault.Prng.uniform ~seed:t.policy.seed (key conn hop k what) < p

let schedule_hop t ~time ~conn ~hop bytes =
  let ep = endpoint t conn in
  let k = match hop with To_server -> ep.sent | To_client -> ep.returned in
  (match hop with
  | To_server -> ep.sent <- ep.sent + 1
  | To_client -> ep.returned <- ep.returned + 1);
  if not (coin t conn hop k "drop" t.policy.drop) then begin
    let deliver_once arrival =
      (* clamp to per-direction FIFO: never overtake an earlier frame *)
      let arrival =
        match hop with
        | To_server ->
            let a = Q.max arrival ep.last_arrival_to_server in
            ep.last_arrival_to_server <- a;
            a
        | To_client ->
            let a = Q.max arrival ep.last_arrival_to_client in
            ep.last_arrival_to_client <- a;
            a
      in
      Naplet.Sim.schedule t.sim ~time:arrival { conn; hop; bytes }
    in
    let arrival = Q.add time (delay_of t conn hop k) in
    deliver_once arrival;
    if coin t conn hop k "dup" t.policy.duplicate then
      deliver_once (Q.add arrival (delay_of t conn hop (k + 1000000) ))
  end

let send_raw_at t ~time ~conn bytes = schedule_hop t ~time ~conn ~hop:To_server bytes

let send_at t ~time ~conn req =
  send_raw_at t ~time ~conn (Frame.encode (Protocol.encode_request req))

let deliver t time { conn; hop; bytes } =
  t.clock <- time;
  match hop with
  | To_server ->
      let out = Server.feed t.server ~conn bytes in
      if String.length out > 0 then
        schedule_hop t ~time ~conn ~hop:To_client out
  | To_client ->
      let ep = endpoint t conn in
      Buffer.add_string ep.raw bytes;
      Frame.Decoder.feed ep.decoder bytes;
      let rec drain () =
        match Frame.Decoder.next ep.decoder with
        | Ok (Some payload) -> (
            match Protocol.decode_reply payload with
            | Ok reply ->
                ep.received <- reply :: ep.received;
                drain ()
            | Error err ->
                failwith
                  (Printf.sprintf "Sim_net: undecodable reply on conn %d: %s"
                     conn (Protocol.describe err)))
        | Ok None -> ()
        | Error e ->
            failwith (Printf.sprintf "Sim_net: reply framing on conn %d: %s" conn e)
      in
      drain ()

let run t =
  let rec go () =
    match Naplet.Sim.pop t.sim with
    | None -> ()
    | Some (time, d) ->
        deliver t time d;
        go ()
  in
  go ()

let now t = t.clock
let replies t ~conn = List.rev (endpoint t conn).received
let raw_replies t ~conn = Buffer.contents (endpoint t conn).raw
