(** The decision server core: connections in, reply bytes out.

    A pure state machine over byte strings — it owns no socket, no
    clock and no thread, which is what lets one core serve both the
    deterministic in-process transport ({!Sim_net}) and the real
    Unix-socket backend ({!Net_unix}) with bit-identical behavior.

    Each connection decides against its own {!Coordinated.System.clone}
    of the base system (a connection is an isolated coalition, exactly
    the shard isolation the parallel engine relies on), and request [i]
    on a connection executes at ℚ time [i] — a per-connection logical
    clock, so a connection's verdict stream depends only on its own
    request order, never on transport timing or on other connections.

    Failure policy is {e closed}:
    - a framing error or an undecodable payload yields one [Rejected]
      reply, an [Aborted] trace event, and kills the connection — no
      later bytes from a peer that has already sent garbage are
      trusted;
    - frames beyond [queue_capacity] in a single {!feed} are shed
      unexecuted, each with a [Shed] reply and an [Aborted] trace event
      (reason ["overload-shed"]) so load shedding is auditable. *)

type config = {
  mode : Coordinated.System.decision_mode;
  queue_capacity : int;
      (** max frames executed per {!feed} call; the rest shed *)
  max_frame : int;  (** framing ceiling, bytes *)
}

val default_config : config
(** [Indexed], 256 frames, {!Frame.max_frame_default}. *)

type t

val create : ?config:config -> base:Coordinated.System.t -> unit -> t
(** The base system is cloned per connection; its policy object is
    shared (and must not be mutated while the server is live). *)

val open_conn : t -> int
(** A fresh connection id.  The clone's trace bus gets a capture sink
    immediately, so a later [Subscribe] streams events from the moment
    it executes. *)

val close_conn : t -> conn:int -> unit

val conn_alive : t -> conn:int -> bool
(** [false] once the connection was killed fail-closed (or closed). *)

val feed : t -> conn:int -> string -> string
(** Push raw bytes from the connection; returns the raw reply bytes to
    send back (zero or more frames — replies to every frame completed
    by these bytes, with any subscribed trace events interleaved
    {e before} the reply of the request that caused them).  Unknown or
    dead connections produce [""]. *)

val feed_batch : t -> (int * string) list -> (int * string) list
(** [feed] for several connections at once, fanned out across domains
    with {!Parallel.Backend.parallel} (connections are isolated clones,
    so this is the same shard-safety argument as the parallel engine).
    Byte chunks for the same connection keep their list order; the
    result has one [(conn, reply_bytes)] entry per distinct connection,
    in first-appearance order. *)

val executed : t -> int
(** Requests executed over the server's lifetime. *)

val shed : t -> int

val malformed : t -> int
(** Connections killed for framing/decode errors. *)
