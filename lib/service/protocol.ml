module Q = Temporal.Q

let version = 1

type request =
  | Ping
  | Register of {
      object_id : string;
      owner : string;
      roles : string list;
      program : Sral.Ast.t;
    }
  | Arrive of { object_id : string; server : string }
  | Depart of { object_id : string }
  | Check of { object_id : string; access : Sral.Access.t }
  | Activate of { object_id : string; role : string }
  | Join of { object_id : string; team : string }
  | Subscribe

type reply =
  | Ack of { seq : int }
  | Verdict of { seq : int; verdict : Obs.Verdict.t }
  | Rejected of { seq : int; reason : string }
  | Shed of { seq : int }
  | Event of Obs.Trace.event

type error =
  | Truncated
  | Bad_version of int
  | Bad_tag of int
  | Malformed of string

let describe = function
  | Truncated -> "truncated payload"
  | Bad_version v -> Printf.sprintf "unsupported wire version %d" v
  | Bad_tag t -> Printf.sprintf "unknown message tag %d" t
  | Malformed msg -> Printf.sprintf "malformed payload: %s" msg

(* ------------------------------------------------------------------ *)
(* Writer *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_u32 buf v =
  w_u8 buf (v lsr 24);
  w_u8 buf (v lsr 16);
  w_u8 buf (v lsr 8);
  w_u8 buf v

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_list buf w xs =
  w_u32 buf (List.length xs);
  List.iter (w buf) xs

let w_q buf q = w_str buf (Q.to_string q)

let w_access buf (a : Sral.Access.t) =
  w_str buf (Sral.Access.operation_name a.op);
  w_str buf a.resource;
  w_str buf a.server

let w_verdict buf (v : Obs.Verdict.t) =
  match v with
  | Granted -> w_u8 buf 0
  | Denied (Rbac_denied why) ->
      w_u8 buf 1;
      w_str buf why
  | Denied (Spatial_violation { binding; detail }) ->
      w_u8 buf 2;
      w_str buf binding;
      w_str buf detail
  | Denied (Temporal_expired { binding; spent }) ->
      w_u8 buf 3;
      w_str buf binding;
      w_q buf spent
  | Denied (Not_active why) ->
      w_u8 buf 4;
      w_str buf why
  | Denied Not_arrived -> w_u8 buf 5
  | Denied (Server_unavailable s) ->
      w_u8 buf 6;
      w_str buf s

let encode_request req =
  let buf = Buffer.create 64 in
  w_u8 buf version;
  (match req with
  | Ping -> w_u8 buf 0
  | Register { object_id; owner; roles; program } ->
      w_u8 buf 1;
      w_str buf object_id;
      w_str buf owner;
      w_list buf w_str roles;
      w_str buf (Sral.Pretty.to_string program)
  | Arrive { object_id; server } ->
      w_u8 buf 2;
      w_str buf object_id;
      w_str buf server
  | Depart { object_id } ->
      w_u8 buf 3;
      w_str buf object_id
  | Check { object_id; access } ->
      w_u8 buf 4;
      w_str buf object_id;
      w_access buf access
  | Activate { object_id; role } ->
      w_u8 buf 5;
      w_str buf object_id;
      w_str buf role
  | Join { object_id; team } ->
      w_u8 buf 6;
      w_str buf object_id;
      w_str buf team
  | Subscribe -> w_u8 buf 7);
  Buffer.contents buf

let encode_reply reply =
  let buf = Buffer.create 64 in
  w_u8 buf version;
  (match reply with
  | Ack { seq } ->
      w_u8 buf 0;
      w_u32 buf seq
  | Verdict { seq; verdict } ->
      w_u8 buf 1;
      w_u32 buf seq;
      w_verdict buf verdict
  | Rejected { seq; reason } ->
      w_u8 buf 2;
      w_u32 buf seq;
      w_str buf reason
  | Shed { seq } ->
      w_u8 buf 3;
      w_u32 buf seq
  | Event ev ->
      w_u8 buf 4;
      w_str buf (Obs.Export.to_line ev));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader.  Decoding is total: local exception, caught at the border. *)

exception Fail of error

let decode_with read s =
  let n = String.length s in
  let pos = ref 0 in
  let r_u8 () =
    if !pos >= n then raise (Fail Truncated)
    else begin
      let b = Char.code s.[!pos] in
      incr pos;
      b
    end
  in
  let r_u32 () =
    let a = r_u8 () in
    let b = r_u8 () in
    let c = r_u8 () in
    let d = r_u8 () in
    (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
  in
  let r_str () =
    let len = r_u32 () in
    if len > n - !pos then raise (Fail Truncated)
    else begin
      let v = String.sub s !pos len in
      pos := !pos + len;
      v
    end
  in
  let r_list r =
    let count = r_u32 () in
    (* an honest list of k elements needs at least k payload bytes;
       reject absurd counts before allocating *)
    if count > n - !pos then raise (Fail Truncated)
    else List.init count (fun _ -> r ())
  in
  let r_q () =
    let raw = r_str () in
    match Q.of_string raw with
    | q -> q
    | exception _ -> raise (Fail (Malformed (Printf.sprintf "bad rational %S" raw)))
  in
  match
    let v = r_u8 () in
    if v <> version then raise (Fail (Bad_version v));
    let value = read ~r_u8 ~r_u32 ~r_str ~r_list ~r_q in
    if !pos <> n then
      raise (Fail (Malformed (Printf.sprintf "%d trailing bytes" (n - !pos))));
    value
  with
  | value -> Ok value
  | exception Fail e -> Error e

let r_access ~r_str () =
  let op = Sral.Access.operation_of_name (r_str ()) in
  let resource = r_str () in
  let server = r_str () in
  Sral.Access.make ~op ~resource ~server

let decode_request s =
  decode_with
    (fun ~r_u8 ~r_u32:_ ~r_str ~r_list ~r_q:_ ->
      match r_u8 () with
      | 0 -> Ping
      | 1 ->
          let object_id = r_str () in
          let owner = r_str () in
          let roles = r_list (fun () -> r_str ()) in
          let text = r_str () in
          let program =
            match Sral.Parser.program text with
            | ast -> ast
            | exception _ ->
                raise (Fail (Malformed (Printf.sprintf "bad program %S" text)))
          in
          Register { object_id; owner; roles; program }
      | 2 ->
          let object_id = r_str () in
          let server = r_str () in
          Arrive { object_id; server }
      | 3 -> Depart { object_id = r_str () }
      | 4 ->
          let object_id = r_str () in
          let access = r_access ~r_str () in
          Check { object_id; access }
      | 5 ->
          let object_id = r_str () in
          let role = r_str () in
          Activate { object_id; role }
      | 6 ->
          let object_id = r_str () in
          let team = r_str () in
          Join { object_id; team }
      | 7 -> Subscribe
      | t -> raise (Fail (Bad_tag t)))
    s

let r_verdict ~r_u8 ~r_str ~r_q () : Obs.Verdict.t =
  match r_u8 () with
  | 0 -> Granted
  | 1 -> Denied (Rbac_denied (r_str ()))
  | 2 ->
      let binding = r_str () in
      let detail = r_str () in
      Denied (Spatial_violation { binding; detail })
  | 3 ->
      let binding = r_str () in
      let spent = r_q () in
      Denied (Temporal_expired { binding; spent })
  | 4 -> Denied (Not_active (r_str ()))
  | 5 -> Denied Not_arrived
  | 6 -> Denied (Server_unavailable (r_str ()))
  | t -> raise (Fail (Malformed (Printf.sprintf "unknown verdict tag %d" t)))

let decode_reply s =
  decode_with
    (fun ~r_u8 ~r_u32 ~r_str ~r_list:_ ~r_q ->
      match r_u8 () with
      | 0 -> Ack { seq = r_u32 () }
      | 1 ->
          let seq = r_u32 () in
          let verdict = r_verdict ~r_u8 ~r_str ~r_q () in
          Verdict { seq; verdict }
      | 2 ->
          let seq = r_u32 () in
          let reason = r_str () in
          Rejected { seq; reason }
      | 3 -> Shed { seq = r_u32 () }
      | 4 -> (
          let line = r_str () in
          match Obs.Export.of_line line with
          | Ok ev -> Event ev
          | Error msg ->
              raise (Fail (Malformed (Printf.sprintf "bad event: %s" msg))))
      | t -> raise (Fail (Bad_tag t)))
    s

(* ------------------------------------------------------------------ *)
(* JSONL debug codec (write-only). *)

let json_str buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let json_field buf first name write =
  if not !first then Buffer.add_char buf ',';
  first := false;
  json_str buf name;
  Buffer.add_char buf ':';
  write buf

let json_obj fields =
  let buf = Buffer.create 96 in
  let first = ref true in
  Buffer.add_char buf '{';
  List.iter (fun (name, write) -> json_field buf first name write) fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let str s buf = json_str buf s
let int i buf = Buffer.add_string buf (string_of_int i)
let raw s buf = Buffer.add_string buf s
let strs xs buf =
  Buffer.add_char buf '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      json_str buf x)
    xs;
  Buffer.add_char buf ']'

let request_to_line = function
  | Ping -> json_obj [ ("req", str "ping") ]
  | Register { object_id; owner; roles; program } ->
      json_obj
        [
          ("req", str "register");
          ("object", str object_id);
          ("owner", str owner);
          ("roles", strs roles);
          ("program", str (Sral.Pretty.to_string program));
        ]
  | Arrive { object_id; server } ->
      json_obj
        [ ("req", str "arrive"); ("object", str object_id); ("server", str server) ]
  | Depart { object_id } ->
      json_obj [ ("req", str "depart"); ("object", str object_id) ]
  | Check { object_id; access } ->
      json_obj
        [
          ("req", str "check");
          ("object", str object_id);
          ("access", str (Sral.Access.to_string access));
        ]
  | Activate { object_id; role } ->
      json_obj
        [ ("req", str "activate"); ("object", str object_id); ("role", str role) ]
  | Join { object_id; team } ->
      json_obj
        [ ("req", str "join"); ("object", str object_id); ("team", str team) ]
  | Subscribe -> json_obj [ ("req", str "subscribe") ]

let reply_to_line = function
  | Ack { seq } -> json_obj [ ("reply", str "ack"); ("seq", int seq) ]
  | Verdict { seq; verdict } ->
      json_obj
        [
          ("reply", str "verdict");
          ("seq", int seq);
          ("verdict", raw (Obs.Export.verdict_to_json verdict));
        ]
  | Rejected { seq; reason } ->
      json_obj
        [ ("reply", str "rejected"); ("seq", int seq); ("reason", str reason) ]
  | Shed { seq } -> json_obj [ ("reply", str "shed"); ("seq", int seq) ]
  | Event ev ->
      json_obj [ ("reply", str "event"); ("event", raw (Obs.Export.to_line ev)) ]
