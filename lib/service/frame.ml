let max_frame_default = 1 lsl 20

let encode payload =
  let n = String.length payload in
  if n > 0xFFFFFFFF then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

module Decoder = struct
  type t = {
    max_frame : int;
    mutable buf : Bytes.t;
    mutable len : int;  (* valid bytes in [buf] *)
    mutable off : int;  (* consumed prefix of the valid bytes *)
    mutable error : string option;
  }

  let create ?(max_frame = max_frame_default) () =
    { max_frame; buf = Bytes.create 256; len = 0; off = 0; error = None }

  let buffered t = t.len - t.off

  let compact t =
    if t.off > 0 then begin
      Bytes.blit t.buf t.off t.buf 0 (buffered t);
      t.len <- buffered t;
      t.off <- 0
    end

  let feed t s =
    match t.error with
    | Some _ -> ()
    | None ->
        let n = String.length s in
        if t.len + n > Bytes.length t.buf then begin
          compact t;
          if t.len + n > Bytes.length t.buf then begin
            let cap = max (t.len + n) (2 * Bytes.length t.buf) in
            let bigger = Bytes.create cap in
            Bytes.blit t.buf 0 bigger 0 t.len;
            t.buf <- bigger
          end
        end;
        Bytes.blit_string s 0 t.buf t.len n;
        t.len <- t.len + n

  let next t =
    match t.error with
    | Some e -> Error e
    | None ->
        if buffered t < 4 then Ok None
        else begin
          (* mask away Int32's sign extension on 64-bit ints *)
          let n = Int32.to_int (Bytes.get_int32_be t.buf t.off) land 0xFFFFFFFF in
          if n > t.max_frame then begin
            let e =
              Printf.sprintf "frame length %d exceeds limit %d" n t.max_frame
            in
            t.error <- Some e;
            t.len <- 0;
            t.off <- 0;
            Error e
          end
          else if buffered t < 4 + n then Ok None
          else begin
            let payload = Bytes.sub_string t.buf (t.off + 4) n in
            t.off <- t.off + 4 + n;
            if t.off = t.len then begin
              t.off <- 0;
              t.len <- 0
            end;
            Ok (Some payload)
          end
        end
end
