module Q = Temporal.Q
module System = Coordinated.System

type config = {
  mode : System.decision_mode;
  queue_capacity : int;
  max_frame : int;
}

let default_config =
  {
    mode = System.Indexed;
    queue_capacity = 256;
    max_frame = Frame.max_frame_default;
  }

type obj_state = { session : Rbac.Session.t; program : Sral.Ast.t }

type conn = {
  id : int;
  system : System.t;
  decoder : Frame.Decoder.t;
  objects : (string, obj_state) Hashtbl.t;
  events : Obs.Trace.event Queue.t;
  mutable subscribed : bool;
  mutable seq : int;  (* requests consumed; request i executes at time i *)
  mutable dead : bool;
  mutable executed : int;
  mutable shed : int;
  mutable malformed : int;
}

type t = {
  config : config;
  base : System.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable closed_executed : int;  (* counters of closed connections *)
  mutable closed_shed : int;
  mutable closed_malformed : int;
}

let create ?(config = default_config) ~base () =
  {
    config;
    base;
    conns = Hashtbl.create 16;
    next_conn = 0;
    closed_executed = 0;
    closed_shed = 0;
    closed_malformed = 0;
  }

let open_conn t =
  let id = t.next_conn in
  t.next_conn <- id + 1;
  let system = System.clone t.base in
  let c =
    {
      id;
      system;
      decoder = Frame.Decoder.create ~max_frame:t.config.max_frame ();
      objects = Hashtbl.create 8;
      events = Queue.create ();
      subscribed = false;
      seq = 0;
      dead = false;
      executed = 0;
      shed = 0;
      malformed = 0;
    }
  in
  (* capture from the start; events only accumulate once subscribed so
     an uninterested connection costs nothing *)
  Obs.Bus.subscribe (System.bus system)
    (Obs.Sink.make ~name:(Printf.sprintf "conn-%d-capture" id) (fun ev ->
         if c.subscribed then Queue.add ev c.events));
  Hashtbl.replace t.conns id c;
  id

let retire t c =
  t.closed_executed <- t.closed_executed + c.executed;
  t.closed_shed <- t.closed_shed + c.shed;
  t.closed_malformed <- t.closed_malformed + c.malformed;
  Hashtbl.remove t.conns c.id

let close_conn t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | None -> ()
  | Some c -> retire t c

let conn_alive t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | None -> false
  | Some c -> not c.dead

let sum t per =
  Hashtbl.fold (fun _ c acc -> acc + per c) t.conns 0

let executed t = t.closed_executed + sum t (fun c -> c.executed)
let shed t = t.closed_shed + sum t (fun c -> c.shed)
let malformed t = t.closed_malformed + sum t (fun c -> c.malformed)

let agent_of c = Printf.sprintf "conn-%d" c.id

(* Execute one decoded request at the connection's next logical time. *)
let exec c (req : Protocol.request) : Protocol.reply =
  c.seq <- c.seq + 1;
  c.executed <- c.executed + 1;
  let seq = c.seq in
  let time = Q.of_int seq in
  let reject reason : Protocol.reply = Rejected { seq; reason } in
  let unknown_object id = reject (Printf.sprintf "unknown object %S" id) in
  let with_obj id f =
    match Hashtbl.find_opt c.objects id with
    | None -> unknown_object id
    | Some o -> f o
  in
  match req with
  | Ping -> Ack { seq }
  | Subscribe ->
      c.subscribed <- true;
      Ack { seq }
  | Register { object_id; owner; roles; program } -> (
      if Hashtbl.mem c.objects object_id then
        reject (Printf.sprintf "object %S already registered" object_id)
      else
        match System.new_session c.system ~user:owner with
        | exception Rbac.Policy.Unknown (what, who) ->
            reject (Printf.sprintf "unknown %s %S" what who)
        | session ->
            (* best-effort activation, the scenario interpreter's rule *)
            List.iter
              (fun r ->
                try Rbac.Session.activate session r with
                | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _
                ->
                  ())
              roles;
            Hashtbl.replace c.objects object_id { session; program };
            Ack { seq })
  | Arrive { object_id; server } ->
      with_obj object_id (fun _ ->
          System.arrive c.system ~object_id ~server ~time;
          Ack { seq })
  | Depart { object_id } ->
      with_obj object_id (fun o ->
          Rbac.Session.drop o.session;
          Hashtbl.remove c.objects object_id;
          Ack { seq })
  | Check { object_id; access } ->
      with_obj object_id (fun o ->
          let verdict =
            System.check c.system ~session:o.session ~object_id
              ~program:o.program ~time access
          in
          Verdict { seq; verdict })
  | Activate { object_id; role } ->
      with_obj object_id (fun o ->
          match Rbac.Session.activate o.session role with
          | () -> Ack { seq }
          | exception Rbac.Session.Not_authorized (u, r) ->
              reject (Printf.sprintf "user %S may not activate %S" u r)
          | exception Rbac.Session.Dsd_violation (_, u, r) ->
              reject (Printf.sprintf "DSD forbids %S activating %S" u r))
  | Join { object_id; team } ->
      with_obj object_id (fun _ ->
          System.join_team c.system ~object_id ~team;
          Ack { seq })

let abort_event c reason =
  Obs.Bus.emit (System.bus c.system)
    (Obs.Trace.Aborted { time = Q.of_int c.seq; agent = agent_of c; reason })

(* Events stream before the reply of the request that produced them,
   so a subscriber always sees cause before effect. *)
let flush_events c out =
  Queue.iter
    (fun ev ->
      Buffer.add_string out (Frame.encode (Protocol.encode_reply (Event ev))))
    c.events;
  Queue.clear c.events

let add_reply c out (reply : Protocol.reply) =
  flush_events c out;
  Buffer.add_string out (Frame.encode (Protocol.encode_reply reply))

let feed_conn t c bytes =
  if c.dead then ""
  else begin
    let out = Buffer.create 256 in
    Frame.Decoder.feed c.decoder bytes;
    (* drain complete frames first so the shed boundary is a property
       of the batch, not of TCP segmentation *)
    let payloads = ref [] in
    let rec drain () =
      match Frame.Decoder.next c.decoder with
      | Ok (Some payload) ->
          payloads := payload :: !payloads;
          drain ()
      | Ok None -> Ok ()
      | Error e -> Error e
    in
    let framing = drain () in
    let payloads = List.rev !payloads in
    let budget = t.config.queue_capacity in
    List.iteri
      (fun i payload ->
        if not c.dead then
          if i >= budget then begin
            c.seq <- c.seq + 1;
            c.shed <- c.shed + 1;
            abort_event c "overload-shed";
            add_reply c out (Shed { seq = c.seq })
          end
          else
            match Protocol.decode_request payload with
            | Ok req ->
                let reply = exec c req in
                add_reply c out reply
            | Error err ->
                c.seq <- c.seq + 1;
                c.malformed <- c.malformed + 1;
                abort_event c "malformed-frame";
                add_reply c out
                  (Rejected { seq = c.seq; reason = Protocol.describe err });
                c.dead <- true)
      payloads;
    (match framing with
    | Ok () -> ()
    | Error e ->
        if not c.dead then begin
          c.seq <- c.seq + 1;
          c.malformed <- c.malformed + 1;
          abort_event c "malformed-frame";
          add_reply c out (Rejected { seq = c.seq; reason = e });
          c.dead <- true
        end);
    Buffer.contents out
  end

let feed t ~conn bytes =
  match Hashtbl.find_opt t.conns conn with
  | None -> ""
  | Some c -> feed_conn t c bytes

let feed_batch t items =
  (* group chunks by connection, preserving chunk order within each
     connection and first-appearance order across connections *)
  let order = ref [] in
  let groups : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (conn, bytes) ->
      match Hashtbl.find_opt groups conn with
      | Some chunks -> chunks := bytes :: !chunks
      | None ->
          Hashtbl.replace groups conn (ref [ bytes ]);
          order := conn :: !order)
    items;
  let order = Array.of_list (List.rev !order) in
  let n = Array.length order in
  if n = 0 then []
  else begin
    let bytes_of conn =
      String.concat "" (List.rev !(Hashtbl.find groups conn))
    in
    (* connections are isolated clones, so cross-connection fan-out is
       shard-safe; bundle them so we never spawn more domains than the
       backend recommends *)
    let workers = max 1 (min n (Parallel.Backend.recommended ())) in
    let tasks =
      Array.init workers (fun w () ->
          let acc = ref [] in
          let i = ref w in
          while !i < n do
            let conn = order.(!i) in
            acc := (conn, feed t ~conn (bytes_of conn)) :: !acc;
            i := !i + workers
          done;
          List.rev !acc)
    in
    let per_worker = Parallel.Backend.parallel tasks in
    (* stitch the strided results back into first-appearance order *)
    let by_conn = Hashtbl.create 8 in
    Array.iter
      (fun results ->
        List.iter (fun (conn, out) -> Hashtbl.replace by_conn conn out) results)
      per_worker;
    Array.to_list (Array.map (fun conn -> (conn, Hashtbl.find by_conn conn)) order)
  end
