(** The real transport: the server core behind a Unix-domain or TCP
    listener.

    Single-threaded and select-driven.  {!step} is one bounded pump of
    the event loop (accept, read, decide via {!Server.feed_batch},
    write back), exposed separately from {!serve} so tests can
    interleave client and server turns deterministically in one
    process.  All protocol semantics — logical clocks, fail-closed
    kills, shedding — live in {!Server}; this module only moves
    bytes. *)

type addr = Unix_path of string | Tcp of int
(** [Tcp port] binds 127.0.0.1. *)

type t

val listen : addr -> t
(** Bind and listen.  An existing socket file at a [Unix_path] is
    removed first.  @raise Unix.Unix_error *)

val step : t -> server:Server.t -> timeout:float -> int
(** One pump: wait up to [timeout] seconds for readiness, accept any
    pending connections, read every ready peer, feed the server, write
    replies.  Returns the number of peers that produced bytes.  Peers
    whose connection died fail-closed (and EOF'd peers) are
    disconnected after their replies are flushed. *)

val serve : t -> server:Server.t -> ?max_requests:int -> unit -> unit
(** Pump until [max_requests] requests have executed (forever when
    omitted). *)

val shutdown : t -> unit
(** Close the listener and every peer; removes a [Unix_path] socket
    file. *)

module Client : sig
  type t

  val connect : addr -> t
  (** @raise Unix.Unix_error *)

  val send : t -> Protocol.request -> unit

  val drain : t -> Protocol.reply list
  (** Every reply currently available without blocking.
      @raise Failure on undecodable reply bytes. *)

  val request : t -> Protocol.request -> Protocol.reply * Protocol.reply list
  (** Send and block for the direct reply; returns it plus any [Event]
      replies that streamed in before it. *)

  val close : t -> unit
end
