type addr = Unix_path of string | Tcp of int

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

type peer = { fd : Unix.file_descr; conn : int }

type t = {
  addr : addr;
  listener : Unix.file_descr;
  mutable peers : peer list;
}

let listen addr =
  (match addr with
  | Unix_path p when Sys.file_exists p -> Sys.remove p
  | _ -> ());
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_path _ -> ());
  Unix.bind fd (sockaddr_of addr);
  Unix.listen fd 64;
  { addr; listener = fd; peers = [] }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> None (* EOF *)
  | n -> Some (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Some ""

let step t ~server ~timeout =
  let fds = t.listener :: List.map (fun p -> p.fd) t.peers in
  let ready, _, _ = try Unix.select fds [] [] timeout with
    | Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  (* accept first so a connect+send in the same pump gets served *)
  if List.mem t.listener ready then begin
    let rec accept_all () =
      match Unix.accept t.listener with
      | fd, _ ->
          Unix.set_nonblock fd;
          t.peers <- t.peers @ [ { fd; conn = Server.open_conn server } ];
          accept_all ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    in
    Unix.set_nonblock t.listener;
    accept_all ()
  end;
  let eof = ref [] in
  let batch =
    List.filter_map
      (fun p ->
        if List.mem p.fd ready then
          match read_chunk p.fd with
          | None ->
              eof := p :: !eof;
              None
          | Some "" -> None
          | Some bytes -> Some (p, bytes)
        else None)
      t.peers
  in
  let replies = Server.feed_batch server (List.map (fun (p, b) -> (p.conn, b)) batch) in
  let fd_of_conn = List.map (fun (p, _) -> (p.conn, p.fd)) batch in
  List.iter
    (fun (conn, out) ->
      if String.length out > 0 then write_all (List.assoc conn fd_of_conn) out)
    replies;
  (* disconnect EOF'd peers and peers the server killed fail-closed *)
  let gone p =
    List.memq p !eof
    || (not (Server.conn_alive server ~conn:p.conn))
       && List.exists (fun (q, _) -> q == p) batch
  in
  let dropped, kept = List.partition gone t.peers in
  List.iter
    (fun p ->
      Server.close_conn server ~conn:p.conn;
      try Unix.close p.fd with Unix.Unix_error _ -> ())
    dropped;
  t.peers <- kept;
  List.length batch

let serve t ~server ?max_requests () =
  let done_ () =
    match max_requests with
    | None -> false
    | Some n -> Server.executed server + Server.shed server >= n
  in
  while not (done_ ()) do
    ignore (step t ~server ~timeout:0.1)
  done

let shutdown t =
  List.iter (fun p -> try Unix.close p.fd with Unix.Unix_error _ -> ()) t.peers;
  t.peers <- [];
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  match t.addr with
  | Unix_path p when Sys.file_exists p -> Sys.remove p
  | _ -> ()

module Client = struct
  type t = { fd : Unix.file_descr; decoder : Frame.Decoder.t }

  let connect addr =
    let domain =
      match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.connect fd (sockaddr_of addr);
    { fd; decoder = Frame.Decoder.create () }

  let send t req = write_all t.fd (Frame.encode (Protocol.encode_request req))

  let decode_available t =
    let rec go acc =
      match Frame.Decoder.next t.decoder with
      | Ok (Some payload) -> (
          match Protocol.decode_reply payload with
          | Ok reply -> go (reply :: acc)
          | Error err ->
              failwith ("Client: undecodable reply: " ^ Protocol.describe err))
      | Ok None -> List.rev acc
      | Error e -> failwith ("Client: reply framing: " ^ e)
    in
    go []

  let drain t =
    let rec pump () =
      match Unix.select [ t.fd ] [] [] 0.0 with
      | [], _, _ -> ()
      | _ -> (
          match read_chunk t.fd with
          | None | Some "" -> ()
          | Some bytes ->
              Frame.Decoder.feed t.decoder bytes;
              pump ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    pump ();
    decode_available t

  let request t req =
    send t req;
    let events = ref [] in
    (* decode_available consumes events too; collect them *)
    let rec loop () =
      let batch = decode_available t in
      let evs, directs =
        List.partition (function Protocol.Event _ -> true | _ -> false) batch
      in
      events := !events @ evs;
      match directs with
      | r :: _ -> r
      | [] -> (
          match Unix.select [ t.fd ] [] [] 5.0 with
          | [], _, _ -> failwith "Client.request: timed out"
          | _ -> (
              match read_chunk t.fd with
              | None -> failwith "Client.request: connection closed"
              | Some "" -> loop ()
              | Some bytes ->
                  Frame.Decoder.feed t.decoder bytes;
                  loop ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
    in
    let r = loop () in
    (r, !events)

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
