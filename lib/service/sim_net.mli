(** Deterministic in-process transport: the service under a virtual
    clock.

    Frames travel through a {!Naplet.Sim} event queue instead of a
    socket, with per-message delays, drops and duplicates decided by
    the {e stateless} keyed hash of {!Fault.Prng} — so a whole
    client/server exchange, including its failure pattern, replays
    bit-identically from [(policy, script)] alone.  This is the rscoin
    emulation-layer shape: test the daemon's behavior deterministically
    in-process before any real socket is involved.

    Per-direction FIFO is preserved (a late frame never overtakes an
    earlier one on the same connection and direction), matching what
    TCP provides, so the server's per-connection request order — the
    only thing its verdict stream depends on — is a function of the
    send order alone. *)

type policy = {
  seed : int;
  base_delay : Temporal.Q.t;  (** fixed per-hop latency *)
  jitter : Temporal.Q.t;  (** keyed-uniform extra, quantized to 1/1024 *)
  drop : float;  (** per-frame drop probability, both directions *)
  duplicate : float;  (** per-frame duplication probability *)
}

val reliable : policy
(** No loss, no jitter, delay 1/100 — the differential-gate policy. *)

val lossy : seed:int -> policy
(** 5% drop, 5% duplicate, jitter up to 1/2. *)

type t

val create : ?policy:policy -> server:Server.t -> unit -> t
val connect : t -> int
(** Open a server connection, returning its id. *)

val send_at : t -> time:Temporal.Q.t -> conn:int -> Protocol.request -> unit
(** Schedule an encoded request frame for transmission. *)

val send_raw_at : t -> time:Temporal.Q.t -> conn:int -> string -> unit
(** Schedule raw bytes (adversarial tests: bad frames, half frames). *)

val run : t -> unit
(** Deliver everything until the queue drains. *)

val now : t -> Temporal.Q.t
(** Virtual time of the last delivery. *)

val replies : t -> conn:int -> Protocol.reply list
(** Decoded replies received by the client side, in arrival order.
    Undecodable reply bytes raise [Failure] — the server never emits
    them, so this is a harness assertion, not a recoverable state. *)

val raw_replies : t -> conn:int -> string
(** The exact reply bytes the client received, concatenated — the
    byte-identical comparison surface. *)
