module Q = Temporal.Q
module System = Coordinated.System

type entry = { conn : int; req : Protocol.request }

let servers = [ "s1"; "s2"; "s3" ]
let resources = [ "r1"; "r2"; "r3" ]

let base_system ?mode () =
  let rng = Random.State.make [| 0x57acc; 8 |] in
  let policy = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user policy) Parallel.Workload.users;
  List.iter (Rbac.Policy.add_role policy) Parallel.Workload.roles;
  List.iter
    (fun (r, perm) -> Rbac.Policy.grant policy r perm)
    (Parallel.Workload.grants ~resources ~servers rng);
  List.iter
    (fun (u, r) -> Rbac.Policy.assign_user policy u r)
    (Parallel.Workload.assignments rng);
  let bindings = Parallel.Workload.bindings ~resources rng in
  System.create ?mode ~bindings policy

(* Programs come from the same generator scenarios use, so scripts
   exercise the program/proof shapes the rest of the repo does. *)
let program_pool =
  lazy
    (let rng = Random.State.make [| 0x57acc; 9 |] in
     let scen = Parallel.Workload.scenario ~servers ~resources ~objects:6 rng in
     match List.map (fun o -> o.Parallel.Scenario.program) scen.objects with
     | [] -> assert false
     | programs -> Array.of_list programs)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let access_of rng =
  let r = pick rng resources and s = pick rng servers in
  match Random.State.int rng 3 with
  | 0 -> Sral.Access.read r ~at:s
  | 1 -> Sral.Access.write r ~at:s
  | _ -> Sral.Access.execute r ~at:s

let generate ?(conns = 4) ?(requests = 200) ~seed () =
  let rng = Random.State.make [| 0x57acc; seed |] in
  let pool = Lazy.force program_pool in
  let entries = ref [] in
  let push conn req = entries := { conn; req } :: !entries in
  let objects = Array.make conns [] in
  for c = 0 to conns - 1 do
    for k = 0 to 1 do
      let object_id = Printf.sprintf "o%d_%d" c k in
      let owner = pick rng Parallel.Workload.users in
      let n_roles = 1 + Random.State.int rng 2 in
      let roles =
        List.init n_roles (fun _ -> pick rng Parallel.Workload.roles)
      in
      let program = pool.(Random.State.int rng (Array.length pool)) in
      push c (Protocol.Register { object_id; owner; roles; program });
      objects.(c) <- objects.(c) @ [ object_id ]
    done;
    if c = 0 then push c Protocol.Subscribe;
    List.iter
      (fun object_id ->
        push c (Protocol.Arrive { object_id; server = pick rng servers }))
      objects.(c)
  done;
  for _ = 1 to requests do
    let c = Random.State.int rng conns in
    let object_id = pick rng objects.(c) in
    let req =
      match Random.State.int rng 100 with
      | r when r < 70 -> Protocol.Check { object_id; access = access_of rng }
      | r when r < 80 ->
          Protocol.Arrive { object_id; server = pick rng servers }
      | r when r < 88 ->
          Protocol.Activate { object_id; role = pick rng Parallel.Workload.roles }
      | r when r < 93 ->
          Protocol.Join { object_id; team = pick rng Parallel.Workload.team_names }
      | r when r < 96 -> Protocol.Ping
      | r when r < 98 -> Protocol.Depart { object_id }
      | _ -> Protocol.Subscribe
    in
    push c req
  done;
  List.rev !entries

let conn_count script =
  1 + List.fold_left (fun m e -> max m e.conn) 0 script

let run_sim ?(policy = Sim_net.reliable) ~base script =
  let server = Server.create ~base () in
  let net = Sim_net.create ~policy ~server () in
  let n = conn_count script in
  let ids = Array.init n (fun _ -> Sim_net.connect net) in
  List.iteri
    (fun i e ->
      Sim_net.send_at net ~time:(Q.of_int (i + 1)) ~conn:ids.(e.conn) e.req)
    script;
  Sim_net.run net;
  List.init n (fun c -> (c, Sim_net.replies net ~conn:ids.(c)))

(* ------------------------------------------------------------------ *)
(* The direct drive: an independent mirror of the per-request
   semantics, straight on [Coordinated.System] — no frames, no
   transport.  Kept deliberately separate from [Server] (down to the
   rejection strings) so the differential gate compares two
   implementations, not one implementation with itself. *)

type direct_obj = { session : Rbac.Session.t; program : Sral.Ast.t }

type direct_conn = {
  system : System.t;
  objects : (string, direct_obj) Hashtbl.t;
  events : Obs.Trace.event Queue.t;
  mutable subscribed : bool;
  mutable seq : int;
  mutable replies : Protocol.reply list;  (* reversed *)
}

let direct_conn_of base =
  let system = System.clone base in
  let c =
    {
      system;
      objects = Hashtbl.create 8;
      events = Queue.create ();
      subscribed = false;
      seq = 0;
      replies = [];
    }
  in
  Obs.Bus.subscribe (System.bus system)
    (Obs.Sink.make ~name:"direct-capture" (fun ev ->
         if c.subscribed then Queue.add ev c.events));
  c

let direct_exec c (req : Protocol.request) : Protocol.reply =
  c.seq <- c.seq + 1;
  let seq = c.seq in
  let time = Q.of_int seq in
  let reject reason : Protocol.reply = Rejected { seq; reason } in
  let with_obj id f =
    match Hashtbl.find_opt c.objects id with
    | None -> reject (Printf.sprintf "unknown object %S" id)
    | Some o -> f o
  in
  match req with
  | Ping -> Ack { seq }
  | Subscribe ->
      c.subscribed <- true;
      Ack { seq }
  | Register { object_id; owner; roles; program } -> (
      if Hashtbl.mem c.objects object_id then
        reject (Printf.sprintf "object %S already registered" object_id)
      else
        match System.new_session c.system ~user:owner with
        | exception Rbac.Policy.Unknown (what, who) ->
            reject (Printf.sprintf "unknown %s %S" what who)
        | session ->
            List.iter
              (fun r ->
                try Rbac.Session.activate session r with
                | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _
                ->
                  ())
              roles;
            Hashtbl.replace c.objects object_id { session; program };
            Ack { seq })
  | Arrive { object_id; server } ->
      with_obj object_id (fun _ ->
          System.arrive c.system ~object_id ~server ~time;
          Ack { seq })
  | Depart { object_id } ->
      with_obj object_id (fun o ->
          Rbac.Session.drop o.session;
          Hashtbl.remove c.objects object_id;
          Ack { seq })
  | Check { object_id; access } ->
      with_obj object_id (fun o ->
          let verdict =
            System.check c.system ~session:o.session ~object_id
              ~program:o.program ~time access
          in
          Verdict { seq; verdict })
  | Activate { object_id; role } ->
      with_obj object_id (fun o ->
          match Rbac.Session.activate o.session role with
          | () -> Ack { seq }
          | exception Rbac.Session.Not_authorized (u, r) ->
              reject (Printf.sprintf "user %S may not activate %S" u r)
          | exception Rbac.Session.Dsd_violation (_, u, r) ->
              reject (Printf.sprintf "DSD forbids %S activating %S" u r))
  | Join { object_id; team } ->
      with_obj object_id (fun _ ->
          System.join_team c.system ~object_id ~team;
          Ack { seq })

let drive_direct ~base script =
  let n = conn_count script in
  let conns = Array.init n (fun _ -> direct_conn_of base) in
  List.iter
    (fun e ->
      let c = conns.(e.conn) in
      let reply = direct_exec c e.req in
      Queue.iter (fun ev -> c.replies <- Event ev :: c.replies) c.events;
      Queue.clear c.events;
      c.replies <- reply :: c.replies)
    script;
  List.init n (fun c -> (c, List.rev conns.(c).replies))

let render results =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (c, replies) ->
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "{\"conn\":%d,\"reply\":%s}\n" c
               (Protocol.reply_to_line r)))
        replies)
    results;
  Buffer.contents buf
