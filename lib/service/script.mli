(** Seeded request scripts and the differential gate.

    A script is a global send-order list of [(connection, request)]
    pairs, generated from a seed against the one fixed {!base_system}.
    The same script can be driven two ways:

    - {!run_sim}: through the full stack — framing, the deterministic
      {!Sim_net} transport, {!Server} — collecting each connection's
      decoded replies;
    - {!drive_direct}: through an independent re-implementation of the
      per-request semantics straight on {!Coordinated.System} clones,
      with no framing and no transport.

    The acceptance gate is that both produce byte-identical reply
    streams ({!render}), proving the service layer adds nothing to —
    and loses nothing from — the decision semantics, and that two
    {!run_sim} runs of one script are bit-reproducible. *)

type entry = { conn : int; req : Protocol.request }

val base_system :
  ?mode:Coordinated.System.decision_mode -> unit -> Coordinated.System.t
(** The fixed service population: {!Parallel.Workload} users, roles,
    grants, assignments and bindings drawn from a pinned generator
    state over servers s1–s3 and resources r1–r3.  Deterministic —
    every call builds the same system. *)

val generate : ?conns:int -> ?requests:int -> seed:int -> unit -> entry list
(** A seeded script: per connection, two object registrations and
    arrivals (connection 0 also subscribes), then [requests] more
    requests (~70% checks, the rest arrivals, activations, joins,
    pings, departures, late subscriptions). *)

val run_sim :
  ?policy:Sim_net.policy ->
  base:Coordinated.System.t ->
  entry list ->
  (int * Protocol.reply list) list
(** Replies per connection, in connection order (policy defaults to
    {!Sim_net.reliable}). *)

val drive_direct :
  base:Coordinated.System.t -> entry list -> (int * Protocol.reply list) list

val render : (int * Protocol.reply list) list -> string
(** The comparison surface: one JSONL line
    [{"conn":N,"reply":{…}}] per reply, connections in order. *)
